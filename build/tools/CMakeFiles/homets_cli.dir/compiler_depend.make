# Empty compiler generated dependencies file for homets_cli.
# This may be replaced when dependencies are built.
