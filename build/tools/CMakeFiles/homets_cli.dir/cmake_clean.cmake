file(REMOVE_RECURSE
  "CMakeFiles/homets_cli.dir/homets_cli.cc.o"
  "CMakeFiles/homets_cli.dir/homets_cli.cc.o.d"
  "homets_cli"
  "homets_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
