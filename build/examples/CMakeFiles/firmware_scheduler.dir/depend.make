# Empty dependencies file for firmware_scheduler.
# This may be replaced when dependencies are built.
