file(REMOVE_RECURSE
  "CMakeFiles/firmware_scheduler.dir/firmware_scheduler.cpp.o"
  "CMakeFiles/firmware_scheduler.dir/firmware_scheduler.cpp.o.d"
  "firmware_scheduler"
  "firmware_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
