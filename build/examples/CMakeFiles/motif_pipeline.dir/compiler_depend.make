# Empty compiler generated dependencies file for motif_pipeline.
# This may be replaced when dependencies are built.
