file(REMOVE_RECURSE
  "CMakeFiles/motif_pipeline.dir/motif_pipeline.cpp.o"
  "CMakeFiles/motif_pipeline.dir/motif_pipeline.cpp.o.d"
  "motif_pipeline"
  "motif_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motif_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
