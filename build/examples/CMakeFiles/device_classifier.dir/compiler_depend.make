# Empty compiler generated dependencies file for device_classifier.
# This may be replaced when dependencies are built.
