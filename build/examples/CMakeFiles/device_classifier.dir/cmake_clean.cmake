file(REMOVE_RECURSE
  "CMakeFiles/device_classifier.dir/device_classifier.cpp.o"
  "CMakeFiles/device_classifier.dir/device_classifier.cpp.o.d"
  "device_classifier"
  "device_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
