# Empty dependencies file for guest_detection.
# This may be replaced when dependencies are built.
