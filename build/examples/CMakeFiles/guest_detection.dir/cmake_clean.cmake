file(REMOVE_RECURSE
  "CMakeFiles/guest_detection.dir/guest_detection.cpp.o"
  "CMakeFiles/guest_detection.dir/guest_detection.cpp.o.d"
  "guest_detection"
  "guest_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guest_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
