file(REMOVE_RECURSE
  "CMakeFiles/homets_stattests.dir/ks_test.cc.o"
  "CMakeFiles/homets_stattests.dir/ks_test.cc.o.d"
  "CMakeFiles/homets_stattests.dir/mann_whitney.cc.o"
  "CMakeFiles/homets_stattests.dir/mann_whitney.cc.o.d"
  "CMakeFiles/homets_stattests.dir/ols.cc.o"
  "CMakeFiles/homets_stattests.dir/ols.cc.o.d"
  "CMakeFiles/homets_stattests.dir/unit_root.cc.o"
  "CMakeFiles/homets_stattests.dir/unit_root.cc.o.d"
  "libhomets_stattests.a"
  "libhomets_stattests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_stattests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
