file(REMOVE_RECURSE
  "libhomets_stattests.a"
)
