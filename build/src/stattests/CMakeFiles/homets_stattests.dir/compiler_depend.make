# Empty compiler generated dependencies file for homets_stattests.
# This may be replaced when dependencies are built.
