# Empty dependencies file for homets_stattests.
# This may be replaced when dependencies are built.
