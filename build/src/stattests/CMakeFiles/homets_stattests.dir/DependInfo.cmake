
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stattests/ks_test.cc" "src/stattests/CMakeFiles/homets_stattests.dir/ks_test.cc.o" "gcc" "src/stattests/CMakeFiles/homets_stattests.dir/ks_test.cc.o.d"
  "/root/repo/src/stattests/mann_whitney.cc" "src/stattests/CMakeFiles/homets_stattests.dir/mann_whitney.cc.o" "gcc" "src/stattests/CMakeFiles/homets_stattests.dir/mann_whitney.cc.o.d"
  "/root/repo/src/stattests/ols.cc" "src/stattests/CMakeFiles/homets_stattests.dir/ols.cc.o" "gcc" "src/stattests/CMakeFiles/homets_stattests.dir/ols.cc.o.d"
  "/root/repo/src/stattests/unit_root.cc" "src/stattests/CMakeFiles/homets_stattests.dir/unit_root.cc.o" "gcc" "src/stattests/CMakeFiles/homets_stattests.dir/unit_root.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/correlation/CMakeFiles/homets_correlation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
