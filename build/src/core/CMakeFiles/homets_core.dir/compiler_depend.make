# Empty compiler generated dependencies file for homets_core.
# This may be replaced when dependencies are built.
