file(REMOVE_RECURSE
  "libhomets_core.a"
)
