
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregation.cc" "src/core/CMakeFiles/homets_core.dir/aggregation.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/aggregation.cc.o.d"
  "/root/repo/src/core/anomaly.cc" "src/core/CMakeFiles/homets_core.dir/anomaly.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/anomaly.cc.o.d"
  "/root/repo/src/core/background.cc" "src/core/CMakeFiles/homets_core.dir/background.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/background.cc.o.d"
  "/root/repo/src/core/dominance.cc" "src/core/CMakeFiles/homets_core.dir/dominance.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/dominance.cc.o.d"
  "/root/repo/src/core/motif.cc" "src/core/CMakeFiles/homets_core.dir/motif.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/motif.cc.o.d"
  "/root/repo/src/core/motif_analysis.cc" "src/core/CMakeFiles/homets_core.dir/motif_analysis.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/motif_analysis.cc.o.d"
  "/root/repo/src/core/profiling.cc" "src/core/CMakeFiles/homets_core.dir/profiling.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/profiling.cc.o.d"
  "/root/repo/src/core/similarity.cc" "src/core/CMakeFiles/homets_core.dir/similarity.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/similarity.cc.o.d"
  "/root/repo/src/core/similarity_engine.cc" "src/core/CMakeFiles/homets_core.dir/similarity_engine.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/similarity_engine.cc.o.d"
  "/root/repo/src/core/stationarity.cc" "src/core/CMakeFiles/homets_core.dir/stationarity.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/stationarity.cc.o.d"
  "/root/repo/src/core/streaming.cc" "src/core/CMakeFiles/homets_core.dir/streaming.cc.o" "gcc" "src/core/CMakeFiles/homets_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/correlation/CMakeFiles/homets_correlation.dir/DependInfo.cmake"
  "/root/repo/build/src/stattests/CMakeFiles/homets_stattests.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/homets_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/homets_simgen.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
