file(REMOVE_RECURSE
  "CMakeFiles/homets_core.dir/aggregation.cc.o"
  "CMakeFiles/homets_core.dir/aggregation.cc.o.d"
  "CMakeFiles/homets_core.dir/anomaly.cc.o"
  "CMakeFiles/homets_core.dir/anomaly.cc.o.d"
  "CMakeFiles/homets_core.dir/background.cc.o"
  "CMakeFiles/homets_core.dir/background.cc.o.d"
  "CMakeFiles/homets_core.dir/dominance.cc.o"
  "CMakeFiles/homets_core.dir/dominance.cc.o.d"
  "CMakeFiles/homets_core.dir/motif.cc.o"
  "CMakeFiles/homets_core.dir/motif.cc.o.d"
  "CMakeFiles/homets_core.dir/motif_analysis.cc.o"
  "CMakeFiles/homets_core.dir/motif_analysis.cc.o.d"
  "CMakeFiles/homets_core.dir/profiling.cc.o"
  "CMakeFiles/homets_core.dir/profiling.cc.o.d"
  "CMakeFiles/homets_core.dir/similarity.cc.o"
  "CMakeFiles/homets_core.dir/similarity.cc.o.d"
  "CMakeFiles/homets_core.dir/similarity_engine.cc.o"
  "CMakeFiles/homets_core.dir/similarity_engine.cc.o.d"
  "CMakeFiles/homets_core.dir/stationarity.cc.o"
  "CMakeFiles/homets_core.dir/stationarity.cc.o.d"
  "CMakeFiles/homets_core.dir/streaming.cc.o"
  "CMakeFiles/homets_core.dir/streaming.cc.o.d"
  "libhomets_core.a"
  "libhomets_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
