file(REMOVE_RECURSE
  "CMakeFiles/homets_sax.dir/sax.cc.o"
  "CMakeFiles/homets_sax.dir/sax.cc.o.d"
  "CMakeFiles/homets_sax.dir/sax_motif.cc.o"
  "CMakeFiles/homets_sax.dir/sax_motif.cc.o.d"
  "libhomets_sax.a"
  "libhomets_sax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_sax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
