
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sax/sax.cc" "src/sax/CMakeFiles/homets_sax.dir/sax.cc.o" "gcc" "src/sax/CMakeFiles/homets_sax.dir/sax.cc.o.d"
  "/root/repo/src/sax/sax_motif.cc" "src/sax/CMakeFiles/homets_sax.dir/sax_motif.cc.o" "gcc" "src/sax/CMakeFiles/homets_sax.dir/sax_motif.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
