file(REMOVE_RECURSE
  "libhomets_sax.a"
)
