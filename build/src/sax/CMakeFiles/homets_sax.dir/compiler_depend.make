# Empty compiler generated dependencies file for homets_sax.
# This may be replaced when dependencies are built.
