
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ts/rolling.cc" "src/ts/CMakeFiles/homets_ts.dir/rolling.cc.o" "gcc" "src/ts/CMakeFiles/homets_ts.dir/rolling.cc.o.d"
  "/root/repo/src/ts/seasonal.cc" "src/ts/CMakeFiles/homets_ts.dir/seasonal.cc.o" "gcc" "src/ts/CMakeFiles/homets_ts.dir/seasonal.cc.o.d"
  "/root/repo/src/ts/time_series.cc" "src/ts/CMakeFiles/homets_ts.dir/time_series.cc.o" "gcc" "src/ts/CMakeFiles/homets_ts.dir/time_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
