# Empty dependencies file for homets_ts.
# This may be replaced when dependencies are built.
