file(REMOVE_RECURSE
  "CMakeFiles/homets_ts.dir/rolling.cc.o"
  "CMakeFiles/homets_ts.dir/rolling.cc.o.d"
  "CMakeFiles/homets_ts.dir/seasonal.cc.o"
  "CMakeFiles/homets_ts.dir/seasonal.cc.o.d"
  "CMakeFiles/homets_ts.dir/time_series.cc.o"
  "CMakeFiles/homets_ts.dir/time_series.cc.o.d"
  "libhomets_ts.a"
  "libhomets_ts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_ts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
