file(REMOVE_RECURSE
  "libhomets_ts.a"
)
