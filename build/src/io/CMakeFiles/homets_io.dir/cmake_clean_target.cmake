file(REMOVE_RECURSE
  "libhomets_io.a"
)
