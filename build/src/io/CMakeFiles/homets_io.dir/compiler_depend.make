# Empty compiler generated dependencies file for homets_io.
# This may be replaced when dependencies are built.
