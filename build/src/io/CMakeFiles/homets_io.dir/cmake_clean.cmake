file(REMOVE_RECURSE
  "CMakeFiles/homets_io.dir/csv.cc.o"
  "CMakeFiles/homets_io.dir/csv.cc.o.d"
  "CMakeFiles/homets_io.dir/table.cc.o"
  "CMakeFiles/homets_io.dir/table.cc.o.d"
  "libhomets_io.a"
  "libhomets_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
