file(REMOVE_RECURSE
  "libhomets_cluster.a"
)
