file(REMOVE_RECURSE
  "CMakeFiles/homets_cluster.dir/hierarchical.cc.o"
  "CMakeFiles/homets_cluster.dir/hierarchical.cc.o.d"
  "CMakeFiles/homets_cluster.dir/rand_index.cc.o"
  "CMakeFiles/homets_cluster.dir/rand_index.cc.o.d"
  "CMakeFiles/homets_cluster.dir/silhouette.cc.o"
  "CMakeFiles/homets_cluster.dir/silhouette.cc.o.d"
  "libhomets_cluster.a"
  "libhomets_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
