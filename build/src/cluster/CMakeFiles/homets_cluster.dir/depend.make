# Empty dependencies file for homets_cluster.
# This may be replaced when dependencies are built.
