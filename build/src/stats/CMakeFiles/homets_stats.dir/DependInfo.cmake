
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/boxplot.cc" "src/stats/CMakeFiles/homets_stats.dir/boxplot.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/boxplot.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/stats/CMakeFiles/homets_stats.dir/descriptive.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/descriptive.cc.o.d"
  "/root/repo/src/stats/ecdf.cc" "src/stats/CMakeFiles/homets_stats.dir/ecdf.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/ecdf.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/homets_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/kde.cc" "src/stats/CMakeFiles/homets_stats.dir/kde.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/kde.cc.o.d"
  "/root/repo/src/stats/ranks.cc" "src/stats/CMakeFiles/homets_stats.dir/ranks.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/ranks.cc.o.d"
  "/root/repo/src/stats/special_functions.cc" "src/stats/CMakeFiles/homets_stats.dir/special_functions.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/special_functions.cc.o.d"
  "/root/repo/src/stats/zipf_fit.cc" "src/stats/CMakeFiles/homets_stats.dir/zipf_fit.cc.o" "gcc" "src/stats/CMakeFiles/homets_stats.dir/zipf_fit.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
