file(REMOVE_RECURSE
  "CMakeFiles/homets_stats.dir/boxplot.cc.o"
  "CMakeFiles/homets_stats.dir/boxplot.cc.o.d"
  "CMakeFiles/homets_stats.dir/descriptive.cc.o"
  "CMakeFiles/homets_stats.dir/descriptive.cc.o.d"
  "CMakeFiles/homets_stats.dir/ecdf.cc.o"
  "CMakeFiles/homets_stats.dir/ecdf.cc.o.d"
  "CMakeFiles/homets_stats.dir/histogram.cc.o"
  "CMakeFiles/homets_stats.dir/histogram.cc.o.d"
  "CMakeFiles/homets_stats.dir/kde.cc.o"
  "CMakeFiles/homets_stats.dir/kde.cc.o.d"
  "CMakeFiles/homets_stats.dir/ranks.cc.o"
  "CMakeFiles/homets_stats.dir/ranks.cc.o.d"
  "CMakeFiles/homets_stats.dir/special_functions.cc.o"
  "CMakeFiles/homets_stats.dir/special_functions.cc.o.d"
  "CMakeFiles/homets_stats.dir/zipf_fit.cc.o"
  "CMakeFiles/homets_stats.dir/zipf_fit.cc.o.d"
  "libhomets_stats.a"
  "libhomets_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
