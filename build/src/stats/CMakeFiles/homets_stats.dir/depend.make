# Empty dependencies file for homets_stats.
# This may be replaced when dependencies are built.
