file(REMOVE_RECURSE
  "libhomets_stats.a"
)
