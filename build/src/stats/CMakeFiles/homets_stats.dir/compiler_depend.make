# Empty compiler generated dependencies file for homets_stats.
# This may be replaced when dependencies are built.
