# Empty dependencies file for homets_distance.
# This may be replaced when dependencies are built.
