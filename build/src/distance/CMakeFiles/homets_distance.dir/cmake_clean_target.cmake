file(REMOVE_RECURSE
  "libhomets_distance.a"
)
