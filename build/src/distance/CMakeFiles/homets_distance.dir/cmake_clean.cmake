file(REMOVE_RECURSE
  "CMakeFiles/homets_distance.dir/distance.cc.o"
  "CMakeFiles/homets_distance.dir/distance.cc.o.d"
  "libhomets_distance.a"
  "libhomets_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
