# Empty compiler generated dependencies file for homets_simgen.
# This may be replaced when dependencies are built.
