file(REMOVE_RECURSE
  "libhomets_simgen.a"
)
