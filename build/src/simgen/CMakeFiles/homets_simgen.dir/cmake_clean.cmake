file(REMOVE_RECURSE
  "CMakeFiles/homets_simgen.dir/behavior.cc.o"
  "CMakeFiles/homets_simgen.dir/behavior.cc.o.d"
  "CMakeFiles/homets_simgen.dir/fleet.cc.o"
  "CMakeFiles/homets_simgen.dir/fleet.cc.o.d"
  "CMakeFiles/homets_simgen.dir/types.cc.o"
  "CMakeFiles/homets_simgen.dir/types.cc.o.d"
  "libhomets_simgen.a"
  "libhomets_simgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_simgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
