file(REMOVE_RECURSE
  "CMakeFiles/homets_correlation.dir/acf.cc.o"
  "CMakeFiles/homets_correlation.dir/acf.cc.o.d"
  "CMakeFiles/homets_correlation.dir/coefficients.cc.o"
  "CMakeFiles/homets_correlation.dir/coefficients.cc.o.d"
  "CMakeFiles/homets_correlation.dir/prepared_series.cc.o"
  "CMakeFiles/homets_correlation.dir/prepared_series.cc.o.d"
  "libhomets_correlation.a"
  "libhomets_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
