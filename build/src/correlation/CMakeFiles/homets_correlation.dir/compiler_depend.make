# Empty compiler generated dependencies file for homets_correlation.
# This may be replaced when dependencies are built.
