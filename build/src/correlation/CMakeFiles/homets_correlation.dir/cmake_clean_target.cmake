file(REMOVE_RECURSE
  "libhomets_correlation.a"
)
