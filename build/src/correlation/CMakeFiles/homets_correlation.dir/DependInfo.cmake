
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/correlation/acf.cc" "src/correlation/CMakeFiles/homets_correlation.dir/acf.cc.o" "gcc" "src/correlation/CMakeFiles/homets_correlation.dir/acf.cc.o.d"
  "/root/repo/src/correlation/coefficients.cc" "src/correlation/CMakeFiles/homets_correlation.dir/coefficients.cc.o" "gcc" "src/correlation/CMakeFiles/homets_correlation.dir/coefficients.cc.o.d"
  "/root/repo/src/correlation/prepared_series.cc" "src/correlation/CMakeFiles/homets_correlation.dir/prepared_series.cc.o" "gcc" "src/correlation/CMakeFiles/homets_correlation.dir/prepared_series.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
