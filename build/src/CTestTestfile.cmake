# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("ts")
subdirs("stats")
subdirs("correlation")
subdirs("stattests")
subdirs("distance")
subdirs("sax")
subdirs("model")
subdirs("cluster")
subdirs("simgen")
subdirs("io")
subdirs("core")
