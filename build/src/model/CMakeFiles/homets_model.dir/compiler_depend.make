# Empty compiler generated dependencies file for homets_model.
# This may be replaced when dependencies are built.
