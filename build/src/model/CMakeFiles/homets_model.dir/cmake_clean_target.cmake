file(REMOVE_RECURSE
  "libhomets_model.a"
)
