file(REMOVE_RECURSE
  "CMakeFiles/homets_model.dir/autoregressive.cc.o"
  "CMakeFiles/homets_model.dir/autoregressive.cc.o.d"
  "CMakeFiles/homets_model.dir/baselines.cc.o"
  "CMakeFiles/homets_model.dir/baselines.cc.o.d"
  "libhomets_model.a"
  "libhomets_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
