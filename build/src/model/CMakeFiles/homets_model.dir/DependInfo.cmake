
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/autoregressive.cc" "src/model/CMakeFiles/homets_model.dir/autoregressive.cc.o" "gcc" "src/model/CMakeFiles/homets_model.dir/autoregressive.cc.o.d"
  "/root/repo/src/model/baselines.cc" "src/model/CMakeFiles/homets_model.dir/baselines.cc.o" "gcc" "src/model/CMakeFiles/homets_model.dir/baselines.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
