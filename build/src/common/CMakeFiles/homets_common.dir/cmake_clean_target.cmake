file(REMOVE_RECURSE
  "libhomets_common.a"
)
