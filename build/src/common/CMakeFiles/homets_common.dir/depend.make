# Empty dependencies file for homets_common.
# This may be replaced when dependencies are built.
