file(REMOVE_RECURSE
  "CMakeFiles/homets_common.dir/random.cc.o"
  "CMakeFiles/homets_common.dir/random.cc.o.d"
  "CMakeFiles/homets_common.dir/status.cc.o"
  "CMakeFiles/homets_common.dir/status.cc.o.d"
  "CMakeFiles/homets_common.dir/strings.cc.o"
  "CMakeFiles/homets_common.dir/strings.cc.o.d"
  "libhomets_common.a"
  "libhomets_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homets_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
