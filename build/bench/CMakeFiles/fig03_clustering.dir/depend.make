# Empty dependencies file for fig03_clustering.
# This may be replaced when dependencies are built.
