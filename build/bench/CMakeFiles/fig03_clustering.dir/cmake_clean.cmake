file(REMOVE_RECURSE
  "CMakeFiles/fig03_clustering.dir/fig03_clustering.cc.o"
  "CMakeFiles/fig03_clustering.dir/fig03_clustering.cc.o.d"
  "fig03_clustering"
  "fig03_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
