# Empty compiler generated dependencies file for fig02_autocorrelation.
# This may be replaced when dependencies are built.
