file(REMOVE_RECURSE
  "CMakeFiles/fig02_autocorrelation.dir/fig02_autocorrelation.cc.o"
  "CMakeFiles/fig02_autocorrelation.dir/fig02_autocorrelation.cc.o.d"
  "fig02_autocorrelation"
  "fig02_autocorrelation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_autocorrelation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
