# Empty dependencies file for abl_similarity_measures.
# This may be replaced when dependencies are built.
