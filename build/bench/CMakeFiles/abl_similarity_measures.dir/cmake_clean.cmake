file(REMOVE_RECURSE
  "CMakeFiles/abl_similarity_measures.dir/abl_similarity_measures.cc.o"
  "CMakeFiles/abl_similarity_measures.dir/abl_similarity_measures.cc.o.d"
  "abl_similarity_measures"
  "abl_similarity_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_similarity_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
