# Empty dependencies file for sec20_deseasoning.
# This may be replaced when dependencies are built.
