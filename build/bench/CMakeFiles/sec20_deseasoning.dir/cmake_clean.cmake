file(REMOVE_RECURSE
  "CMakeFiles/sec20_deseasoning.dir/sec20_deseasoning.cc.o"
  "CMakeFiles/sec20_deseasoning.dir/sec20_deseasoning.cc.o.d"
  "sec20_deseasoning"
  "sec20_deseasoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec20_deseasoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
