# Empty compiler generated dependencies file for sec62_residents.
# This may be replaced when dependencies are built.
