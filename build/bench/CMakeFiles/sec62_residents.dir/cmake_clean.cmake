file(REMOVE_RECURSE
  "CMakeFiles/sec62_residents.dir/sec62_residents.cc.o"
  "CMakeFiles/sec62_residents.dir/sec62_residents.cc.o.d"
  "sec62_residents"
  "sec62_residents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_residents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
