file(REMOVE_RECURSE
  "CMakeFiles/fig14_16_daily_motifs.dir/fig14_16_daily_motifs.cc.o"
  "CMakeFiles/fig14_16_daily_motifs.dir/fig14_16_daily_motifs.cc.o.d"
  "fig14_16_daily_motifs"
  "fig14_16_daily_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_16_daily_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
