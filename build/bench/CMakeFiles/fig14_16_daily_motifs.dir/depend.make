# Empty dependencies file for fig14_16_daily_motifs.
# This may be replaced when dependencies are built.
