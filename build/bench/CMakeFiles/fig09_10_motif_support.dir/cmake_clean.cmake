file(REMOVE_RECURSE
  "CMakeFiles/fig09_10_motif_support.dir/fig09_10_motif_support.cc.o"
  "CMakeFiles/fig09_10_motif_support.dir/fig09_10_motif_support.cc.o.d"
  "fig09_10_motif_support"
  "fig09_10_motif_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_10_motif_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
