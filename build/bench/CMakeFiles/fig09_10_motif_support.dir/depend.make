# Empty dependencies file for fig09_10_motif_support.
# This may be replaced when dependencies are built.
