file(REMOVE_RECURSE
  "CMakeFiles/sec62_dominance_baselines.dir/sec62_dominance_baselines.cc.o"
  "CMakeFiles/sec62_dominance_baselines.dir/sec62_dominance_baselines.cc.o.d"
  "sec62_dominance_baselines"
  "sec62_dominance_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec62_dominance_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
