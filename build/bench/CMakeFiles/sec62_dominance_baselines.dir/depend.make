# Empty dependencies file for sec62_dominance_baselines.
# This may be replaced when dependencies are built.
