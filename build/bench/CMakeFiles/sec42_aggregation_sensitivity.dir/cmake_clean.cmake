file(REMOVE_RECURSE
  "CMakeFiles/sec42_aggregation_sensitivity.dir/sec42_aggregation_sensitivity.cc.o"
  "CMakeFiles/sec42_aggregation_sensitivity.dir/sec42_aggregation_sensitivity.cc.o.d"
  "sec42_aggregation_sensitivity"
  "sec42_aggregation_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_aggregation_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
