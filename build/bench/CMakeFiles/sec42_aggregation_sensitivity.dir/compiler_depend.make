# Empty compiler generated dependencies file for sec42_aggregation_sensitivity.
# This may be replaced when dependencies are built.
