file(REMOVE_RECURSE
  "CMakeFiles/fig08_daily_aggregation.dir/fig08_daily_aggregation.cc.o"
  "CMakeFiles/fig08_daily_aggregation.dir/fig08_daily_aggregation.cc.o.d"
  "fig08_daily_aggregation"
  "fig08_daily_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_daily_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
