# Empty compiler generated dependencies file for fig08_daily_aggregation.
# This may be replaced when dependencies are built.
