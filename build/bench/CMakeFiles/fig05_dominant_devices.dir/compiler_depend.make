# Empty compiler generated dependencies file for fig05_dominant_devices.
# This may be replaced when dependencies are built.
