file(REMOVE_RECURSE
  "CMakeFiles/fig05_dominant_devices.dir/fig05_dominant_devices.cc.o"
  "CMakeFiles/fig05_dominant_devices.dir/fig05_dominant_devices.cc.o.d"
  "fig05_dominant_devices"
  "fig05_dominant_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_dominant_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
