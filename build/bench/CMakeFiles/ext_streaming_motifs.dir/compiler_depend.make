# Empty compiler generated dependencies file for ext_streaming_motifs.
# This may be replaced when dependencies are built.
