file(REMOVE_RECURSE
  "CMakeFiles/ext_streaming_motifs.dir/ext_streaming_motifs.cc.o"
  "CMakeFiles/ext_streaming_motifs.dir/ext_streaming_motifs.cc.o.d"
  "ext_streaming_motifs"
  "ext_streaming_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_streaming_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
