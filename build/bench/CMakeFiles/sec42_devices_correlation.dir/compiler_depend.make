# Empty compiler generated dependencies file for sec42_devices_correlation.
# This may be replaced when dependencies are built.
