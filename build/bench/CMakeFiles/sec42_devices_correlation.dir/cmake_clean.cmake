file(REMOVE_RECURSE
  "CMakeFiles/sec42_devices_correlation.dir/sec42_devices_correlation.cc.o"
  "CMakeFiles/sec42_devices_correlation.dir/sec42_devices_correlation.cc.o.d"
  "sec42_devices_correlation"
  "sec42_devices_correlation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_devices_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
