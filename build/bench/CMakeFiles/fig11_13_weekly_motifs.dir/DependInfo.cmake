
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig11_13_weekly_motifs.cc" "bench/CMakeFiles/fig11_13_weekly_motifs.dir/fig11_13_weekly_motifs.cc.o" "gcc" "bench/CMakeFiles/fig11_13_weekly_motifs.dir/fig11_13_weekly_motifs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/homets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/homets_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sax/CMakeFiles/homets_sax.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/homets_model.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/homets_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stattests/CMakeFiles/homets_stattests.dir/DependInfo.cmake"
  "/root/repo/build/src/correlation/CMakeFiles/homets_correlation.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/homets_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/homets_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
