# Empty dependencies file for fig11_13_weekly_motifs.
# This may be replaced when dependencies are built.
