file(REMOVE_RECURSE
  "CMakeFiles/fig11_13_weekly_motifs.dir/fig11_13_weekly_motifs.cc.o"
  "CMakeFiles/fig11_13_weekly_motifs.dir/fig11_13_weekly_motifs.cc.o.d"
  "fig11_13_weekly_motifs"
  "fig11_13_weekly_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_13_weekly_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
