file(REMOVE_RECURSE
  "CMakeFiles/fig06_weekly_aggregation.dir/fig06_weekly_aggregation.cc.o"
  "CMakeFiles/fig06_weekly_aggregation.dir/fig06_weekly_aggregation.cc.o.d"
  "fig06_weekly_aggregation"
  "fig06_weekly_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_weekly_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
