# Empty dependencies file for fig06_weekly_aggregation.
# This may be replaced when dependencies are built.
