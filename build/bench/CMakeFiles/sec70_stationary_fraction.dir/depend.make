# Empty dependencies file for sec70_stationary_fraction.
# This may be replaced when dependencies are built.
