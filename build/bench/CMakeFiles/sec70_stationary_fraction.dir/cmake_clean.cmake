file(REMOVE_RECURSE
  "CMakeFiles/sec70_stationary_fraction.dir/sec70_stationary_fraction.cc.o"
  "CMakeFiles/sec70_stationary_fraction.dir/sec70_stationary_fraction.cc.o.d"
  "sec70_stationary_fraction"
  "sec70_stationary_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec70_stationary_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
