# Empty dependencies file for fig04_background_threshold.
# This may be replaced when dependencies are built.
