file(REMOVE_RECURSE
  "CMakeFiles/fig04_background_threshold.dir/fig04_background_threshold.cc.o"
  "CMakeFiles/fig04_background_threshold.dir/fig04_background_threshold.cc.o.d"
  "fig04_background_threshold"
  "fig04_background_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_background_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
