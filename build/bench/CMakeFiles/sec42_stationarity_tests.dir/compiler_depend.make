# Empty compiler generated dependencies file for sec42_stationarity_tests.
# This may be replaced when dependencies are built.
