file(REMOVE_RECURSE
  "CMakeFiles/sec42_stationarity_tests.dir/sec42_stationarity_tests.cc.o"
  "CMakeFiles/sec42_stationarity_tests.dir/sec42_stationarity_tests.cc.o.d"
  "sec42_stationarity_tests"
  "sec42_stationarity_tests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec42_stationarity_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
