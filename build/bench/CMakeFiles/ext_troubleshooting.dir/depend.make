# Empty dependencies file for ext_troubleshooting.
# This may be replaced when dependencies are built.
