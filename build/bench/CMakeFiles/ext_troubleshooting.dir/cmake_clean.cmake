file(REMOVE_RECURSE
  "CMakeFiles/ext_troubleshooting.dir/ext_troubleshooting.cc.o"
  "CMakeFiles/ext_troubleshooting.dir/ext_troubleshooting.cc.o.d"
  "ext_troubleshooting"
  "ext_troubleshooting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_troubleshooting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
