file(REMOVE_RECURSE
  "CMakeFiles/fig07_stationary_gateways.dir/fig07_stationary_gateways.cc.o"
  "CMakeFiles/fig07_stationary_gateways.dir/fig07_stationary_gateways.cc.o.d"
  "fig07_stationary_gateways"
  "fig07_stationary_gateways.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_stationary_gateways.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
