# Empty dependencies file for fig07_stationary_gateways.
# This may be replaced when dependencies are built.
