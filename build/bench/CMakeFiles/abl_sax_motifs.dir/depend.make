# Empty dependencies file for abl_sax_motifs.
# This may be replaced when dependencies are built.
