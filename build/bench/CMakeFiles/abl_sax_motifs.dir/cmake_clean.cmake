file(REMOVE_RECURSE
  "CMakeFiles/abl_sax_motifs.dir/abl_sax_motifs.cc.o"
  "CMakeFiles/abl_sax_motifs.dir/abl_sax_motifs.cc.o.d"
  "abl_sax_motifs"
  "abl_sax_motifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sax_motifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
