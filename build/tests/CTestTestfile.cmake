# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/ts_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/correlation_test[1]_include.cmake")
include("/root/repo/build/tests/stattests_test[1]_include.cmake")
include("/root/repo/build/tests/distance_test[1]_include.cmake")
include("/root/repo/build/tests/sax_test[1]_include.cmake")
include("/root/repo/build/tests/model_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/simgen_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/threading_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
