file(REMOVE_RECURSE
  "CMakeFiles/simgen_test.dir/simgen/behavior_test.cc.o"
  "CMakeFiles/simgen_test.dir/simgen/behavior_test.cc.o.d"
  "CMakeFiles/simgen_test.dir/simgen/config_test.cc.o"
  "CMakeFiles/simgen_test.dir/simgen/config_test.cc.o.d"
  "CMakeFiles/simgen_test.dir/simgen/fleet_test.cc.o"
  "CMakeFiles/simgen_test.dir/simgen/fleet_test.cc.o.d"
  "CMakeFiles/simgen_test.dir/simgen/types_test.cc.o"
  "CMakeFiles/simgen_test.dir/simgen/types_test.cc.o.d"
  "simgen_test"
  "simgen_test.pdb"
  "simgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
