# Empty dependencies file for simgen_test.
# This may be replaced when dependencies are built.
