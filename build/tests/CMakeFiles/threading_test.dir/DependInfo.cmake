
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/threading_test.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/threading_test.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/core/similarity_engine_test.cc" "tests/CMakeFiles/threading_test.dir/core/similarity_engine_test.cc.o" "gcc" "tests/CMakeFiles/threading_test.dir/core/similarity_engine_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/homets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stattests/CMakeFiles/homets_stattests.dir/DependInfo.cmake"
  "/root/repo/build/src/correlation/CMakeFiles/homets_correlation.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/homets_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/homets_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
