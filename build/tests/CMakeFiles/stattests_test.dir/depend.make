# Empty dependencies file for stattests_test.
# This may be replaced when dependencies are built.
