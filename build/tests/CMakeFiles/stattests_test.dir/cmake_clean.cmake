file(REMOVE_RECURSE
  "CMakeFiles/stattests_test.dir/stattests/ks_test_test.cc.o"
  "CMakeFiles/stattests_test.dir/stattests/ks_test_test.cc.o.d"
  "CMakeFiles/stattests_test.dir/stattests/mann_whitney_test.cc.o"
  "CMakeFiles/stattests_test.dir/stattests/mann_whitney_test.cc.o.d"
  "CMakeFiles/stattests_test.dir/stattests/ols_test.cc.o"
  "CMakeFiles/stattests_test.dir/stattests/ols_test.cc.o.d"
  "CMakeFiles/stattests_test.dir/stattests/unit_root_test.cc.o"
  "CMakeFiles/stattests_test.dir/stattests/unit_root_test.cc.o.d"
  "stattests_test"
  "stattests_test.pdb"
  "stattests_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stattests_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
