
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/correlation/acf_test.cc" "tests/CMakeFiles/correlation_test.dir/correlation/acf_test.cc.o" "gcc" "tests/CMakeFiles/correlation_test.dir/correlation/acf_test.cc.o.d"
  "/root/repo/tests/correlation/coefficients_test.cc" "tests/CMakeFiles/correlation_test.dir/correlation/coefficients_test.cc.o" "gcc" "tests/CMakeFiles/correlation_test.dir/correlation/coefficients_test.cc.o.d"
  "/root/repo/tests/correlation/prepared_series_test.cc" "tests/CMakeFiles/correlation_test.dir/correlation/prepared_series_test.cc.o" "gcc" "tests/CMakeFiles/correlation_test.dir/correlation/prepared_series_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/homets_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/homets_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sax/CMakeFiles/homets_sax.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/homets_model.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/homets_io.dir/DependInfo.cmake"
  "/root/repo/build/src/stattests/CMakeFiles/homets_stattests.dir/DependInfo.cmake"
  "/root/repo/build/src/correlation/CMakeFiles/homets_correlation.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/homets_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/homets_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/simgen/CMakeFiles/homets_simgen.dir/DependInfo.cmake"
  "/root/repo/build/src/ts/CMakeFiles/homets_ts.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/homets_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
