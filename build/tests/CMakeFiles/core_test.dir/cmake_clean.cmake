file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/aggregation_test.cc.o"
  "CMakeFiles/core_test.dir/core/aggregation_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/anomaly_test.cc.o"
  "CMakeFiles/core_test.dir/core/anomaly_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/background_test.cc.o"
  "CMakeFiles/core_test.dir/core/background_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/dominance_test.cc.o"
  "CMakeFiles/core_test.dir/core/dominance_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/motif_analysis_test.cc.o"
  "CMakeFiles/core_test.dir/core/motif_analysis_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/motif_test.cc.o"
  "CMakeFiles/core_test.dir/core/motif_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/profiling_test.cc.o"
  "CMakeFiles/core_test.dir/core/profiling_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/shape_classify_test.cc.o"
  "CMakeFiles/core_test.dir/core/shape_classify_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/similarity_test.cc.o"
  "CMakeFiles/core_test.dir/core/similarity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/stationarity_test.cc.o"
  "CMakeFiles/core_test.dir/core/stationarity_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/streaming_test.cc.o"
  "CMakeFiles/core_test.dir/core/streaming_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
