#!/bin/sh
# End-to-end CLI contract test, registered as the `cli_usage` ctest.
#   1. Strict flags: unknown --flags and a dangling --flag exit 2 with a
#      diagnostic, never run the command.
#   2. Observability: a generate + motifs run with --trace-out/--metrics-out
#      writes a Chrome trace and a metrics JSON whose per-stage counters
#      (pairs computed, KS rejections, values zeroed) are nonzero.
#   3. Columnar storage: convert round-trips CSV through .homets without
#      changing a byte, and the motifs output is byte-identical whichever
#      format feeds it.
#
# Usage: cli_usage_test.sh /path/to/homets_cli
set -eu

cli="${1:?usage: cli_usage_test.sh /path/to/homets_cli}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
fail=0

check() {
    desc="$1"
    shift
    if "$@"; then
        echo "ok: $desc"
    else
        echo "FAIL: $desc" >&2
        fail=1
    fi
}

# --- strict flag handling -------------------------------------------------
rc=0
"$cli" generate --out "$workdir" --bogus 3 >"$workdir/out" 2>"$workdir/err" || rc=$?
check "unknown flag exits 2" test "$rc" -eq 2
check "unknown flag is diagnosed" grep -q 'unknown flag --bogus' "$workdir/err"

rc=0
"$cli" generate --out "$workdir" --seed >"$workdir/out" 2>"$workdir/err" || rc=$?
check "dangling flag exits 2" test "$rc" -eq 2
check "dangling flag is diagnosed" grep -q 'flag --seed expects a value' "$workdir/err"

rc=0
"$cli" frobnicate >"$workdir/out" 2>"$workdir/err" || rc=$?
check "unknown command exits 2" test "$rc" -eq 2

# --- observability outputs ------------------------------------------------
"$cli" generate --out "$workdir" --gateways 3 --weeks 3 --seed 7 \
    >"$workdir/gen.log" 2>"$workdir/gen.err"
check "generate produced traces" test -f "$workdir/gateway_002.csv"

"$cli" motifs --trace-out "$workdir/trace.json" \
    --metrics-out "$workdir/metrics.json" \
    "$workdir"/gateway_*.csv >"$workdir/motifs.log" 2>"$workdir/motifs.err"

check "trace file written" test -s "$workdir/trace.json"
check "trace is Chrome trace_event JSON" \
    grep -q '"traceEvents"' "$workdir/trace.json"
check "trace contains complete events" grep -q '"ph": "X"' "$workdir/trace.json"
check "trace records the mining span" \
    grep -q '"cli.mine_motifs"' "$workdir/trace.json"

check "metrics file written" test -s "$workdir/metrics.json"
check "metrics summary on stderr" grep -q 'metrics summary:' "$workdir/motifs.err"

# A named counter must be present with a nonzero value.
nonzero() {
    grep -q "\"$1\": [1-9]" "$workdir/metrics.json"
}
check "engine pairs computed" nonzero homets.engine.pairs_computed
check "stationarity KS rejections" nonzero homets.stationarity.ks_rejections
check "background values zeroed" nonzero homets.background.values_zeroed
check "io rows parsed" nonzero homets.io.rows_parsed
check "motif windows mined" nonzero homets.motif.windows_mined

# --- columnar convert + byte-identical analysis ---------------------------
mkdir -p "$workdir/col" "$workdir/back"
"$cli" convert --to homets --out "$workdir/col" "$workdir"/gateway_*.csv \
    >"$workdir/convert.log" 2>"$workdir/convert.err"
check "convert wrote columnar traces" test -s "$workdir/col/gateway_002.homets"
check "convert narrates row counts" grep -q ' rows, ' "$workdir/convert.log"

"$cli" convert --to csv --out "$workdir/back" "$workdir/col"/*.homets \
    >"$workdir/back.log" 2>"$workdir/back.err"
for csv in "$workdir"/gateway_*.csv; do
    check "round trip is byte-identical: $(basename "$csv")" \
        cmp -s "$csv" "$workdir/back/$(basename "$csv")"
done

"$cli" motifs "$workdir/col"/*.homets \
    >"$workdir/motifs_col.log" 2>"$workdir/motifs_col.err"
check "motifs output identical across input formats" \
    cmp -s "$workdir/motifs.log" "$workdir/motifs_col.log"

# Forcing the wrong format is a clean failure, not a crash.
rc=0
"$cli" motifs --input-format csv "$workdir/col/gateway_000.homets" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "forced csv on a binary file fails cleanly" test "$rc" -eq 1

rc=0
"$cli" convert --to parquet "$workdir/gateway_000.csv" \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "unknown convert target exits 2" test "$rc" -eq 2

# --- stream subcommand + periodic metrics flushing ------------------------
"$cli" stream "$workdir"/gateway_*.csv \
    >"$workdir/stream_plain.out" 2>"$workdir/stream_plain.err"
check "stream prints a summary" \
    grep -q 'streamed .* minutes of .* gateways into' "$workdir/stream_plain.out"

rc=0
"$cli" stream --metrics-flush-interval-sec 1 "$workdir"/gateway_*.csv \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "flush interval without output file exits 2" test "$rc" -eq 2

"$cli" stream --metrics-flush-out "$workdir/flush.prom" \
    --metrics-flush-interval-sec 1 "$workdir"/gateway_*.csv \
    >"$workdir/stream_flush.out" 2>"$workdir/stream_flush.err"
flushes=$(grep -c '# HOMETS flush seq=' "$workdir/flush.prom" || true)
check "at least two Prometheus flush blocks" test "$flushes" -ge 2
check "flush blocks carry streaming counters" \
    grep -q 'homets_streaming_observations_ingested [1-9]' \
    "$workdir/flush.prom"
check "flusher meters itself" \
    grep -q 'homets_obs_flushes [1-9]' "$workdir/flush.prom"
check "stdout identical with and without flushing" \
    cmp -s "$workdir/stream_plain.out" "$workdir/stream_flush.out"

exit "$fail"
