// Annotated-build smoke: instantiates every thread-safety-annotated type in
// the tree and drives its locked paths once. Registered as the
// `annotation_smoke` ctest (label `lint`) so both compilers keep the
// annotations honest — under Clang with -Wthread-safety (-Werror in
// HOMETS_WERROR builds) a bad annotation fails the *build*; under GCC the
// macros are no-ops and this binary just proves the annotated headers still
// compile and behave.

#include <cstdio>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/profiling.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

// A minimal guarded structure exercising the macro vocabulary directly, so a
// macro definition that stops expanding to a valid attribute breaks here
// first, with a small reproduction.
class Guarded {
 public:
  void Set(int v) HOMETS_EXCLUDES(mu_) {
    homets::MutexLock lock(&mu_);
    SetLocked(v);
  }
  int Get() HOMETS_EXCLUDES(mu_) {
    homets::MutexLock lock(&mu_);
    return value_;
  }

 private:
  void SetLocked(int v) HOMETS_REQUIRES(mu_) { value_ = v; }

  homets::Mutex mu_;
  int value_ HOMETS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  // Direct macro exercise, cross-thread.
  Guarded guarded;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&guarded, t] { guarded.Set(t); });
  }
  for (auto& t : writers) t.join();
  (void)guarded.Get();

  // Annotated production types: registry, trace session, phase timings.
  // Private registry with throwaway names, as in tests — suppressed rather
  // than polluting the canonical catalog in obs/metric_names.h.
  homets::obs::MetricsRegistry registry;
  registry.GetCounter("homets.lint.smoke_counter")  // homets-lint: allow(metric-raw-literal)
      ->Increment();
  registry.GetGauge("homets.lint.smoke_gauge")  // homets-lint: allow(metric-raw-literal)
      ->Set(1);
  const homets::obs::MetricsSnapshot snapshot = registry.Snapshot();
  if (snapshot.counters.size() != 1 || snapshot.gauges.size() != 1) {
    std::fprintf(stderr, "FAIL: registry snapshot incomplete\n");
    return 1;
  }

  homets::obs::TraceSession session;
  homets::core::PhaseTimings timings;
  {
    homets::obs::InstallGlobalTraceSession(&session);
    homets::core::ScopedPhaseTimer timer(&timings, "smoke.phase");
  }
  homets::obs::InstallGlobalTraceSession(nullptr);
  if (session.size() != 1 || timings.TotalNs("smoke.phase") == 0) {
    std::fprintf(stderr, "FAIL: annotated span path did not record\n");
    return 1;
  }

  std::fprintf(stderr, "OK: annotated types compile and run under %s\n",
#if defined(__clang__)
               "Clang (-Wthread-safety active)"
#else
               "a non-Clang compiler (annotations are no-ops)"
#endif
  );
  return 0;
}
