#!/bin/sh
# One-command CI gate: configure, build, then run the lint, lint-arch,
# threads, chaos, chaos-fleet, storage, telemetry and bench-smoke ctest
# tiers — the exact sequence a pre-merge check should run — plus a direct
# linter pass over the tree with per-pass timing. The telemetry tier includes the run-manifest
# schema check (cli_telemetry), so a manifest field drift fails the gate.
# Smoke-tested by the `run_all_gates_smoke` ctest via --dry-run, which prints
# the commands without executing them.
#
# Usage: run_all_gates.sh [--dry-run] [--preset NAME] [REPO_ROOT]
#
#   --dry-run       print each command instead of running it
#   --preset NAME   configure with a CMakePresets.json preset (default: a
#                   plain configure into build-gates/ with HOMETS_WERROR=ON)
#
# Exits nonzero as soon as any stage fails.
set -eu

dry_run=0
preset=""
root=""
while [ "$#" -gt 0 ]; do
    case "$1" in
        --dry-run) dry_run=1 ;;
        --preset)
            shift
            preset="${1:?--preset expects a name}"
            ;;
        -*)
            echo "usage: run_all_gates.sh [--dry-run] [--preset NAME] [REPO_ROOT]" >&2
            exit 2
            ;;
        *) root="$1" ;;
    esac
    shift
done
root="${root:-$(cd "$(dirname "$0")/.." && pwd)}"

run() {
    echo "+ $*"
    if [ "$dry_run" -eq 0 ]; then
        "$@"
    fi
}

if [ -n "$preset" ]; then
    build="$root/build-$preset"
    run cmake -S "$root" --preset "$preset"
else
    build="$root/build-gates"
    run cmake -S "$root" -B "$build" -DHOMETS_WERROR=ON
fi

jobs=$( (nproc || sysctl -n hw.ncpu || echo 2) 2>/dev/null | head -n1 )
run cmake --build "$build" -j "$jobs"
run ctest --test-dir "$build" --output-on-failure -L "lint|lint-arch|threads|chaos|chaos-fleet|storage|telemetry|bench-smoke|prof"

# Architecture tier: run the linter once against the real tree with per-pass
# timing, so the gate log records the layer-DAG verdict and where the lint
# wall-clock goes (lex / text / arch / hygiene / determinism).
run "$build/tools/lint/homets_lint" --root "$root" --timing

# Profiler instrumentation under TSan: the mutex-contention and pool-worker
# hooks are lock-free hot-path writes, so the prof suite gets its own
# ThreadSanitizer pass (the alloc-tally test self-skips there — the
# operator-new replacement is compiled out under sanitizers).
tsan_build="$root/build-gates-tsan"
run cmake -S "$root" -B "$tsan_build" -DHOMETS_SANITIZE=thread
run cmake --build "$tsan_build" -j "$jobs" --target prof_test
run ctest --test-dir "$tsan_build" --output-on-failure -L prof

if [ "$dry_run" -eq 1 ]; then
    echo "DRY RUN: no commands executed"
else
    echo "OK: all gates passed (build: $build)"
fi
