// homets_lint: project-invariant checker for the homets tree.
//
// Enforces the invariants the compiler cannot (see DESIGN.md §7): the
// engine's determinism contract (no wall-clock or libc randomness outside
// common/random), floating-point comparison discipline, the CLI's
// byte-identical stdout contract, include hygiene, a small banned-call list,
// and the metric-name catalog rules that used to live in
// check_metrics_names.sh (which now delegates here).
//
// Scanning is lexical, not semantic: each file is split into two views —
// `code` (comments blanked) and `pure` (comments and string/char literals
// blanked) — and each rule declares which view it matches against, so rule
// tokens inside strings or commented-out code never fire. Violations print
//   <file>:<line>: <rule-id>: <message>
// and the process exits 1 (0 clean, 2 usage/config error). A site can opt
// out of one rule for one line with the suppression comment
//   // homets-lint: allow(<rule-id>[, <rule-id>...])
// either on the offending line or alone on the line directly above it.
//
// Usage:
//   homets_lint [--root DIR] [--config FILE] [--rules id,id,...] [--list-rules]
//
// --root defaults to the current directory and must contain the tree to
// scan; the walker visits src/ bench/ tools/ tests/ and skips build*/ and
// lint_fixtures/ directories. --config points at a JSON file (default
// <root>/tools/homets_lint.json when present) whose "allow_paths" object
// maps rule ids to path substrings that are exempt. --rules restricts the
// run to a comma-separated subset of rule ids.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/status.h"
#include "common/strings.h"

namespace homets::lint {
namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;  ///< path relative to --root
  size_t line = 0;   ///< 1-based
  std::string rule;
  std::string message;
};

// Every rule id the tool knows, in reporting order.
const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> rules = {
      "no-raw-random",    "float-equality",       "no-stdout-in-lib",
      "no-raw-stderr-in-lib",
      "no-cc-include",    "csv-include",          "unsafe-call",
      "metric-name-format",    "metric-name-duplicate",
      "metric-raw-literal",    "metric-dead-constant",
      "discarded-status",      "clock-discipline",
  };
  return rules;
}

// ---------------------------------------------------------------------------
// Source views and suppressions
// ---------------------------------------------------------------------------

/// One scanned file: raw lines plus the two blanked views and per-line
/// suppression sets. Blanking replaces characters with spaces so columns and
/// line numbers stay aligned.
struct FileViews {
  std::vector<std::string> code;  ///< comments blanked, strings kept
  std::vector<std::string> pure;  ///< comments and string/char literals blanked
  /// line (1-based) -> rule ids allowed on that line
  std::map<size_t, std::set<std::string>> allowed;
};

/// Records `// homets-lint: allow(a, b)` for `line`; a comment alone on a
/// line also covers the next line.
void ParseSuppression(const std::string& raw, size_t line, bool comment_only,
                      FileViews* views) {
  static const std::string kTag = "homets-lint:";
  const size_t tag = raw.find(kTag);
  if (tag == std::string::npos) return;
  const size_t open = raw.find("allow(", tag);
  if (open == std::string::npos) return;
  const size_t close = raw.find(')', open);
  if (close == std::string::npos) return;
  const std::string inner =
      raw.substr(open + 6, close - open - 6);
  for (const std::string& part : StrSplit(inner, ',')) {
    const std::string rule{StrTrim(part)};
    if (rule.empty()) continue;
    views->allowed[line].insert(rule);
    if (comment_only) views->allowed[line + 1].insert(rule);
  }
}

/// Lexes `text` into the two views. Handles //, /*…*/, "…", '…' and the
/// common escape sequences; raw string literals are treated as plain strings
/// (good enough for this tree, which has none).
FileViews BuildViews(const std::string& text) {
  FileViews views;
  std::string code_line;
  std::string pure_line;
  std::string raw_line;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool line_had_code = false;
  size_t line_no = 1;

  auto flush_line = [&]() {
    // A comment-only line's suppression covers the next line too.
    const bool comment_only = !line_had_code;
    ParseSuppression(raw_line, line_no, comment_only, &views);
    views.code.push_back(code_line);
    views.pure.push_back(pure_line);
    code_line.clear();
    pure_line.clear();
    raw_line.clear();
    line_had_code = false;
    ++line_no;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // Strings and char literals do not survive a newline in this lexer;
      // multi-line raw strings would, but the tree has none.
      in_string = in_char = false;
      flush_line();
      continue;
    }
    raw_line += c;
    if (in_block_comment) {
      code_line += ' ';
      pure_line += ' ';
      if (c == '*' && next == '/') {
        code_line += ' ';
        pure_line += ' ';
        raw_line += next;
        ++i;
        in_block_comment = false;
      }
      continue;
    }
    if (in_string || in_char) {
      code_line += c;
      pure_line += ' ';
      if (c == '\\' && next != '\0' && next != '\n') {
        code_line += next;
        pure_line += ' ';
        raw_line += next;
        ++i;
        continue;
      }
      if ((in_string && c == '"') || (in_char && c == '\'')) {
        in_string = in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') {
      // Line comment: blank the remainder in both views.
      const size_t eol = text.find('\n', i);
      const size_t end = eol == std::string::npos ? text.size() : eol;
      for (size_t j = i; j < end; ++j) {
        code_line += ' ';
        pure_line += ' ';
        if (j > i) raw_line += text[j];
      }
      i = end - 1;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      code_line += ' ';
      pure_line += ' ';
      code_line += ' ';
      pure_line += ' ';
      raw_line += next;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code_line += c;
      pure_line += ' ';
      line_had_code = true;
      continue;
    }
    if (c == '\'') {
      // Heuristic: a quote directly after an identifier/digit is a digit
      // separator (1'000'000), not a char literal.
      const char prev = raw_line.size() >= 2 ? raw_line[raw_line.size() - 2] : '\0';
      if (std::isalnum(static_cast<unsigned char>(prev))) {
        code_line += c;
        pure_line += c;
        continue;
      }
      in_char = true;
      code_line += c;
      pure_line += ' ';
      line_had_code = true;
      continue;
    }
    code_line += c;
    pure_line += c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_had_code = true;
  }
  flush_line();
  return views;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Finds `token` in `line` starting at `from`, requiring that the character
/// before the match is not an identifier character (so `snprintf` never
/// matches a search for `printf`). `::` and `.` prefixes count as
/// non-identifier, so qualified calls match.
size_t FindWord(const std::string& line, const std::string& token,
                size_t from = 0) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    if (pos == 0 || !IsWordChar(line[pos - 1])) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

// ---------------------------------------------------------------------------
// Config
// ---------------------------------------------------------------------------

struct LintConfig {
  /// rule id -> path substrings (relative, '/'-separated) exempt from it.
  std::map<std::string, std::vector<std::string>> allow_paths;
};

Result<LintConfig> LoadConfig(const std::string& path) {
  LintConfig config;
  HOMETS_ASSIGN_OR_RETURN(const JsonValue doc, ReadJsonFile(path));
  const JsonValue* allow = doc.Find("allow_paths");
  if (allow == nullptr) return config;
  if (!allow->is_object()) {
    return Status::InvalidArgument(path + ": allow_paths must be an object");
  }
  for (const auto& [rule, paths] : allow->object_items()) {
    if (std::find(AllRules().begin(), AllRules().end(), rule) ==
        AllRules().end()) {
      return Status::InvalidArgument(path + ": unknown rule id '" + rule +
                                     "' in allow_paths");
    }
    if (!paths.is_array()) {
      return Status::InvalidArgument(path + ": allow_paths." + rule +
                                     " must be an array of path substrings");
    }
    for (const JsonValue& entry : paths.array_items()) {
      if (!entry.is_string()) {
        return Status::InvalidArgument(path + ": allow_paths." + rule +
                                       " entries must be strings");
      }
      config.allow_paths[rule].push_back(entry.string_value());
    }
  }
  return config;
}

// ---------------------------------------------------------------------------
// Linter
// ---------------------------------------------------------------------------

/// homets.<layer>.<name>, both segments lower_snake_case starting with a
/// letter.
bool MatchesNameScheme(const std::string& name) {
  const std::vector<std::string> parts = StrSplit(name, '.');
  if (parts.size() != 3 || parts[0] != "homets") return false;
  for (size_t p = 1; p < 3; ++p) {
    const std::string& seg = parts[p];
    if (seg.empty() || !std::islower(static_cast<unsigned char>(seg[0]))) {
      return false;
    }
    for (const char c : seg) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
      if (!ok) return false;
    }
  }
  return true;
}

class Linter {
 public:
  Linter(LintConfig config, std::set<std::string> enabled)
      : config_(std::move(config)), enabled_(std::move(enabled)) {}

  void ScanFile(const std::string& rel_path, const std::string& text);
  /// Cross-file rules; call after every ScanFile.
  void Finish();

  const std::vector<Violation>& violations() const { return violations_; }
  size_t files_scanned() const { return files_scanned_; }
  size_t metric_names() const { return metric_names_; }

 private:
  bool RuleEnabled(const std::string& rule, const std::string& rel_path) const {
    if (!enabled_.empty() && enabled_.count(rule) == 0) return false;
    const auto it = config_.allow_paths.find(rule);
    if (it != config_.allow_paths.end()) {
      for (const std::string& sub : it->second) {
        if (rel_path.find(sub) != std::string::npos) return false;
      }
    }
    return true;
  }

  void Report(const FileViews& views, const std::string& rel_path, size_t line,
              const std::string& rule, std::string message) {
    const auto it = views.allowed.find(line);
    if (it != views.allowed.end() && it->second.count(rule) > 0) return;
    violations_.push_back({rel_path, line, rule, std::move(message)});
  }

  void CheckRandomness(const FileViews& views, const std::string& rel_path);
  void CheckFloatEquality(const FileViews& views, const std::string& rel_path);
  void CheckStdout(const FileViews& views, const std::string& rel_path);
  void CheckStderr(const FileViews& views, const std::string& rel_path);
  void CheckCcInclude(const FileViews& views, const std::string& rel_path);
  void CheckCsvInclude(const FileViews& views, const std::string& rel_path);
  void CheckClockDiscipline(const FileViews& views,
                            const std::string& rel_path);
  void CheckUnsafeCalls(const FileViews& views, const std::string& rel_path);
  void CheckMetricCatalog(const FileViews& views, const std::string& rel_path);
  void CheckMetricRawLiterals(const FileViews& views,
                              const std::string& rel_path);
  void CollectMetricReferences(const FileViews& views,
                               const std::string& rel_path);
  void CollectStatusDecls(const FileViews& views);
  void CollectStatusCallSites(const FileViews& views,
                              const std::string& rel_path);

  LintConfig config_;
  std::set<std::string> enabled_;
  std::vector<Violation> violations_;
  size_t files_scanned_ = 0;
  size_t metric_names_ = 0;

  /// metric-dead-constant state: k-constants declared in metric_names.h and
  /// the set referenced anywhere else, resolved in Finish().
  std::vector<std::pair<std::string, size_t>> metric_constants_;
  std::set<std::string> metric_references_;
  std::string metric_header_path_;
  /// The views of metric_names.h, kept so Finish() can honor suppressions.
  FileViews metric_header_views_;

  /// discarded-status state: every function name declared anywhere with a
  /// Status or Result<…> return, plus statement-start call sites whose
  /// result is dropped. A call site only becomes a violation in Finish(),
  /// once all declarations have been seen (files scan in path order, so a
  /// caller may precede the header that declares its callee).
  struct DroppedCall {
    std::string file;
    size_t line = 0;
    std::string name;
  };
  std::set<std::string> status_returning_;
  std::vector<DroppedCall> dropped_calls_;
};

void Linter::CheckRandomness(const FileViews& views,
                             const std::string& rel_path) {
  if (!RuleEnabled("no-raw-random", rel_path)) return;
  // common/random wraps the only sanctioned generators.
  if (rel_path.find("src/common/random") != std::string::npos) return;
  static const std::vector<std::string> kTokens = {
      "rand(", "srand(", "random_device"};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (const std::string& token : kTokens) {
      if (FindWord(line, token) != std::string::npos) {
        Report(views, rel_path, i + 1, "no-raw-random",
               "non-deterministic source '" + token +
                   "' — use homets::Rng (common/random.h); engine results "
                   "must be bit-identical across runs and thread counts");
        break;
      }
    }
    // Wall-clock seeds: time(), time(NULL), time(nullptr), time(0).
    size_t pos = FindWord(line, "time", 0);
    while (pos != std::string::npos) {
      size_t j = pos + 4;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j < line.size() && line[j] == '(') {
        size_t k = j + 1;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k]))) {
          ++k;
        }
        std::string arg;
        while (k < line.size() && line[k] != ')' &&
               !std::isspace(static_cast<unsigned char>(line[k]))) {
          arg += line[k++];
        }
        if (k < line.size() && (arg.empty() || arg == "NULL" ||
                                arg == "nullptr" || arg == "0")) {
          Report(views, rel_path, i + 1, "no-raw-random",
                 "wall-clock seed 'time(" + arg +
                     ")' — derive seeds from --seed flags or fixed "
                     "constants, never the clock");
        }
      }
      pos = FindWord(line, "time", pos + 4);
    }
  }
}

void Linter::CheckFloatEquality(const FileViews& views,
                                const std::string& rel_path) {
  if (!RuleEnabled("float-equality", rel_path)) return;
  // Parses a float literal adjacent to position `pos` in `line`, scanning
  // forward (dir=+1) or backward (dir=-1). Returns the literal text, empty
  // when the adjacent operand is not a float literal.
  const auto literal_at = [](const std::string& line, size_t pos, int dir) {
    auto is_lit_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
             c == 'e' || c == 'E' || c == 'f' || c == 'F';
    };
    std::string lit;
    if (dir > 0) {
      size_t i = pos;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i < line.size() && line[i] == '-') lit += line[i++];
      while (i < line.size()) {
        if (is_lit_char(line[i])) {
          lit += line[i++];
        } else if ((line[i] == '+' || line[i] == '-') && !lit.empty() &&
                   (lit.back() == 'e' || lit.back() == 'E')) {
          lit += line[i++];  // exponent sign, e.g. 1e-9
        } else {
          break;
        }
      }
      if (i < line.size() && IsWordChar(line[i])) return std::string();
    } else {
      size_t i = pos;
      while (i > 0 && std::isspace(static_cast<unsigned char>(line[i - 1]))) {
        --i;
      }
      size_t end = i;
      while (i > 0) {
        if (is_lit_char(line[i - 1])) {
          --i;
        } else if ((line[i - 1] == '+' || line[i - 1] == '-') && i >= 2 &&
                   (line[i - 2] == 'e' || line[i - 2] == 'E')) {
          i -= 2;  // exponent sign, e.g. 1e-9
        } else {
          break;
        }
      }
      if (i > 0 && IsWordChar(line[i - 1])) return std::string();
      lit = line.substr(i, end - i);
    }
    // A float literal must contain a '.' or an exponent; bare integers are
    // fine to compare exactly.
    if (lit.find('.') == std::string::npos &&
        lit.find('e') == std::string::npos &&
        lit.find('E') == std::string::npos) {
      return std::string();
    }
    if (lit.empty() || lit == "." || lit == "-") return std::string();
    return lit;
  };
  const auto is_zero = [](const std::string& lit) {
    char* end = nullptr;
    const double v = std::strtod(lit.c_str(), &end);
    return end != lit.c_str() && v == 0.0;  // homets-lint: allow(float-equality)
  };
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (size_t pos = 0; (pos = line.find('=', pos)) != std::string::npos;
         ++pos) {
      // Only bare == / != count; <=, >=, =, === etc. do not.
      std::string op;
      size_t lhs_end = 0;
      size_t rhs_begin = 0;
      if (pos + 1 < line.size() && line[pos + 1] == '=' &&
          (pos == 0 || (line[pos - 1] != '=' && line[pos - 1] != '<' &&
                        line[pos - 1] != '>' && line[pos - 1] != '!')) &&
          (pos + 2 >= line.size() || line[pos + 2] != '=')) {
        op = "==";
        lhs_end = pos;
        rhs_begin = pos + 2;
      } else if (pos > 0 && line[pos - 1] == '!' &&
                 (pos + 1 >= line.size() || line[pos + 1] != '=')) {
        op = "!=";
        lhs_end = pos - 1;
        rhs_begin = pos + 1;
      } else {
        continue;
      }
      const std::string rhs = literal_at(line, rhs_begin, +1);
      const std::string lhs = literal_at(line, lhs_end, -1);
      const std::string& lit = rhs.empty() ? lhs : rhs;
      if (lit.empty()) continue;
      // Exact-zero guards (x == 0.0 before dividing) are IEEE-exact and
      // idiomatic; every other literal needs an epsilon.
      if (is_zero(lit)) continue;
      Report(views, rel_path, i + 1, "float-equality",
             "naked floating-point " + op + " against " + lit +
                 " — compare via an epsilon helper (correlation/KS "
                 "thresholds are not exact in binary floating point)");
      pos = rhs_begin;
    }
  }
}

void Linter::CheckStdout(const FileViews& views, const std::string& rel_path) {
  if (!RuleEnabled("no-stdout-in-lib", rel_path)) return;
  // Library code only: src/. CLIs, benches, tools and tests own their stdout.
  if (rel_path.rfind("src/", 0) != 0) return;
  static const std::vector<std::string> kTokens = {"cout", "printf(", "puts("};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    for (const std::string& token : kTokens) {
      if (FindWord(views.pure[i], token) != std::string::npos) {
        Report(views, rel_path, i + 1, "no-stdout-in-lib",
               "stdout write ('" + token +
                   "') in library code — stdout is a byte-exact CLI "
                   "contract (cli_usage ctest); return data or use stderr");
        break;
      }
    }
  }
}

void Linter::CheckStderr(const FileViews& views, const std::string& rel_path) {
  if (!RuleEnabled("no-raw-stderr-in-lib", rel_path)) return;
  // Library code only: src/. The structured logger (obs/log) owns the
  // process's single human-readable stderr sink; library narration goes
  // through it so fleet runs stay machine-parseable (allow_paths exempts
  // the sink itself).
  if (rel_path.rfind("src/", 0) != 0) return;
  static const std::vector<std::string> kTokens = {"cerr", "stderr"};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (const std::string& token : kTokens) {
      // Whole-word: `stderr_level_` must not match a search for `stderr`.
      size_t pos = FindWord(line, token);
      while (pos != std::string::npos &&
             pos + token.size() < line.size() &&
             IsWordChar(line[pos + token.size()])) {
        pos = FindWord(line, token, pos + token.size());
      }
      if (pos != std::string::npos) {
        Report(views, rel_path, i + 1, "no-raw-stderr-in-lib",
               "raw stderr write ('" + token +
                   "') in library code — narrate through the structured "
                   "logger (obs/log.h: LogWarn/LogError) so diagnostics "
                   "stay rate-limited and machine-parseable");
        break;
      }
    }
  }
}

void Linter::CheckCcInclude(const FileViews& views,
                            const std::string& rel_path) {
  if (!RuleEnabled("no-cc-include", rel_path)) return;
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    const size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    if (line.find("include", hash) == std::string::npos) continue;
    const size_t open = line.find_first_of("\"<", hash);
    if (open == std::string::npos) continue;
    const size_t close =
        line.find_first_of("\">", open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    if (target.size() > 3 &&
        target.compare(target.size() - 3, 3, ".cc") == 0) {
      Report(views, rel_path, i + 1, "no-cc-include",
             "#include of implementation file '" + target +
                 "' — include the header and let the build system link it");
    }
  }
}

void Linter::CheckCsvInclude(const FileViews& views,
                             const std::string& rel_path) {
  if (!RuleEnabled("csv-include", rel_path)) return;
  // The CSV reader is the ingest edge: only the io layer itself, the
  // columnar storage layer and tests may talk to it directly — everything
  // else reads traces through io/dataset.h (DatasetReader).
  if (rel_path.rfind("src/io/", 0) == 0 ||
      rel_path.rfind("src/storage/", 0) == 0 ||
      rel_path.rfind("tests/", 0) == 0) {
    return;
  }
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    const size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    if (line.find("include", hash) == std::string::npos) continue;
    const size_t open = line.find_first_of("\"<", hash);
    if (open == std::string::npos) continue;
    const size_t close = line.find_first_of("\">", open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    if (target == "io/csv.h") {
      Report(views, rel_path, i + 1, "csv-include",
             "direct #include of 'io/csv.h' outside src/io, src/storage and "
             "tests/ — read traces through io/dataset.h (DatasetReader)");
    }
  }
}

void Linter::CheckClockDiscipline(const FileViews& views,
                                  const std::string& rel_path) {
  if (!RuleEnabled("clock-discipline", rel_path)) return;
  // Wall-clock reads are an observability concern: timestamps flow through
  // obs (Logger::NowUs, StageTimer, CaptureRusage) and durations through
  // steady_clock. Only the src/ engine layers are in scope — src/obs owns
  // the clock, and src/common hosts the low-level timing the profiler and
  // pool instrumentation write through. bench/, tools/ and tests/ time
  // whatever they like.
  if (rel_path.rfind("src/", 0) != 0 ||
      rel_path.rfind("src/obs/", 0) == 0 ||
      rel_path.rfind("src/common/", 0) == 0) {
    return;
  }
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    if (FindWord(line, "system_clock") != std::string::npos) {
      Report(views, rel_path, i + 1, "clock-discipline",
             "std::chrono::system_clock use outside src/obs and src/common "
             "— wall-clock timestamps belong to the obs layer (Logger::NowUs"
             " / StageTimer); use steady_clock for durations");
    }
    if (FindWord(line, "clock_gettime") != std::string::npos) {
      Report(views, rel_path, i + 1, "clock-discipline",
             "raw clock_gettime call outside src/obs and src/common — "
             "wall-clock timestamps belong to the obs layer (Logger::NowUs "
             "/ StageTimer); use steady_clock for durations");
    }
  }
}

void Linter::CheckUnsafeCalls(const FileViews& views,
                              const std::string& rel_path) {
  if (!RuleEnabled("unsafe-call", rel_path)) return;
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"sprintf(", "use snprintf with an explicit size"},
      {"strtok(", "not reentrant; use homets::StrSplit"},
      {"gets(", "unbounded read; removed from the language"},
  };
  for (size_t i = 0; i < views.pure.size(); ++i) {
    for (const auto& [token, why] : kBanned) {
      if (FindWord(views.pure[i], token) != std::string::npos) {
        Report(views, rel_path, i + 1, "unsafe-call",
               "banned call '" + token + "' — " + why);
      }
    }
  }
}

void Linter::CheckMetricCatalog(const FileViews& views,
                                const std::string& rel_path) {
  // Only the canonical catalog header is subject to name-format rules.
  if (rel_path.find("metric_names.h") == std::string::npos) return;
  metric_header_path_ = rel_path;
  metric_header_views_.allowed = views.allowed;
  const bool check_format = RuleEnabled("metric-name-format", rel_path);
  const bool check_dupes = RuleEnabled("metric-name-duplicate", rel_path);
  std::map<std::string, size_t> first_seen;
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    // Collect "homets.…" string literals from the code view (strings kept).
    size_t open = line.find('"');
    while (open != std::string::npos) {
      const size_t close = line.find('"', open + 1);
      if (close == std::string::npos) break;
      const std::string name = line.substr(open + 1, close - open - 1);
      if (name.rfind("homets.", 0) == 0) {
        ++metric_names_;
        if (check_format && !MatchesNameScheme(name)) {
          Report(views, rel_path, i + 1, "metric-name-format",
                 "'" + name +
                     "' does not match homets.<layer>.<name> with "
                     "lower_snake_case segments");
        }
        if (check_dupes) {
          const auto [it, inserted] = first_seen.emplace(name, i + 1);
          if (!inserted) {
            Report(views, rel_path, i + 1, "metric-name-duplicate",
                   "'" + name + "' already declared at line " +
                       std::to_string(it->second));
          }
        }
      }
      open = line.find('"', close + 1);
    }
    // Collect declared k-constants for the dead-constant rule.
    const size_t kpos = line.find("constexpr std::string_view k");
    if (kpos != std::string::npos) {
      size_t start = line.find(" k", kpos);
      if (start != std::string::npos) {
        ++start;  // at 'k'
        std::string constant;
        while (start < line.size() && IsWordChar(line[start])) {
          constant += line[start++];
        }
        if (constant.size() > 1) {
          metric_constants_.emplace_back(constant, i + 1);
        }
      }
    }
  }
}

void Linter::CheckMetricRawLiterals(const FileViews& views,
                                    const std::string& rel_path) {
  if (!RuleEnabled("metric-raw-literal", rel_path)) return;
  // Tests are exempt: they exercise private registries with throwaway names.
  if (rel_path.rfind("tests/", 0) == 0) return;
  if (rel_path.find("metric_names.h") != std::string::npos) return;
  static const std::vector<std::string> kRegistrars = {
      // Split so this very file never matches its own rule table.
      std::string("GetCounter") + "(", std::string("GetGauge") + "(",
      std::string("GetHistogram") + "("};
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    bool registrar = false;
    for (const std::string& token : kRegistrars) {
      if (FindWord(line, token) != std::string::npos) {
        registrar = true;
        break;
      }
    }
    if (!registrar) continue;
    if (line.find(std::string("\"") + "homets.") != std::string::npos) {
      Report(views, rel_path, i + 1, "metric-raw-literal",
             "raw metric-name literal at a registration site — use the "
             "constants in obs/metric_names.h");
    }
  }
}

void Linter::CollectMetricReferences(const FileViews& views,
                                     const std::string& rel_path) {
  if (rel_path.find("metric_names.h") != std::string::npos) return;
  for (const std::string& line : views.code) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != 'k') continue;
      if (i > 0 && IsWordChar(line[i - 1])) continue;
      std::string word;
      size_t j = i;
      while (j < line.size() && IsWordChar(line[j])) word += line[j++];
      if (word.size() > 1 &&
          std::isupper(static_cast<unsigned char>(word[1]))) {
        metric_references_.insert(word);
      }
      i = j;
    }
  }
}

/// Harvests names of functions declared to return Status or Result<…> from
/// the pure view: `Status Name(` and `Result<…> Name(`. Names are collected
/// tree-wide (not per class), so an unchecked call to any same-named
/// overload is flagged — the conservative reading.
void Linter::CollectStatusDecls(const FileViews& views) {
  const auto word_ends_at = [](const std::string& line, size_t pos,
                               size_t len) {
    return pos + len >= line.size() || !IsWordChar(line[pos + len]);
  };
  const auto harvest_name_at = [this](const std::string& line, size_t pos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < line.size() && IsWordChar(line[pos])) name += line[pos++];
    if (!name.empty() && pos < line.size() && line[pos] == '(' &&
        !std::isdigit(static_cast<unsigned char>(name[0]))) {
      status_returning_.insert(name);
    }
  };
  for (const std::string& line : views.pure) {
    for (size_t pos = FindWord(line, "Status"); pos != std::string::npos;
         pos = FindWord(line, "Status", pos + 6)) {
      if (word_ends_at(line, pos, 6)) harvest_name_at(line, pos + 6);
    }
    for (size_t pos = FindWord(line, "Result"); pos != std::string::npos;
         pos = FindWord(line, "Result", pos + 6)) {
      size_t j = pos + 6;
      if (j >= line.size() || line[j] != '<') continue;
      int depth = 0;
      while (j < line.size()) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>' && --depth == 0) break;
        ++j;
      }
      // `Result<…>` split across lines never declares a one-line name.
      if (j < line.size() && depth == 0) harvest_name_at(line, j + 1);
    }
  }
}

/// Statement-start calls whose value is dropped: an identifier chain
/// (`a::b`, `a.b`, `a->b`) opening a call directly after `;`, `{`, `}` or
/// `:` — i.e. not returned, assigned, wrapped in a macro, or part of a
/// larger expression. Matched against the declaration set in Finish().
void Linter::CollectStatusCallSites(const FileViews& views,
                                    const std::string& rel_path) {
  if (!RuleEnabled("discarded-status", rel_path)) return;
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",    "switch", "return", "case",
      "else",   "do",     "new",    "delete", "sizeof", "throw",
      "catch",  "goto",   "using",  "namespace", "operator",
      "static_assert", "co_return", "co_await", "co_yield"};
  char prev = ';';  // the start of a file is a statement boundary
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    size_t col = 0;
    while (col < line.size()) {
      const char c = line[col];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++col;
        continue;
      }
      // ':' is deliberately not a boundary: a ternary's second arm wrapped
      // onto its own line (`: Status::OK();`) is indistinguishable from a
      // case label here, and the former is far more common in this tree.
      const bool boundary = prev == ';' || prev == '{' || prev == '}';
      if (!IsWordChar(c) || std::isdigit(static_cast<unsigned char>(c))) {
        prev = c;
        ++col;
        continue;
      }
      // Always consume the whole identifier chain — char-by-char skipping
      // would leave prev on a '::' separator and fake a label boundary.
      // `last` is the called name.
      size_t j = col;
      std::string first;
      std::string last;
      while (j < line.size() && IsWordChar(line[j])) {
        std::string word;
        while (j < line.size() && IsWordChar(line[j])) word += line[j++];
        if (first.empty()) first = word;
        last = word;
        if (j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':') {
          j += 2;
        } else if (j + 1 < line.size() && line[j] == '-' &&
                   line[j + 1] == '>') {
          j += 2;
        } else if (j < line.size() && line[j] == '.') {
          ++j;
        } else {
          break;
        }
      }
      if (boundary && j < line.size() && line[j] == '(' &&
          kKeywords.count(first) == 0 && kKeywords.count(last) == 0) {
        const auto it = views.allowed.find(i + 1);
        const bool suppressed =
            it != views.allowed.end() && it->second.count("discarded-status");
        if (!suppressed) {
          dropped_calls_.push_back(DroppedCall{rel_path, i + 1, last});
        }
      }
      prev = line[j > col ? j - 1 : col];
      col = j > col ? j : col + 1;
    }
  }
}

void Linter::Finish() {
  const bool enabled =
      !metric_header_path_.empty() &&
      RuleEnabled("metric-dead-constant", metric_header_path_);
  if (enabled) {
    for (const auto& [constant, line] : metric_constants_) {
      if (metric_references_.count(constant) > 0) continue;
      Report(metric_header_views_, metric_header_path_, line,
             "metric-dead-constant",
             constant +
                 " is declared in metric_names.h but referenced nowhere in "
                 "src/, tools/, bench/ or tests/");
    }
  }
  // discarded-status: suppressions and path exemptions were applied at
  // collection time; what remains only needs the declaration set.
  for (const DroppedCall& call : dropped_calls_) {
    if (status_returning_.count(call.name) == 0) continue;
    violations_.push_back(
        {call.file, call.line, "discarded-status",
         "result of '" + call.name +
             "' is discarded — it returns Status/Result; wrap the call in "
             "HOMETS_RETURN_IF_ERROR or inspect .ok()"});
  }
}

void Linter::ScanFile(const std::string& rel_path, const std::string& text) {
  ++files_scanned_;
  const FileViews views = BuildViews(text);
  CheckRandomness(views, rel_path);
  CheckFloatEquality(views, rel_path);
  CheckStdout(views, rel_path);
  CheckStderr(views, rel_path);
  CheckCcInclude(views, rel_path);
  CheckCsvInclude(views, rel_path);
  CheckClockDiscipline(views, rel_path);
  CheckUnsafeCalls(views, rel_path);
  CheckMetricCatalog(views, rel_path);
  CheckMetricRawLiterals(views, rel_path);
  CollectMetricReferences(views, rel_path);
  CollectStatusDecls(views);
  CollectStatusCallSites(views, rel_path);
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool ShouldSkipDir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h";
}

/// Collects .cc/.h files under root/{src,bench,tools,tests}, sorted so the
/// report order is deterministic.
std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* sub : {"src", "bench", "tools", "tests"}) {
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec);
    const fs::recursive_directory_iterator end;
    while (it != end) {
      const fs::directory_entry& entry = *it;
      if (entry.is_directory(ec)) {
        if (ShouldSkipDir(entry.path().filename().string())) {
          it.disable_recursion_pending();
        }
      } else if (entry.is_regular_file(ec) && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
      it.increment(ec);
      if (ec) break;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int Usage(FILE* out) {
  std::fputs(
      "usage: homets_lint [--root DIR] [--config FILE] [--rules id,...] "
      "[--list-rules]\n"
      "Scans DIR/{src,bench,tools,tests} for project-invariant violations\n"
      "and prints 'file:line: rule-id: message' per hit; exits 1 when any\n"
      "are found, 2 on usage/config errors. Suppress one line with\n"
      "'// homets-lint: allow(rule-id)'.\n",
      out);
  return 2;
}

int Run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (std::find(args.begin(), args.end(), "--help") != args.end()) {
    Usage(stdout);
    return 0;
  }
  // Boolean flag, handled before the strict value-carrying parser.
  const auto list_it = std::find(args.begin(), args.end(), "--list-rules");
  if (list_it != args.end()) {
    for (const std::string& rule : AllRules()) {
      std::fprintf(stdout, "%s\n", rule.c_str());
    }
    return 0;
  }
  const Result<ParsedArgs> parsed =
      ParseFlags(args, {"root", "config", "rules"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "homets_lint: %s\n",
                 parsed.status().message().c_str());
    return Usage(stderr);
  }
  if (!parsed->positional.empty()) {
    std::fprintf(stderr, "homets_lint: unexpected positional argument '%s'\n",
                 parsed->positional.front().c_str());
    return Usage(stderr);
  }

  const fs::path root = parsed->GetString("root", ".");
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "homets_lint: --root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  std::set<std::string> enabled;
  if (parsed->Has("rules")) {
    for (const std::string& part :
         StrSplit(parsed->GetString("rules"), ',')) {
      const std::string rule{StrTrim(part)};
      if (rule.empty()) continue;
      if (std::find(AllRules().begin(), AllRules().end(), rule) ==
          AllRules().end()) {
        std::fprintf(stderr, "homets_lint: unknown rule id '%s'\n",
                     rule.c_str());
        return 2;
      }
      enabled.insert(rule);
    }
  }

  LintConfig config;
  std::string config_path = parsed->GetString("config");
  if (config_path.empty()) {
    const fs::path implicit = root / "tools" / "homets_lint.json";
    if (fs::is_regular_file(implicit, ec)) config_path = implicit.string();
  }
  if (!config_path.empty()) {
    Result<LintConfig> loaded = LoadConfig(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "homets_lint: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    config = std::move(loaded).value();
  }

  Linter linter(std::move(config), std::move(enabled));
  for (const fs::path& path : CollectFiles(root)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "homets_lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string rel =
        fs::relative(path, root, ec).generic_string();
    linter.ScanFile(ec ? path.generic_string() : rel, text.str());
  }
  linter.Finish();  // homets-lint: allow(discarded-status) — returns void

  for (const Violation& v : linter.violations()) {
    std::fprintf(stdout, "%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!linter.violations().empty()) {
    std::fprintf(stderr, "homets_lint: %zu violation(s) in %zu file(s)\n",
                 linter.violations().size(), linter.files_scanned());
    return 1;
  }
  std::fprintf(stdout, "OK: %zu files scanned, %zu metric names conform\n",
               linter.files_scanned(), linter.metric_names());
  return 0;
}

}  // namespace
}  // namespace homets::lint

int main(int argc, char** argv) { return homets::lint::Run(argc, argv); }
