#!/bin/sh
# Advisory formatting check: clang-format --dry-run --Werror over the tree,
# against the committed .clang-format. Registered as the `clang_format_check`
# ctest under the `lint` label; exits 0 with a SKIP line when clang-format is
# not installed (the CI container is GCC-only), and — being advisory — exits
# 0 even on drift unless HOMETS_FORMAT_REQUIRED=1. The point is a visible
# signal in the ctest log, not a merge blocker, because the tree predates the
# formatting contract.
#
# Usage: run_clang_format_check.sh [REPO_ROOT]
set -eu

root="${1:-$(dirname "$0")/..}"
required="${HOMETS_FORMAT_REQUIRED:-0}"

if ! command -v clang-format >/dev/null 2>&1; then
    echo "SKIP: clang-format not installed"
    exit 0
fi

files=$(find "$root/src" "$root/tools" "$root/bench" "$root/tests" \
    -name '*.cc' -o -name '*.h' | grep -v lint_fixtures | sort)

drift=0
for file in $files; do
    clang-format --dry-run --Werror "$file" >/dev/null 2>&1 || drift=$((drift + 1))
done

total=$(echo "$files" | wc -l | tr -d ' ')
if [ "$drift" -ne 0 ]; then
    echo "ADVISORY: $drift of $total files differ from .clang-format"
    [ "$required" = "1" ] && exit 1
    exit 0
fi
echo "OK: $total files match .clang-format"
