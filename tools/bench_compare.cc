// bench_compare: diff two BENCH_pipeline.json artifacts and fail on
// regressions.
//
//   bench_compare BASELINE CANDIDATE [--threshold-pct 10] [--field seconds]
//
// Entries are matched by (stage, size). A candidate entry whose `--field`
// value exceeds the baseline by more than `--threshold-pct` percent is a
// regression. For higher-is-better fields (units_per_sec,
// parallel_efficiency) the direction flips: a *decrease* past the threshold
// regresses. Stage-set changes are informational, not failures: a
// (stage, size) pair missing from the candidate or new in it is printed but
// never fails the diff — harnesses add and retire stages as the pipeline
// evolves, and the gate's job is catching per-stage slowdowns, not pinning
// the stage list. Files with different schema/schema_version are refused
// outright — a schema bump means the fields are not comparable.
//
// Exit codes: 0 no regressions, 1 at least one regression, 2 usage or
// artifact error. This is the binary behind the opt-in `bench-gate` ctest
// (see tools/bench_gate.sh).
#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/flags.h"
#include "common/json.h"
#include "common/status.h"
#include "common/strings.h"

namespace homets {
namespace {

struct BenchDoc {
  std::string schema;
  double schema_version = 0;
  // (stage, size) -> the entry's object node, in file order.
  std::vector<std::pair<std::pair<std::string, std::string>, const JsonValue*>>
      entries;
};

// Fields where larger is better (rates, efficiencies): the regression
// direction flips for these.
bool HigherIsBetter(const std::string& field) {
  return field == "units_per_sec" || field == "parallel_efficiency";
}

// Fields a stage may legitimately omit.
bool OptionalField(const std::string& field) {
  return field == "parallel_efficiency";
}

Result<BenchDoc> LoadDoc(const std::string& path, const JsonValue& root) {
  if (!root.is_object()) {
    return Status::InvalidArgument(
        StrFormat("%s: top level is not a JSON object", path.c_str()));
  }
  BenchDoc doc;
  doc.schema = root.StringOr("schema", "");
  doc.schema_version = root.NumberOr("schema_version", 0);
  const JsonValue* entries = root.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument(
        StrFormat("%s: missing \"entries\" array", path.c_str()));
  }
  for (const JsonValue& entry : entries->array_items()) {
    const std::string stage = entry.StringOr("stage", "");
    const std::string size = entry.StringOr("size", "");
    if (stage.empty()) {
      return Status::InvalidArgument(
          StrFormat("%s: entry without a \"stage\" name", path.c_str()));
    }
    doc.entries.push_back({{stage, size}, &entry});
  }
  return doc;
}

int Run(const ParsedArgs& args) {
  const std::string& baseline_path = args.positional[0];
  const std::string& candidate_path = args.positional[1];
  const std::string field = args.GetString("field", "seconds");
  double threshold_pct = 10.0;
  if (args.Has("threshold-pct")) {
    char* end = nullptr;
    const std::string raw = args.GetString("threshold-pct");
    threshold_pct = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0' || threshold_pct < 0) {
      std::fprintf(stderr, "bench_compare: bad --threshold-pct %s\n",
                   raw.c_str());
      return 2;
    }
  }

  BenchDoc docs[2];
  JsonValue roots[2];  // keeps the nodes docs[i].entries point into alive
  const std::string* paths[2] = {&baseline_path, &candidate_path};
  for (int i = 0; i < 2; ++i) {
    auto parsed = ReadJsonFile(*paths[i]);
    if (!parsed.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   parsed.status().message().c_str());
      return 2;
    }
    roots[i] = std::move(parsed).value();
    auto doc = LoadDoc(*paths[i], roots[i]);
    if (!doc.ok()) {
      std::fprintf(stderr, "bench_compare: %s\n",
                   doc.status().message().c_str());
      return 2;
    }
    docs[i] = std::move(doc).value();
  }
  if (docs[0].schema != docs[1].schema ||
      docs[0].schema_version != docs[1].schema_version) {
    std::fprintf(stderr,
                 "bench_compare: schema mismatch (%s v%g vs %s v%g); "
                 "refusing to diff across schema versions\n",
                 docs[0].schema.c_str(), docs[0].schema_version,
                 docs[1].schema.c_str(), docs[1].schema_version);
    if (docs[0].schema == docs[1].schema &&
        std::min(docs[0].schema_version, docs[1].schema_version) == 2 &&
        std::max(docs[0].schema_version, docs[1].schema_version) == 3) {
      std::fprintf(stderr,
                   "bench_compare: hint: pipeline schema v3 added per-stage "
                   "cpu_seconds/peak_rss_bytes/parallel_efficiency; "
                   "regenerate the baseline with perf_pipeline "
                   "--pipeline_json\n");
    }
    return 2;
  }

  std::map<std::pair<std::string, std::string>, const JsonValue*> candidate;
  for (const auto& [key, entry] : docs[1].entries) candidate[key] = entry;

  std::printf("comparing %s (baseline) vs %s (candidate), field %s, "
              "threshold %.1f%%\n",
              baseline_path.c_str(), candidate_path.c_str(), field.c_str(),
              threshold_pct);
  int regressions = 0;
  std::set<std::pair<std::string, std::string>> seen;
  for (const auto& [key, base_entry] : docs[0].entries) {
    seen.insert(key);
    const std::string label =
        key.second.empty() ? key.first : key.second + "/" + key.first;
    const auto it = candidate.find(key);
    if (it == candidate.end()) {
      std::printf("  %-32s removed in candidate (informational)\n",
                  label.c_str());
      continue;
    }
    const JsonValue* base_field = base_entry->Find(field);
    const JsonValue* cand_field = it->second->Find(field);
    if (base_field == nullptr || !base_field->is_number() ||
        cand_field == nullptr || !cand_field->is_number()) {
      if (OptionalField(field)) {
        // parallel_efficiency is only emitted above a wall-time floor
        // (rusage tick granularity); a short stage lacking it on either
        // side is expected, not an artifact error.
        std::printf("  %-32s field \"%s\" absent (informational)\n",
                    label.c_str(), field.c_str());
        continue;
      }
      std::fprintf(stderr, "bench_compare: %s: field \"%s\" missing or "
                   "non-numeric\n", label.c_str(), field.c_str());
      return 2;
    }
    const double base = base_field->number_value();
    const double cand = cand_field->number_value();
    const double delta_pct = base > 0 ? (cand - base) / base * 100.0 : 0.0;
    // For a higher-is-better field a drop is the regression; the printed
    // delta keeps its sign either way.
    const double regress_pct = HigherIsBetter(field) ? -delta_pct : delta_pct;
    const bool regressed = regress_pct > threshold_pct;
    if (regressed) ++regressions;
    std::printf("  %-32s %12.6g -> %12.6g  %+7.1f%%  %s\n", label.c_str(),
                base, cand, delta_pct,
                regressed          ? "REGRESSION"
                : regress_pct < -threshold_pct ? "improved"
                                               : "ok");
  }
  for (const auto& [key, entry] : docs[1].entries) {
    (void)entry;
    if (seen.count(key)) continue;
    const std::string label =
        key.second.empty() ? key.first : key.second + "/" + key.first;
    std::printf("  %-32s new in candidate (not compared)\n", label.c_str());
  }
  std::printf("%d regression(s) across %zu baseline entries\n", regressions,
              docs[0].entries.size());
  return regressions > 0 ? 1 : 0;
}

}  // namespace
}  // namespace homets

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  auto parsed = homets::ParseFlags(raw, {"threshold-pct", "field"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "bench_compare: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  if (parsed.value().positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: bench_compare BASELINE CANDIDATE "
                 "[--threshold-pct PCT] [--field NAME]\n");
    return 2;
  }
  return homets::Run(parsed.value());
}
