// Rule registry: the single source of truth for every rule id the framework
// knows, in reporting order. Passes consult it only through the driver;
// adding a rule means adding it here and implementing it in exactly one
// pass, and `--rules`/config validation picks it up automatically.

#ifndef HOMETS_TOOLS_LINT_REGISTRY_H_
#define HOMETS_TOOLS_LINT_REGISTRY_H_

#include <string>
#include <vector>

namespace homets::lint {

/// Every rule id, in `--list-rules` order: the 13 original text-pass rules
/// first (their ids and relative order are frozen — scripts depend on
/// them), then the architecture/hygiene/determinism rules added with the
/// multi-pass framework.
const std::vector<std::string>& AllRules();

bool IsKnownRule(const std::string& rule);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_REGISTRY_H_
