#include "baseline.h"

#include "common/json.h"
#include "common/strings.h"

namespace homets::lint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderBaseline(const std::vector<Violation>& violations) {
  std::map<std::pair<std::string, std::string>, size_t> counts;
  for (const Violation& v : violations) ++counts[{v.file, v.rule}];
  std::string out = "{\n  \"schema_version\": 1,\n"
                    "  \"tool\": \"homets_lint\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : counts) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"" + JsonEscape(key.first) + "\", \"rule\": \"" +
           JsonEscape(key.second) + "\", \"count\": " +
           std::to_string(count) + "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  return out;
}

Result<Baseline> LoadBaseline(const std::string& path) {
  Baseline baseline;
  HOMETS_ASSIGN_OR_RETURN(const JsonValue doc, ReadJsonFile(path));
  const JsonValue* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number() ||
      version->number_value() != 1) {
    return Status::InvalidArgument(path +
                                   ": unsupported baseline schema_version");
  }
  const JsonValue* entries = doc.Find("entries");
  if (entries == nullptr || !entries->is_array()) {
    return Status::InvalidArgument(path + ": expected an \"entries\" array");
  }
  for (const JsonValue& entry : entries->array_items()) {
    const JsonValue* file = entry.Find("file");
    const JsonValue* rule = entry.Find("rule");
    const JsonValue* count = entry.Find("count");
    if (!entry.is_object() || file == nullptr || !file->is_string() ||
        rule == nullptr || !rule->is_string() || count == nullptr ||
        !count->is_number()) {
      return Status::InvalidArgument(
          path + ": each entry needs string \"file\"/\"rule\" and numeric "
                 "\"count\"");
    }
    baseline.entries[{file->string_value(), rule->string_value()}] =
        static_cast<size_t>(count->number_value());
  }
  return baseline;
}

std::vector<Violation> SubtractBaseline(const std::vector<Violation>& all,
                                        const Baseline& baseline) {
  std::map<std::pair<std::string, std::string>, size_t> budget =
      baseline.entries;
  std::vector<Violation> rest;
  for (const Violation& v : all) {
    const auto it = budget.find({v.file, v.rule});
    if (it != budget.end() && it->second > 0) {
      --it->second;
      continue;
    }
    rest.push_back(v);
  }
  return rest;
}

}  // namespace homets::lint
