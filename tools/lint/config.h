// Configuration loading: the per-rule path exemptions (tools/homets_lint.json)
// and the declared layer DAG (tools/lint/layers.json).

#ifndef HOMETS_TOOLS_LINT_CONFIG_H_
#define HOMETS_TOOLS_LINT_CONFIG_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace homets::lint {

struct LintConfig {
  /// rule id -> path substrings (relative, '/'-separated) exempt from it.
  std::map<std::string, std::vector<std::string>> allow_paths;
};

/// Loads `allow_paths` from a JSON config; unknown rule ids are errors.
Result<LintConfig> LoadConfig(const std::string& path);

/// The declared layer DAG. A layer is the first path segment below src/
/// ("core", "obs", …); the top-level trees bench/, tools/ and tests/ are
/// layers of their own. Each layer lists the layers it may include from;
/// the wildcard "*" (stored as `allow_all`) marks consumer layers that may
/// depend on everything and is exempt from the DAG's acyclicity check.
struct LayerSpec {
  std::vector<std::string> deps;  ///< allowed direct dependencies
  bool allow_all = false;
};

struct LayerGraph {
  /// layer name -> what it may include from. Layers not listed here are
  /// config errors when seen in the tree (the DAG must be total).
  std::map<std::string, LayerSpec> layers;
  /// File-level waivers: rel path -> target layers that file alone may
  /// reach in violation of its layer's spec. Each carries a rationale in
  /// the JSON; the linter only needs the edge.
  std::map<std::string, std::vector<std::string>> waivers;

  bool Allows(const std::string& from_layer, const std::string& to_layer) const;
  bool Waived(const std::string& rel_path, const std::string& to_layer) const;
};

/// Loads and validates layers.json: every dep must name a declared layer,
/// and the declared graph (minus allow-all layers) must be acyclic — the
/// contract is a DAG, so a cyclic declaration is a config error, not
/// something to discover later from the include scan.
Result<LayerGraph> LoadLayers(const std::string& path);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_CONFIG_H_
