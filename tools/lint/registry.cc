#include "registry.h"

#include <algorithm>

namespace homets::lint {

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> rules = {
      // Text pass (PR 4/5/7/8; ids frozen).
      "no-raw-random",    "float-equality",       "no-stdout-in-lib",
      "no-raw-stderr-in-lib",
      "no-cc-include",    "csv-include",          "unsafe-call",
      "metric-name-format",    "metric-name-duplicate",
      "metric-raw-literal",    "metric-dead-constant",
      "discarded-status",      "clock-discipline",
      // Hygiene pass.
      "self-include-first",    "include-guard",
      "unused-include",        "transitive-include",
      // Architecture pass.
      "layer-dag",             "include-cycle",
      // Determinism pass.
      "unordered-iteration",
      // Driver-level: a suppression comment naming an id the registry does
      // not know (a typo there would otherwise pass vacuously).
      "bad-suppression",
  };
  return rules;
}

bool IsKnownRule(const std::string& rule) {
  const auto& rules = AllRules();
  return std::find(rules.begin(), rules.end(), rule) != rules.end();
}

}  // namespace homets::lint
