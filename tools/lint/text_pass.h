// The original per-file lexical rules (PR 4, extended through PR 8), moved
// out of the single-file homets_lint.cc unchanged: diagnostics, messages and
// per-rule scoping are frozen — scripts and fixtures assert on them.
//
// Rules: no-raw-random, float-equality, no-stdout-in-lib,
// no-raw-stderr-in-lib, no-cc-include, csv-include, unsafe-call, the four
// metric-catalog rules, discarded-status and clock-discipline.

#ifndef HOMETS_TOOLS_LINT_TEXT_PASS_H_
#define HOMETS_TOOLS_LINT_TEXT_PASS_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "config.h"
#include "lint.h"

namespace homets::lint {

class TextPass {
 public:
  TextPass(const LintConfig* config, const std::set<std::string>* enabled)
      : config_(config), enabled_(enabled) {}

  void ScanFile(const SourceFile& file);
  /// Cross-file rules (metric-dead-constant, discarded-status); call after
  /// every ScanFile.
  void Finish();

  const std::vector<Violation>& violations() const { return violations_; }
  size_t metric_names() const { return metric_names_; }

  /// Shared with the other passes via the driver: is `rule` active for this
  /// path under --rules and the allow_paths config?
  static bool RuleEnabled(const LintConfig& config,
                          const std::set<std::string>& enabled,
                          const std::string& rule,
                          const std::string& rel_path);

 private:
  bool Enabled(const std::string& rule, const std::string& rel_path) const {
    return RuleEnabled(*config_, *enabled_, rule, rel_path);
  }

  void Report(const FileViews& views, const std::string& rel_path, size_t line,
              const std::string& rule, std::string message);

  void CheckRandomness(const FileViews& views, const std::string& rel_path);
  void CheckFloatEquality(const FileViews& views, const std::string& rel_path);
  void CheckStdout(const FileViews& views, const std::string& rel_path);
  void CheckStderr(const FileViews& views, const std::string& rel_path);
  void CheckCcInclude(const FileViews& views, const std::string& rel_path);
  void CheckCsvInclude(const FileViews& views, const std::string& rel_path);
  void CheckClockDiscipline(const FileViews& views,
                            const std::string& rel_path);
  void CheckUnsafeCalls(const FileViews& views, const std::string& rel_path);
  void CheckMetricCatalog(const FileViews& views, const std::string& rel_path);
  void CheckMetricRawLiterals(const FileViews& views,
                              const std::string& rel_path);
  void CollectMetricReferences(const FileViews& views,
                               const std::string& rel_path);
  void CollectStatusDecls(const FileViews& views);
  void CollectStatusCallSites(const FileViews& views,
                              const std::string& rel_path);

  const LintConfig* config_;
  const std::set<std::string>* enabled_;
  std::vector<Violation> violations_;
  size_t metric_names_ = 0;

  /// metric-dead-constant state: k-constants declared in metric_names.h and
  /// the set referenced anywhere else, resolved in Finish().
  std::vector<std::pair<std::string, size_t>> metric_constants_;
  std::set<std::string> metric_references_;
  std::string metric_header_path_;
  /// The views of metric_names.h, kept so Finish() can honor suppressions.
  FileViews metric_header_views_;

  /// discarded-status state: every function name declared anywhere with a
  /// Status or Result<…> return, plus statement-start call sites whose
  /// result is dropped. A call site only becomes a violation in Finish(),
  /// once all declarations have been seen (files scan in path order, so a
  /// caller may precede the header that declares its callee).
  struct DroppedCall {
    std::string file;
    size_t line = 0;
    std::string name;
  };
  std::set<std::string> status_returning_;
  std::vector<DroppedCall> dropped_calls_;
};

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_TEXT_PASS_H_
