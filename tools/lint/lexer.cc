// Lexer for the lint framework: splits a file into the `code` and `pure`
// views and records suppression comments. See lint.h for the contract.

#include <cctype>
#include <string>

#include "lint.h"

#include "common/strings.h"

namespace homets::lint {
namespace {

/// Parses one `allow(a, b)` list out of `raw` into `rules`; true when the
/// line carries a suppression comment at all.
bool ParseSuppressionLine(const std::string& raw,
                          std::vector<std::string>* rules) {
  static const std::string kTag = "homets-lint:";
  const size_t tag = raw.find(kTag);
  if (tag == std::string::npos) return false;
  const size_t open = raw.find("allow(", tag);
  if (open == std::string::npos) return false;
  const size_t close = raw.find(')', open);
  if (close == std::string::npos) return false;
  const std::string inner = raw.substr(open + 6, close - open - 6);
  for (const std::string& part : StrSplit(inner, ',')) {
    const std::string rule{StrTrim(part)};
    if (!rule.empty()) rules->push_back(rule);
  }
  return true;
}

}  // namespace

bool IsSuppressed(const FileViews& views, size_t line,
                  const std::string& rule) {
  const auto it = views.allowed.find(line);
  return it != views.allowed.end() && it->second.count(rule) > 0;
}

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

size_t FindWord(const std::string& line, const std::string& token,
                size_t from) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    if (pos == 0 || !IsWordChar(line[pos - 1])) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

FileViews BuildViews(const std::string& text) {
  FileViews views;
  std::string code_line;
  std::string pure_line;
  std::string raw_line;
  bool in_block_comment = false;
  bool in_string = false;
  bool in_char = false;
  bool line_had_code = false;
  size_t line_no = 1;
  // Rules from comment-only suppression lines, waiting for the next line
  // that holds real content (blank lines and stacked suppression comments
  // carry them forward instead of swallowing them).
  std::vector<std::string> pending;

  auto flush_line = [&]() {
    std::vector<std::string> rules;
    const bool has_suppression = ParseSuppressionLine(raw_line, &rules);
    for (const std::string& rule : rules) {
      views.allowed[line_no].insert(rule);
      views.suppression_sites.emplace_back(line_no, rule);
    }
    const bool comment_only = !line_had_code;
    const bool blank =
        raw_line.find_first_not_of(" \t\r") == std::string::npos;
    if (comment_only && has_suppression) {
      // A suppression alone on a line covers a later line; queue it.
      pending.insert(pending.end(), rules.begin(), rules.end());
    } else if (!blank) {
      // First line with real content (code, or an ordinary comment): the
      // pending suppressions attach here and stop propagating.
      for (const std::string& rule : pending) {
        views.allowed[line_no].insert(rule);
      }
      pending.clear();
    }
    views.code.push_back(code_line);
    views.pure.push_back(pure_line);
    code_line.clear();
    pure_line.clear();
    raw_line.clear();
    line_had_code = false;
    ++line_no;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    if (c == '\n') {
      // Strings and char literals do not survive a newline in this lexer;
      // multi-line raw strings would, but the tree has none.
      in_string = in_char = false;
      flush_line();
      continue;
    }
    raw_line += c;
    if (in_block_comment) {
      code_line += ' ';
      pure_line += ' ';
      if (c == '*' && next == '/') {
        code_line += ' ';
        pure_line += ' ';
        raw_line += next;
        ++i;
        in_block_comment = false;
      }
      continue;
    }
    if (in_string || in_char) {
      code_line += c;
      pure_line += ' ';
      if (c == '\\' && next != '\0' && next != '\n') {
        code_line += next;
        pure_line += ' ';
        raw_line += next;
        ++i;
        continue;
      }
      if ((in_string && c == '"') || (in_char && c == '\'')) {
        in_string = in_char = false;
      }
      continue;
    }
    if (c == '/' && next == '/') {
      // Line comment: blank the remainder in both views.
      const size_t eol = text.find('\n', i);
      const size_t end = eol == std::string::npos ? text.size() : eol;
      for (size_t j = i; j < end; ++j) {
        code_line += ' ';
        pure_line += ' ';
        if (j > i) raw_line += text[j];
      }
      i = end - 1;
      continue;
    }
    if (c == '/' && next == '*') {
      in_block_comment = true;
      code_line += ' ';
      pure_line += ' ';
      code_line += ' ';
      pure_line += ' ';
      raw_line += next;
      ++i;
      continue;
    }
    if (c == '"') {
      in_string = true;
      code_line += c;
      pure_line += ' ';
      line_had_code = true;
      continue;
    }
    if (c == '\'') {
      // Heuristic: a quote directly after an identifier/digit is a digit
      // separator (1'000'000), not a char literal.
      const char prev =
          raw_line.size() >= 2 ? raw_line[raw_line.size() - 2] : '\0';
      if (std::isalnum(static_cast<unsigned char>(prev))) {
        code_line += c;
        pure_line += c;
        continue;
      }
      in_char = true;
      code_line += c;
      pure_line += ' ';
      line_had_code = true;
      continue;
    }
    code_line += c;
    pure_line += c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_had_code = true;
  }
  flush_line();
  return views;
}

}  // namespace homets::lint
