#include "hygiene_pass.h"

#include <algorithm>
#include <cctype>
#include <map>

#include "text_pass.h"

#include "common/strings.h"

namespace homets::lint {
namespace {

/// The project naming convention: UpperCamel types/functions (two chars or
/// more, so template parameters like `T` stay invisible), kConstants,
/// HOMETS_ macros and g_ globals.
bool IsConventionSymbol(const std::string& token) {
  if (token.size() < 2) return false;
  const unsigned char c0 = token[0];
  const unsigned char c1 = token[1];
  if (std::isupper(c0) && std::isalnum(c1)) return true;
  if (c0 == 'k' && std::isupper(c1)) return true;
  if (StartsWith(token, "HOMETS_")) return true;
  if (StartsWith(token, "g_") && token.size() > 2) return true;
  return false;
}

/// F's sibling header ("src/core/x.cc" -> "src/core/x.h"); empty for
/// non-.cc files.
std::string SiblingHeader(const std::string& rel_path) {
  if (rel_path.size() <= 3 ||
      rel_path.compare(rel_path.size() - 3, 3, ".cc") != 0) {
    return std::string();
  }
  return rel_path.substr(0, rel_path.size() - 3) + ".h";
}

/// How the tree would spell an include of `header` from inside `from`:
/// src/-relative for library headers, bare filename for a same-directory
/// sibling, the full rel path otherwise.
std::string SpellInclude(const std::string& header, const std::string& from) {
  const size_t slash = from.rfind('/');
  const std::string dir = slash == std::string::npos ? "" : from.substr(0, slash);
  if (!dir.empty() && StartsWith(header, dir + "/") &&
      header.find('/', dir.size() + 1) == std::string::npos) {
    return header.substr(dir.size() + 1);
  }
  if (StartsWith(header, "src/")) return header.substr(4);
  return header;
}

void CheckSelfIncludeFirst(const SourceFile& file, const IncludeGraph& graph,
                           std::vector<Violation>* out) {
  const std::string sibling = SiblingHeader(file.rel_path);
  if (sibling.empty() || graph.files().count(sibling) == 0) return;
  const std::vector<Include>& incs = graph.IncludesOf(file.rel_path);
  size_t line = 1;
  if (!incs.empty()) {
    if (incs.front().resolved == sibling) return;
    line = incs.front().line;
  }
  if (IsSuppressed(file.views, line, "self-include-first")) return;
  out->push_back(
      {file.rel_path, line, "self-include-first",
       "first include must be this file's own header '" +
           SpellInclude(sibling, file.rel_path) +
           "' — including it before anything else proves the header is "
           "self-contained"});
}

void CheckIncludeGuard(const SourceFile& file, std::vector<Violation>* out) {
  const std::string& path = file.rel_path;
  if (path.size() <= 2 || path.compare(path.size() - 2, 2, ".h") != 0) return;
  const auto report = [&](size_t line, const std::string& message) {
    if (!IsSuppressed(file.views, line, "include-guard")) {
      out->push_back({path, line, "include-guard", message});
    }
  };
  // Walk the first two preprocessor directives of the code view; a guarded
  // header opens with #ifndef NAME / #define NAME.
  std::string guard;
  size_t guard_line = 0;
  for (size_t i = 0; i < file.views.code.size(); ++i) {
    std::string line{StrTrim(file.views.code[i])};
    if (line.empty() || line[0] != '#') continue;
    std::string directive;
    size_t j = 1;
    while (j < line.size() &&
           std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    while (j < line.size() && IsWordChar(line[j])) directive += line[j++];
    while (j < line.size() &&
           std::isspace(static_cast<unsigned char>(line[j]))) {
      ++j;
    }
    std::string name;
    while (j < line.size() && IsWordChar(line[j])) name += line[j++];
    if (guard.empty()) {
      if (directive == "pragma" && name == "once") {
        report(i + 1, "#pragma once — this tree standardizes on classic "
                      "HOMETS-style include guards (#ifndef/#define)");
        return;
      }
      if (directive != "ifndef" || name.empty()) {
        report(i + 1, "missing include guard — the first directive must be "
                      "#ifndef <GUARD>_H_");
        return;
      }
      guard = name;
      guard_line = i + 1;
      continue;
    }
    if (directive != "define" || name != guard) {
      report(i + 1, "include-guard #define does not match the #ifndef ('" +
                        guard + "' vs '" + name + "')");
      return;
    }
    if (guard.size() < 3 ||
        guard.compare(guard.size() - 3, 3, "_H_") != 0) {
      report(guard_line,
             "include guard '" + guard + "' does not end in _H_");
    }
    return;
  }
  report(1, "missing include guard — the first directive must be "
            "#ifndef <GUARD>_H_");
}

}  // namespace

std::set<std::string> HarvestSymbols(const SourceFile& file) {
  // Joined scan so `enum class X { … }` bodies can be skipped across
  // lines: scoped enumerators are only reachable qualified, so the header
  // supplies the enum's NAME, not its members — crediting the members
  // would let `kNone` in one header cover an unrelated `kNone` elsewhere.
  std::string text;
  for (const std::string& line : file.views.pure) {
    text += line;
    text += '\n';
  }
  std::set<std::string> symbols;
  // 0 = normal, 1 = saw `enum class/struct`, waiting for '{' (the enum
  // name itself is still harvested), 2 = inside the enumerator list.
  int state = 0;
  std::string prev_token;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (!IsWordChar(c)) {
      if (state == 1 && c == '{') state = 2;
      if (state == 1 && (c == ';' || c == ')')) state = 0;  // fwd decl / cast
      if (state == 2 && c == '}') state = 0;
      continue;
    }
    std::string token;
    size_t j = i;
    while (j < text.size() && IsWordChar(text[j])) token += text[j++];
    if (state != 2 && IsConventionSymbol(token)) symbols.insert(token);
    if (prev_token == "enum" && (token == "class" || token == "struct")) {
      state = 1;
    }
    prev_token = token;
    i = j - 1;
  }
  return symbols;
}

void RunHygienePass(const std::vector<SourceFile>& files,
                    const IncludeGraph& graph, const LintConfig& config,
                    const std::set<std::string>& enabled,
                    std::vector<Violation>* out) {
  const auto rule_on = [&](const std::string& rule, const std::string& path) {
    return TextPass::RuleEnabled(config, enabled, rule, path);
  };
  // Symbol sets are needed per file both as "what this file uses" and
  // "what this header supplies"; harvest once.
  std::map<std::string, std::set<std::string>> syms;
  const bool need_syms =
      std::any_of(files.begin(), files.end(), [&](const SourceFile& f) {
        return rule_on("unused-include", f.rel_path) ||
               rule_on("transitive-include", f.rel_path);
      });
  if (need_syms) {
    for (const SourceFile& file : files) {
      syms[file.rel_path] = HarvestSymbols(file);
    }
  }

  for (const SourceFile& file : files) {
    if (rule_on("self-include-first", file.rel_path)) {
      CheckSelfIncludeFirst(file, graph, out);
    }
    if (rule_on("include-guard", file.rel_path)) {
      CheckIncludeGuard(file, out);
    }

    const std::string sibling = SiblingHeader(file.rel_path);
    const std::vector<Include>& incs = graph.IncludesOf(file.rel_path);

    if (rule_on("unused-include", file.rel_path)) {
      const std::set<std::string>& used = syms[file.rel_path];
      for (const Include& inc : incs) {
        if (inc.resolved.empty() || inc.resolved == sibling) continue;
        const auto it = syms.find(inc.resolved);
        if (it == syms.end()) continue;
        const bool referenced =
            std::any_of(it->second.begin(), it->second.end(),
                        [&](const std::string& s) { return used.count(s); });
        if (referenced) continue;
        if (IsSuppressed(file.views, inc.line, "unused-include")) continue;
        out->push_back(
            {file.rel_path, inc.line, "unused-include",
             "no symbol from '" + inc.target +
                 "' is referenced in this file — drop the include, or "
                 "suppress with a rationale if it is needed for side "
                 "effects"});
      }
    }

    if (rule_on("transitive-include", file.rel_path)) {
      // Direct interface: everything reachable from the file's own direct
      // includes' first hop, plus — for a .cc — the whole closure of its
      // self header (the header's transitive interface belongs to it).
      std::set<std::string> direct;
      for (const Include& inc : incs) {
        if (!inc.resolved.empty()) direct.insert(inc.resolved);
      }
      std::set<std::string> covered_files = direct;
      if (!sibling.empty() && direct.count(sibling) > 0) {
        for (const std::string& h : graph.TransitiveClosure(sibling)) {
          covered_files.insert(h);
        }
      }
      std::set<std::string> covered_syms;
      for (const std::string& h : covered_files) {
        const auto it = syms.find(h);
        if (it == syms.end()) continue;
        covered_syms.insert(it->second.begin(), it->second.end());
      }
      // Transitive-only headers, smallest path first so attribution is
      // deterministic.
      std::vector<std::string> indirect;
      for (const std::string& h : graph.TransitiveClosure(file.rel_path)) {
        if (covered_files.count(h) == 0 && h != file.rel_path) {
          indirect.push_back(h);
        }
      }
      std::map<std::string, std::vector<std::string>> missing;
      for (const std::string& token : syms[file.rel_path]) {
        if (covered_syms.count(token) > 0) continue;
        for (const std::string& h : indirect) {
          const auto it = syms.find(h);
          if (it != syms.end() && it->second.count(token) > 0) {
            missing[h].push_back(token);
            break;
          }
        }
      }
      const size_t anchor = incs.empty() ? 1 : incs.front().line;
      for (const auto& [header, tokens] : missing) {
        if (IsSuppressed(file.views, anchor, "transitive-include")) break;
        std::string list;
        for (size_t i = 0; i < tokens.size() && i < 3; ++i) {
          list += (i ? ", " : "") + tokens[i];
        }
        if (tokens.size() > 3) list += ", …";
        out->push_back(
            {file.rel_path, anchor, "transitive-include",
             "relies on " + header + " only transitively for " + list +
                 " — #include \"" + SpellInclude(header, file.rel_path) +
                 "\" directly so the dependency survives refactors"});
      }
    }
  }
}

}  // namespace homets::lint
