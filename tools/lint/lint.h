// Shared vocabulary of the homets_lint multi-pass framework.
//
// The linter is organized as passes over a set of `SourceFile`s collected
// once by the driver (tools/lint/main.cc):
//
//   text pass         (text_pass.h)    — the original per-file lexical rules
//   architecture pass (arch_pass.h)    — include graph vs the declared layer
//                                        DAG (tools/lint/layers.json), cycles
//   hygiene pass      (hygiene_pass.h) — self-include-first, include guards,
//                                        unused and transitive includes
//   determinism pass  (determinism_pass.h) — unordered-container iteration
//
// Every pass appends to one shared violation list; the driver then applies
// the optional baseline (baseline.h) and renders the result (report.h).
// Scanning stays lexical, not semantic: each file is split into a `code`
// view (comments blanked) and a `pure` view (comments and string/char
// literals blanked), and each rule matches the view that cannot be fooled
// by commented-out code or string contents.

#ifndef HOMETS_TOOLS_LINT_LINT_H_
#define HOMETS_TOOLS_LINT_LINT_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace homets::lint {

struct Violation {
  std::string file;  ///< path relative to --root
  size_t line = 0;   ///< 1-based
  std::string rule;
  std::string message;
};

/// One scanned file: the two blanked views plus per-line suppression sets.
/// Blanking replaces characters with spaces so columns and line numbers stay
/// aligned.
struct FileViews {
  std::vector<std::string> code;  ///< comments blanked, strings kept
  std::vector<std::string> pure;  ///< comments and string/char literals blanked
  /// line (1-based) -> rule ids allowed on that line
  std::map<size_t, std::set<std::string>> allowed;
  /// every (line, rule-id) pair parsed from a suppression comment, exactly
  /// where it was written — the driver validates the ids against the
  /// registry (rule `bad-suppression`).
  std::vector<std::pair<size_t, std::string>> suppression_sites;
};

/// A file the driver collected for this run, lexed once and shared by every
/// pass.
struct SourceFile {
  std::string rel_path;  ///< '/'-separated, relative to --root
  std::string text;      ///< raw bytes
  FileViews views;
};

/// True when `rule` is suppressed on `line` of `views` by an allow() comment.
bool IsSuppressed(const FileViews& views, size_t line, const std::string& rule);

// --------------------------------------------------------------------------
// Lexer (lexer.cc)
// --------------------------------------------------------------------------

/// Lexes `text` into the two views and collects suppressions. Handles //,
/// /*…*/, "…", '…' and the common escape sequences; raw string literals are
/// treated as plain strings (good enough for this tree, which has none).
///
/// Suppression placement: an allow(rule-id) comment with the homets-lint
/// tag on a code line covers that line; alone on a line it covers the next
/// line that holds anything other than blanks or further suppression
/// comments (so a blank separator or a stacked suppression does not defeat
/// it).
FileViews BuildViews(const std::string& text);

bool IsWordChar(char c);

/// Finds `token` in `line` starting at `from`, requiring that the character
/// before the match is not an identifier character (so `snprintf` never
/// matches a search for `printf`). `::` and `.` prefixes count as
/// non-identifier, so qualified calls match.
size_t FindWord(const std::string& line, const std::string& token,
                size_t from = 0);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_LINT_H_
