// Architecture pass: checks the observed include graph against the declared
// layer DAG (rule layer-dag) and rejects include cycles (rule
// include-cycle). The layer contract lives in tools/lint/layers.json; when
// no layer graph is supplied (e.g. fixture trees that predate it) the
// layer-dag rule is skipped and only cycle detection runs.

#ifndef HOMETS_TOOLS_LINT_ARCH_PASS_H_
#define HOMETS_TOOLS_LINT_ARCH_PASS_H_

#include <set>
#include <string>
#include <vector>

#include "config.h"
#include "include_graph.h"
#include "lint.h"

namespace homets::lint {

/// Appends layer-dag and include-cycle violations for the scanned set.
/// `layers` may be null (no layers.json): only cycles are checked then.
void RunArchPass(const std::vector<SourceFile>& files,
                 const IncludeGraph& graph, const LayerGraph* layers,
                 const LintConfig& config,
                 const std::set<std::string>& enabled,
                 std::vector<Violation>* out);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_ARCH_PASS_H_
