// Determinism pass: rule unordered-iteration. Engine results must be
// bit-identical across runs (DESIGN.md §7), and iterating a hash container
// leaks its bucket order into anything the loop produces. The pass finds
// variables declared as std::unordered_map/std::unordered_set and flags
// range-for loops and explicit .begin() iteration over them. Lookups
// (find/at/emplace) are fine and not matched; files where the order
// provably never escapes can be exempted via allow_paths or a suppression.

#ifndef HOMETS_TOOLS_LINT_DETERMINISM_PASS_H_
#define HOMETS_TOOLS_LINT_DETERMINISM_PASS_H_

#include <set>
#include <string>
#include <vector>

#include "config.h"
#include "lint.h"

namespace homets::lint {

void RunDeterminismPass(const std::vector<SourceFile>& files,
                        const LintConfig& config,
                        const std::set<std::string>& enabled,
                        std::vector<Violation>* out);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_DETERMINISM_PASS_H_
