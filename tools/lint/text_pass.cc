#include "text_pass.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"

namespace homets::lint {
namespace {

/// homets.<layer>.<name>, both segments lower_snake_case starting with a
/// letter.
bool MatchesNameScheme(const std::string& name) {
  const std::vector<std::string> parts = StrSplit(name, '.');
  if (parts.size() != 3 || parts[0] != "homets") return false;
  for (size_t p = 1; p < 3; ++p) {
    const std::string& seg = parts[p];
    if (seg.empty() || !std::islower(static_cast<unsigned char>(seg[0]))) {
      return false;
    }
    for (const char c : seg) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                      c == '_';
      if (!ok) return false;
    }
  }
  return true;
}

}  // namespace

bool TextPass::RuleEnabled(const LintConfig& config,
                           const std::set<std::string>& enabled,
                           const std::string& rule,
                           const std::string& rel_path) {
  if (!enabled.empty() && enabled.count(rule) == 0) return false;
  const auto it = config.allow_paths.find(rule);
  if (it != config.allow_paths.end()) {
    for (const std::string& sub : it->second) {
      if (rel_path.find(sub) != std::string::npos) return false;
    }
  }
  return true;
}

void TextPass::Report(const FileViews& views, const std::string& rel_path,
                      size_t line, const std::string& rule,
                      std::string message) {
  if (IsSuppressed(views, line, rule)) return;
  violations_.push_back({rel_path, line, rule, std::move(message)});
}

void TextPass::CheckRandomness(const FileViews& views,
                               const std::string& rel_path) {
  if (!Enabled("no-raw-random", rel_path)) return;
  // common/random wraps the only sanctioned generators.
  if (rel_path.find("src/common/random") != std::string::npos) return;
  static const std::vector<std::string> kTokens = {
      "rand(", "srand(", "random_device"};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (const std::string& token : kTokens) {
      if (FindWord(line, token) != std::string::npos) {
        Report(views, rel_path, i + 1, "no-raw-random",
               "non-deterministic source '" + token +
                   "' — use homets::Rng (common/random.h); engine results "
                   "must be bit-identical across runs and thread counts");
        break;
      }
    }
    // Wall-clock seeds: time(), time(NULL), time(nullptr), time(0).
    size_t pos = FindWord(line, "time", 0);
    while (pos != std::string::npos) {
      size_t j = pos + 4;
      while (j < line.size() &&
             std::isspace(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      if (j < line.size() && line[j] == '(') {
        size_t k = j + 1;
        while (k < line.size() &&
               std::isspace(static_cast<unsigned char>(line[k]))) {
          ++k;
        }
        std::string arg;
        while (k < line.size() && line[k] != ')' &&
               !std::isspace(static_cast<unsigned char>(line[k]))) {
          arg += line[k++];
        }
        if (k < line.size() && (arg.empty() || arg == "NULL" ||
                                arg == "nullptr" || arg == "0")) {
          Report(views, rel_path, i + 1, "no-raw-random",
                 "wall-clock seed 'time(" + arg +
                     ")' — derive seeds from --seed flags or fixed "
                     "constants, never the clock");
        }
      }
      pos = FindWord(line, "time", pos + 4);
    }
  }
}

void TextPass::CheckFloatEquality(const FileViews& views,
                                  const std::string& rel_path) {
  if (!Enabled("float-equality", rel_path)) return;
  // Parses a float literal adjacent to position `pos` in `line`, scanning
  // forward (dir=+1) or backward (dir=-1). Returns the literal text, empty
  // when the adjacent operand is not a float literal.
  const auto literal_at = [](const std::string& line, size_t pos, int dir) {
    auto is_lit_char = [](char c) {
      return std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
             c == 'e' || c == 'E' || c == 'f' || c == 'F';
    };
    std::string lit;
    if (dir > 0) {
      size_t i = pos;
      while (i < line.size() &&
             std::isspace(static_cast<unsigned char>(line[i]))) {
        ++i;
      }
      if (i < line.size() && line[i] == '-') lit += line[i++];
      while (i < line.size()) {
        if (is_lit_char(line[i])) {
          lit += line[i++];
        } else if ((line[i] == '+' || line[i] == '-') && !lit.empty() &&
                   (lit.back() == 'e' || lit.back() == 'E')) {
          lit += line[i++];  // exponent sign, e.g. 1e-9
        } else {
          break;
        }
      }
      if (i < line.size() && IsWordChar(line[i])) return std::string();
    } else {
      size_t i = pos;
      while (i > 0 && std::isspace(static_cast<unsigned char>(line[i - 1]))) {
        --i;
      }
      size_t end = i;
      while (i > 0) {
        if (is_lit_char(line[i - 1])) {
          --i;
        } else if ((line[i - 1] == '+' || line[i - 1] == '-') && i >= 2 &&
                   (line[i - 2] == 'e' || line[i - 2] == 'E')) {
          i -= 2;  // exponent sign, e.g. 1e-9
        } else {
          break;
        }
      }
      if (i > 0 && IsWordChar(line[i - 1])) return std::string();
      lit = line.substr(i, end - i);
    }
    // A float literal must contain a '.' or an exponent; bare integers are
    // fine to compare exactly.
    if (lit.find('.') == std::string::npos &&
        lit.find('e') == std::string::npos &&
        lit.find('E') == std::string::npos) {
      return std::string();
    }
    if (lit.empty() || lit == "." || lit == "-") return std::string();
    return lit;
  };
  const auto is_zero = [](const std::string& lit) {
    char* end = nullptr;
    const double v = std::strtod(lit.c_str(), &end);
    return end != lit.c_str() && v == 0.0;  // homets-lint: allow(float-equality)
  };
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (size_t pos = 0; (pos = line.find('=', pos)) != std::string::npos;
         ++pos) {
      // Only bare == / != count; <=, >=, =, === etc. do not.
      std::string op;
      size_t lhs_end = 0;
      size_t rhs_begin = 0;
      if (pos + 1 < line.size() && line[pos + 1] == '=' &&
          (pos == 0 || (line[pos - 1] != '=' && line[pos - 1] != '<' &&
                        line[pos - 1] != '>' && line[pos - 1] != '!')) &&
          (pos + 2 >= line.size() || line[pos + 2] != '=')) {
        op = "==";
        lhs_end = pos;
        rhs_begin = pos + 2;
      } else if (pos > 0 && line[pos - 1] == '!' &&
                 (pos + 1 >= line.size() || line[pos + 1] != '=')) {
        op = "!=";
        lhs_end = pos - 1;
        rhs_begin = pos + 1;
      } else {
        continue;
      }
      const std::string rhs = literal_at(line, rhs_begin, +1);
      const std::string lhs = literal_at(line, lhs_end, -1);
      const std::string& lit = rhs.empty() ? lhs : rhs;
      if (lit.empty()) continue;
      // Exact-zero guards (x == 0.0 before dividing) are IEEE-exact and
      // idiomatic; every other literal needs an epsilon.
      if (is_zero(lit)) continue;
      Report(views, rel_path, i + 1, "float-equality",
             "naked floating-point " + op + " against " + lit +
                 " — compare via an epsilon helper (correlation/KS "
                 "thresholds are not exact in binary floating point)");
      pos = rhs_begin;
    }
  }
}

void TextPass::CheckStdout(const FileViews& views,
                           const std::string& rel_path) {
  if (!Enabled("no-stdout-in-lib", rel_path)) return;
  // Library code only: src/. CLIs, benches, tools and tests own their stdout.
  if (rel_path.rfind("src/", 0) != 0) return;
  static const std::vector<std::string> kTokens = {"cout", "printf(", "puts("};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    for (const std::string& token : kTokens) {
      if (FindWord(views.pure[i], token) != std::string::npos) {
        Report(views, rel_path, i + 1, "no-stdout-in-lib",
               "stdout write ('" + token +
                   "') in library code — stdout is a byte-exact CLI "
                   "contract (cli_usage ctest); return data or use stderr");
        break;
      }
    }
  }
}

void TextPass::CheckStderr(const FileViews& views,
                           const std::string& rel_path) {
  if (!Enabled("no-raw-stderr-in-lib", rel_path)) return;
  // Library code only: src/. The structured logger (obs/log) owns the
  // process's single human-readable stderr sink; library narration goes
  // through it so fleet runs stay machine-parseable (allow_paths exempts
  // the sink itself).
  if (rel_path.rfind("src/", 0) != 0) return;
  static const std::vector<std::string> kTokens = {"cerr", "stderr"};
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    for (const std::string& token : kTokens) {
      // Whole-word: `stderr_level_` must not match a search for `stderr`.
      size_t pos = FindWord(line, token);
      while (pos != std::string::npos &&
             pos + token.size() < line.size() &&
             IsWordChar(line[pos + token.size()])) {
        pos = FindWord(line, token, pos + token.size());
      }
      if (pos != std::string::npos) {
        Report(views, rel_path, i + 1, "no-raw-stderr-in-lib",
               "raw stderr write ('" + token +
                   "') in library code — narrate through the structured "
                   "logger (obs/log.h: LogWarn/LogError) so diagnostics "
                   "stay rate-limited and machine-parseable");
        break;
      }
    }
  }
}

void TextPass::CheckCcInclude(const FileViews& views,
                              const std::string& rel_path) {
  if (!Enabled("no-cc-include", rel_path)) return;
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    const size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    if (line.find("include", hash) == std::string::npos) continue;
    const size_t open = line.find_first_of("\"<", hash);
    if (open == std::string::npos) continue;
    const size_t close =
        line.find_first_of("\">", open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    if (target.size() > 3 &&
        target.compare(target.size() - 3, 3, ".cc") == 0) {
      Report(views, rel_path, i + 1, "no-cc-include",
             "#include of implementation file '" + target +
                 "' — include the header and let the build system link it");
    }
  }
}

void TextPass::CheckCsvInclude(const FileViews& views,
                               const std::string& rel_path) {
  if (!Enabled("csv-include", rel_path)) return;
  // The CSV reader is the ingest edge: only the io layer itself, the
  // columnar storage layer and tests may talk to it directly — everything
  // else reads traces through io/dataset.h (DatasetReader).
  if (rel_path.rfind("src/io/", 0) == 0 ||
      rel_path.rfind("src/storage/", 0) == 0 ||
      rel_path.rfind("tests/", 0) == 0) {
    return;
  }
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    const size_t hash = line.find('#');
    if (hash == std::string::npos) continue;
    if (line.find("include", hash) == std::string::npos) continue;
    const size_t open = line.find_first_of("\"<", hash);
    if (open == std::string::npos) continue;
    const size_t close = line.find_first_of("\">", open + 1);
    if (close == std::string::npos) continue;
    const std::string target = line.substr(open + 1, close - open - 1);
    if (target == "io/csv.h") {
      Report(views, rel_path, i + 1, "csv-include",
             "direct #include of 'io/csv.h' outside src/io, src/storage and "
             "tests/ — read traces through io/dataset.h (DatasetReader)");
    }
  }
}

void TextPass::CheckClockDiscipline(const FileViews& views,
                                    const std::string& rel_path) {
  if (!Enabled("clock-discipline", rel_path)) return;
  // Wall-clock reads are an observability concern: timestamps flow through
  // obs (Logger::NowUs, StageTimer, CaptureRusage) and durations through
  // steady_clock. Only the src/ engine layers are in scope — src/obs owns
  // the clock, and src/common hosts the low-level timing the profiler and
  // pool instrumentation write through. bench/, tools/ and tests/ time
  // whatever they like.
  if (rel_path.rfind("src/", 0) != 0 ||
      rel_path.rfind("src/obs/", 0) == 0 ||
      rel_path.rfind("src/common/", 0) == 0) {
    return;
  }
  for (size_t i = 0; i < views.pure.size(); ++i) {
    const std::string& line = views.pure[i];
    if (FindWord(line, "system_clock") != std::string::npos) {
      Report(views, rel_path, i + 1, "clock-discipline",
             "std::chrono::system_clock use outside src/obs and src/common "
             "— wall-clock timestamps belong to the obs layer (Logger::NowUs"
             " / StageTimer); use steady_clock for durations");
    }
    if (FindWord(line, "clock_gettime") != std::string::npos) {
      Report(views, rel_path, i + 1, "clock-discipline",
             "raw clock_gettime call outside src/obs and src/common — "
             "wall-clock timestamps belong to the obs layer (Logger::NowUs "
             "/ StageTimer); use steady_clock for durations");
    }
  }
}

void TextPass::CheckUnsafeCalls(const FileViews& views,
                                const std::string& rel_path) {
  if (!Enabled("unsafe-call", rel_path)) return;
  static const std::vector<std::pair<std::string, std::string>> kBanned = {
      {"sprintf(", "use snprintf with an explicit size"},
      {"strtok(", "not reentrant; use homets::StrSplit"},
      {"gets(", "unbounded read; removed from the language"},
  };
  for (size_t i = 0; i < views.pure.size(); ++i) {
    for (const auto& [token, why] : kBanned) {
      if (FindWord(views.pure[i], token) != std::string::npos) {
        Report(views, rel_path, i + 1, "unsafe-call",
               "banned call '" + token + "' — " + why);
      }
    }
  }
}

void TextPass::CheckMetricCatalog(const FileViews& views,
                                  const std::string& rel_path) {
  // Only the canonical catalog header is subject to name-format rules.
  if (rel_path.find("metric_names.h") == std::string::npos) return;
  metric_header_path_ = rel_path;
  metric_header_views_.allowed = views.allowed;
  const bool check_format = Enabled("metric-name-format", rel_path);
  const bool check_dupes = Enabled("metric-name-duplicate", rel_path);
  std::map<std::string, size_t> first_seen;
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    // Collect "homets.…" string literals from the code view (strings kept).
    size_t open = line.find('"');
    while (open != std::string::npos) {
      const size_t close = line.find('"', open + 1);
      if (close == std::string::npos) break;
      const std::string name = line.substr(open + 1, close - open - 1);
      if (name.rfind("homets.", 0) == 0) {
        ++metric_names_;
        if (check_format && !MatchesNameScheme(name)) {
          Report(views, rel_path, i + 1, "metric-name-format",
                 "'" + name +
                     "' does not match homets.<layer>.<name> with "
                     "lower_snake_case segments");
        }
        if (check_dupes) {
          const auto [it, inserted] = first_seen.emplace(name, i + 1);
          if (!inserted) {
            Report(views, rel_path, i + 1, "metric-name-duplicate",
                   "'" + name + "' already declared at line " +
                       std::to_string(it->second));
          }
        }
      }
      open = line.find('"', close + 1);
    }
    // Collect declared k-constants for the dead-constant rule.
    const size_t kpos = line.find("constexpr std::string_view k");
    if (kpos != std::string::npos) {
      size_t start = line.find(" k", kpos);
      if (start != std::string::npos) {
        ++start;  // at 'k'
        std::string constant;
        while (start < line.size() && IsWordChar(line[start])) {
          constant += line[start++];
        }
        if (constant.size() > 1) {
          metric_constants_.emplace_back(constant, i + 1);
        }
      }
    }
  }
}

void TextPass::CheckMetricRawLiterals(const FileViews& views,
                                      const std::string& rel_path) {
  if (!Enabled("metric-raw-literal", rel_path)) return;
  // Tests are exempt: they exercise private registries with throwaway names.
  if (rel_path.rfind("tests/", 0) == 0) return;
  if (rel_path.find("metric_names.h") != std::string::npos) return;
  static const std::vector<std::string> kRegistrars = {
      // Split so this very file never matches its own rule table.
      std::string("GetCounter") + "(", std::string("GetGauge") + "(",
      std::string("GetHistogram") + "("};
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    bool registrar = false;
    for (const std::string& token : kRegistrars) {
      if (FindWord(line, token) != std::string::npos) {
        registrar = true;
        break;
      }
    }
    if (!registrar) continue;
    if (line.find(std::string("\"") + "homets.") != std::string::npos) {
      Report(views, rel_path, i + 1, "metric-raw-literal",
             "raw metric-name literal at a registration site — use the "
             "constants in obs/metric_names.h");
    }
  }
}

void TextPass::CollectMetricReferences(const FileViews& views,
                                       const std::string& rel_path) {
  if (rel_path.find("metric_names.h") != std::string::npos) return;
  for (const std::string& line : views.code) {
    for (size_t i = 0; i < line.size(); ++i) {
      if (line[i] != 'k') continue;
      if (i > 0 && IsWordChar(line[i - 1])) continue;
      std::string word;
      size_t j = i;
      while (j < line.size() && IsWordChar(line[j])) word += line[j++];
      if (word.size() > 1 &&
          std::isupper(static_cast<unsigned char>(word[1]))) {
        metric_references_.insert(word);
      }
      i = j;
    }
  }
}

/// Harvests names of functions declared to return Status or Result<…> from
/// the pure view: `Status Name(` and `Result<…> Name(`. Names are collected
/// tree-wide (not per class), so an unchecked call to any same-named
/// overload is flagged — the conservative reading.
void TextPass::CollectStatusDecls(const FileViews& views) {
  const auto word_ends_at = [](const std::string& line, size_t pos,
                               size_t len) {
    return pos + len >= line.size() || !IsWordChar(line[pos + len]);
  };
  const auto harvest_name_at = [this](const std::string& line, size_t pos) {
    while (pos < line.size() &&
           std::isspace(static_cast<unsigned char>(line[pos]))) {
      ++pos;
    }
    std::string name;
    while (pos < line.size() && IsWordChar(line[pos])) name += line[pos++];
    if (!name.empty() && pos < line.size() && line[pos] == '(' &&
        !std::isdigit(static_cast<unsigned char>(name[0]))) {
      status_returning_.insert(name);
    }
  };
  for (const std::string& line : views.pure) {
    for (size_t pos = FindWord(line, "Status"); pos != std::string::npos;
         pos = FindWord(line, "Status", pos + 6)) {
      if (word_ends_at(line, pos, 6)) harvest_name_at(line, pos + 6);
    }
    for (size_t pos = FindWord(line, "Result"); pos != std::string::npos;
         pos = FindWord(line, "Result", pos + 6)) {
      size_t j = pos + 6;
      if (j >= line.size() || line[j] != '<') continue;
      int depth = 0;
      while (j < line.size()) {
        if (line[j] == '<') ++depth;
        if (line[j] == '>' && --depth == 0) break;
        ++j;
      }
      // `Result<…>` split across lines never declares a one-line name.
      if (j < line.size() && depth == 0) harvest_name_at(line, j + 1);
    }
  }
}

/// Statement-start calls whose value is dropped: an identifier chain
/// (`a::b`, `a.b`, `a->b`) opening a call directly after `;`, `{`, `}` or
/// `:` — i.e. not returned, assigned, wrapped in a macro, or part of a
/// larger expression. Matched against the declaration set in Finish().
void TextPass::CollectStatusCallSites(const FileViews& views,
                                      const std::string& rel_path) {
  if (!Enabled("discarded-status", rel_path)) return;
  static const std::set<std::string> kKeywords = {
      "if",     "while",  "for",    "switch", "return", "case",
      "else",   "do",     "new",    "delete", "sizeof", "throw",
      "catch",  "goto",   "using",  "namespace", "operator",
      "static_assert", "co_return", "co_await", "co_yield"};
  char prev = ';';  // the start of a file is a statement boundary
  for (size_t i = 0; i < views.code.size(); ++i) {
    const std::string& line = views.code[i];
    size_t col = 0;
    while (col < line.size()) {
      const char c = line[col];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++col;
        continue;
      }
      // ':' is deliberately not a boundary: a ternary's second arm wrapped
      // onto its own line (`: Status::OK();`) is indistinguishable from a
      // case label here, and the former is far more common in this tree.
      const bool boundary = prev == ';' || prev == '{' || prev == '}';
      if (!IsWordChar(c) || std::isdigit(static_cast<unsigned char>(c))) {
        prev = c;
        ++col;
        continue;
      }
      // Always consume the whole identifier chain — char-by-char skipping
      // would leave prev on a '::' separator and fake a label boundary.
      // `last` is the called name.
      size_t j = col;
      std::string first;
      std::string last;
      while (j < line.size() && IsWordChar(line[j])) {
        std::string word;
        while (j < line.size() && IsWordChar(line[j])) word += line[j++];
        if (first.empty()) first = word;
        last = word;
        if (j + 1 < line.size() && line[j] == ':' && line[j + 1] == ':') {
          j += 2;
        } else if (j + 1 < line.size() && line[j] == '-' &&
                   line[j + 1] == '>') {
          j += 2;
        } else if (j < line.size() && line[j] == '.') {
          ++j;
        } else {
          break;
        }
      }
      if (boundary && j < line.size() && line[j] == '(' &&
          kKeywords.count(first) == 0 && kKeywords.count(last) == 0) {
        if (!IsSuppressed(views, i + 1, "discarded-status")) {
          dropped_calls_.push_back(DroppedCall{rel_path, i + 1, last});
        }
      }
      prev = line[j > col ? j - 1 : col];
      col = j > col ? j : col + 1;
    }
  }
}

void TextPass::Finish() {
  const bool enabled =
      !metric_header_path_.empty() &&
      Enabled("metric-dead-constant", metric_header_path_);
  if (enabled) {
    for (const auto& [constant, line] : metric_constants_) {
      if (metric_references_.count(constant) > 0) continue;
      Report(metric_header_views_, metric_header_path_, line,
             "metric-dead-constant",
             constant +
                 " is declared in metric_names.h but referenced nowhere in "
                 "src/, tools/, bench/ or tests/");
    }
  }
  // discarded-status: suppressions and path exemptions were applied at
  // collection time; what remains only needs the declaration set.
  for (const DroppedCall& call : dropped_calls_) {
    if (status_returning_.count(call.name) == 0) continue;
    violations_.push_back(
        {call.file, call.line, "discarded-status",
         "result of '" + call.name +
             "' is discarded — it returns Status/Result; wrap the call in "
             "HOMETS_RETURN_IF_ERROR or inspect .ok()"});
  }
}

void TextPass::ScanFile(const SourceFile& file) {
  const FileViews& views = file.views;
  const std::string& rel_path = file.rel_path;
  CheckRandomness(views, rel_path);
  CheckFloatEquality(views, rel_path);
  CheckStdout(views, rel_path);
  CheckStderr(views, rel_path);
  CheckCcInclude(views, rel_path);
  CheckCsvInclude(views, rel_path);
  CheckClockDiscipline(views, rel_path);
  CheckUnsafeCalls(views, rel_path);
  CheckMetricCatalog(views, rel_path);
  CheckMetricRawLiterals(views, rel_path);
  CollectMetricReferences(views, rel_path);
  CollectStatusDecls(views);
  CollectStatusCallSites(views, rel_path);
}

}  // namespace homets::lint
