// homets_lint: project-invariant checker for the homets tree.
//
// Enforces the invariants the compiler cannot (see DESIGN.md §7 and §14),
// organized as passes over one shared scan of the tree:
//
//   text pass         — determinism contract (no wall-clock or libc
//                       randomness outside common/random), float-comparison
//                       discipline, the CLI's byte-identical stdout
//                       contract, banned calls, the metric-name catalog
//   architecture pass — the include graph against the declared layer DAG
//                       (tools/lint/layers.json) plus include cycles
//   hygiene pass      — self-include-first, include guards, unused and
//                       transitive includes
//   determinism pass  — iteration over unordered containers
//
// Violations print `<file>:<line>: <rule-id>: <message>` and the process
// exits 1 (0 clean, 2 usage/config error). A site can opt out of one rule
// for one line with the suppression comment
//   // homets-lint: allow(unsafe-call)
// (any rule id) on the offending line or alone on the line above it; ids
// that the registry does not know are themselves flagged (bad-suppression).
//
// Usage:
//   homets_lint [--root DIR] [--config FILE] [--rules id,...] [--list-rules]
//               [--layers FILE] [--format text|json|dot]
//               [--baseline FILE | --baseline-check FILE] [--timing]
//
// --root defaults to the current directory; the walker visits src/ bench/
// tools/ tests/ and skips build*/ and lint_fixtures/ directories. --config
// points at a JSON file (default <root>/tools/homets_lint.json when
// present) whose "allow_paths" object maps rule ids to exempt path
// substrings. --layers overrides the layer contract (default
// <root>/tools/lint/layers.json when present; without one the layer-dag
// rule is skipped). --baseline freezes the current violations to FILE;
// --baseline-check gates only on violations beyond FILE's budget.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "arch_pass.h"
#include "baseline.h"
#include "config.h"
#include "determinism_pass.h"
#include "hygiene_pass.h"
#include "include_graph.h"
#include "lint.h"
#include "registry.h"
#include "report.h"
#include "text_pass.h"

#include "common/flags.h"
#include "common/strings.h"

namespace homets::lint {
namespace {

namespace fs = std::filesystem;

bool ShouldSkipDir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

bool IsSourceFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h";
}

/// Collects .cc/.h files under root/{src,bench,tools,tests}, sorted so the
/// report order is deterministic.
std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* sub : {"src", "bench", "tools", "tests"}) {
    const fs::path dir = root / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    fs::recursive_directory_iterator it(dir, ec);
    const fs::recursive_directory_iterator end;
    while (it != end) {
      const fs::directory_entry& entry = *it;
      if (entry.is_directory(ec)) {
        if (ShouldSkipDir(entry.path().filename().string())) {
          it.disable_recursion_pending();
        }
      } else if (entry.is_regular_file(ec) && IsSourceFile(entry.path())) {
        files.push_back(entry.path());
      }
      it.increment(ec);
      if (ec) break;
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

int Usage(FILE* out) {
  std::fputs(
      "usage: homets_lint [--root DIR] [--config FILE] [--rules id,...]\n"
      "                   [--list-rules] [--layers FILE]\n"
      "                   [--format text|json|dot]\n"
      "                   [--baseline FILE | --baseline-check FILE]"
      " [--timing]\n"
      "Scans DIR/{src,bench,tools,tests} for project-invariant violations\n"
      "and prints 'file:line: rule-id: message' per hit; exits 1 when any\n"
      "are found, 2 on usage/config errors. Suppress one line with\n"
      // The literal is split so the scanner never reads this usage text as
      // a suppression naming the placeholder id.
      "'// homets-lint: all" "ow(<rule-id>)'. --baseline FILE freezes the\n"
      "current violations; --baseline-check FILE fails only on violations\n"
      "beyond that budget. --format dot prints the observed layer graph.\n",
      out);
  return 2;
}

/// Milliseconds between two steady_clock points, for --timing.
double MsBetween(std::chrono::steady_clock::time_point a,
                 std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

int Run(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  if (std::find(args.begin(), args.end(), "--help") != args.end()) {
    Usage(stdout);
    return 0;
  }
  // Boolean flag, handled before the strict value-carrying parser.
  const auto list_it = std::find(args.begin(), args.end(), "--list-rules");
  if (list_it != args.end()) {
    for (const std::string& rule : AllRules()) {
      std::fprintf(stdout, "%s\n", rule.c_str());
    }
    return 0;
  }
  const Result<ParsedArgs> parsed =
      ParseFlags(args,
                 {"root", "config", "rules", "layers", "format", "baseline",
                  "baseline-check", "timing"},
                 {"timing"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "homets_lint: %s\n",
                 parsed.status().message().c_str());
    return Usage(stderr);
  }
  if (!parsed->positional.empty()) {
    std::fprintf(stderr, "homets_lint: unexpected positional argument '%s'\n",
                 parsed->positional.front().c_str());
    return Usage(stderr);
  }

  const fs::path root = parsed->GetString("root", ".");
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "homets_lint: --root %s is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  const std::string format = parsed->GetString("format", "text");
  if (format != "text" && format != "json" && format != "dot") {
    std::fprintf(stderr, "homets_lint: unknown --format '%s'\n",
                 format.c_str());
    return Usage(stderr);
  }
  if (parsed->Has("baseline") && parsed->Has("baseline-check")) {
    std::fprintf(stderr,
                 "homets_lint: --baseline and --baseline-check are "
                 "mutually exclusive\n");
    return Usage(stderr);
  }

  std::set<std::string> enabled;
  if (parsed->Has("rules")) {
    for (const std::string& part :
         StrSplit(parsed->GetString("rules"), ',')) {
      const std::string rule{StrTrim(part)};
      if (rule.empty()) continue;
      if (!IsKnownRule(rule)) {
        std::fprintf(stderr, "homets_lint: unknown rule id '%s'\n",
                     rule.c_str());
        return 2;
      }
      enabled.insert(rule);
    }
  }

  LintConfig config;
  std::string config_path = parsed->GetString("config");
  if (config_path.empty()) {
    const fs::path implicit = root / "tools" / "homets_lint.json";
    if (fs::is_regular_file(implicit, ec)) config_path = implicit.string();
  }
  if (!config_path.empty()) {
    Result<LintConfig> loaded = LoadConfig(config_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "homets_lint: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    config = std::move(loaded).value();
  }

  LayerGraph layer_graph;
  bool have_layers = false;
  std::string layers_path = parsed->GetString("layers");
  if (layers_path.empty()) {
    const fs::path implicit = root / "tools" / "lint" / "layers.json";
    if (fs::is_regular_file(implicit, ec)) layers_path = implicit.string();
  }
  if (!layers_path.empty()) {
    Result<LayerGraph> loaded = LoadLayers(layers_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "homets_lint: %s\n",
                   loaded.status().ToString().c_str());
      return 2;
    }
    layer_graph = std::move(loaded).value();
    have_layers = true;
  }

  // Lex every file once; all passes share the views.
  const auto t_start = std::chrono::steady_clock::now();
  std::vector<SourceFile> files;
  for (const fs::path& path : CollectFiles(root)) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "homets_lint: cannot read %s\n",
                   path.string().c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const std::string rel = fs::relative(path, root, ec).generic_string();
    SourceFile file;
    file.rel_path = ec ? path.generic_string() : rel;
    file.text = text.str();
    file.views = BuildViews(file.text);
    files.push_back(std::move(file));
  }
  const IncludeGraph graph = IncludeGraph::Build(files);
  const auto t_lex = std::chrono::steady_clock::now();

  // Text pass first: its violation order (per-file, then the cross-file
  // Finish batch) is the frozen report prefix.
  TextPass text_pass(&config, &enabled);
  for (const SourceFile& file : files) text_pass.ScanFile(file);
  text_pass.Finish();  // homets-lint: allow(discarded-status) — returns void
  std::vector<Violation> violations = text_pass.violations();
  const auto t_text = std::chrono::steady_clock::now();

  // The graph-based passes append in (file, line, rule) order.
  std::vector<Violation> extra;
  RunArchPass(files, graph, have_layers ? &layer_graph : nullptr, config,
              enabled, &extra);
  const auto t_arch = std::chrono::steady_clock::now();
  RunHygienePass(files, graph, config, enabled, &extra);
  const auto t_hygiene = std::chrono::steady_clock::now();
  RunDeterminismPass(files, config, enabled, &extra);
  // Driver-level rule: every suppression must name a rule the registry
  // knows, or a typo silently suppresses nothing.
  for (const SourceFile& file : files) {
    if (!TextPass::RuleEnabled(config, enabled, "bad-suppression",
                               file.rel_path)) {
      continue;
    }
    for (const auto& [line, rule] : file.views.suppression_sites) {
      if (IsKnownRule(rule)) continue;
      extra.push_back({file.rel_path, line, "bad-suppression",
                       "suppression names unknown rule id '" + rule +
                           "' — see --list-rules; a typo here suppresses "
                           "nothing"});
    }
  }
  std::stable_sort(extra.begin(), extra.end(),
                   [](const Violation& a, const Violation& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  violations.insert(violations.end(), extra.begin(), extra.end());
  const auto t_end = std::chrono::steady_clock::now();

  if (parsed->GetString("timing") == "1") {
    std::fprintf(stderr,
                 "homets_lint: pass timings: lex %.1fms, text %.1fms, "
                 "arch %.1fms, hygiene %.1fms, determinism %.1fms\n",
                 MsBetween(t_start, t_lex), MsBetween(t_lex, t_text),
                 MsBetween(t_text, t_arch), MsBetween(t_arch, t_hygiene),
                 MsBetween(t_hygiene, t_end));
  }

  if (format == "dot") {
    const std::string dot =
        RenderDot(graph, have_layers ? &layer_graph : nullptr);
    std::fwrite(dot.data(), 1, dot.size(), stdout);
    return 0;
  }

  if (parsed->Has("baseline")) {
    const std::string out_path = parsed->GetString("baseline");
    std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "homets_lint: cannot write %s\n",
                   out_path.c_str());
      return 2;
    }
    out << RenderBaseline(violations);
    std::fprintf(stdout, "baseline: froze %zu violation(s) to %s\n",
                 violations.size(), out_path.c_str());
    return 0;
  }

  if (parsed->Has("baseline-check")) {
    const Result<Baseline> baseline =
        LoadBaseline(parsed->GetString("baseline-check"));
    if (!baseline.ok()) {
      std::fprintf(stderr, "homets_lint: %s\n",
                   baseline.status().ToString().c_str());
      return 2;
    }
    violations = SubtractBaseline(violations, *baseline);
  }

  if (format == "json") {
    const std::string json =
        RenderJson(violations, files.size(), text_pass.metric_names());
    std::fwrite(json.data(), 1, json.size(), stdout);
    if (violations.empty()) return 0;
    std::fprintf(stderr, "homets_lint: %zu violation(s) in %zu file(s)\n",
                 violations.size(), files.size());
    return 1;
  }

  for (const Violation& v : violations) {
    std::fprintf(stdout, "%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (!violations.empty()) {
    std::fprintf(stderr, "homets_lint: %zu violation(s) in %zu file(s)\n",
                 violations.size(), files.size());
    return 1;
  }
  std::fprintf(stdout, "OK: %zu files scanned, %zu metric names conform\n",
               files.size(), text_pass.metric_names());
  return 0;
}

}  // namespace
}  // namespace homets::lint

int main(int argc, char** argv) { return homets::lint::Run(argc, argv); }
