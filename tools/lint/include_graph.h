// Whole-program include graph over the scanned file set.
//
// Built once by the driver and shared by the architecture pass (layer DAG,
// cycles) and the hygiene pass (self-include-first, unused and transitive
// includes). Resolution is against the scanned set only — an include that
// does not resolve to a collected file (system headers, generated code) is
// kept with an empty `resolved` and ignored by the graph rules.

#ifndef HOMETS_TOOLS_LINT_INCLUDE_GRAPH_H_
#define HOMETS_TOOLS_LINT_INCLUDE_GRAPH_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint.h"

namespace homets::lint {

struct Include {
  size_t line = 0;      ///< 1-based line of the directive
  std::string target;   ///< the path as written between the delimiters
  std::string resolved; ///< rel path of the included file; empty if external
  bool angled = false;  ///< <…> (never resolved) vs "…"
};

class IncludeGraph {
 public:
  /// Parses every `#include` directive out of the files' code views and
  /// resolves quoted targets against the set, trying in order:
  ///   src/<target>, <target>, <dir-of-includer>/<target>.
  static IncludeGraph Build(const std::vector<SourceFile>& files);

  /// Directives of one file in source order; empty vector for unknown files.
  const std::vector<Include>& IncludesOf(const std::string& rel_path) const;

  /// Resolved rel paths reachable from `rel_path` through any include chain,
  /// excluding `rel_path` itself unless it sits on a cycle.
  std::set<std::string> TransitiveClosure(const std::string& rel_path) const;

  /// Every distinct include cycle, as a canonical rotation starting at the
  /// lexicographically smallest member: {"a.h", "b.h"} means a.h -> b.h ->
  /// a.h. Sorted by first member, deterministic across runs.
  std::vector<std::vector<std::string>> FindCycles() const;

  const std::map<std::string, std::vector<Include>>& files() const {
    return includes_;
  }

 private:
  std::map<std::string, std::vector<Include>> includes_;
};

/// The layer a file belongs to: the first path segment below src/
/// ("src/core/x.h" -> "core"), or the top-level tree name for bench/,
/// tools/ and tests/ ("tools/lint/main.cc" -> "tools"). Empty for anything
/// else.
std::string LayerOf(const std::string& rel_path);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_INCLUDE_GRAPH_H_
