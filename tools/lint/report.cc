#include "report.h"

#include <map>
#include <set>

#include "common/strings.h"

namespace homets::lint {
namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderText(const std::vector<Violation>& violations) {
  std::string out;
  for (const Violation& v : violations) {
    out += v.file + ":" + std::to_string(v.line) + ": " + v.rule + ": " +
           v.message + "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<Violation>& violations,
                       size_t files_scanned, size_t metric_names) {
  std::string out = "{\n  \"schema_version\": 1,\n  \"violations\": [";
  bool first = true;
  for (const Violation& v : violations) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"file\": \"" + JsonEscape(v.file) +
           "\", \"line\": " + std::to_string(v.line) + ", \"rule\": \"" +
           JsonEscape(v.rule) + "\", \"message\": \"" + JsonEscape(v.message) +
           "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"files_scanned\": " + std::to_string(files_scanned) +
         ",\n  \"metric_names\": " + std::to_string(metric_names) + "\n}\n";
  return out;
}

std::string RenderDot(const IncludeGraph& graph, const LayerGraph* layers) {
  std::set<std::string> nodes;
  // (from, to) -> true when at least one contributing file edge is neither
  // allowed nor waived.
  std::map<std::pair<std::string, std::string>, bool> edges;
  std::map<std::pair<std::string, std::string>, bool> only_waived;
  if (layers != nullptr) {
    for (const auto& [name, spec] : layers->layers) {
      (void)spec;
      nodes.insert(name);
    }
  }
  for (const auto& [file, incs] : graph.files()) {
    const std::string from = LayerOf(file);
    if (from.empty()) continue;
    nodes.insert(from);
    for (const Include& inc : incs) {
      if (inc.resolved.empty()) continue;
      const std::string to = LayerOf(inc.resolved);
      if (to.empty() || to == from) continue;
      nodes.insert(to);
      const bool allowed = layers == nullptr || layers->Allows(from, to);
      const bool waived =
          !allowed && layers != nullptr && layers->Waived(file, to);
      const auto key = std::make_pair(from, to);
      const auto it = edges.find(key);
      if (it == edges.end()) {
        edges[key] = !allowed && !waived;
        only_waived[key] = waived;
      } else {
        it->second = it->second || (!allowed && !waived);
        only_waived[key] = only_waived[key] && (allowed || waived);
      }
    }
  }
  std::string out = "digraph homets_layers {\n  rankdir=BT;\n";
  for (const std::string& node : nodes) {
    out += "  \"" + node + "\";\n";
  }
  for (const auto& [key, violating] : edges) {
    out += "  \"" + key.first + "\" -> \"" + key.second + "\"";
    if (violating) {
      out += " [color=red]";
    } else if (only_waived[key]) {
      out += " [style=dashed]";
    }
    out += ";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace homets::lint
