// Header-hygiene pass: four include-discipline rules over the scanned set
// and its include graph.
//
//   self-include-first — a .cc whose sibling header is in the set must
//                        include it, and include it first.
//   include-guard      — every .h carries a classic include guard
//                        (#ifndef/#define with matching names ending _H_);
//                        #pragma once is flagged for consistency.
//   unused-include     — a direct quoted include none of whose harvested
//                        symbols appear in the including file.
//   transitive-include — a file that names a symbol supplied only by a
//                        transitively reached header must include that
//                        header directly.
//
// Symbol matching is lexical: a header "supplies" every identifier in it
// that follows the project naming convention (UpperCamel types/functions,
// kConstants, HOMETS_ macros, g_ globals). That convention is what makes a
// token attributable at all without a real parser; lower_snake locals and
// members are invisible on purpose.

#ifndef HOMETS_TOOLS_LINT_HYGIENE_PASS_H_
#define HOMETS_TOOLS_LINT_HYGIENE_PASS_H_

#include <set>
#include <string>
#include <vector>

#include "config.h"
#include "include_graph.h"
#include "lint.h"

namespace homets::lint {

/// Appends the four hygiene-rule violations for the scanned set.
void RunHygienePass(const std::vector<SourceFile>& files,
                    const IncludeGraph& graph, const LintConfig& config,
                    const std::set<std::string>& enabled,
                    std::vector<Violation>* out);

/// Exposed for the determinism pass: the project-convention identifiers in
/// one file's pure view (see the header comment for the convention).
std::set<std::string> HarvestSymbols(const SourceFile& file);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_HYGIENE_PASS_H_
