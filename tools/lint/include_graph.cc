#include "include_graph.h"

#include <algorithm>

namespace homets::lint {
namespace {

/// "src/core/x.h" -> "src/core"; "main.cc" -> "".
std::string DirName(const std::string& rel_path) {
  const size_t slash = rel_path.rfind('/');
  return slash == std::string::npos ? std::string()
                                    : rel_path.substr(0, slash);
}

/// Parses one include directive out of a code-view line; false when the
/// line is not one.
bool ParseIncludeLine(const std::string& line, Include* inc) {
  size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '#') return false;
  i = line.find_first_not_of(" \t", i + 1);
  if (i == std::string::npos || line.compare(i, 7, "include") != 0) {
    return false;
  }
  const size_t open = line.find_first_of("\"<", i + 7);
  if (open == std::string::npos) return false;
  const char closer = line[open] == '<' ? '>' : '"';
  const size_t close = line.find(closer, open + 1);
  if (close == std::string::npos) return false;
  inc->target = line.substr(open + 1, close - open - 1);
  inc->angled = line[open] == '<';
  return true;
}

}  // namespace

std::string LayerOf(const std::string& rel_path) {
  const std::vector<const char*> tops = {"bench", "tools", "tests"};
  for (const char* top : tops) {
    if (rel_path.rfind(std::string(top) + "/", 0) == 0) return top;
  }
  if (rel_path.rfind("src/", 0) == 0) {
    const size_t next = rel_path.find('/', 4);
    if (next != std::string::npos) return rel_path.substr(4, next - 4);
  }
  return std::string();
}

IncludeGraph IncludeGraph::Build(const std::vector<SourceFile>& files) {
  IncludeGraph graph;
  std::set<std::string> known;
  for (const SourceFile& file : files) known.insert(file.rel_path);
  for (const SourceFile& file : files) {
    std::vector<Include>& out = graph.includes_[file.rel_path];
    const std::string dir = DirName(file.rel_path);
    for (size_t i = 0; i < file.views.code.size(); ++i) {
      Include inc;
      if (!ParseIncludeLine(file.views.code[i], &inc)) continue;
      inc.line = i + 1;
      if (!inc.angled) {
        // The tree's convention: project includes are root-relative under
        // src/ ("core/similarity.h"); tools/tests also use repo-relative
        // and same-directory paths.
        for (const std::string& candidate :
             {"src/" + inc.target, inc.target,
              dir.empty() ? inc.target : dir + "/" + inc.target}) {
          if (known.count(candidate) > 0) {
            inc.resolved = candidate;
            break;
          }
        }
      }
      out.push_back(inc);
    }
  }
  return graph;
}

const std::vector<Include>& IncludeGraph::IncludesOf(
    const std::string& rel_path) const {
  static const std::vector<Include> kEmpty;
  const auto it = includes_.find(rel_path);
  return it == includes_.end() ? kEmpty : it->second;
}

std::set<std::string> IncludeGraph::TransitiveClosure(
    const std::string& rel_path) const {
  std::set<std::string> seen;
  std::vector<std::string> frontier{rel_path};
  while (!frontier.empty()) {
    const std::string cur = std::move(frontier.back());
    frontier.pop_back();
    for (const Include& inc : IncludesOf(cur)) {
      if (inc.resolved.empty()) continue;
      if (seen.insert(inc.resolved).second) frontier.push_back(inc.resolved);
    }
  }
  return seen;
}

std::vector<std::vector<std::string>> IncludeGraph::FindCycles() const {
  // Coloring DFS; each back edge yields one cycle, deduped by canonical
  // rotation (start at the smallest member). The outer loop and include
  // lists are in deterministic order, so the result is too.
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::set<std::vector<std::string>> canon;
  std::vector<std::vector<std::string>> cycles;
  std::vector<std::string> stack;

  // Explicit DFS: (node, next-include-index).
  for (const auto& [start, unused] : includes_) {
    (void)unused;
    if (state[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> dfs{{start, 0}};
    state[start] = 1;
    stack.push_back(start);
    while (!dfs.empty()) {
      const std::string node = dfs.back().first;
      const size_t next = dfs.back().second++;
      const std::vector<Include>& incs = IncludesOf(node);
      // Skip directives that do not resolve into the set.
      size_t k = next;
      while (k < incs.size() && incs[k].resolved.empty()) {
        ++k;
        ++dfs.back().second;
      }
      if (k >= incs.size()) {
        state[node] = 2;
        stack.pop_back();
        dfs.pop_back();
        continue;
      }
      const std::string& dep = incs[k].resolved;
      if (state[dep] == 1) {
        const auto at = std::find(stack.begin(), stack.end(), dep);
        std::vector<std::string> cycle(at, stack.end());
        const auto min_it = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), min_it, cycle.end());
        if (canon.insert(cycle).second) cycles.push_back(cycle);
        continue;
      }
      if (state[dep] == 0) {
        state[dep] = 1;
        stack.push_back(dep);
        dfs.emplace_back(dep, 0);
      }
    }
  }
  std::sort(cycles.begin(), cycles.end());
  return cycles;
}

}  // namespace homets::lint
