#include "determinism_pass.h"

#include <cctype>

#include "text_pass.h"

namespace homets::lint {
namespace {

/// Joins the pure view back into one buffer (newline-separated) so
/// declarations whose template arguments span lines still parse; the
/// offset-to-line mapping recovers diagnostics positions.
struct FlatView {
  std::string text;
  std::vector<size_t> line_starts;  // offset of each line's first char

  explicit FlatView(const std::vector<std::string>& lines) {
    for (const std::string& line : lines) {
      line_starts.push_back(text.size());
      text += line;
      text += '\n';
    }
  }

  size_t LineAt(size_t offset) const {
    size_t lo = 0;
    size_t hi = line_starts.size();
    while (lo + 1 < hi) {
      const size_t mid = (lo + hi) / 2;
      if (line_starts[mid] <= offset) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo + 1;  // 1-based
  }
};

/// Variable names declared with an unordered container type. Parses
/// `unordered_map<...> [&*]name` with brace matching across lines; a name
/// directly followed by '(' is a function declaration, not a variable.
std::set<std::string> CollectUnorderedVars(const FlatView& flat) {
  std::set<std::string> vars;
  for (const char* token : {"unordered_map", "unordered_set"}) {
    const std::string needle(token);
    for (size_t pos = FindWord(flat.text, needle); pos != std::string::npos;
         pos = FindWord(flat.text, needle, pos + needle.size())) {
      size_t j = pos + needle.size();
      if (j >= flat.text.size() || flat.text[j] != '<') continue;
      int depth = 0;
      while (j < flat.text.size()) {
        if (flat.text[j] == '<') ++depth;
        if (flat.text[j] == '>' && --depth == 0) break;
        ++j;
      }
      if (j >= flat.text.size()) break;
      ++j;  // past '>'
      while (j < flat.text.size() &&
             (std::isspace(static_cast<unsigned char>(flat.text[j])) ||
              flat.text[j] == '&' || flat.text[j] == '*')) {
        ++j;
      }
      std::string name;
      while (j < flat.text.size() && IsWordChar(flat.text[j])) {
        name += flat.text[j++];
      }
      if (name.empty()) continue;
      if (j < flat.text.size() && flat.text[j] == '(') continue;
      vars.insert(name);
    }
  }
  return vars;
}

}  // namespace

void RunDeterminismPass(const std::vector<SourceFile>& files,
                        const LintConfig& config,
                        const std::set<std::string>& enabled,
                        std::vector<Violation>* out) {
  for (const SourceFile& file : files) {
    if (!TextPass::RuleEnabled(config, enabled, "unordered-iteration",
                               file.rel_path)) {
      continue;
    }
    const FlatView flat(file.views.pure);
    const std::set<std::string> vars = CollectUnorderedVars(flat);
    if (vars.empty()) continue;
    for (const std::string& name : vars) {
      for (size_t pos = FindWord(flat.text, name); pos != std::string::npos;
           pos = FindWord(flat.text, name, pos + name.size())) {
        const size_t end = pos + name.size();
        if (end < flat.text.size() && IsWordChar(flat.text[end])) continue;
        // Range-for: the token directly preceded by ':' (skipping spaces),
        // as in `for (const auto& kv : name)`.
        size_t back = pos;
        while (back > 0 && std::isspace(static_cast<unsigned char>(
                               flat.text[back - 1]))) {
          --back;
        }
        const bool range_for =
            back > 0 && flat.text[back - 1] == ':' &&
            (back < 2 || flat.text[back - 2] != ':');
        // Explicit iteration: name.begin() / name.cbegin().
        const bool begin_call =
            flat.text.compare(end, 7, ".begin(") == 0 ||
            flat.text.compare(end, 8, ".cbegin(") == 0;
        if (!range_for && !begin_call) continue;
        const size_t line = flat.LineAt(pos);
        if (IsSuppressed(file.views, line, "unordered-iteration")) continue;
        out->push_back(
            {file.rel_path, line, "unordered-iteration",
             "iteration over unordered container '" + name +
                 "' — bucket order is nondeterministic and leaks into the "
                 "output; iterate a sorted copy of the keys or use "
                 "std::map/std::set"});
      }
    }
  }
}

}  // namespace homets::lint
