#include "config.h"

#include <algorithm>
#include <set>

#include "registry.h"

#include "common/json.h"

namespace homets::lint {

Result<LintConfig> LoadConfig(const std::string& path) {
  LintConfig config;
  HOMETS_ASSIGN_OR_RETURN(const JsonValue doc, ReadJsonFile(path));
  const JsonValue* allow = doc.Find("allow_paths");
  if (allow == nullptr) return config;
  if (!allow->is_object()) {
    return Status::InvalidArgument(path + ": allow_paths must be an object");
  }
  for (const auto& [rule, paths] : allow->object_items()) {
    if (!IsKnownRule(rule)) {
      return Status::InvalidArgument(path + ": unknown rule id '" + rule +
                                     "' in allow_paths");
    }
    if (!paths.is_array()) {
      return Status::InvalidArgument(path + ": allow_paths." + rule +
                                     " must be an array of path substrings");
    }
    for (const JsonValue& entry : paths.array_items()) {
      if (!entry.is_string()) {
        return Status::InvalidArgument(path + ": allow_paths." + rule +
                                       " entries must be strings");
      }
      config.allow_paths[rule].push_back(entry.string_value());
    }
  }
  return config;
}

bool LayerGraph::Allows(const std::string& from_layer,
                        const std::string& to_layer) const {
  if (from_layer == to_layer) return true;
  const auto it = layers.find(from_layer);
  if (it == layers.end()) return false;
  if (it->second.allow_all) return true;
  const auto& deps = it->second.deps;
  return std::find(deps.begin(), deps.end(), to_layer) != deps.end();
}

bool LayerGraph::Waived(const std::string& rel_path,
                        const std::string& to_layer) const {
  const auto it = waivers.find(rel_path);
  if (it == waivers.end()) return false;
  const auto& targets = it->second;
  return std::find(targets.begin(), targets.end(), to_layer) != targets.end();
}

namespace {

/// Depth-first acyclicity check over the declared deps (allow-all layers
/// excluded: they sit at the top and may close arbitrary loops on paper).
/// Returns a cycle as "a -> b -> a" when one exists.
std::string FindDeclaredCycle(const LayerGraph& graph) {
  std::map<std::string, int> state;  // 0 unvisited, 1 on stack, 2 done
  std::vector<std::string> stack;
  std::string cycle;
  // Iterative DFS with an explicit stack of (layer, next-dep-index).
  for (const auto& [start, spec] : graph.layers) {
    if (spec.allow_all || state[start] != 0) continue;
    std::vector<std::pair<std::string, size_t>> dfs{{start, 0}};
    state[start] = 1;
    stack.push_back(start);
    while (!dfs.empty()) {
      auto& [layer, next] = dfs.back();
      const auto it = graph.layers.find(layer);
      const auto& deps = it->second.deps;
      if (next >= deps.size()) {
        state[layer] = 2;
        stack.pop_back();
        dfs.pop_back();
        continue;
      }
      const std::string dep = deps[next++];
      const auto dep_it = graph.layers.find(dep);
      if (dep_it == graph.layers.end() || dep_it->second.allow_all) continue;
      if (state[dep] == 1) {
        const auto at = std::find(stack.begin(), stack.end(), dep);
        for (auto s = at; s != stack.end(); ++s) cycle += *s + " -> ";
        cycle += dep;
        return cycle;
      }
      if (state[dep] == 0) {
        state[dep] = 1;
        stack.push_back(dep);
        dfs.emplace_back(dep, 0);
      }
    }
  }
  return cycle;
}

}  // namespace

Result<LayerGraph> LoadLayers(const std::string& path) {
  LayerGraph graph;
  HOMETS_ASSIGN_OR_RETURN(const JsonValue doc, ReadJsonFile(path));
  const JsonValue* layers = doc.Find("layers");
  if (layers == nullptr || !layers->is_object()) {
    return Status::InvalidArgument(path +
                                   ": expected a top-level \"layers\" object");
  }
  for (const auto& [name, deps] : layers->object_items()) {
    LayerSpec spec;
    if (!deps.is_array()) {
      return Status::InvalidArgument(path + ": layers." + name +
                                     " must be an array of layer names");
    }
    for (const JsonValue& dep : deps.array_items()) {
      if (!dep.is_string()) {
        return Status::InvalidArgument(path + ": layers." + name +
                                       " entries must be strings");
      }
      if (dep.string_value() == "*") {
        spec.allow_all = true;
      } else {
        spec.deps.push_back(dep.string_value());
      }
    }
    if (!graph.layers.emplace(name, std::move(spec)).second) {
      return Status::InvalidArgument(path + ": layer '" + name +
                                     "' declared twice");
    }
  }
  for (const auto& [name, spec] : graph.layers) {
    for (const std::string& dep : spec.deps) {
      if (graph.layers.count(dep) == 0) {
        return Status::InvalidArgument(path + ": layers." + name +
                                       " depends on undeclared layer '" + dep +
                                       "'");
      }
    }
  }
  const JsonValue* waivers = doc.Find("edge_waivers");
  if (waivers != nullptr) {
    if (!waivers->is_object()) {
      return Status::InvalidArgument(path + ": edge_waivers must be an object");
    }
    for (const auto& [rel_path, entry] : waivers->object_items()) {
      const JsonValue* to = entry.Find("to");
      if (!entry.is_object() || to == nullptr || !to->is_array()) {
        return Status::InvalidArgument(
            path + ": edge_waivers entries must be objects with a \"to\" "
                   "array (plus a \"why\" rationale)");
      }
      for (const JsonValue& layer : to->array_items()) {
        if (!layer.is_string() ||
            graph.layers.count(layer.string_value()) == 0) {
          return Status::InvalidArgument(path + ": edge_waivers." + rel_path +
                                         " names an undeclared layer");
        }
        graph.waivers[rel_path].push_back(layer.string_value());
      }
    }
  }
  const std::string cycle = FindDeclaredCycle(graph);
  if (!cycle.empty()) {
    return Status::InvalidArgument(path + ": declared layer graph is cyclic (" +
                                   cycle + ") — the contract is a DAG");
  }
  return graph;
}

}  // namespace homets::lint
