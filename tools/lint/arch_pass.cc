#include "arch_pass.h"

#include "text_pass.h"

#include "common/strings.h"

namespace homets::lint {

void RunArchPass(const std::vector<SourceFile>& files,
                 const IncludeGraph& graph, const LayerGraph* layers,
                 const LintConfig& config,
                 const std::set<std::string>& enabled,
                 std::vector<Violation>* out) {
  if (layers != nullptr) {
    for (const SourceFile& file : files) {
      if (!TextPass::RuleEnabled(config, enabled, "layer-dag", file.rel_path)) {
        continue;
      }
      const std::string from = LayerOf(file.rel_path);
      if (from.empty()) continue;
      // A file in a layer the contract does not declare is itself a
      // violation: the DAG must be total or it enforces nothing.
      if (layers->layers.count(from) == 0) {
        if (!IsSuppressed(file.views, 1, "layer-dag")) {
          out->push_back(
              {file.rel_path, 1, "layer-dag",
               "layer '" + from +
                   "' is not declared in layers.json — every layer must "
                   "appear in the contract"});
        }
        continue;
      }
      for (const Include& inc : graph.IncludesOf(file.rel_path)) {
        if (inc.resolved.empty()) continue;
        const std::string to = LayerOf(inc.resolved);
        if (to.empty() || layers->Allows(from, to)) continue;
        if (layers->Waived(file.rel_path, to)) continue;
        if (IsSuppressed(file.views, inc.line, "layer-dag")) continue;
        out->push_back(
            {file.rel_path, inc.line, "layer-dag",
             "upward include chain " + from + " -> " + to + " ('" +
                 inc.target + "' resolves to " + inc.resolved +
                 ") — layer '" + from + "' may only reach {" +
                 StrJoin(layers->layers.at(from).deps, ", ") +
                 "} per tools/lint/layers.json; invert the dependency or "
                 "add a waiver with a rationale"});
      }
    }
  }

  // Cycles are reported once each, anchored at the canonical first member's
  // include of the next file on the cycle.
  for (const std::vector<std::string>& cycle : graph.FindCycles()) {
    const std::string& anchor = cycle.front();
    if (!TextPass::RuleEnabled(config, enabled, "include-cycle", anchor)) {
      continue;
    }
    const std::string& next = cycle.size() > 1 ? cycle[1] : cycle[0];
    size_t line = 1;
    const SourceFile* anchor_file = nullptr;
    for (const SourceFile& file : files) {
      if (file.rel_path == anchor) {
        anchor_file = &file;
        break;
      }
    }
    for (const Include& inc : graph.IncludesOf(anchor)) {
      if (inc.resolved == next) {
        line = inc.line;
        break;
      }
    }
    if (anchor_file != nullptr &&
        IsSuppressed(anchor_file->views, line, "include-cycle")) {
      continue;
    }
    std::string chain;
    for (const std::string& member : cycle) chain += member + " -> ";
    chain += anchor;
    out->push_back({anchor, line, "include-cycle",
                    "include cycle " + chain +
                        " — headers must form a DAG; break the loop with a "
                        "forward declaration or by splitting the header"});
  }
}

}  // namespace homets::lint
