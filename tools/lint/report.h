// Output rendering for the lint driver: the frozen text format, a
// machine-readable JSON report, and a Graphviz view of the observed layer
// graph (--format dot).

#ifndef HOMETS_TOOLS_LINT_REPORT_H_
#define HOMETS_TOOLS_LINT_REPORT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "config.h"
#include "include_graph.h"
#include "lint.h"

namespace homets::lint {

/// The frozen one-line-per-violation text block:
///   <file>:<line>: <rule-id>: <message>\n
std::string RenderText(const std::vector<Violation>& violations);

/// JSON report: schema_version, the violation list, and the two scan
/// counters that the text format folds into its OK line.
std::string RenderJson(const std::vector<Violation>& violations,
                       size_t files_scanned, size_t metric_names);

/// Graphviz digraph of the layer-level include graph: one node per layer
/// (declared or observed), one edge per observed cross-layer include.
/// Edges the contract forbids are red; edges that survive only through
/// file-level waivers are dashed. `layers` may be null (no layers.json):
/// every edge renders plain. Deterministic: nodes and edges are sorted.
std::string RenderDot(const IncludeGraph& graph, const LayerGraph* layers);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_REPORT_H_
