// Baseline support: freeze the current violation set to JSON and later gate
// only on regressions against it.
//
//   homets_lint --baseline out.json        writes the baseline (exit 0)
//   homets_lint --baseline-check out.json  subtracts it; only violations
//                                          beyond the recorded counts fail
//
// Entries are keyed on (file, rule) with a count — line numbers churn with
// every edit, so pinning them would make the baseline useless after one
// refactor. A file that reduces its count tightens the effective budget the
// next time the baseline is refrozen.

#ifndef HOMETS_TOOLS_LINT_BASELINE_H_
#define HOMETS_TOOLS_LINT_BASELINE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

#include "lint.h"

namespace homets::lint {

struct Baseline {
  /// (file, rule) -> allowed violation count.
  std::map<std::pair<std::string, std::string>, size_t> entries;
};

/// Serializes the violations as a baseline document (schema_version 1),
/// sorted by (file, rule).
std::string RenderBaseline(const std::vector<Violation>& violations);

Result<Baseline> LoadBaseline(const std::string& path);

/// The violations that exceed the baseline's per-(file, rule) budget: the
/// first `count` hits of each key are absorbed, the rest returned in input
/// order.
std::vector<Violation> SubtractBaseline(const std::vector<Violation>& all,
                                        const Baseline& baseline);

}  // namespace homets::lint

#endif  // HOMETS_TOOLS_LINT_BASELINE_H_
