// homets_profile: turn a run manifest (+ optional metrics export) into a
// per-stage scaling diagnosis.
//
//   homets_profile RUN_MANIFEST.json [--metrics METRICS.json] [--min-wall-sec S]
//
// For every stage recorded by StageTimer (manifest schema v2) it prints:
//   - wall seconds, cpu seconds (user+sys from getrusage deltas)
//   - parallel efficiency = cpu_seconds / (wall_seconds * threads_used)
//   - lock share = lock wait seconds per available core-second
//   - queue pressure = block queue-wait seconds per available core-second
//     (can exceed 1: with more blocks than execution slots, many blocks wait
//     concurrently — high pressure means dispatch serialization, not a bug)
// and a verdict: scales / partial / core-bound / lock-bound /
// under-utilized / too-short. With --metrics it adds p50/p95/p99 for the
// thread-pool task-run and queue-wait histograms. The lock/queue figures
// come from the homets.prof.* counter deltas, so the run must have been
// profiled (--prof) for them to be non-zero.
//
// Exit codes: 0 report printed, 2 usage or artifact error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/json.h"

namespace homets {
namespace {

struct StageRow {
  std::string stage;
  double wall = 0.0;
  uint64_t units = 0;
  bool has_cpu = false;
  double cpu = 0.0;
  uint64_t max_rss = 0;
  uint64_t major_faults = 0;
  double lock_wait_sec = 0.0;
  double queue_wait_sec = 0.0;
  double pool_busy_sec = 0.0;
};

double MetricDelta(const JsonValue& entry, const char* name) {
  const JsonValue* metrics = entry.Find("metrics");
  if (metrics == nullptr) return 0.0;
  const JsonValue* v = metrics->Find(name);
  return (v != nullptr && v->is_number()) ? v->number_value() : 0.0;
}

const char* Verdict(const StageRow& row, int threads, double efficiency,
                    double lock_share, double queue_pressure,
                    double min_wall_sec) {
  if (row.wall < min_wall_sec) return "too-short";
  if (lock_share > 0.15) return "lock-bound";
  if (threads > 1 && efficiency > 0.0 && efficiency < 0.5) {
    // Distinguish "the machine has no more cores" from "the workers are
    // starved": if total CPU burnt is about one core's worth of the wall
    // time, the stage ran serially no matter how many threads it asked for.
    if (row.has_cpu && row.cpu <= row.wall * 1.25) return "core-bound";
    return "under-utilized";
  }
  if (efficiency >= 0.75) return "scales";
  if (efficiency > 0.0) return "partial";
  (void)queue_pressure;
  return "no-data";
}

// Percentile from an ExportJson histogram node ({"count", "sum",
// "buckets": [{"le": bound|"+inf", "count": n}, ...]}), mirroring
// obs::HistogramPercentile (linear interpolation, overflow clamps to the
// highest finite bound).
double JsonHistogramPercentile(const JsonValue& hist, double quantile) {
  const double count = hist.NumberOr("count", 0);
  const JsonValue* buckets = hist.Find("buckets");
  if (count <= 0 || buckets == nullptr || !buckets->is_array()) return 0.0;
  const double target = quantile * count;
  double cumulative = 0.0;
  double last_finite = 0.0;
  double lower = 0.0;
  for (const JsonValue& bucket : buckets->array_items()) {
    const JsonValue* le = bucket.Find("le");
    const double in_bucket = bucket.NumberOr("count", 0);
    const bool finite = le != nullptr && le->is_number();
    const double upper = finite ? le->number_value() : last_finite;
    if (finite) last_finite = upper;
    if (in_bucket > 0 && cumulative + in_bucket >= target) {
      if (!finite) return last_finite;
      return lower + (upper - lower) * (target - cumulative) / in_bucket;
    }
    cumulative += in_bucket;
    if (finite) lower = upper;
  }
  return last_finite;
}

int Run(const ParsedArgs& args) {
  const std::string& manifest_path = args.positional[0];
  double min_wall_sec = 0.01;
  if (args.Has("min-wall-sec")) {
    char* end = nullptr;
    const std::string raw = args.GetString("min-wall-sec");
    min_wall_sec = std::strtod(raw.c_str(), &end);
    if (end == raw.c_str() || *end != '\0' || min_wall_sec < 0) {
      std::fprintf(stderr, "homets_profile: bad --min-wall-sec %s\n",
                   raw.c_str());
      return 2;
    }
  }

  auto parsed = ReadJsonFile(manifest_path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "homets_profile: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  const JsonValue root = std::move(parsed).value();
  if (!root.is_object()) {
    std::fprintf(stderr, "homets_profile: %s: top level is not an object\n",
                 manifest_path.c_str());
    return 2;
  }
  const double schema_version = root.NumberOr("schema_version", 0);
  const JsonValue* threads_node = root.Find("threads");
  const int hardware =
      threads_node ? static_cast<int>(threads_node->NumberOr("hardware", 0))
                   : 0;
  int used = threads_node
                 ? static_cast<int>(threads_node->NumberOr("used", 0))
                 : 0;
  if (used <= 0) used = 1;
  const JsonValue* stages = root.Find("stages");
  if (stages == nullptr || !stages->is_array()) {
    std::fprintf(stderr, "homets_profile: %s: missing \"stages\" array\n",
                 manifest_path.c_str());
    return 2;
  }

  std::printf("homets_profile: %s (manifest schema v%g, tool %s)\n",
              manifest_path.c_str(), schema_version,
              root.StringOr("tool", "?").c_str());
  std::printf("threads: hardware=%d used=%d\n", hardware, used);
  if (schema_version < 2) {
    std::printf("note: manifest schema v%g predates per-stage resources; "
                "cpu/efficiency columns will read n/a\n", schema_version);
  }

  std::vector<StageRow> rows;
  for (const JsonValue& entry : stages->array_items()) {
    StageRow row;
    row.stage = entry.StringOr("stage", "?");
    row.wall = entry.NumberOr("seconds", 0);
    row.units = static_cast<uint64_t>(entry.NumberOr("units", 0));
    if (const JsonValue* res = entry.Find("resources")) {
      row.has_cpu = res->Find("cpu_seconds") != nullptr;
      row.cpu = res->NumberOr("cpu_seconds", 0);
      row.max_rss = static_cast<uint64_t>(res->NumberOr("max_rss_bytes", 0));
      row.major_faults =
          static_cast<uint64_t>(res->NumberOr("major_faults", 0));
    }
    row.lock_wait_sec =
        MetricDelta(entry, "homets.prof.lock_wait_us") / 1e6;
    row.queue_wait_sec =
        MetricDelta(entry, "homets.prof.queue_wait_us") / 1e6;
    row.pool_busy_sec =
        MetricDelta(entry, "homets.prof.pool_busy_us") / 1e6;
    rows.push_back(std::move(row));
  }

  std::printf("%-28s %9s %9s %6s %6s %7s %8s  %s\n", "stage", "wall_s",
              "cpu_s", "eff", "lock%", "queue_p", "rss_mb", "verdict");
  double total_wall = 0.0;
  double total_cpu = 0.0;
  double total_lock = 0.0;
  bool any_cpu = false;
  for (const StageRow& row : rows) {
    total_wall += row.wall;
    total_lock += row.lock_wait_sec;
    const double core_seconds = row.wall * used;
    const double efficiency =
        row.has_cpu && core_seconds > 0 ? row.cpu / core_seconds : 0.0;
    const double lock_share =
        core_seconds > 0 ? row.lock_wait_sec / core_seconds : 0.0;
    const double queue_pressure =
        core_seconds > 0 ? row.queue_wait_sec / core_seconds : 0.0;
    char cpu_buf[32];
    char eff_buf[16];
    if (row.has_cpu) {
      total_cpu += row.cpu;
      any_cpu = true;
      std::snprintf(cpu_buf, sizeof(cpu_buf), "%9.3f", row.cpu);
      std::snprintf(eff_buf, sizeof(eff_buf), "%6.2f", efficiency);
    } else {
      std::snprintf(cpu_buf, sizeof(cpu_buf), "%9s", "n/a");
      std::snprintf(eff_buf, sizeof(eff_buf), "%6s", "n/a");
    }
    std::printf("%-28s %9.3f %s %s %6.1f %7.2f %8.1f  %s\n",
                row.stage.c_str(), row.wall, cpu_buf, eff_buf,
                lock_share * 100.0, queue_pressure,
                static_cast<double>(row.max_rss) / (1024.0 * 1024.0),
                Verdict(row, used, efficiency, lock_share, queue_pressure,
                        min_wall_sec));
  }
  const double overall_core_seconds = total_wall * used;
  const double overall_eff =
      any_cpu && overall_core_seconds > 0 ? total_cpu / overall_core_seconds
                                          : 0.0;
  std::printf("totals: wall=%.3fs cpu=%.3fs efficiency=%.2f "
              "lock_wait=%.3fs\n",
              total_wall, total_cpu, overall_eff, total_lock);

  // The headline diagnosis: what bounds this run's scaling.
  if (used > hardware && hardware > 0) {
    std::printf(
        "diagnosis: %d threads requested on %d hardware core(s) — the "
        "efficiency ceiling is %d/%d = %.2f; extra threads time-slice one "
        "core and cannot speed anything up\n",
        used, hardware, hardware, used,
        static_cast<double>(hardware) / used);
  } else if (any_cpu && overall_eff < 0.5 &&
             total_lock > 0.1 * overall_core_seconds) {
    std::printf("diagnosis: lock contention dominates (%.0f%% of core "
                "time) — shrink critical sections before adding threads\n",
                100.0 * total_lock / overall_core_seconds);
  } else if (any_cpu && overall_eff < 0.5) {
    std::printf("diagnosis: low efficiency without matching lock wait — "
                "workers are starved or memory-stalled; check queue "
                "pressure and per-worker block counts (--prof-out)\n");
  } else if (any_cpu) {
    std::printf("diagnosis: scaling is healthy at this thread count\n");
  } else {
    std::printf("diagnosis: no per-stage cpu accounting in this manifest — "
                "rerun with a schema v2 manifest (current build) to get "
                "efficiency figures\n");
  }

  if (args.Has("metrics")) {
    const std::string metrics_path = args.GetString("metrics");
    auto metrics_parsed = ReadJsonFile(metrics_path);
    if (!metrics_parsed.ok()) {
      std::fprintf(stderr, "homets_profile: %s\n",
                   metrics_parsed.status().message().c_str());
      return 2;
    }
    const JsonValue metrics = std::move(metrics_parsed).value();
    for (const char* name :
         {"homets.threadpool.task_latency_us",
          "homets.threadpool.queue_wait_us"}) {
      const JsonValue* hist = metrics.Find(name);
      if (hist == nullptr || !hist->is_object()) continue;
      std::printf("%s: count=%.0f p50=%.1fus p95=%.1fus p99=%.1fus\n", name,
                  hist->NumberOr("count", 0),
                  JsonHistogramPercentile(*hist, 0.50),
                  JsonHistogramPercentile(*hist, 0.95),
                  JsonHistogramPercentile(*hist, 0.99));
    }
  }
  return 0;
}

}  // namespace
}  // namespace homets

int main(int argc, char** argv) {
  std::vector<std::string> raw(argv + 1, argv + argc);
  auto parsed = homets::ParseFlags(raw, {"metrics", "min-wall-sec"});
  if (!parsed.ok()) {
    std::fprintf(stderr, "homets_profile: %s\n",
                 parsed.status().message().c_str());
    return 2;
  }
  if (parsed.value().positional.size() != 1) {
    std::fprintf(stderr,
                 "usage: homets_profile RUN_MANIFEST.json "
                 "[--metrics METRICS.json] [--min-wall-sec S]\n");
    return 2;
  }
  return homets::Run(parsed.value());
}
