#!/bin/sh
# Runs clang-tidy (profile: the committed .clang-tidy) over the library and
# tool sources using the compile_commands.json the build exports
# (CMAKE_EXPORT_COMPILE_COMMANDS is ON globally). Registered as the
# `clang_tidy` ctest under the `lint` label.
#
# Degrades gracefully: when clang-tidy is not installed (the CI container is
# GCC-only) or the compilation database is missing, it prints why and exits
# 0 so the lint tier stays green on toolchains that cannot run it. Force a
# hard failure instead with HOMETS_TIDY_REQUIRED=1 on clang-equipped hosts.
#
# Usage: run_clang_tidy.sh [REPO_ROOT] [BUILD_DIR]
set -eu

root="${1:-$(dirname "$0")/..}"
build="${2:-$root/build}"
required="${HOMETS_TIDY_REQUIRED:-0}"

skip() {
    echo "SKIP: $1"
    if [ "$required" = "1" ]; then
        echo "FAIL: HOMETS_TIDY_REQUIRED=1 but clang-tidy cannot run" >&2
        exit 1
    fi
    exit 0
}

command -v clang-tidy >/dev/null 2>&1 || skip "clang-tidy not installed"
[ -f "$build/compile_commands.json" ] || \
    skip "no compile database at $build/compile_commands.json (configure with cmake first)"

# Scan library + tool translation units; tests and benches track gtest and
# benchmark idioms that tidy's generic profile mis-fires on.
files=$(find "$root/src" "$root/tools" -name '*.cc' | sort)
[ -n "$files" ] || skip "no sources found under $root/src"

fail=0
for file in $files; do
    clang-tidy --quiet -p "$build" "$file" || fail=1
done

if [ "$fail" -ne 0 ]; then
    echo "FAIL: clang-tidy reported findings" >&2
    exit 1
fi
echo "OK: clang-tidy clean ($(echo "$files" | wc -l | tr -d ' ') files)"
