// homets command-line tool: generate synthetic fleets, profile gateway
// traces, and mine motifs — the framework's operations without writing C++.
//
//   homets_cli generate --out DIR [--gateways N] [--weeks W] [--seed S]
//                       [--format csv|homets]
//   homets_cli convert --to homets|csv [--out DIR] TRACE [TRACE ...]
//   homets_cli profile TRACE
//   homets_cli motifs [--period daily|weekly] TRACE [TRACE ...]
//   homets_cli stream [--period daily|weekly] [--horizon N] TRACE [...]
//   homets_cli analyze [--shards N] [--threads N] [--checkpoint-dir DIR]
//                      [--resume] [--shard-attempts N]
//                      [--shard-backoff-ms MS] [--shard-deadline-ms MS]
//                      [--fail-fast] TRACE [TRACE ...]
//
// TRACE arguments are read through DatasetReader: `.homets` files decode as
// the binary columnar format (DESIGN.md §11), anything else as the
// WriteGatewayCsv long format; --input-format=csv|homets overrides the
// extension. A .homets file may hold a whole fleet — each gateway inside is
// analyzed as if it had been passed as its own CSV, so analytical stdout is
// byte-identical across formats.
//
// Every subcommand also takes the observability flags
//   --metrics-out FILE   write the end-of-run metrics registry as JSON
//   --trace-out FILE     record spans and write Chrome trace_event JSON
//                        (open in about:tracing or https://ui.perfetto.dev)
//   --metrics-flush-out FILE           append periodic Prometheus-text
//                                      exposition blocks during the run
//   --metrics-flush-interval-sec SEC   flush period (default 60); requires
//                                      --metrics-flush-out
// the resilience flags
//   --input-format auto|csv|homets     how to decode TRACE args (default
//                                      auto: by extension)
//   --read-policy strict|skip|repair   bad-row handling for trace ingestion
//   --read-retries N                   retry transient IO failures N times
//   --failpoints SPEC                  arm fault injection (DESIGN.md §8)
//   --failpoints-seed N                seed for probabilistic failpoints
// and the run-telemetry flags (DESIGN.md §12)
//   --log-out FILE       write structured JSON-lines logs to FILE
//   --log-level LEVEL    debug|info|warn|error|off; default warn on stderr,
//                        info when --log-out or --progress is given
//   --progress           emit periodic heartbeat lines (percent, rate, ETA,
//                        queue depth) per pipeline stage
//   --progress-interval-sec SEC        heartbeat period (default 2);
//                                      requires --progress
//   --run-manifest-out FILE            write a schema-versioned
//                                      RUN_MANIFEST.json describing the run
// and prints a metrics summary on stderr when the run succeeds. The flusher,
// logger, and heartbeats write only to stderr or their own files, so
// analytical stdout is byte-identical with and without telemetry.
//
// The manifest is written on success AND on failure/cancellation (partial
// stages plus the first failing Status), so an orchestrator can audit a
// killed shard from its manifest alone.
//
// Exit codes (documented in tools/README.md): 0 success, 2 usage error,
// 10 + StatusCode for a Status failure (e.g. 17 = IoError), 1 for failures
// with no Status attached. Status failures print the canonical code name on
// stderr so scripts can match either channel.
//
// Flags are strict: unknown --flags and a trailing --flag with no value are
// usage errors, never positionals.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "common/flags.h"
#include "common/strings.h"
#include "core/background.h"
#include "core/motif.h"
#include "core/profiling.h"
#include "core/stationarity.h"
#include "core/streaming.h"
#include "fleet/orchestrator.h"
#include "io/dataset.h"
#include "io/table.h"
#include "obs/flusher.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/progress.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "simgen/fleet.h"
#include "storage/homets_format.h"

namespace {

using namespace homets;  // NOLINT: tool binary

int Usage() {
  std::cerr
      << "usage:\n"
         "  homets_cli generate --out DIR [--gateways N] [--weeks W] "
         "[--seed S] [--format csv|homets]\n"
         "  homets_cli convert --to homets|csv [--out DIR] TRACE [...]\n"
         "  homets_cli profile TRACE\n"
         "  homets_cli motifs [--period daily|weekly] TRACE [...]\n"
         "  homets_cli stream [--period daily|weekly] [--horizon N] "
         "TRACE [...]\n"
         "  homets_cli analyze [--shards N] [--threads N] "
         "[--checkpoint-dir DIR]\n"
         "                     [--resume] [--shard-attempts N] "
         "[--shard-backoff-ms MS]\n"
         "                     [--shard-deadline-ms MS] [--fail-fast] "
         "TRACE [...]\n"
         "common flags (all subcommands):\n"
         "  --metrics-out FILE   write end-of-run metrics as JSON\n"
         "  --trace-out FILE     write a Chrome/Perfetto trace of the run\n"
         "  --metrics-flush-out FILE          append Prometheus-text "
         "flushes during the run\n"
         "  --metrics-flush-interval-sec SEC  flush period (default 60)\n"
         "  --input-format auto|csv|homets    TRACE decoding (default "
         "auto: by extension)\n"
         "  --read-policy strict|skip|repair  bad-row handling (default "
         "strict)\n"
         "  --read-retries N     retry transient IO failures N times\n"
         "  --failpoints SPEC    arm fault injection (see tools/README.md)\n"
         "  --failpoints-seed N  seed for probabilistic failpoints\n"
         "  --log-out FILE       write structured JSON-lines logs\n"
         "  --log-level LEVEL    debug|info|warn|error|off (default warn)\n"
         "  --progress           heartbeat lines (rate, ETA, queue depth)\n"
         "  --progress-interval-sec SEC  heartbeat period (default 2)\n"
         "  --run-manifest-out FILE      write a run manifest JSON\n"
         "  --prof               enable the execution profiler (lock\n"
         "                       contention, pool accounting, alloc tally)\n"
         "  --prof-out FILE      write the profiler report JSON (needs "
         "--prof)\n";
  return 2;
}

// The observability and resilience flags every subcommand accepts.
const std::set<std::string> kObsFlags = {
    "metrics-out",  "trace-out",    "metrics-flush-out",
    "metrics-flush-interval-sec",   "input-format", "read-policy",
    "read-retries", "failpoints",   "failpoints-seed",
    "log-out",      "log-level",    "progress",
    "progress-interval-sec",        "run-manifest-out",
    "prof",         "prof-out"};

// Flags that take no value (bare `--progress`; `--progress=0` still parses).
const std::set<std::string> kBoolFlags = {"progress", "prof", "resume",
                                          "fail-fast"};

std::set<std::string> WithObsFlags(std::set<std::string> flags) {
  flags.insert(kObsFlags.begin(), kObsFlags.end());
  return flags;
}

// The run's manifest, when --run-manifest-out asked for one. File scope so
// FailWith can record the first failing Status from any subcommand depth.
obs::RunManifestBuilder* g_manifest = nullptr;

// Status failures exit as 10 + the numeric StatusCode (IoError = 17,
// InvalidArgument = 11, ...) so scripts can tell a transient IO problem from
// corrupt input without parsing stderr. `context` names the failing step.
int FailWith(const std::string& context, const Status& status) {
  if (g_manifest != nullptr) g_manifest->MarkFailed(context, status);
  std::cerr << context << ": [" << StatusCodeToString(status.code()) << "] "
            << status.message() << "\n";
  return 10 + static_cast<int>(status.code());
}

// Dataset options (format + resilient ingestion) from the common flags;
// exits via usage error on a bad policy or format name.
Result<io::DatasetOptions> DatasetOptionsFromFlags(const ParsedArgs& args) {
  io::DatasetOptions options;
  HOMETS_ASSIGN_OR_RETURN(
      options.format,
      io::ParseInputFormat(args.GetString("input-format", "auto")));
  const std::string policy = args.GetString("read-policy", "strict");
  if (policy == "skip") {
    options.read.policy = io::ErrorPolicy::kSkipAndReport;
  } else if (policy == "repair") {
    options.read.policy = io::ErrorPolicy::kRepair;
  } else if (policy != "strict") {
    return Status::InvalidArgument(
        "--read-policy must be strict, skip, or repair");
  }
  HOMETS_ASSIGN_OR_RETURN(const int64_t retries,
                          args.GetInt("read-retries", 0));
  if (retries < 0) {
    return Status::InvalidArgument("--read-retries must be >= 0");
  }
  options.read.max_retries = static_cast<int>(retries);
  return options;
}

// Narrates quarantine/repair activity of the CSV edge to stderr so lenient
// runs stay auditable (stdout stays byte-identical across formats), and
// accumulates the counters into the run manifest.
void NarrateIngest(const io::IngestReport& report) {
  if (g_manifest != nullptr) {
    obs::ManifestIngestCounters counters;
    counters.rows_parsed = report.rows_parsed;
    counters.rows_malformed = report.rows_malformed;
    counters.rows_duplicate = report.rows_duplicate;
    counters.rows_out_of_order = report.rows_out_of_order;
    counters.gaps_repaired = report.gaps_repaired;
    counters.retries = report.retries;
    counters.files_quarantined = report.truncated ? 1 : 0;
    g_manifest->RecordIngest(counters);
  }
  if (report.SkippedTotal() > 0 || report.gaps_repaired > 0 ||
      report.retries > 0 || report.truncated) {
    std::cerr << "ingest: " << report.Summary() << "\n";
  }
}

// Manifest label for one TRACE argument under the resolved input format.
std::string InputFormatLabel(const std::string& path,
                             const io::DatasetOptions& options) {
  return std::string(
      io::InputFormatName(io::GuessFormat(path, options.format)));
}

int FlagIntOr(const ParsedArgs& args, const std::string& flag,
              int64_t fallback, int64_t* out) {
  const auto value = args.GetInt(flag, fallback);
  if (!value.ok()) {
    std::cerr << "error: " << value.status().ToString() << "\n";
    return 2;
  }
  *out = *value;
  return 0;
}

int RunGenerate(const ParsedArgs& args) {
  if (!args.Has("out")) {
    std::cerr << "generate: --out DIR is required\n";
    return 2;
  }
  const std::string out_dir = args.GetString("out");
  int64_t gateways = 0, weeks = 0, seed = 0;
  if (FlagIntOr(args, "gateways", 8, &gateways) != 0) return 2;
  if (FlagIntOr(args, "weeks", 4, &weeks) != 0) return 2;
  if (FlagIntOr(args, "seed", 20140317, &seed) != 0) return 2;
  simgen::SimConfig config;
  config.n_gateways = static_cast<int>(gateways);
  config.weeks = static_cast<int>(weeks);
  config.seed = static_cast<uint64_t>(seed);
  config.surveyed_gateways =
      std::min(config.surveyed_gateways, config.n_gateways);
  const Status valid = simgen::ValidateSimConfig(config);
  if (!valid.ok()) {
    std::cerr << "generate: " << valid.ToString() << "\n";
    return 2;
  }
  const std::string format = args.GetString("format", "csv");
  if (format != "csv" && format != "homets") {
    std::cerr << "generate: --format must be csv or homets\n";
    return 2;
  }
  obs::ScopedSpan span("cli.generate");
  obs::RunManifestBuilder::StageTimer stage(g_manifest, "generate");
  stage.set_units(static_cast<uint64_t>(config.n_gateways));
  simgen::FleetGenerator generator(config);
  if (format == "homets") {
    // Out-of-core: the whole fleet streams into one columnar file, one
    // gateway in memory at a time.
    const std::string path = out_dir + "/fleet.homets";
    const auto stats = storage::WriteFleetHomets(generator, path);
    if (!stats.ok()) return FailWith("write failed", stats.status());
    std::cout << path << ": " << stats->gateways << " gateways, "
              << stats->devices << " devices, " << stats->chunks
              << " chunks\n";
    return 0;
  }
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = generator.Generate(id);
    const std::string path =
        StrFormat("%s/gateway_%03d.csv", out_dir.c_str(), id);
    const Status status =
        io::WriteGatewayFile(path, gw, io::InputFormat::kCsv);
    if (!status.ok()) return FailWith("write failed", status);
    std::cout << path << ": " << gw.devices.size() << " devices, "
              << gw.AggregateTraffic().CountObserved()
              << " observed minutes\n";
  }
  return 0;
}

// Splits `path` into (directory, stem without the final extension) for
// convert output naming.
void SplitPath(const std::string& path, std::string* dir,
               std::string* stem) {
  const size_t slash = path.find_last_of('/');
  *dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = base.find_last_of('.');
  *stem = dot == std::string::npos || dot == 0 ? base : base.substr(0, dot);
}

// csv→homets compaction and homets→csv export. Outputs land next to each
// input (or under --out DIR) with the extension swapped; a multi-gateway
// .homets file exports one numbered CSV per gateway.
int RunConvert(const ParsedArgs& args,
               const io::DatasetOptions& dataset_options) {
  if (args.positional.empty()) {
    std::cerr << "convert: at least one TRACE expected\n";
    return 2;
  }
  const std::string to = args.GetString("to");
  if (to != "homets" && to != "csv") {
    std::cerr << "convert: --to homets|csv is required\n";
    return 2;
  }
  obs::ScopedSpan span("cli.convert");
  obs::RunManifestBuilder::StageTimer stage(g_manifest, "convert");
  stage.set_units(args.positional.size());
  for (const std::string& path : args.positional) {
    std::string dir, stem;
    SplitPath(path, &dir, &stem);
    const std::string out_dir =
        args.Has("out") ? args.GetString("out") : dir;
    if (to == "homets") {
      const std::string out = out_dir + "/" + stem + ".homets";
      io::IngestReport report;
      const auto stats =
          io::CompactCsvToHomets(path, out, dataset_options.read, &report);
      NarrateIngest(report);
      if (!stats.ok()) return FailWith("convert failed", stats.status());
      std::cout << path << " -> " << out << ": " << stats->rows
                << " rows, " << stats->devices << " devices\n";
      continue;
    }
    const auto reader = storage::HometsReader::Open(path);
    if (!reader.ok()) return FailWith("convert failed", reader.status());
    const size_t gateways = reader->gateway_count();
    for (size_t g = 0; g < gateways; ++g) {
      const auto gw = reader->ReadGateway(g);
      if (!gw.ok()) return FailWith("convert failed", gw.status());
      const std::string out =
          gateways == 1
              ? out_dir + "/" + stem + ".csv"
              : StrFormat("%s/%s_%03zu.csv", out_dir.c_str(), stem.c_str(),
                          g);
      const Status status =
          io::WriteGatewayFile(out, *gw, io::InputFormat::kCsv);
      if (!status.ok()) return FailWith("convert failed", status);
      std::cout << path << " -> " << out << ": " << gw->devices.size()
                << " devices\n";
    }
  }
  return 0;
}

int RunProfile(const ParsedArgs& args,
               const io::DatasetOptions& dataset_options) {
  if (args.positional.size() != 1) {
    std::cerr << "profile: exactly one TRACE expected\n";
    return 2;
  }
  auto reader = io::DatasetReader::Open(args.positional[0], dataset_options);
  if (!reader.ok()) return FailWith("read failed", reader.status());
  if (reader->gateway_count() != 1) {
    std::cerr << "profile: " << args.positional[0] << " holds "
              << reader->gateway_count()
              << " gateways; profile expects exactly one\n";
    return 2;
  }
  const auto gw = reader->ReadGateway(0);
  if (!gw.ok()) return FailWith("read failed", gw.status());
  NarrateIngest(reader->report());
  obs::ScopedSpan span("cli.profile");
  obs::RunManifestBuilder::StageTimer stage(g_manifest, "profile");
  stage.set_units(1);
  const auto profile = core::ProfileGateway(*gw);
  if (!profile.ok()) {
    return FailWith("profiling failed", profile.status());
  }
  std::cout << core::FormatProfile(*profile);
  return 0;
}

int RunMotifs(const ParsedArgs& args,
              const io::DatasetOptions& dataset_options) {
  if (args.positional.empty()) {
    std::cerr << "motifs: at least one TRACE expected\n";
    return 2;
  }
  const std::string period = args.GetString("period", "daily");
  const bool weekly = period == "weekly";
  if (!weekly && period != "daily") {
    std::cerr << "motifs: --period must be daily or weekly\n";
    return 2;
  }
  const int64_t granularity = weekly ? 480 : 180;
  const int64_t anchor = weekly ? 120 : 0;
  const int64_t window = weekly ? ts::kMinutesPerWeek : ts::kMinutesPerDay;

  std::vector<ts::TimeSeries> windows;
  std::vector<core::WindowProvenance> provenance;
  int next_id = 0;
  {
    obs::ScopedSpan span("cli.read_traces");
    obs::RunManifestBuilder::StageTimer stage(g_manifest, "read_traces");
    obs::ProgressTracker::Stage* progress =
        obs::ProgressStage("cli.read_traces");
    if (progress != nullptr) progress->AddTotal(args.positional.size());
    for (const std::string& path : args.positional) {
      auto reader = io::DatasetReader::Open(path, dataset_options);
      if (!reader.ok()) {
        std::cerr << "skipping " << path << ": "
                  << reader.status().ToString() << "\n";
        if (progress != nullptr) progress->Tick();
        continue;
      }
      for (size_t g = 0; g < reader->gateway_count(); ++g) {
        const auto gw = reader->ReadGateway(g);
        if (!gw.ok()) {
          std::cerr << "skipping " << path << ": " << gw.status().ToString()
                    << "\n";
          continue;
        }
        NarrateIngest(reader->report());
        const int id = next_id++;
        const auto active = core::ActiveAggregate(*gw);
        const auto aggregated =
            ts::Aggregate(active, granularity, anchor, ts::AggKind::kSum);
        if (!aggregated.ok()) continue;
        for (auto& w : ts::SliceWindows(*aggregated, window, anchor)) {
          provenance.push_back({id, w.start_minute()});
          windows.push_back(std::move(w));
        }
      }
      if (progress != nullptr) progress->Tick();
    }
    if (progress != nullptr) progress->Finish();
    stage.set_units(windows.size());
  }
  if (windows.empty()) {
    std::cerr << "motifs: no usable windows\n";
    return 1;
  }

  // Definition 2 pre-pass per gateway: how repeatable is each home's pattern
  // at the mining granularity? Runs the parallel SimilarityEngine + KS
  // funnel, so the per-stage metrics (pairs computed, KS rejections) account
  // for the whole input even when mining itself converges early.
  {
    obs::ScopedSpan span("cli.stationarity");
    obs::RunManifestBuilder::StageTimer stage(g_manifest, "stationarity");
    stage.set_units(windows.size());
    std::map<int, std::vector<ts::TimeSeries>> by_gateway;
    for (size_t w = 0; w < windows.size(); ++w) {
      by_gateway[provenance[w].gateway_id].push_back(windows[w]);
    }
    size_t stationary = 0, checked = 0;
    for (const auto& [id, gw_windows] : by_gateway) {
      if (gw_windows.size() < 2) continue;
      const auto result = core::CheckStrongStationarity(gw_windows);
      if (!result.ok()) continue;
      ++checked;
      if (result->strongly_stationary) ++stationary;
    }
    std::cout << "stationarity: " << stationary << "/" << checked
              << " gateways strongly stationary over " << period
              << " windows at " << granularity << " min bins\n";
  }

  const auto motifs = [&] {
    obs::ScopedSpan span("cli.mine_motifs");
    obs::RunManifestBuilder::StageTimer stage(g_manifest, "mine_motifs");
    stage.set_units(windows.size());
    return core::MotifDiscovery().Discover(windows);
  }();
  if (!motifs.ok()) return FailWith("mining failed", motifs.status());
  std::cout << motifs->size() << " " << period << " motifs from "
            << windows.size() << " windows of " << next_id << " gateways\n";
  io::TextTable table({"motif", "support", "gateways", "recurrence_%"});
  for (size_t m = 0; m < motifs->size() && m < 20; ++m) {
    const auto& motif = (*motifs)[m];
    std::map<int, bool> gws;
    for (size_t member : motif.members) {
      gws[provenance[member].gateway_id] = true;
    }
    table.AddRow({StrFormat("%zu", m + 1),
                  StrFormat("%zu", motif.support()),
                  StrFormat("%zu", gws.size()),
                  StrFormat("%.0f", 100.0 * core::WithinGatewayFraction(
                                                motif, provenance))});
  }
  table.Print(std::cout);
  return 0;
}

// Replays traces observation by observation through WindowAssembler →
// StreamingMotifMiner — the paper's "integrate into a streaming analytics
// platform" mode, and the long-running workload the periodic metrics
// flusher exists for.
int RunStream(const ParsedArgs& args,
              const io::DatasetOptions& dataset_options) {
  if (args.positional.empty()) {
    std::cerr << "stream: at least one TRACE expected\n";
    return 2;
  }
  const std::string period = args.GetString("period", "daily");
  const bool weekly = period == "weekly";
  if (!weekly && period != "daily") {
    std::cerr << "stream: --period must be daily or weekly\n";
    return 2;
  }
  int64_t horizon = 0;
  if (FlagIntOr(args, "horizon", 10000, &horizon) != 0) return 2;
  if (horizon <= 0) {
    std::cerr << "stream: --horizon must be positive\n";
    return 2;
  }
  const int64_t granularity = weekly ? 480 : 180;
  const int64_t anchor = weekly ? 120 : 0;
  const int64_t window = weekly ? ts::kMinutesPerWeek : ts::kMinutesPerDay;

  obs::ScopedSpan span("cli.stream");
  obs::RunManifestBuilder::StageTimer stage(g_manifest, "stream");
  obs::ProgressTracker::Stage* progress = obs::ProgressStage("cli.stream");
  if (progress != nullptr) progress->AddTotal(args.positional.size());
  auto assembler = core::WindowAssembler::Make(window, granularity, anchor);
  if (!assembler.ok()) return FailWith("stream", assembler.status());
  core::StreamingMotifMiner miner(core::MotifOptions{},
                                  static_cast<size_t>(horizon));
  size_t minutes = 0, windows_streamed = 0;
  int next_id = 0;
  for (const std::string& path : args.positional) {
    auto reader = io::DatasetReader::Open(path, dataset_options);
    if (!reader.ok()) {
      std::cerr << "skipping " << path << ": " << reader.status().ToString()
                << "\n";
      if (progress != nullptr) progress->Tick();
      continue;
    }
    for (size_t g = 0; g < reader->gateway_count(); ++g) {
      const auto gw = reader->ReadGateway(g);
      if (!gw.ok()) {
        std::cerr << "skipping " << path << ": " << gw.status().ToString()
                  << "\n";
        continue;
      }
      NarrateIngest(reader->report());
      const int id = next_id++;
      const auto active = core::ActiveAggregate(*gw);
      const auto feed = [&](int64_t minute, double value) {
        const auto completed = assembler->Ingest(id, minute, value);
        if (!completed.ok()) return;
        for (const auto& w : *completed) {
          if (miner.AddWindow(id, w).ok()) ++windows_streamed;
        }
      };
      for (int64_t m = active.start_minute(); m < active.EndMinute(); ++m) {
        feed(m, active[static_cast<size_t>(m - active.start_minute())]);
        ++minutes;
      }
      // Close this gateway's final window before moving to the next trace.
      feed(active.EndMinute(), ts::TimeSeries::Missing());
    }
    if (progress != nullptr) progress->Tick();
  }
  for (auto& [id, w] : assembler->Flush()) {
    if (miner.AddWindow(id, w).ok()) ++windows_streamed;
  }
  if (progress != nullptr) progress->Finish();
  stage.set_units(windows_streamed);
  if (windows_streamed == 0) {
    std::cerr << "stream: no usable windows\n";
    return 1;
  }

  const auto motifs = miner.CurrentMotifs();
  std::cout << "streamed " << minutes << " minutes of " << next_id
            << " gateways into " << windows_streamed << " " << period
            << " windows (" << miner.windows_retained() << " retained)\n";
  std::cout << motifs.size() << " motifs with support >= 2\n";
  io::TextTable table({"motif", "support", "gateways"});
  const auto& provenance = miner.provenance();
  for (size_t m = 0; m < motifs.size() && m < 20; ++m) {
    std::map<int, bool> gws;
    for (size_t member : motifs[m].members) {
      gws[provenance[member].gateway_id] = true;
    }
    table.AddRow({StrFormat("%zu", m + 1),
                  StrFormat("%zu", motifs[m].support()),
                  StrFormat("%zu", gws.size())});
  }
  table.Print(std::cout);
  return 0;
}

// Nonzero counters/gauges plus histogram count/mean — the at-a-glance
// per-stage funnel for the run.
void PrintMetricsSummary(std::ostream& out) {
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  out << "metrics summary:\n";
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) out << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    if (value != 0) out << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    if (h.count == 0) continue;
    out << "  " << name << " count=" << h.count << " mean="
        << StrFormat("%.1f", h.sum / static_cast<double>(h.count)) << "\n";
  }
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << content;
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

// Sharded fleet analysis (DESIGN.md §15): partitions the gateways of the
// TRACE arguments into --shards contiguous shards, runs each shard's
// per-gateway pipeline on the thread pool under retry/deadline machinery,
// checkpoints completed shards under --checkpoint-dir (resumable with
// --resume after a crash or kill), quarantines poison shards, and merges
// everything into one deterministic fleet report on stdout.
int RunAnalyze(const ParsedArgs& args,
               const io::DatasetOptions& dataset_options) {
  if (args.positional.empty()) {
    std::cerr << "analyze: at least one TRACE expected\n";
    return 2;
  }
  int64_t shards = 0, threads = 0, attempts = 0, backoff_ms = 0,
          deadline_ms = 0;
  if (FlagIntOr(args, "shards", 1, &shards) != 0) return 2;
  if (FlagIntOr(args, "threads", 0, &threads) != 0) return 2;
  if (FlagIntOr(args, "shard-attempts", 3, &attempts) != 0) return 2;
  if (FlagIntOr(args, "shard-backoff-ms", 0, &backoff_ms) != 0) return 2;
  if (FlagIntOr(args, "shard-deadline-ms", 0, &deadline_ms) != 0) return 2;
  if (shards < 1 || attempts < 1 || threads < 0 || backoff_ms < 0 ||
      deadline_ms < 0) {
    std::cerr << "analyze: --shards and --shard-attempts must be >= 1; "
                 "--threads, --shard-backoff-ms and --shard-deadline-ms "
                 "must be >= 0\n";
    return 2;
  }
  fleet::FleetOptions options;
  options.dataset = dataset_options;
  options.n_shards = static_cast<int>(shards);
  options.threads = static_cast<int>(threads);
  options.max_attempts = static_cast<int>(attempts);
  options.retry_backoff_ms = static_cast<double>(backoff_ms);
  options.shard_deadline_ms = static_cast<double>(deadline_ms);
  options.checkpoint_dir = args.GetString("checkpoint-dir");
  options.resume = args.Has("resume") && args.GetString("resume") != "0";
  options.quarantine =
      !(args.Has("fail-fast") && args.GetString("fail-fast") != "0");
  if (options.resume && options.checkpoint_dir.empty()) {
    std::cerr << "analyze: --resume requires --checkpoint-dir\n";
    return 2;
  }
  obs::ScopedSpan span("cli.analyze");
  obs::RunManifestBuilder::StageTimer stage(g_manifest, "analyze");
  stage.set_units(static_cast<uint64_t>(shards));
  fleet::FleetOrchestrator orchestrator(args.positional, options);
  const auto report = orchestrator.Analyze();
  if (!report.ok()) return FailWith("analyze failed", report.status());
  if (g_manifest != nullptr) {
    for (const auto& shard : report->quarantined) {
      g_manifest->AddQuarantinedShard(shard.shard_index, shard.status,
                                      shard.attempts);
    }
  }
  std::cout << fleet::FormatFleetReport(*report);
  // Degraded runs still exit 0 — the report and manifest carry the
  // quarantine record; fail-fast runs never get here on a shard failure.
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::set<std::string> known_flags;
  if (command == "generate") {
    known_flags =
        WithObsFlags({"out", "gateways", "weeks", "seed", "format"});
  } else if (command == "convert") {
    known_flags = WithObsFlags({"to", "out"});
  } else if (command == "profile") {
    known_flags = WithObsFlags({});
  } else if (command == "motifs") {
    known_flags = WithObsFlags({"period"});
  } else if (command == "stream") {
    known_flags = WithObsFlags({"period", "horizon"});
  } else if (command == "analyze") {
    known_flags = WithObsFlags({"shards", "threads", "checkpoint-dir",
                                "resume", "shard-attempts",
                                "shard-backoff-ms", "shard-deadline-ms",
                                "fail-fast"});
  } else {
    return Usage();
  }
  const auto parsed = ParseFlags(
      std::vector<std::string>(argv + 2, argv + argc), known_flags,
      kBoolFlags);
  if (!parsed.ok()) {
    std::cerr << "error: " << parsed.status().ToString() << "\n";
    return Usage();
  }
  const ParsedArgs& args = *parsed;

  // --- run telemetry (DESIGN.md §12): structured logger policy ---
  // Defaults keep the run byte-identical with telemetry off: only warn+
  // reaches stderr, nothing reaches a file. A file sink or --progress
  // raises the record level to info; an explicit --log-level wins.
  obs::LogLevel flag_level = obs::LogLevel::kWarn;
  const bool level_given = args.Has("log-level");
  if (level_given &&
      !obs::ParseLogLevel(args.GetString("log-level"), &flag_level)) {
    std::cerr << "error: --log-level must be debug, info, warn, error, or "
                 "off\n";
    return 2;
  }
  const std::string log_path = args.GetString("log-out");
  const bool progress_on =
      args.Has("progress") && args.GetString("progress") != "0";
  int64_t progress_interval_sec = 0;
  if (FlagIntOr(args, "progress-interval-sec", 2, &progress_interval_sec) !=
      0) {
    return 2;
  }
  if (args.Has("progress-interval-sec") && !args.Has("progress")) {
    std::cerr << "error: --progress-interval-sec requires --progress\n";
    return 2;
  }
  if (progress_interval_sec <= 0) {
    std::cerr << "error: --progress-interval-sec must be positive\n";
    return 2;
  }
  // Execution profiler (DESIGN.md §13): gate the mutex/pool hot-path
  // instrumentation and the operator-new tally before any work runs, so
  // every stage is covered. Off (the default), the hot paths cost one
  // relaxed atomic load.
  const bool prof_on = args.Has("prof") && args.GetString("prof") != "0";
  const std::string prof_path = args.GetString("prof-out");
  if (!prof_path.empty() && !prof_on) {
    std::cerr << "error: --prof-out requires --prof\n";
    return 2;
  }
  if (prof_on) {
    obs::EnableProfiler(true);
    obs::EnableAllocTally(true);
  }
  obs::LoggerOptions log_options;
  log_options.file_path = log_path;
  log_options.min_level =
      level_given ? flag_level
                  : (log_path.empty() && !progress_on ? obs::LogLevel::kWarn
                                                      : obs::LogLevel::kInfo);
  log_options.stderr_level = level_given ? flag_level : obs::LogLevel::kWarn;
  if (progress_on) {
    // Heartbeats are info records; make sure they are recorded and visible.
    log_options.min_level = std::min(log_options.min_level,
                                     obs::LogLevel::kInfo);
    log_options.stderr_level = std::min(log_options.stderr_level,
                                        obs::LogLevel::kInfo);
  }
  {
    const Status configured = obs::Logger::Global().Configure(log_options);
    if (!configured.ok()) return FailWith("log-out", configured);
  }

  // The manifest accumulates from here on; it is written on every exit path
  // below (success, failure, cancellation) when --run-manifest-out is given.
  obs::RunManifestBuilder manifest;
  const std::string manifest_path = args.GetString("run-manifest-out");
  g_manifest = &manifest;
  manifest.SetTool("homets_cli");
  {
    std::string cmdline;
    for (int i = 0; i < argc; ++i) {
      if (i > 0) cmdline += ' ';
      cmdline += argv[i];
    }
    manifest.SetCommand(std::move(cmdline));
  }
  for (const auto& [flag, value] : args.flags) manifest.SetConfig(flag, value);
  const int hardware = static_cast<int>(std::thread::hardware_concurrency());
  manifest.SetThreads(hardware, hardware);

  // Arm fault injection before any work: the flag wins over the
  // HOMETS_FAILPOINTS environment variable; a malformed spec is a usage
  // error, not a run failure.
  {
    Status armed;
    if (args.Has("failpoints")) {
      int64_t fp_seed = 0;
      if (FlagIntOr(args, "failpoints-seed", 0, &fp_seed) != 0) return 2;
      armed = Failpoints::Global().Configure(args.GetString("failpoints"),
                                             static_cast<uint64_t>(fp_seed));
      manifest.SetFailpoints(args.GetString("failpoints"),
                             static_cast<uint64_t>(fp_seed));
    } else {
      armed = Failpoints::Global().ConfigureFromEnv();
    }
    if (!armed.ok()) {
      std::cerr << "failpoints: " << armed.ToString() << "\n";
      return 2;
    }
  }
  const auto dataset_options = DatasetOptionsFromFlags(args);
  if (!dataset_options.ok()) {
    std::cerr << "error: " << dataset_options.status().ToString() << "\n";
    return 2;
  }
  manifest.SetReadPolicy(args.GetString("read-policy", "strict"),
                         dataset_options->read.max_retries);
  for (const std::string& path : args.positional) {
    std::error_code ec;
    const uintmax_t bytes = std::filesystem::file_size(path, ec);
    manifest.AddInput(path, InputFormatLabel(path, *dataset_options),
                      ec ? 0 : static_cast<uint64_t>(bytes));
  }

  // Install the trace session before any work so every span of the run is
  // captured; uninstall before writing so the write itself is not traced.
  obs::TraceSession session;
  const std::string trace_path = args.GetString("trace-out");
  if (!trace_path.empty()) obs::InstallGlobalTraceSession(&session);

  // In-flight exposition: flushes once at start, every interval, and once at
  // stop, so even short runs leave at least two Prometheus blocks behind.
  const std::string flush_path = args.GetString("metrics-flush-out");
  int64_t flush_interval_sec = 0;
  if (FlagIntOr(args, "metrics-flush-interval-sec", 60,
                &flush_interval_sec) != 0) {
    return 2;
  }
  if (args.Has("metrics-flush-interval-sec") && flush_path.empty()) {
    std::cerr << "error: --metrics-flush-interval-sec requires "
                 "--metrics-flush-out\n";
    return 2;
  }
  if (flush_interval_sec <= 0) {
    std::cerr << "error: --metrics-flush-interval-sec must be positive\n";
    return 2;
  }
  obs::MetricsFlusherOptions flush_options;
  flush_options.path = flush_path;
  flush_options.interval_sec = static_cast<double>(flush_interval_sec);
  flush_options.truncate = true;
  obs::MetricsFlusher flusher(flush_options);
  if (!flush_path.empty()) {
    const Status started = flusher.Start();
    if (!started.ok()) return FailWith("metrics-flush-out", started);
  }

  // Live progress: stages tick the tracker; a heartbeat thread turns the
  // ticks into info log lines and homets.progress.* gauges.
  obs::ProgressTracker progress_tracker;
  if (progress_on) {
    obs::InstallGlobalProgressTracker(&progress_tracker);
    progress_tracker.StartHeartbeat(
        static_cast<double>(progress_interval_sec));
  }

  int rc = 1;
  if (command == "generate") rc = RunGenerate(args);
  if (command == "convert") rc = RunConvert(args, *dataset_options);
  if (command == "profile") rc = RunProfile(args, *dataset_options);
  if (command == "motifs") rc = RunMotifs(args, *dataset_options);
  if (command == "stream") rc = RunStream(args, *dataset_options);
  if (command == "analyze") rc = RunAnalyze(args, *dataset_options);

  if (progress_on) {
    progress_tracker.StopHeartbeat();  // emits one final heartbeat
    obs::InstallGlobalProgressTracker(nullptr);
  }
  if (!flush_path.empty()) {
    const Status stopped = flusher.Stop();
    if (!stopped.ok() && rc == 0) {
      rc = FailWith("metrics-flush-out", stopped);
    }
  }
  obs::InstallGlobalTraceSession(nullptr);
  if (!trace_path.empty() && rc == 0) {
    const Status status = WriteFile(trace_path, session.ToChromeJson());
    if (!status.ok()) rc = FailWith("trace-out", status);
  }
  // Fold the profiler accumulators into homets.prof.* before the registry is
  // exported, so --metrics-out carries the run totals.
  if (prof_on) obs::PublishProfMetrics();
  const std::string metrics_path = args.GetString("metrics-out");
  if (!metrics_path.empty() && rc == 0) {
    const Status status =
        WriteFile(metrics_path, obs::MetricsRegistry::Global().ExportJson());
    if (!status.ok()) rc = FailWith("metrics-out", status);
  }
  if (!prof_path.empty() && rc == 0) {
    const Status status = WriteFile(prof_path, obs::ProfReportJson());
    if (!status.ok()) rc = FailWith("prof-out", status);
  }
  // Flush any buffered log records (and close the file sink) before the
  // summary, so the JSONL file is complete whatever the outcome was.
  obs::Logger::Global().Close();
  g_manifest = nullptr;
  if (!manifest_path.empty()) {
    if (rc != 0) {
      // No-op when FailWith already recorded the real failure; covers exits
      // with no Status attached (usage errors inside subcommands, rc == 1).
      manifest.MarkFailed(
          "cli", Status::Unknown(StrFormat("exit code %d", rc)));
    }
    manifest.SetExitCode(rc);
    const Status written = manifest.WriteJson(manifest_path);
    if (!written.ok() && rc == 0) rc = FailWith("run-manifest-out", written);
  }
  if (rc == 0) PrintMetricsSummary(std::cerr);
  return rc;
}
