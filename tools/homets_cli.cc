// homets command-line tool: generate synthetic fleets, profile gateway
// traces, and mine motifs — the framework's operations without writing C++.
//
//   homets_cli generate --out DIR [--gateways N] [--weeks W] [--seed S]
//   homets_cli profile TRACE.csv
//   homets_cli motifs [--period daily|weekly] TRACE.csv [TRACE.csv ...]
//
// Traces use the WriteGatewayCsv long format
// (device,true_type,reported_type,minute,incoming,outgoing).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"
#include "core/background.h"
#include "core/motif.h"
#include "core/profiling.h"
#include "io/csv.h"
#include "io/table.h"
#include "simgen/fleet.h"

namespace {

using namespace homets;  // NOLINT: tool binary

int Usage() {
  std::cerr
      << "usage:\n"
         "  homets_cli generate --out DIR [--gateways N] [--weeks W] "
         "[--seed S]\n"
         "  homets_cli profile TRACE.csv\n"
         "  homets_cli motifs [--period daily|weekly] TRACE.csv [...]\n";
  return 2;
}

// Minimal flag parsing: --key value pairs plus positional arguments.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;
};

Args ParseArgs(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--") && i + 1 < argc) {
      args.flags[arg.substr(2)] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int64_t FlagInt(const Args& args, const std::string& key, int64_t fallback) {
  const auto it = args.flags.find(key);
  return it == args.flags.end() ? fallback : std::stoll(it->second);
}

int RunGenerate(const Args& args) {
  const auto out_it = args.flags.find("out");
  if (out_it == args.flags.end()) {
    std::cerr << "generate: --out DIR is required\n";
    return 2;
  }
  simgen::SimConfig config;
  config.n_gateways = static_cast<int>(FlagInt(args, "gateways", 8));
  config.weeks = static_cast<int>(FlagInt(args, "weeks", 4));
  config.seed = static_cast<uint64_t>(FlagInt(args, "seed", 20140317));
  config.surveyed_gateways =
      std::min(config.surveyed_gateways, config.n_gateways);
  const Status valid = simgen::ValidateSimConfig(config);
  if (!valid.ok()) {
    std::cerr << "generate: " << valid.ToString() << "\n";
    return 2;
  }
  simgen::FleetGenerator generator(config);
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = generator.Generate(id);
    const std::string path =
        StrFormat("%s/gateway_%03d.csv", out_it->second.c_str(), id);
    const Status status = io::WriteGatewayCsv(path, gw);
    if (!status.ok()) {
      std::cerr << "write failed: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << path << ": " << gw.devices.size() << " devices, "
              << gw.AggregateTraffic().CountObserved()
              << " observed minutes\n";
  }
  return 0;
}

int RunProfile(const Args& args) {
  if (args.positional.size() != 1) {
    std::cerr << "profile: exactly one TRACE.csv expected\n";
    return 2;
  }
  const auto gw = io::ReadGatewayCsv(args.positional[0]);
  if (!gw.ok()) {
    std::cerr << "read failed: " << gw.status().ToString() << "\n";
    return 1;
  }
  const auto profile = core::ProfileGateway(*gw);
  if (!profile.ok()) {
    std::cerr << "profiling failed: " << profile.status().ToString() << "\n";
    return 1;
  }
  std::cout << core::FormatProfile(*profile);
  return 0;
}

int RunMotifs(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "motifs: at least one TRACE.csv expected\n";
    return 2;
  }
  const std::string period =
      args.flags.count("period") ? args.flags.at("period") : "daily";
  const bool weekly = period == "weekly";
  if (!weekly && period != "daily") {
    std::cerr << "motifs: --period must be daily or weekly\n";
    return 2;
  }
  const int64_t granularity = weekly ? 480 : 180;
  const int64_t anchor = weekly ? 120 : 0;
  const int64_t window = weekly ? ts::kMinutesPerWeek : ts::kMinutesPerDay;

  std::vector<ts::TimeSeries> windows;
  std::vector<core::WindowProvenance> provenance;
  int next_id = 0;
  for (const std::string& path : args.positional) {
    const auto gw = io::ReadGatewayCsv(path);
    if (!gw.ok()) {
      std::cerr << "skipping " << path << ": " << gw.status().ToString()
                << "\n";
      continue;
    }
    const int id = next_id++;
    const auto active = core::ActiveAggregate(*gw);
    const auto aggregated =
        ts::Aggregate(active, granularity, anchor, ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    for (auto& w : ts::SliceWindows(*aggregated, window, anchor)) {
      provenance.push_back({id, w.start_minute()});
      windows.push_back(std::move(w));
    }
  }
  if (windows.empty()) {
    std::cerr << "motifs: no usable windows\n";
    return 1;
  }
  const auto motifs = core::MotifDiscovery().Discover(windows);
  if (!motifs.ok()) {
    std::cerr << "mining failed: " << motifs.status().ToString() << "\n";
    return 1;
  }
  std::cout << motifs->size() << " " << period << " motifs from "
            << windows.size() << " windows of " << next_id << " gateways\n";
  io::TextTable table({"motif", "support", "gateways", "recurrence_%"});
  for (size_t m = 0; m < motifs->size() && m < 20; ++m) {
    const auto& motif = (*motifs)[m];
    std::map<int, bool> gws;
    for (size_t member : motif.members) {
      gws[provenance[member].gateway_id] = true;
    }
    table.AddRow({StrFormat("%zu", m + 1),
                  StrFormat("%zu", motif.support()),
                  StrFormat("%zu", gws.size()),
                  StrFormat("%.0f", 100.0 * core::WithinGatewayFraction(
                                                motif, provenance))});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Args args = ParseArgs(argc, argv, 2);
  if (command == "generate") return RunGenerate(args);
  if (command == "profile") return RunProfile(args);
  if (command == "motifs") return RunMotifs(args);
  return Usage();
}
