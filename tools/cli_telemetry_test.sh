#!/bin/sh
# Run-telemetry contract test, registered as the `cli_telemetry` ctest
# (label `telemetry`). Asserts the PR-7 acceptance bar end to end:
#   1. A motifs run with the telemetry flags writes valid JSON-lines whose
#      span ids all resolve to spans in the Chrome trace.
#   2. The run manifest is schema-versioned and its stage entries carry the
#      BENCH_pipeline.json shape (stage, seconds, units, metrics).
#   3. A failpoint-killed run still writes a manifest, with the failure
#      outcome, the armed spec, and the process exit code.
#   4. stdout is byte-identical with the telemetry flags off — observability
#      must never leak into the analysis output contract.
#
# Usage: cli_telemetry_test.sh /path/to/homets_cli
set -eu

cli="${1:?usage: cli_telemetry_test.sh /path/to/homets_cli}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
fail=0

check() {
    desc="$1"
    shift
    if "$@"; then
        echo "ok: $desc"
    else
        echo "FAIL: $desc" >&2
        fail=1
    fi
}

"$cli" generate --out "$workdir" --gateways 3 --weeks 2 --seed 7 \
    >"$workdir/gen.log" 2>"$workdir/gen.err"

# --- baseline: no telemetry flags ----------------------------------------
"$cli" motifs "$workdir"/gateway_*.csv \
    >"$workdir/plain.out" 2>"$workdir/plain.err"

# --- full telemetry run ---------------------------------------------------
"$cli" motifs \
    --log-out "$workdir/run.jsonl" --log-level debug \
    --progress --progress-interval-sec 1 \
    --run-manifest-out "$workdir/manifest.json" \
    --trace-out "$workdir/trace.json" \
    "$workdir"/gateway_*.csv >"$workdir/telem.out" 2>"$workdir/telem.err"

check "stdout byte-identical with telemetry on" \
    cmp -s "$workdir/plain.out" "$workdir/telem.out"
check "structured log written" test -s "$workdir/run.jsonl"
check "run manifest written" test -s "$workdir/manifest.json"
check "progress narrated on stderr" \
    grep -Eq 'progress: (heartbeat|stage done)' "$workdir/telem.err"

# Every log line must parse as a JSON object, and every span id referenced
# by a log record must name a span the Chrome trace also recorded.
check "log lines parse and spans match the trace" \
    python3 - "$workdir/run.jsonl" "$workdir/trace.json" <<'EOF'
import json, sys
log_path, trace_path = sys.argv[1], sys.argv[2]
log_spans = set()
with open(log_path) as log:
    for n, line in enumerate(log, 1):
        record = json.loads(line)
        for key in ("ts_us", "level", "component", "msg"):
            assert key in record, f"line {n} missing {key!r}"
        if record.get("span", 0):
            log_spans.add(record["span"])
assert log_spans, "no log record carried a span id"
trace_spans = {
    event["args"]["span_id"]
    for event in json.load(open(trace_path))["traceEvents"]
    if "span_id" in event.get("args", {})
}
missing = log_spans - trace_spans
assert not missing, f"log spans absent from trace: {sorted(missing)}"
EOF

# Manifest schema: versioned, success outcome, and stage entries in the
# BENCH_pipeline.json shape so bench_compare-style tooling can diff them.
check "manifest carries the versioned schema" \
    python3 - "$workdir/manifest.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for key in ("schema_version", "tool", "command", "config", "inputs",
            "threads", "stages", "outcome", "status", "exit_code",
            "wall_seconds"):
    assert key in doc, f"missing {key!r}"
assert doc["schema_version"] == 2
assert doc["tool"] == "homets_cli"
assert doc["outcome"] == "success" and doc["exit_code"] == 0
assert doc["inputs"] and all(
    i["format"] == "csv" and i["bytes"] > 0 for i in doc["inputs"])
assert doc["stages"], "no stages recorded"
for stage in doc["stages"]:
    for key in ("stage", "seconds", "units", "metrics"):
        assert key in stage, f"stage missing {key!r}"
    # v2: every StageTimer-recorded stage carries resource accounting.
    res = stage["resources"]
    for key in ("cpu_user_seconds", "cpu_sys_seconds", "cpu_seconds",
                "max_rss_bytes", "minor_faults", "major_faults",
                "alloc_bytes"):
        assert key in res, f"resources missing {key!r}"
names = [s["stage"] for s in doc["stages"]]
assert "mine_motifs" in names, names
EOF

# --- profiler flags -------------------------------------------------------
"$cli" motifs --prof --prof-out "$workdir/prof.json" \
    --run-manifest-out "$workdir/prof_manifest.json" \
    "$workdir"/gateway_*.csv >"$workdir/prof.out" 2>"$workdir/prof.err"
check "prof run stdout still byte-identical" \
    cmp -s "$workdir/plain.out" "$workdir/prof.out"
check "prof report written and well-formed" \
    python3 - "$workdir/prof.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "homets.prof_report"
assert doc["profiler_enabled"] is True
for key in ("rusage", "locks", "pool", "alloc"):
    assert key in doc, f"missing {key!r}"
assert doc["rusage"]["max_rss_bytes"] > 0
EOF

rc=0
"$cli" motifs --prof-out "$workdir/orphan.json" "$workdir"/gateway_*.csv \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "--prof-out without --prof exits 2" test "$rc" -eq 2
check "--prof-out without --prof is diagnosed" grep -q 'prof' "$workdir/err"

# --- manifest on failure --------------------------------------------------
rc=0
"$cli" motifs --failpoints 'io.csv.open=error*99' \
    --run-manifest-out "$workdir/fail_manifest.json" \
    "$workdir"/gateway_*.csv >"$workdir/out" 2>"$workdir/err" || rc=$?
check "failpoint run fails" test "$rc" -ne 0
check "failed run still writes a manifest" \
    test -s "$workdir/fail_manifest.json"
check "failure manifest records outcome, spec, and exit code" \
    python3 - "$workdir/fail_manifest.json" "$rc" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["outcome"] == "failure", doc["outcome"]
assert "failed_stage" in doc
assert doc["failpoints"]["spec"] == "io.csv.open=error*99"
assert doc["status"]["code"] != "OK"
assert doc["exit_code"] == int(sys.argv[2])
EOF

# --log-level validation stays a strict-flag error.
rc=0
"$cli" motifs --log-level loud "$workdir"/gateway_*.csv \
    >"$workdir/out" 2>"$workdir/err" || rc=$?
check "bad log level exits 2" test "$rc" -eq 2
check "bad log level is diagnosed" grep -q 'log-level' "$workdir/err"

exit "$fail"
