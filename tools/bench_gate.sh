#!/bin/sh
# Opt-in performance regression gate (`ctest -L bench-gate`, registered only
# when the build is configured with -DHOMETS_BENCH_GATE=ON): re-runs the
# full-pipeline bench at every size the committed BENCH_pipeline.json
# baseline covers and diffs the two artifacts.
#
# The default threshold is deliberately loose (75%) because the gate runs on
# whatever machine configured the build, not the machine that produced the
# baseline; tighten it with HOMETS_BENCH_GATE_THRESHOLD_PCT on dedicated
# perf hardware.
#
# Usage: bench_gate.sh /path/to/perf_pipeline /path/to/bench_compare repo_root
set -eu

pipeline="${1:?usage: bench_gate.sh perf_pipeline bench_compare repo_root}"
cmp_bin="${2:?usage: bench_gate.sh perf_pipeline bench_compare repo_root}"
repo="${3:?usage: bench_gate.sh perf_pipeline bench_compare repo_root}"
threshold="${HOMETS_BENCH_GATE_THRESHOLD_PCT:-75}"

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

"$pipeline" --pipeline_json="$workdir/candidate.json"
"$cmp_bin" "$repo/BENCH_pipeline.json" "$workdir/candidate.json" \
    --threshold-pct "$threshold"

# Second pass: parallel efficiency (schema v3). The field is optional —
# stages too short for rusage ticks print as informational — but a real
# efficiency collapse on a comparable machine fails the gate just like a
# wall-time regression.
"$cmp_bin" "$repo/BENCH_pipeline.json" "$workdir/candidate.json" \
    --threshold-pct "$threshold" --field parallel_efficiency
