#!/bin/sh
# Lint the metric naming scheme. Registered as the `check_metrics_names`
# ctest. Since PR 4 this is a thin wrapper over homets_lint, which owns the
# actual checks (metric-name-format, metric-name-duplicate,
# metric-raw-literal, metric-dead-constant — the same four this script used
# to implement with grep/sed). The CLI contract is unchanged: pass the repo
# root (default: the script's parent directory), exit nonzero on any
# violation.
#
# Usage: check_metrics_names.sh [REPO_ROOT] [HOMETS_LINT_BINARY]
#
# When the binary is not passed (or not built yet), the script looks in the
# conventional build trees; if none exists it fails loudly rather than
# silently passing.
set -eu

root="${1:-$(dirname "$0")/..}"
lint="${2:-}"

if [ -z "$lint" ]; then
    for candidate in "$root/build/tools/homets_lint" \
                     "$root/build-werror/tools/homets_lint"; do
        if [ -x "$candidate" ]; then
            lint="$candidate"
            break
        fi
    done
fi
if [ -z "$lint" ] || [ ! -x "$lint" ]; then
    echo "FAIL: homets_lint binary not found (build it, or pass it as \$2)" >&2
    exit 1
fi

exec "$lint" --root "$root" \
    --rules metric-name-format,metric-name-duplicate,metric-raw-literal,metric-dead-constant
