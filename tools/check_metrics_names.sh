#!/bin/sh
# Lint the metric naming scheme. Registered as the `check_metrics_names`
# ctest. Checks:
#   1. every name declared in src/obs/metric_names.h matches
#      homets.<layer>.<name> with lower_snake_case segments,
#   2. no name is declared twice,
#   3. instrumentation sites register metrics only through the constants —
#      a raw "homets.…" literal next to GetCounter/GetGauge/GetHistogram
#      anywhere outside metric_names.h fails (tests/ are exempt: they
#      exercise private registries with throwaway names),
#   4. no constant is dead — every k* identifier declared in metric_names.h
#      must be referenced by at least one .cc/.h outside the header, so
#      renamed-away or never-wired names cannot linger in the registry.
#
# Usage: check_metrics_names.sh [REPO_ROOT]
set -eu

root="${1:-$(dirname "$0")/..}"
names_header="$root/src/obs/metric_names.h"
fail=0

if [ ! -f "$names_header" ]; then
    echo "FAIL: $names_header not found" >&2
    exit 1
fi

names=$(grep -v '^[[:space:]]*//' "$names_header" |
    sed -n 's/.*"\(homets\.[^"]*\)".*/\1/p')
if [ -z "$names" ]; then
    echo "FAIL: no metric names declared in $names_header" >&2
    exit 1
fi

for name in $names; do
    case "$name" in
        homets.*.*) ;;
        *)
            echo "FAIL: '$name' is not homets.<layer>.<name>" >&2
            fail=1
            continue
            ;;
    esac
    if ! printf '%s\n' "$name" |
        grep -Eq '^homets\.[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$'; then
        echo "FAIL: '$name' segments must be lower_snake_case" >&2
        fail=1
    fi
done

dupes=$(printf '%s\n' "$names" | sort | uniq -d)
if [ -n "$dupes" ]; then
    echo "FAIL: duplicate metric names declared:" >&2
    printf '%s\n' "$dupes" >&2
    fail=1
fi

# Registration sites must go through the constants. Look for a raw string
# literal starting with "homets. on any Get{Counter,Gauge,Histogram} line in
# the library and tool sources.
raw=$(grep -rn 'Get\(Counter\|Gauge\|Histogram\)[^)]*"homets\.' \
    "$root/src" "$root/tools" "$root/bench" \
    --include='*.cc' --include='*.h' |
    grep -v 'src/obs/metric_names\.h' || true)
if [ -n "$raw" ]; then
    echo "FAIL: raw metric-name literals (use obs/metric_names.h):" >&2
    printf '%s\n' "$raw" >&2
    fail=1
fi

# Dead-constant check: a metric name nobody registers is a lie in the
# catalog. Tests count as references — a name may be exercised only by its
# unit test before the instrumented code lands in a later change.
constants=$(grep -v '^[[:space:]]*//' "$names_header" |
    sed -n 's/.*constexpr std::string_view \(k[A-Za-z0-9_]*\).*/\1/p')
if [ -z "$constants" ]; then
    echo "FAIL: no k* constants parsed from $names_header" >&2
    exit 1
fi
for constant in $constants; do
    if ! grep -rqw "$constant" \
        "$root/src" "$root/tools" "$root/bench" "$root/tests" \
        --include='*.cc' --include='*.h' \
        --exclude='metric_names.h'; then
        echo "FAIL: $constant is declared in metric_names.h but referenced nowhere" >&2
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "OK: $(printf '%s\n' "$names" | wc -l | tr -d ' ') metric names conform"
