#!/bin/sh
# Contract test for bench_compare, registered as the `bench_compare` ctest:
#   1. Self-compare of the committed BENCH_pipeline.json baseline passes.
#   2. A synthetic >=20% slowdown on one stage is flagged and exits nonzero.
#   3. A schema_version bump is refused (exit 2), not silently diffed.
#   4. Added/removed stages are informational, never regressions.
#
# Usage: bench_compare_test.sh /path/to/bench_compare /path/to/repo_root
set -eu

cmp_bin="${1:?usage: bench_compare_test.sh /path/to/bench_compare repo_root}"
repo="${2:?usage: bench_compare_test.sh /path/to/bench_compare repo_root}"
workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
fail=0

check() {
    desc="$1"
    shift
    if "$@"; then
        echo "ok: $desc"
    else
        echo "FAIL: $desc" >&2
        fail=1
    fi
}

baseline="$repo/BENCH_pipeline.json"
check "committed baseline exists" test -s "$baseline"

rc=0
"$cmp_bin" "$baseline" "$baseline" >"$workdir/self.log" 2>&1 || rc=$?
check "self-compare of committed baseline passes" test "$rc" -eq 0
check "self-compare reports zero regressions" \
    grep -q '^0 regression' "$workdir/self.log"

# Synthetic pair: candidate's pairwise stage is 30% slower (past the default
# 10% threshold and the acceptance bar of 20%).
cat >"$workdir/base.json" <<'EOF'
{
  "schema": "homets.bench_pipeline",
  "schema_version": 1,
  "entries": [
    {"stage": "pairwise", "size": "small", "seconds": 1.0},
    {"stage": "motif_mining", "size": "small", "seconds": 2.0}
  ]
}
EOF
cat >"$workdir/slow.json" <<'EOF'
{
  "schema": "homets.bench_pipeline",
  "schema_version": 1,
  "entries": [
    {"stage": "pairwise", "size": "small", "seconds": 1.3},
    {"stage": "motif_mining", "size": "small", "seconds": 2.0}
  ]
}
EOF
rc=0
"$cmp_bin" "$workdir/base.json" "$workdir/slow.json" \
    >"$workdir/slow.log" 2>&1 || rc=$?
check "30% slowdown exits nonzero" test "$rc" -eq 1
check "slowdown names the stage" \
    grep -q 'small/pairwise.*REGRESSION' "$workdir/slow.log"

# The same slowdown passes under a 50% threshold (noise floor is tunable).
rc=0
"$cmp_bin" "$workdir/base.json" "$workdir/slow.json" --threshold-pct 50 \
    >"$workdir/loose.log" 2>&1 || rc=$?
check "30% slowdown passes a 50% threshold" test "$rc" -eq 0

# Cross-schema diffs are refused, not attempted.
sed 's/"schema_version": 1/"schema_version": 2/' "$workdir/base.json" \
    >"$workdir/v2.json"
rc=0
"$cmp_bin" "$workdir/base.json" "$workdir/v2.json" \
    >"$workdir/schema.log" 2>&1 || rc=$?
check "schema_version mismatch exits 2" test "$rc" -eq 2
check "schema mismatch is diagnosed" \
    grep -q 'schema mismatch' "$workdir/schema.log"

# Stage-set changes (a stage dropped from the candidate, a stage new in it)
# are informational: reported by name, exit 0 — harnesses add and retire
# stages as the pipeline evolves.
cat >"$workdir/missing.json" <<'EOF'
{
  "schema": "homets.bench_pipeline",
  "schema_version": 1,
  "entries": [
    {"stage": "pairwise", "size": "small", "seconds": 1.0},
    {"stage": "col_ingest", "size": "small", "seconds": 0.5}
  ]
}
EOF
rc=0
"$cmp_bin" "$workdir/base.json" "$workdir/missing.json" \
    >"$workdir/missing.log" 2>&1 || rc=$?
check "removed/added stages exit zero" test "$rc" -eq 0
check "removed stage is reported" \
    grep -q 'small/motif_mining.*removed in candidate' "$workdir/missing.log"
check "added stage is reported" \
    grep -q 'small/col_ingest.*new in candidate' "$workdir/missing.log"

exit "$fail"
