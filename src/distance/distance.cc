#include "distance/distance.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace homets::distance {

Result<double> EuclideanSquared(const std::vector<double>& x,
                                const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("Euclidean: length mismatch");
  }
  if (x.empty()) return Status::InvalidArgument("Euclidean: empty input");
  double sum = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    const double d = x[i] - y[i];
    sum += d * d;
    ++used;
  }
  if (used == 0) {
    return Status::InvalidArgument("Euclidean: no complete pairs");
  }
  return sum;
}

Result<double> Euclidean(const std::vector<double>& x,
                         const std::vector<double>& y) {
  HOMETS_ASSIGN_OR_RETURN(const double ss, EuclideanSquared(x, y));
  return std::sqrt(ss);
}

Result<double> DynamicTimeWarping(const std::vector<double>& x,
                                  const std::vector<double>& y, int band) {
  const size_t n = x.size();
  const size_t m = y.size();
  if (n == 0 || m == 0) {
    return Status::InvalidArgument("DTW: empty input");
  }
  for (double v : x) {
    if (std::isnan(v)) return Status::InvalidArgument("DTW: NaN in input");
  }
  for (double v : y) {
    if (std::isnan(v)) return Status::InvalidArgument("DTW: NaN in input");
  }
  if (band >= 0 &&
      static_cast<size_t>(band) <
          (n > m ? n - m : m - n)) {
    return Status::InvalidArgument(
        "DTW: band narrower than the length difference");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Two-row DP over the cost matrix; cost is squared pointwise difference,
  // distance is the square root of the optimal path cost.
  std::vector<double> prev(m + 1, kInf);
  std::vector<double> curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    size_t j_lo = 1;
    size_t j_hi = m;
    if (band >= 0) {
      const int64_t lo = static_cast<int64_t>(i) - band;
      const int64_t hi = static_cast<int64_t>(i) + band;
      j_lo = lo > 1 ? static_cast<size_t>(lo) : 1;
      j_hi = hi < static_cast<int64_t>(m) ? static_cast<size_t>(hi) : m;
    }
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double d = x[i - 1] - y[j - 1];
      const double best =
          std::min({prev[j], curr[j - 1], prev[j - 1]});
      curr[j] = d * d + best;
    }
    std::swap(prev, curr);
  }
  if (prev[m] == kInf) {
    return Status::ComputeError("DTW: no admissible warping path");
  }
  return std::sqrt(prev[m]);
}

}  // namespace homets::distance
