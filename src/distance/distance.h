#ifndef HOMETS_DISTANCE_DISTANCE_H_
#define HOMETS_DISTANCE_DISTANCE_H_

#include <vector>

#include "common/status.h"

namespace homets::distance {

/// \brief Euclidean distance between equal-length series (the baseline the
/// paper compares dominant-device detection against in Section 6.2). Pairs
/// with a NaN on either side are skipped.
Result<double> Euclidean(const std::vector<double>& x,
                         const std::vector<double>& y);

/// \brief Squared Euclidean distance (no square root), same semantics.
Result<double> EuclideanSquared(const std::vector<double>& x,
                                const std::vector<double>& y);

/// \brief Dynamic Time Warping distance with an optional Sakoe–Chiba band.
///
/// The paper rejects DTW for home-traffic similarity because warping aligns
/// traffic peaks that happen at *different* times, while ISP-facing patterns
/// must be time-aligned; the benches demonstrate exactly this failure mode.
/// `band < 0` means unconstrained; otherwise |i − j| <= band.
/// NaNs must be removed or imputed by the caller; NaN input yields
/// InvalidArgument.
Result<double> DynamicTimeWarping(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  int band = -1);

}  // namespace homets::distance

#endif  // HOMETS_DISTANCE_DISTANCE_H_
