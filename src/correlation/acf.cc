#include "correlation/acf.h"

#include <cmath>
#include <cstdint>

namespace homets::correlation {

namespace {

// Mean-imputes NaNs; returns the mean of observed values.
Result<double> Impute(std::vector<double>* x) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : *x) {
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  if (n == 0) return Status::InvalidArgument("ACF: all values missing");
  const double mean = sum / static_cast<double>(n);
  for (double& v : *x) {
    if (std::isnan(v)) v = mean;
  }
  return mean;
}

}  // namespace

std::vector<size_t> AcfResult::SignificantLags() const {
  std::vector<size_t> lags;
  for (size_t k = 1; k < acf.size(); ++k) {
    if (std::fabs(acf[k]) > conf_bound) lags.push_back(k);
  }
  return lags;
}

Result<AcfResult> Acf(const std::vector<double>& x, size_t max_lag) {
  if (x.size() < max_lag + 2) {
    return Status::InvalidArgument("ACF: series shorter than max_lag + 2");
  }
  std::vector<double> xs = x;
  HOMETS_ASSIGN_OR_RETURN(const double mean, Impute(&xs));
  const size_t n = xs.size();
  double c0 = 0.0;
  for (double v : xs) c0 += (v - mean) * (v - mean);
  c0 /= static_cast<double>(n);
  if (c0 <= 0.0) return Status::ComputeError("ACF: constant series");
  AcfResult result;
  result.acf.resize(max_lag + 1);
  result.acf[0] = 1.0;
  for (size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (size_t t = 0; t + k < n; ++t) {
      ck += (xs[t] - mean) * (xs[t + k] - mean);
    }
    ck /= static_cast<double>(n);
    result.acf[k] = ck / c0;
  }
  result.conf_bound = 1.96 / std::sqrt(static_cast<double>(n));
  return result;
}

int CcfResult::PeakLag() const {
  int best = -max_lag;
  double best_abs = -1.0;
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    const double a = std::fabs(AtLag(lag));
    if (a > best_abs) {
      best_abs = a;
      best = lag;
    }
  }
  return best;
}

Result<CcfResult> Ccf(const std::vector<double>& x,
                      const std::vector<double>& y, int max_lag) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("CCF: length mismatch");
  }
  if (max_lag < 0 ||
      x.size() < static_cast<size_t>(max_lag) + 2) {
    return Status::InvalidArgument("CCF: series shorter than max_lag + 2");
  }
  std::vector<double> xs = x;
  std::vector<double> ys = y;
  HOMETS_ASSIGN_OR_RETURN(const double mx, Impute(&xs));
  HOMETS_ASSIGN_OR_RETURN(const double my, Impute(&ys));
  const size_t n = xs.size();
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sx += (xs[i] - mx) * (xs[i] - mx);
    sy += (ys[i] - my) * (ys[i] - my);
  }
  sx /= static_cast<double>(n);
  sy /= static_cast<double>(n);
  if (sx <= 0.0 || sy <= 0.0) {
    return Status::ComputeError("CCF: constant series");
  }
  const double denom = std::sqrt(sx * sy);
  CcfResult result;
  result.max_lag = max_lag;
  result.ccf.resize(static_cast<size_t>(2 * max_lag) + 1);
  for (int lag = -max_lag; lag <= max_lag; ++lag) {
    double c = 0.0;
    // Correlate x_{t+lag} with y_t over the valid overlap.
    for (size_t t = 0; t < n; ++t) {
      const int64_t shifted = static_cast<int64_t>(t) + lag;
      if (shifted < 0 || shifted >= static_cast<int64_t>(n)) continue;
      c += (xs[static_cast<size_t>(shifted)] - mx) * (ys[t] - my);
    }
    c /= static_cast<double>(n);
    result.ccf[static_cast<size_t>(lag + max_lag)] = c / denom;
  }
  result.conf_bound = 1.96 / std::sqrt(static_cast<double>(n));
  return result;
}

}  // namespace homets::correlation
