#ifndef HOMETS_CORRELATION_COEFFICIENTS_H_
#define HOMETS_CORRELATION_COEFFICIENTS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace homets::correlation {

/// \brief Outcome of a correlation significance test.
///
/// The zero hypothesis is "no correlation" (coefficient = 0); `p_value` is
/// two-sided. The paper gates every coefficient on `p_value < 0.05`
/// (Definition 1).
struct CorrelationTest {
  double coefficient = 0.0;
  double p_value = 1.0;
  size_t n = 0;  ///< number of complete pairs used

  /// True when the null is rejected at level `alpha`.
  bool Significant(double alpha = 0.05) const { return p_value < alpha; }
};

/// \brief Strength bands used throughout the paper
/// ([0,0.1) none, [0.1,0.3) low, [0.3,0.5) medium, [0.5,1] strong).
enum class Strength { kNone, kLow, kMedium, kStrong };

/// \brief Classifies |coefficient| into the paper's strength bands.
Strength ClassifyStrength(double coefficient);

/// \brief Human-readable band name.
std::string StrengthName(Strength s);

/// \brief Drops index pairs where either input is NaN (pairwise-complete
/// observations). Outputs are parallel vectors.
void CompletePairs(const std::vector<double>& x, const std::vector<double>& y,
                   std::vector<double>* xc, std::vector<double>* yc);

/// \brief Pearson's r with a two-sided t-test p-value (dof = n − 2).
///
/// Requires >= 3 complete pairs and non-constant inputs; degenerate inputs
/// yield ComputeError (Definition 1 treats those as not significant).
Result<CorrelationTest> Pearson(const std::vector<double>& x,
                                const std::vector<double>& y);

/// \brief Spearman's ρ: Pearson on tie-averaged ranks, t-approximation
/// p-value.
Result<CorrelationTest> Spearman(const std::vector<double>& x,
                                 const std::vector<double>& y);

/// \brief Kendall's τ-b with tie corrections, computed in O(n log n)
/// (Knight's algorithm); p-value by the tie-adjusted normal approximation.
Result<CorrelationTest> Kendall(const std::vector<double>& x,
                                const std::vector<double>& y);

}  // namespace homets::correlation

#endif  // HOMETS_CORRELATION_COEFFICIENTS_H_
