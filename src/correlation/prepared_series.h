#ifndef HOMETS_CORRELATION_PREPARED_SERIES_H_
#define HOMETS_CORRELATION_PREPARED_SERIES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "correlation/coefficients.h"

namespace homets::correlation {

/// \brief Which per-series profiles PreparedSeries::Make computes.
///
/// Each pairwise kernel needs only one profile: Pearson the moments,
/// Spearman the ranks, Kendall the sort order. Callers that run all three
/// (the Definition 1 similarity, the SimilarityEngine) use kAllProfiles.
enum ProfileMask : uint32_t {
  kMomentProfile = 1u << 0,  ///< mean + centered sum of squares
  kRankProfile = 1u << 1,    ///< tie-averaged ranks + their moments
  kSortProfile = 1u << 2,    ///< ascending permutation + tie structure
  kAllProfiles = kMomentProfile | kRankProfile | kSortProfile,
};

/// \brief Tie-correction sums over a sample's tie groups, precomputed once
/// per series for Kendall's τ-b (Σ over groups of size t).
struct TieSums {
  double pairs = 0.0;     ///< Σ t(t−1)/2
  double triple = 0.0;    ///< Σ t(t−1)(t−2)
  double weighted = 0.0;  ///< Σ t(t−1)(2t+5)
  double pair_raw = 0.0;  ///< Σ t(t−1)
};

/// \brief One-time O(n log n) profile of a window, reusable across every
/// pairwise comparison the window participates in.
///
/// Every pairwise workload in the paper (stationarity pairs, granularity
/// search, dominance, motifs, the Figure 3 distance matrix) compares the
/// same windows against many partners; profiling each window once turns the
/// per-pair cost of Definition 1 from "re-sort everything" into O(n) merge
/// work for Pearson/Spearman and O(n log n) inversion counting for Kendall.
///
/// Profiles are only materialized for NaN-free series with >= 3 values;
/// kernels fall back to the pairwise-complete gather path otherwise (the
/// complete subset depends on both partners, so nothing per-series can be
/// reused). Results are bit-identical to the legacy vector API either way.
class PreparedSeries {
 public:
  PreparedSeries() = default;

  /// Profiles `values` (one O(n log n) pass per requested profile).
  static PreparedSeries Make(std::vector<double> values,
                             uint32_t profiles = kAllProfiles);

  const std::vector<double>& values() const { return values_; }
  size_t size() const { return values_.size(); }
  bool has_nan() const { return has_nan_; }
  uint32_t profiles() const { return profiles_; }

  /// True when the profiled fast path applies against `other`: both sides
  /// NaN-free, same length, and long enough for any coefficient.
  bool PairableWith(const PreparedSeries& other) const {
    return !has_nan_ && !other.has_nan_ && values_.size() == other.size() &&
           values_.size() >= 3;
  }

  // Moment profile (Pearson).
  double mean() const { return mean_; }
  double centered_ss() const { return centered_ss_; }
  /// Constant series: Pearson/Spearman are incomputable (ComputeError).
  bool constant() const { return constant_; }

  // Rank profile (Spearman): tie-averaged ranks plus their own moments.
  const std::vector<double>& ranks() const { return ranks_; }
  double rank_mean() const { return rank_mean_; }
  double rank_centered_ss() const { return rank_centered_ss_; }

  // Sort profile (Kendall): stable ascending permutation of the values,
  // boundaries of the tie groups in that order, and the tie-correction sums.
  const std::vector<uint32_t>& sort_order() const { return sort_order_; }
  /// Tie-group boundaries: group g spans sort positions
  /// [group_offsets[g], group_offsets[g+1]).
  const std::vector<uint32_t>& group_offsets() const { return group_offsets_; }
  const TieSums& tie_sums() const { return tie_sums_; }

 private:
  std::vector<double> values_;
  bool has_nan_ = false;
  uint32_t profiles_ = 0;

  double mean_ = 0.0;
  double centered_ss_ = 0.0;
  bool constant_ = true;

  std::vector<double> ranks_;
  double rank_mean_ = 0.0;
  double rank_centered_ss_ = 0.0;

  std::vector<uint32_t> sort_order_;
  std::vector<uint32_t> group_offsets_;
  TieSums tie_sums_;
};

/// \brief Reusable per-pair scratch space. Kernels allocate locally when
/// `nullptr` is passed; parallel callers keep one workspace per worker so
/// the hot loop never touches the allocator.
struct PairWorkspace {
  std::vector<double> ys;      ///< partner values in sort order (Kendall)
  std::vector<double> buffer;  ///< merge buffer for inversion counting
  std::vector<double> xc, yc;  ///< gather space for the NaN fallback path
};

/// \brief Pearson's r over two prepared series; O(n) when the fast path
/// applies. Bit-identical to Pearson(x, y) on the same value vectors.
Result<CorrelationTest> Pearson(const PreparedSeries& x,
                                const PreparedSeries& y,
                                PairWorkspace* workspace = nullptr);

/// \brief Spearman's ρ over two prepared series; O(n) when the fast path
/// applies (ranks are precomputed). Bit-identical to Spearman(x, y).
Result<CorrelationTest> Spearman(const PreparedSeries& x,
                                 const PreparedSeries& y,
                                 PairWorkspace* workspace = nullptr);

/// \brief Kendall's τ-b over two prepared series; the per-pair work is the
/// O(n log n) inversion count only — the sort permutation and all tie sums
/// come from the profiles. Bit-identical to Kendall(x, y).
Result<CorrelationTest> Kendall(const PreparedSeries& x,
                                const PreparedSeries& y,
                                PairWorkspace* workspace = nullptr);

}  // namespace homets::correlation

#endif  // HOMETS_CORRELATION_PREPARED_SERIES_H_
