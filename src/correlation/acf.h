#ifndef HOMETS_CORRELATION_ACF_H_
#define HOMETS_CORRELATION_ACF_H_

#include <vector>

#include "common/status.h"

namespace homets::correlation {

/// \brief Sample autocorrelation function and its significance band.
///
/// Reproduces the analysis behind Figure 2(left): low but statistically
/// significant autocorrelations indicate some predictive power in a gateway's
/// traffic.
struct AcfResult {
  std::vector<double> acf;  ///< acf[k] for lag k = 0..max_lag (acf[0] = 1)
  double conf_bound = 0.0;  ///< ±1.96/√n white-noise band

  /// Lags (>= 1) whose |acf| exceeds the white-noise band.
  std::vector<size_t> SignificantLags() const;
};

/// \brief Computes the ACF up to `max_lag`. NaN values are mean-imputed
/// (gateways report with gaps); requires n >= max_lag + 2 and a non-constant
/// series.
Result<AcfResult> Acf(const std::vector<double>& x, size_t max_lag);

/// \brief Sample cross-correlation of `x` and `y` for lags −max_lag..max_lag.
///
/// ccf[max_lag + k] correlates x_{t+k} with y_t; a significant value at
/// positive k means x leads y by k steps (Figure 2 right).
struct CcfResult {
  std::vector<double> ccf;  ///< indexed by lag + max_lag
  int max_lag = 0;
  double conf_bound = 0.0;

  double AtLag(int lag) const { return ccf[static_cast<size_t>(lag + max_lag)]; }

  /// The lag with the largest |ccf|.
  int PeakLag() const;
};

/// \brief Computes the CCF; same preconditions as Acf for both inputs, and
/// the series must have equal length.
Result<CcfResult> Ccf(const std::vector<double>& x,
                      const std::vector<double>& y, int max_lag);

}  // namespace homets::correlation

#endif  // HOMETS_CORRELATION_ACF_H_
