#include "correlation/prepared_series.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "stats/ranks.h"
#include "stats/special_functions.h"

namespace homets::correlation {

namespace {

// Accumulation order matters throughout this file: every loop mirrors the
// historical vector-path implementation exactly (independent accumulators,
// ascending index order) so prepared results are bit-identical to it.

// Mean and centered sum of squares, each in its own ascending pass.
void MomentsOf(const std::vector<double>& v, double* mean, double* ss) {
  const size_t n = v.size();
  double m = 0.0;
  for (size_t i = 0; i < n; ++i) m += v[i];
  m /= static_cast<double>(n);
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = v[i] - m;
    s += d * d;
  }
  *mean = m;
  *ss = s;
}

// Two-sided p-value via the t transform, dof = n - 2.
double PearsonPValue(double r, size_t n) {
  const double dof = static_cast<double>(n) - 2.0;
  if (std::fabs(r) >= 1.0) return 0.0;
  const double t = r * std::sqrt(dof / (1.0 - r * r));
  return stats::StudentTTwoSidedPValue(t, dof);
}

// Merge-sort inversion counter used by Knight's algorithm: sorts `y` in
// place and returns the number of exchanges (discordant pairs).
uint64_t CountSwaps(std::vector<double>* y, std::vector<double>* buffer) {
  const size_t n = y->size();
  uint64_t swaps = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if ((*y)[j] < (*y)[i]) {
          swaps += mid - i;  // element jumps over the rest of the left run
          (*buffer)[k++] = (*y)[j++];
        } else {
          (*buffer)[k++] = (*y)[i++];
        }
      }
      while (i < mid) (*buffer)[k++] = (*y)[i++];
      while (j < hi) (*buffer)[k++] = (*y)[j++];
      std::copy(buffer->begin() + lo, buffer->begin() + hi, y->begin() + lo);
    }
  }
  return swaps;
}

TieSums TieSumsFromGroups(const std::vector<size_t>& groups) {
  TieSums s;
  for (size_t g : groups) {
    const double t = static_cast<double>(g);
    s.pairs += t * (t - 1.0) / 2.0;
    s.triple += t * (t - 1.0) * (t - 2.0);
    s.weighted += t * (t - 1.0) * (2.0 * t + 5.0);
    s.pair_raw += t * (t - 1.0);
  }
  return s;
}

// Pairwise-complete gather (CompletePairs semantics): keeps index pairs
// where neither input is NaN, over the overlapping length.
void Gather(const std::vector<double>& x, const std::vector<double>& y,
            std::vector<double>* xc, std::vector<double>* yc) {
  const size_t n = std::min(x.size(), y.size());
  xc->clear();
  yc->clear();
  xc->reserve(n);
  yc->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    xc->push_back(x[i]);
    yc->push_back(y[i]);
  }
}

// Pearson over NaN-free equal-length vectors given each side's moments.
Result<CorrelationTest> PearsonFromMoments(const std::vector<double>& x,
                                           const std::vector<double>& y,
                                           double mx, double sxx, double my,
                                           double syy) {
  if (sxx <= 0.0 || syy <= 0.0) {
    return Status::ComputeError("Pearson: constant input series");
  }
  const size_t n = x.size();
  double sxy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
  }
  double r = sxy / std::sqrt(sxx * syy);
  r = std::clamp(r, -1.0, 1.0);
  CorrelationTest test;
  test.coefficient = r;
  test.n = n;
  test.p_value = PearsonPValue(r, n);
  return test;
}

Result<CorrelationTest> PearsonGathered(const std::vector<double>& xc,
                                        const std::vector<double>& yc) {
  if (xc.size() < 3) {
    return Status::InvalidArgument("Pearson: need >= 3 complete pairs");
  }
  double mx, sxx, my, syy;
  MomentsOf(xc, &mx, &sxx);
  MomentsOf(yc, &my, &syy);
  return PearsonFromMoments(xc, yc, mx, sxx, my, syy);
}

Result<CorrelationTest> SpearmanGathered(const std::vector<double>& xc,
                                         const std::vector<double>& yc) {
  if (xc.size() < 3) {
    return Status::InvalidArgument("Spearman: need >= 3 complete pairs");
  }
  const std::vector<double> rx = stats::AverageRanks(xc);
  const std::vector<double> ry = stats::AverageRanks(yc);
  double mx, sxx, my, syy;
  MomentsOf(rx, &mx, &sxx);
  MomentsOf(ry, &my, &syy);
  HOMETS_ASSIGN_OR_RETURN(CorrelationTest test,
                          PearsonFromMoments(rx, ry, mx, sxx, my, syy));
  test.n = xc.size();
  return test;
}

// Kendall's τ-b given the y values permuted into x-sorted order (with y
// ascending within x-tie groups), the joint-tie pair count, and both sides'
// tie sums. `ys` is consumed (sorted in place by the inversion count).
Result<CorrelationTest> KendallFromProfiles(std::vector<double>* ys,
                                            std::vector<double>* buffer,
                                            double joint_pairs,
                                            const TieSums& tx,
                                            const TieSums& ty) {
  const size_t n = ys->size();
  buffer->resize(n);
  const uint64_t swaps = CountSwaps(ys, buffer);

  const double nf = static_cast<double>(n);
  const double n0 = nf * (nf - 1.0) / 2.0;
  const double denom_x = n0 - tx.pairs;
  const double denom_y = n0 - ty.pairs;
  if (denom_x <= 0.0 || denom_y <= 0.0) {
    return Status::ComputeError("Kendall: constant input series");
  }
  const double concordant_minus_discordant =
      n0 - tx.pairs - ty.pairs + joint_pairs -
      2.0 * static_cast<double>(swaps);
  double tau = concordant_minus_discordant / std::sqrt(denom_x * denom_y);
  tau = std::clamp(tau, -1.0, 1.0);

  // Tie-adjusted normal approximation for the null variance of (nc − nd)
  // (the form used by standard statistical packages).
  const double v0 = nf * (nf - 1.0) * (2.0 * nf + 5.0);
  double var = (v0 - tx.weighted - ty.weighted) / 18.0;
  var += tx.pair_raw * ty.pair_raw / (2.0 * nf * (nf - 1.0));
  if (n > 2) {
    var += tx.triple * ty.triple / (9.0 * nf * (nf - 1.0) * (nf - 2.0));
  }
  CorrelationTest test;
  test.coefficient = tau;
  test.n = n;
  if (var <= 0.0) {
    test.p_value = 1.0;
  } else {
    const double z = concordant_minus_discordant / std::sqrt(var);
    test.p_value = 2.0 * (1.0 - stats::NormalCdf(std::fabs(z)));
  }
  return test;
}

Result<CorrelationTest> KendallGathered(const std::vector<double>& xc,
                                        const std::vector<double>& yc,
                                        PairWorkspace* ws) {
  const size_t n = xc.size();
  if (n < 3) {
    return Status::InvalidArgument("Kendall: need >= 3 complete pairs");
  }

  // Knight's algorithm: sort by (x, y), count y-inversions.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (xc[a] != xc[b]) return xc[a] < xc[b];
    return yc[a] < yc[b];
  });
  ws->ys.resize(n);
  for (size_t i = 0; i < n; ++i) ws->ys[i] = yc[order[i]];

  // Joint ties: consecutive equal (x, y) pairs in the sorted order.
  double joint_pairs = 0.0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && xc[order[j + 1]] == xc[order[i]] &&
             yc[order[j + 1]] == yc[order[i]]) {
        ++j;
      }
      const double t = static_cast<double>(j - i + 1);
      joint_pairs += t * (t - 1.0) / 2.0;
      i = j + 1;
    }
  }

  const TieSums tx = TieSumsFromGroups(stats::TieGroupSizes(xc));
  const TieSums ty = TieSumsFromGroups(stats::TieGroupSizes(yc));
  return KendallFromProfiles(&ws->ys, &ws->buffer, joint_pairs, tx, ty);
}

}  // namespace

PreparedSeries PreparedSeries::Make(std::vector<double> values,
                                    uint32_t profiles) {
  PreparedSeries p;
  p.values_ = std::move(values);
  for (double v : p.values_) {
    if (std::isnan(v)) {
      p.has_nan_ = true;
      break;
    }
  }
  // Profiles only pay off on the NaN-free fast path; degenerate series take
  // the gather fallback anyway. profiles() stays 0 so it always reports what
  // was actually materialized.
  if (p.has_nan_ || p.values_.size() < 3) {
    static obs::Counter* const degenerate_fallbacks =
        obs::MetricsRegistry::Global().GetCounter(
            obs::kCorrelationDegenerateFallbacks);
    degenerate_fallbacks->Increment();
    return p;
  }
  p.profiles_ = profiles;
  const size_t n = p.values_.size();

  if (profiles & kMomentProfile) {
    MomentsOf(p.values_, &p.mean_, &p.centered_ss_);
    p.constant_ = p.centered_ss_ <= 0.0;
  }
  if (profiles & kRankProfile) {
    p.ranks_ = stats::AverageRanks(p.values_);
    MomentsOf(p.ranks_, &p.rank_mean_, &p.rank_centered_ss_);
  }
  if (profiles & kSortProfile) {
    p.sort_order_.resize(n);
    std::iota(p.sort_order_.begin(), p.sort_order_.end(), 0u);
    std::stable_sort(p.sort_order_.begin(), p.sort_order_.end(),
                     [&v = p.values_](uint32_t a, uint32_t b) {
                       return v[a] < v[b];
                     });
    p.group_offsets_.clear();
    p.group_offsets_.push_back(0);
    for (uint32_t i = 1; i < n; ++i) {
      if (p.values_[p.sort_order_[i]] != p.values_[p.sort_order_[i - 1]]) {
        p.group_offsets_.push_back(i);
      }
    }
    p.group_offsets_.push_back(static_cast<uint32_t>(n));
    p.tie_sums_ = TieSumsFromGroups(stats::TieGroupSizes(p.values_));
  }
  return p;
}

Result<CorrelationTest> Pearson(const PreparedSeries& x,
                                const PreparedSeries& y,
                                PairWorkspace* workspace) {
  if (x.PairableWith(y) && (x.profiles() & kMomentProfile) &&
      (y.profiles() & kMomentProfile)) {
    return PearsonFromMoments(x.values(), y.values(), x.mean(),
                              x.centered_ss(), y.mean(), y.centered_ss());
  }
  PairWorkspace local;
  PairWorkspace* ws = workspace != nullptr ? workspace : &local;
  Gather(x.values(), y.values(), &ws->xc, &ws->yc);
  return PearsonGathered(ws->xc, ws->yc);
}

Result<CorrelationTest> Spearman(const PreparedSeries& x,
                                 const PreparedSeries& y,
                                 PairWorkspace* workspace) {
  if (x.PairableWith(y) && (x.profiles() & kRankProfile) &&
      (y.profiles() & kRankProfile)) {
    HOMETS_ASSIGN_OR_RETURN(
        CorrelationTest test,
        PearsonFromMoments(x.ranks(), y.ranks(), x.rank_mean(),
                           x.rank_centered_ss(), y.rank_mean(),
                           y.rank_centered_ss()));
    test.n = x.size();
    return test;
  }
  PairWorkspace local;
  PairWorkspace* ws = workspace != nullptr ? workspace : &local;
  Gather(x.values(), y.values(), &ws->xc, &ws->yc);
  return SpearmanGathered(ws->xc, ws->yc);
}

Result<CorrelationTest> Kendall(const PreparedSeries& x,
                                const PreparedSeries& y,
                                PairWorkspace* workspace) {
  PairWorkspace local;
  PairWorkspace* ws = workspace != nullptr ? workspace : &local;
  if (!(x.PairableWith(y) && (x.profiles() & kSortProfile) &&
        (y.profiles() & kSortProfile))) {
    Gather(x.values(), y.values(), &ws->xc, &ws->yc);
    return KendallGathered(ws->xc, ws->yc, ws);
  }

  const size_t n = x.size();
  const std::vector<uint32_t>& order = x.sort_order();
  const std::vector<double>& yv = y.values();

  // Partner values in x-sorted order; sorting each x-tie group ascending
  // reproduces the (x, y) lexicographic order of the vector path.
  ws->ys.resize(n);
  for (size_t i = 0; i < n; ++i) ws->ys[i] = yv[order[i]];
  const std::vector<uint32_t>& groups = x.group_offsets();
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    if (groups[g + 1] - groups[g] > 1) {
      std::sort(ws->ys.begin() + groups[g], ws->ys.begin() + groups[g + 1]);
    }
  }

  // Joint ties: equal-y runs never cross an x-group boundary, so scanning
  // per group visits exactly the runs of consecutive equal (x, y) pairs.
  double joint_pairs = 0.0;
  for (size_t g = 0; g + 1 < groups.size(); ++g) {
    size_t i = groups[g];
    const size_t end = groups[g + 1];
    while (i < end) {
      size_t j = i;
      while (j + 1 < end && ws->ys[j + 1] == ws->ys[i]) ++j;
      const double t = static_cast<double>(j - i + 1);
      joint_pairs += t * (t - 1.0) / 2.0;
      i = j + 1;
    }
  }

  return KendallFromProfiles(&ws->ys, &ws->buffer, joint_pairs, x.tie_sums(),
                             y.tie_sums());
}

}  // namespace homets::correlation
