#include "correlation/coefficients.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>

#include "stats/ranks.h"
#include "stats/special_functions.h"

namespace homets::correlation {

Strength ClassifyStrength(double coefficient) {
  const double a = std::fabs(coefficient);
  if (a < 0.1) return Strength::kNone;
  if (a < 0.3) return Strength::kLow;
  if (a < 0.5) return Strength::kMedium;
  return Strength::kStrong;
}

std::string StrengthName(Strength s) {
  switch (s) {
    case Strength::kNone:
      return "none";
    case Strength::kLow:
      return "low";
    case Strength::kMedium:
      return "medium";
    case Strength::kStrong:
      return "strong";
  }
  return "none";
}

void CompletePairs(const std::vector<double>& x, const std::vector<double>& y,
                   std::vector<double>* xc, std::vector<double>* yc) {
  const size_t n = std::min(x.size(), y.size());
  xc->clear();
  yc->clear();
  xc->reserve(n);
  yc->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    xc->push_back(x[i]);
    yc->push_back(y[i]);
  }
}

namespace {

// Raw Pearson product-moment coefficient; NaN-free equal-length inputs.
Result<double> PearsonCoefficient(const std::vector<double>& x,
                                  const std::vector<double>& y) {
  const size_t n = x.size();
  double mx = 0.0, my = 0.0;
  for (size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    return Status::ComputeError("Pearson: constant input series");
  }
  double r = sxy / std::sqrt(sxx * syy);
  // Clamp numerical overshoot.
  r = std::clamp(r, -1.0, 1.0);
  return r;
}

// Two-sided p-value via the t transform, dof = n - 2.
double PearsonPValue(double r, size_t n) {
  const double dof = static_cast<double>(n) - 2.0;
  if (std::fabs(r) >= 1.0) return 0.0;
  const double t = r * std::sqrt(dof / (1.0 - r * r));
  return stats::StudentTTwoSidedPValue(t, dof);
}

// Merge-sort inversion counter used by Knight's algorithm: sorts `y` in
// place and returns the number of exchanges (discordant pairs).
uint64_t CountSwaps(std::vector<double>* y, std::vector<double>* buffer) {
  const size_t n = y->size();
  uint64_t swaps = 0;
  for (size_t width = 1; width < n; width *= 2) {
    for (size_t lo = 0; lo + width < n; lo += 2 * width) {
      const size_t mid = lo + width;
      const size_t hi = std::min(lo + 2 * width, n);
      size_t i = lo, j = mid, k = lo;
      while (i < mid && j < hi) {
        if ((*y)[j] < (*y)[i]) {
          swaps += mid - i;  // element jumps over the rest of the left run
          (*buffer)[k++] = (*y)[j++];
        } else {
          (*buffer)[k++] = (*y)[i++];
        }
      }
      while (i < mid) (*buffer)[k++] = (*y)[i++];
      while (j < hi) (*buffer)[k++] = (*y)[j++];
      std::copy(buffer->begin() + lo, buffer->begin() + hi, y->begin() + lo);
    }
  }
  return swaps;
}

// Sum over tie groups of t*(t-1)/2, t*(t-1)*(t-2), t*(t-1)*(2t+5) given
// group sizes.
struct TieSums {
  double pairs = 0.0;    // Σ t(t−1)/2
  double triple = 0.0;   // Σ t(t−1)(t−2)
  double weighted = 0.0; // Σ t(t−1)(2t+5)
  double pair_raw = 0.0; // Σ t(t−1)
};

TieSums ComputeTieSums(const std::vector<size_t>& groups) {
  TieSums s;
  for (size_t g : groups) {
    const double t = static_cast<double>(g);
    s.pairs += t * (t - 1.0) / 2.0;
    s.triple += t * (t - 1.0) * (t - 2.0);
    s.weighted += t * (t - 1.0) * (2.0 * t + 5.0);
    s.pair_raw += t * (t - 1.0);
  }
  return s;
}

}  // namespace

Result<CorrelationTest> Pearson(const std::vector<double>& x,
                                const std::vector<double>& y) {
  std::vector<double> xc, yc;
  CompletePairs(x, y, &xc, &yc);
  if (xc.size() < 3) {
    return Status::InvalidArgument("Pearson: need >= 3 complete pairs");
  }
  HOMETS_ASSIGN_OR_RETURN(const double r, PearsonCoefficient(xc, yc));
  CorrelationTest test;
  test.coefficient = r;
  test.n = xc.size();
  test.p_value = PearsonPValue(r, xc.size());
  return test;
}

Result<CorrelationTest> Spearman(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  std::vector<double> xc, yc;
  CompletePairs(x, y, &xc, &yc);
  if (xc.size() < 3) {
    return Status::InvalidArgument("Spearman: need >= 3 complete pairs");
  }
  const std::vector<double> rx = stats::AverageRanks(xc);
  const std::vector<double> ry = stats::AverageRanks(yc);
  HOMETS_ASSIGN_OR_RETURN(const double rho, PearsonCoefficient(rx, ry));
  CorrelationTest test;
  test.coefficient = rho;
  test.n = xc.size();
  test.p_value = PearsonPValue(rho, xc.size());
  return test;
}

Result<CorrelationTest> Kendall(const std::vector<double>& x,
                                const std::vector<double>& y) {
  std::vector<double> xc, yc;
  CompletePairs(x, y, &xc, &yc);
  const size_t n = xc.size();
  if (n < 3) {
    return Status::InvalidArgument("Kendall: need >= 3 complete pairs");
  }

  // Knight's algorithm: sort by (x, y), count y-inversions.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (xc[a] != xc[b]) return xc[a] < xc[b];
    return yc[a] < yc[b];
  });
  std::vector<double> ys(n);
  for (size_t i = 0; i < n; ++i) ys[i] = yc[order[i]];

  // Joint ties: consecutive equal (x, y) pairs in the sorted order.
  double joint_pairs = 0.0;
  {
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && xc[order[j + 1]] == xc[order[i]] &&
             yc[order[j + 1]] == yc[order[i]]) {
        ++j;
      }
      const double t = static_cast<double>(j - i + 1);
      joint_pairs += t * (t - 1.0) / 2.0;
      i = j + 1;
    }
  }

  const TieSums tx = ComputeTieSums(stats::TieGroupSizes(xc));
  const TieSums ty = ComputeTieSums(stats::TieGroupSizes(yc));

  std::vector<double> buffer(n);
  const uint64_t swaps = CountSwaps(&ys, &buffer);

  const double nf = static_cast<double>(n);
  const double n0 = nf * (nf - 1.0) / 2.0;
  const double denom_x = n0 - tx.pairs;
  const double denom_y = n0 - ty.pairs;
  if (denom_x <= 0.0 || denom_y <= 0.0) {
    return Status::ComputeError("Kendall: constant input series");
  }
  const double concordant_minus_discordant =
      n0 - tx.pairs - ty.pairs + joint_pairs -
      2.0 * static_cast<double>(swaps);
  double tau = concordant_minus_discordant / std::sqrt(denom_x * denom_y);
  tau = std::clamp(tau, -1.0, 1.0);

  // Tie-adjusted normal approximation for the null variance of (nc − nd)
  // (the form used by standard statistical packages).
  const double v0 = nf * (nf - 1.0) * (2.0 * nf + 5.0);
  double var = (v0 - tx.weighted - ty.weighted) / 18.0;
  var += tx.pair_raw * ty.pair_raw / (2.0 * nf * (nf - 1.0));
  if (n > 2) {
    var += tx.triple * ty.triple / (9.0 * nf * (nf - 1.0) * (nf - 2.0));
  }
  CorrelationTest test;
  test.coefficient = tau;
  test.n = n;
  if (var <= 0.0) {
    test.p_value = 1.0;
  } else {
    const double z = concordant_minus_discordant / std::sqrt(var);
    test.p_value = 2.0 * (1.0 - stats::NormalCdf(std::fabs(z)));
  }
  return test;
}

}  // namespace homets::correlation
