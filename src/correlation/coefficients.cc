#include "correlation/coefficients.h"

#include <algorithm>
#include <cmath>

#include "correlation/prepared_series.h"

namespace homets::correlation {

Strength ClassifyStrength(double coefficient) {
  const double a = std::fabs(coefficient);
  if (a < 0.1) return Strength::kNone;
  if (a < 0.3) return Strength::kLow;
  if (a < 0.5) return Strength::kMedium;
  return Strength::kStrong;
}

std::string StrengthName(Strength s) {
  switch (s) {
    case Strength::kNone:
      return "none";
    case Strength::kLow:
      return "low";
    case Strength::kMedium:
      return "medium";
    case Strength::kStrong:
      return "strong";
  }
  return "none";
}

void CompletePairs(const std::vector<double>& x, const std::vector<double>& y,
                   std::vector<double>* xc, std::vector<double>* yc) {
  const size_t n = std::min(x.size(), y.size());
  xc->clear();
  yc->clear();
  xc->reserve(n);
  yc->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (std::isnan(x[i]) || std::isnan(y[i])) continue;
    xc->push_back(x[i]);
    yc->push_back(y[i]);
  }
}

// The vector API is a thin wrapper over the prepared-series kernels
// (correlation/prepared_series.h): each call profiles both inputs with just
// the profile its coefficient needs, so one-shot costs match the historical
// direct implementation while batch callers share profiles across pairs.

Result<CorrelationTest> Pearson(const std::vector<double>& x,
                                const std::vector<double>& y) {
  return Pearson(PreparedSeries::Make(x, kMomentProfile),
                 PreparedSeries::Make(y, kMomentProfile));
}

Result<CorrelationTest> Spearman(const std::vector<double>& x,
                                 const std::vector<double>& y) {
  return Spearman(PreparedSeries::Make(x, kRankProfile),
                  PreparedSeries::Make(y, kRankProfile));
}

Result<CorrelationTest> Kendall(const std::vector<double>& x,
                                const std::vector<double>& y) {
  return Kendall(PreparedSeries::Make(x, kSortProfile),
                 PreparedSeries::Make(y, kSortProfile));
}

}  // namespace homets::correlation
