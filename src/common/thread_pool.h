#ifndef HOMETS_COMMON_THREAD_POOL_H_
#define HOMETS_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/failpoint.h"
#include "common/prof_hooks.h"
#include "common/status.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace homets {

/// \brief Resolves a thread-count request: values > 0 pass through, 0 (and
/// negatives) mean "use the hardware concurrency" (>= 1).
inline int ResolveThreadCount(int threads) {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// \brief Chunked parallel loop over [0, n).
///
/// The range is cut into fixed-size blocks handed out by an atomic counter
/// (work stealing at block granularity), so uneven per-item cost balances
/// across workers. `fn(begin, end, worker)` is invoked for each block with
/// `worker` in [0, workers); workers never share a block, so `fn` may keep
/// per-worker scratch state indexed by `worker` without synchronization.
///
/// Determinism contract: which worker runs which block (and in what order)
/// is scheduling-dependent, so `fn` must write only to output slots that are
/// a pure function of the index range — then the overall result is
/// bit-identical for every thread count, including 1.
///
/// Runs inline on the calling thread (worker 0) when `threads` resolves
/// to 1 or the range fits in a single block. `block` must be >= 1.
inline void ParallelFor(size_t n, int threads, size_t block,
                        const std::function<void(size_t, size_t, int)>& fn) {
  if (n == 0) return;
  if (block == 0) block = 1;
  // Dispatch metrics: loops/tasks counters, the pending-block queue depth at
  // dispatch, and a per-block wall-time histogram. Atomic increments only —
  // this header runs under TSan via the `threads` ctest label.
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const loops = registry.GetCounter(obs::kThreadPoolLoops);
  static obs::Counter* const tasks = registry.GetCounter(obs::kThreadPoolTasks);
  static obs::Gauge* const queue_depth =
      registry.GetGauge(obs::kThreadPoolQueueDepth);
  static obs::Histogram* const task_latency_us =
      registry.GetHistogram(obs::kThreadPoolTaskLatencyUs);
  static obs::Histogram* const queue_wait_us =
      registry.GetHistogram(obs::kThreadPoolQueueWaitUs);
  static obs::Counter* const prof_busy_us =
      registry.GetCounter(obs::kProfPoolBusyUs);
  static obs::Counter* const prof_idle_us =
      registry.GetCounter(obs::kProfPoolIdleUs);
  static obs::Counter* const prof_queue_wait_us =
      registry.GetCounter(obs::kProfQueueWaitUs);
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  // Profiler accounting is fully gated on this one relaxed load: with --prof
  // off, the loop pays no extra clock reads or atomic traffic.
  const bool prof_on = prof::ProfilerEnabled();
  Clock::time_point loop_start{};
  if (prof_on) loop_start = Clock::now();
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> wait_ns{0};
  const auto timed_block = [&](size_t begin, size_t end, int worker) {
    const auto start = Clock::now();
    fn(begin, end, worker);
    const auto stop = Clock::now();
    task_latency_us->Observe(
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                stop - start)
                                .count()));
    if (prof_on) {
      const uint64_t run = ns_between(start, stop);
      // Queue wait for a batch-submitted block: dispatch start -> block
      // start. With more blocks than cores this grows over the loop and is
      // exactly the serialization the profiler wants to show.
      const uint64_t waited = ns_between(loop_start, start);
      prof::RecordPoolBlock(worker, waited, run);
      queue_wait_us->Observe(static_cast<double>(waited) / 1000.0);
      busy_ns.fetch_add(run, std::memory_order_relaxed);
      wait_ns.fetch_add(waited, std::memory_order_relaxed);
    }
  };
  const int requested = ResolveThreadCount(threads);
  const size_t n_blocks = (n + block - 1) / block;
  loops->Increment();
  tasks->Increment(n_blocks);
  queue_depth->Set(static_cast<int64_t>(n_blocks));
  const int workers =
      static_cast<int>(std::min<size_t>(static_cast<size_t>(requested),
                                        n_blocks));
  const auto finish_prof = [&](int used_workers) {
    if (!prof_on) return;
    const uint64_t wall = ns_between(loop_start, Clock::now());
    const uint64_t busy = busy_ns.load(std::memory_order_relaxed);
    prof::RecordPoolLoop(used_workers, wall, busy);
    prof_busy_us->Increment(busy / 1000);
    const uint64_t capacity = static_cast<uint64_t>(used_workers) * wall;
    prof_idle_us->Increment(capacity > busy ? (capacity - busy) / 1000 : 0);
    prof_queue_wait_us->Increment(wait_ns.load(std::memory_order_relaxed) /
                                  1000);
  };
  if (workers <= 1) {
    timed_block(0, n, 0);
    queue_depth->Set(0);
    finish_prof(1);
    return;
  }
  std::atomic<size_t> next{0};
  auto drain = [&](int worker) {
    for (;;) {
      const size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= n_blocks) return;
      queue_depth->Set(static_cast<int64_t>(n_blocks - std::min(b + 1, n_blocks)));
      const size_t begin = b * block;
      timed_block(begin, std::min(begin + block, n), worker);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int w = 1; w < workers; ++w) pool.emplace_back(drain, w);
  drain(0);
  for (auto& t : pool) t.join();
  queue_depth->Set(0);
  finish_prof(workers);
}

/// \brief Hardened variant of ParallelFor: tasks return Status instead of
/// crashing the loop, and the loop honors cooperative cancellation.
///
/// Semantics:
///  - `fn(begin, end, worker)` runs per block exactly as in ParallelFor and
///    returns a Status. A failing block does NOT stop the other blocks (so
///    side effects, and therefore the winning error, stay deterministic);
///    the loop runs everything and then returns the error of the failing
///    block with the LOWEST index — bit-identical across thread counts.
///  - `cancel` (may be nullptr) is polled before each block. Once cancelled,
///    no new blocks are handed out and the loop returns kCancelled — unless
///    a block that did run failed, in which case that (lowest-block) error
///    wins. Cancellation timing is inherently scheduling-dependent.
///  - The `threadpool.task` failpoint is evaluated per block while armed;
///    a kFail fire replaces the block's execution with an injected
///    ComputeError, modelling a task that died before running.
inline Status ParallelForStatus(
    size_t n, int threads, size_t block, CancellationToken* cancel,
    const std::function<Status(size_t, size_t, int)>& fn) {
  if (n == 0) return Status::OK();
  if (block == 0) block = 1;
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const loops = registry.GetCounter(obs::kThreadPoolLoops);
  static obs::Counter* const tasks = registry.GetCounter(obs::kThreadPoolTasks);
  static obs::Gauge* const queue_depth =
      registry.GetGauge(obs::kThreadPoolQueueDepth);
  static obs::Histogram* const task_latency_us =
      registry.GetHistogram(obs::kThreadPoolTaskLatencyUs);
  static obs::Histogram* const queue_wait_us =
      registry.GetHistogram(obs::kThreadPoolQueueWaitUs);
  static obs::Counter* const prof_busy_us =
      registry.GetCounter(obs::kProfPoolBusyUs);
  static obs::Counter* const prof_idle_us =
      registry.GetCounter(obs::kProfPoolIdleUs);
  static obs::Counter* const prof_queue_wait_us =
      registry.GetCounter(obs::kProfQueueWaitUs);
  using Clock = std::chrono::steady_clock;
  const auto ns_between = [](Clock::time_point a, Clock::time_point b) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
  };
  const bool prof_on = prof::ProfilerEnabled();
  Clock::time_point loop_start{};
  if (prof_on) loop_start = Clock::now();
  std::atomic<uint64_t> busy_ns{0};
  std::atomic<uint64_t> wait_ns{0};
  const auto run_block = [&](size_t begin, size_t end,
                             int worker) -> Status {
    const auto start = Clock::now();
    Status st = Failpoints::Global().armed()
                    ? Failpoints::Global().InjectedError(kFailpointThreadPoolTask)
                    : Status::OK();
    if (st.ok()) st = fn(begin, end, worker);
    const auto stop = Clock::now();
    task_latency_us->Observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::microseconds>(stop - start)
            .count()));
    if (prof_on) {
      const uint64_t run = ns_between(start, stop);
      const uint64_t waited = ns_between(loop_start, start);
      prof::RecordPoolBlock(worker, waited, run);
      queue_wait_us->Observe(static_cast<double>(waited) / 1000.0);
      busy_ns.fetch_add(run, std::memory_order_relaxed);
      wait_ns.fetch_add(waited, std::memory_order_relaxed);
    }
    return st;
  };
  const int requested = ResolveThreadCount(threads);
  const size_t n_blocks = (n + block - 1) / block;
  loops->Increment();
  tasks->Increment(n_blocks);
  queue_depth->Set(static_cast<int64_t>(n_blocks));
  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(requested), n_blocks));
  // Each worker remembers the lowest-index failing block it saw; the merge
  // after the join picks the global minimum, so the returned error does not
  // depend on scheduling.
  std::vector<std::pair<size_t, Status>> worker_errors(
      static_cast<size_t>(std::max(workers, 1)), {SIZE_MAX, Status::OK()});
  std::atomic<bool> saw_cancel{false};
  std::atomic<size_t> next{0};
  auto drain = [&](int worker) {
    auto& first_error = worker_errors[static_cast<size_t>(worker)];
    for (;;) {
      if (cancel != nullptr && cancel->cancelled()) {
        saw_cancel.store(true, std::memory_order_relaxed);
        return;
      }
      const size_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= n_blocks) return;
      queue_depth->Set(
          static_cast<int64_t>(n_blocks - std::min(b + 1, n_blocks)));
      const size_t begin = b * block;
      Status st = run_block(begin, std::min(begin + block, n), worker);
      if (!st.ok() && b < first_error.first) {
        first_error = {b, std::move(st)};
      }
    }
  };
  if (workers <= 1) {
    drain(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers) - 1);
    for (int w = 1; w < workers; ++w) pool.emplace_back(drain, w);
    drain(0);
    for (auto& t : pool) t.join();
  }
  queue_depth->Set(0);
  if (prof_on) {
    const uint64_t wall = ns_between(loop_start, Clock::now());
    const uint64_t busy = busy_ns.load(std::memory_order_relaxed);
    const int used_workers = std::max(workers, 1);
    prof::RecordPoolLoop(used_workers, wall, busy);
    prof_busy_us->Increment(busy / 1000);
    const uint64_t capacity = static_cast<uint64_t>(used_workers) * wall;
    prof_idle_us->Increment(capacity > busy ? (capacity - busy) / 1000 : 0);
    prof_queue_wait_us->Increment(wait_ns.load(std::memory_order_relaxed) /
                                  1000);
  }
  size_t min_block = SIZE_MAX;
  Status result = Status::OK();
  for (auto& [failed_block, status] : worker_errors) {
    if (failed_block < min_block) {
      min_block = failed_block;
      result = std::move(status);
    }
  }
  if (!result.ok()) return result;
  if (saw_cancel.load(std::memory_order_relaxed)) {
    return Status::Cancelled("parallel loop cancelled before completion");
  }
  return Status::OK();
}

}  // namespace homets

#endif  // HOMETS_COMMON_THREAD_POOL_H_
