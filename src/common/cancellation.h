#ifndef HOMETS_COMMON_CANCELLATION_H_
#define HOMETS_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/status.h"

namespace homets {

/// \brief Cooperative cancellation flag shared between a requester and the
/// workers it wants to stop.
///
/// Workers poll `cancelled()` at block boundaries (see ParallelForStatus and
/// SimilarityEngine::PairwiseChecked); the requester calls `Cancel()` from
/// any thread. The flag is sticky until `Reset()`. All operations are
/// lock-free atomics, so polling on the hot path is cheap.
///
/// Tokens can be linked into a tree: a child constructed with a parent
/// observes the parent's cancellation (cancelling a fleet run cancels every
/// in-flight shard) while `Cancel()` on the child stays local (a shard
/// deadline kills that shard only, never its siblings or the whole run).
/// The parent must outlive its children; linkage is fixed at construction,
/// so the chain walk in `cancelled()` needs no synchronization.
class CancellationToken {
 public:
  CancellationToken() = default;
  /// A child token: cancelled when either its own flag or any ancestor's is
  /// set. `parent` may be nullptr (equivalent to the default constructor).
  explicit CancellationToken(const CancellationToken* parent)
      : parent_(parent) {}

  /// Cancels this token (and, via the chain walk, everything linked below
  /// it); never propagates upward to the parent.
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return parent_ != nullptr && parent_->cancelled();
  }
  /// Clears this token's own flag; an ancestor's cancellation still shows
  /// through `cancelled()`.
  void Reset() { cancelled_.store(false, std::memory_order_release); }

  /// OK while not cancelled; Status::Cancelled afterwards — the shape
  /// HOMETS_RETURN_IF_ERROR expects at a cancellation checkpoint.
  Status AsStatus() const {
    return cancelled() ? Status::Cancelled("operation cancelled")
                       : Status::OK();
  }

 private:
  const CancellationToken* parent_ = nullptr;
  std::atomic<bool> cancelled_{false};
};

/// \brief Cancels a CancellationToken when a wall-clock deadline passes.
///
/// Owns a watcher thread that sleeps until the deadline and then fires
/// `token->Cancel()`; `Disarm()` (or destruction) wakes the watcher early
/// and joins it, so a watchdog never outlives its token. `fired()` reports
/// whether the deadline — rather than an early disarm — ended the wait,
/// letting callers map the resulting cancellation to kDeadlineExceeded.
class DeadlineWatchdog {
 public:
  DeadlineWatchdog(CancellationToken* token, double deadline_ms)
      : token_(token) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
    watcher_ = std::thread([this, deadline] {
      std::unique_lock<std::mutex> lock(mu_);
      // Spurious wakeups re-check the predicate; the wait ends either at the
      // deadline or when Disarm() flips disarmed_.
      if (!cv_.wait_until(lock, deadline, [this] { return disarmed_; })) {
        fired_.store(true, std::memory_order_release);
        token_->Cancel();
      }
    });
  }

  DeadlineWatchdog(const DeadlineWatchdog&) = delete;
  DeadlineWatchdog& operator=(const DeadlineWatchdog&) = delete;

  ~DeadlineWatchdog() { Disarm(); }

  /// Stops the watchdog without cancelling the token (no-op after firing).
  void Disarm() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      disarmed_ = true;
    }
    cv_.notify_all();
    if (watcher_.joinable()) watcher_.join();
  }

  /// True when the deadline elapsed and the token was cancelled by this
  /// watchdog.
  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  CancellationToken* token_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool disarmed_ = false;
  std::atomic<bool> fired_{false};
  std::thread watcher_;
};

}  // namespace homets

#endif  // HOMETS_COMMON_CANCELLATION_H_
