#ifndef HOMETS_COMMON_JSON_H_
#define HOMETS_COMMON_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace homets {

/// \brief A parsed JSON document node.
///
/// Minimal recursive value type for reading the machine-readable artifacts
/// this repo emits (BENCH_*.json, --metrics-out files). Numbers are kept as
/// double — the artifacts only carry measurements, never 64-bit identifiers
/// that would lose precision. Object keys keep insertion order and duplicate
/// keys keep the last value, mirroring common JSON-library behavior.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return array_; }
  const std::vector<std::pair<std::string, JsonValue>>& object_items() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Convenience accessors with fallback, for tolerant artifact readers.
  double NumberOr(std::string_view key, double fallback) const;
  std::string StringOr(std::string_view key, std::string fallback) const;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// \brief Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). InvalidArgument errors carry the byte
/// offset of the first offending character.
Result<JsonValue> ParseJson(std::string_view text);

/// \brief Reads and parses `path`; IoError when unreadable.
Result<JsonValue> ReadJsonFile(const std::string& path);

}  // namespace homets

#endif  // HOMETS_COMMON_JSON_H_
