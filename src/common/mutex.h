#ifndef HOMETS_COMMON_MUTEX_H_
#define HOMETS_COMMON_MUTEX_H_

#include <chrono>
#include <cstdint>
#include <mutex>

#include "common/prof_hooks.h"
#include "common/thread_annotations.h"

// Annotated mutex wrapper for Clang thread-safety analysis.
//
// std::mutex carries no capability annotation, so -Wthread-safety cannot see
// locks taken through std::lock_guard — HOMETS_GUARDED_BY members would be
// flagged on every access even when correctly locked. homets::Mutex is a
// zero-overhead wrapper (one std::mutex, all methods inline) whose
// Lock/Unlock are annotated as acquire/release, and homets::MutexLock is the
// annotated std::lock_guard equivalent. Code that must hand the native
// handle to std::condition_variable uses native() and opts that one wait
// loop out with HOMETS_NO_THREAD_SAFETY_ANALYSIS (see obs/flusher.cc).
//
// Header-only and standard-library-only on purpose: obs/ sits below
// homets_common in the link graph but may include this freely (which is also
// why the contention instrumentation below writes into common/prof_hooks.h
// accumulators instead of obs metrics — the registry guards itself with this
// very Mutex, so a registry call from Lock would re-enter).
namespace homets {

class HOMETS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// Names this mutex in the lock-contention profile (obs/prof). `name` must
  /// have static storage duration — pass a string literal.
  explicit Mutex(const char* name) : name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // With the profiler off, Lock costs the plain mu_.lock() plus one relaxed
  // atomic load. On, the uncontended path is a bare try_lock; only an
  // acquisition that actually has to block reads the clock and records.
  void Lock() HOMETS_ACQUIRE() {
    if (!prof::ProfilerEnabled()) {
      mu_.lock();
      return;
    }
    LockProfiled();
  }
  void Unlock() HOMETS_RELEASE() { mu_.unlock(); }
  bool TryLock() HOMETS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable interop only. The
  /// analysis cannot follow locks taken through this handle; callers must be
  /// HOMETS_NO_THREAD_SAFETY_ANALYSIS and keep the unlocked window obvious.
  std::mutex& native() { return mu_; }

 private:
  // Cold path, kept out of line of the inline Lock: time the blocking
  // acquisition and record it against this mutex's name (if any).
  void LockProfiled() {
    if (mu_.try_lock()) return;
    const auto start = std::chrono::steady_clock::now();
    mu_.lock();
    const auto waited = std::chrono::steady_clock::now() - start;
    prof::RecordLockContention(
        name_, static_cast<uint64_t>(
                   std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                       .count()));
  }

  std::mutex mu_;
  const char* name_ = nullptr;
};

/// \brief Annotated scoped lock: std::lock_guard for homets::Mutex.
class HOMETS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HOMETS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HOMETS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace homets

#endif  // HOMETS_COMMON_MUTEX_H_
