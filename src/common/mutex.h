#ifndef HOMETS_COMMON_MUTEX_H_
#define HOMETS_COMMON_MUTEX_H_

#include <mutex>

#include "common/thread_annotations.h"

// Annotated mutex wrapper for Clang thread-safety analysis.
//
// std::mutex carries no capability annotation, so -Wthread-safety cannot see
// locks taken through std::lock_guard — HOMETS_GUARDED_BY members would be
// flagged on every access even when correctly locked. homets::Mutex is a
// zero-overhead wrapper (one std::mutex, all methods inline) whose
// Lock/Unlock are annotated as acquire/release, and homets::MutexLock is the
// annotated std::lock_guard equivalent. Code that must hand the native
// handle to std::condition_variable uses native() and opts that one wait
// loop out with HOMETS_NO_THREAD_SAFETY_ANALYSIS (see obs/flusher.cc).
//
// Header-only and standard-library-only on purpose: obs/ sits below
// homets_common in the link graph but may include this freely.
namespace homets {

class HOMETS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() HOMETS_ACQUIRE() { mu_.lock(); }
  void Unlock() HOMETS_RELEASE() { mu_.unlock(); }
  bool TryLock() HOMETS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped std::mutex, for std::condition_variable interop only. The
  /// analysis cannot follow locks taken through this handle; callers must be
  /// HOMETS_NO_THREAD_SAFETY_ANALYSIS and keep the unlocked window obvious.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief Annotated scoped lock: std::lock_guard for homets::Mutex.
class HOMETS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) HOMETS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() HOMETS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

}  // namespace homets

#endif  // HOMETS_COMMON_MUTEX_H_
