#ifndef HOMETS_COMMON_FLAGS_H_
#define HOMETS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace homets {

/// \brief Result of strict command-line parsing: `--flag value` /
/// `--flag=value` pairs plus positional arguments.
struct ParsedArgs {
  std::map<std::string, std::string> flags;
  std::vector<std::string> positional;

  bool Has(const std::string& flag) const { return flags.count(flag) > 0; }

  std::string GetString(const std::string& flag,
                        const std::string& fallback = "") const {
    const auto it = flags.find(flag);
    return it == flags.end() ? fallback : it->second;
  }

  /// The flag's value as a base-10 integer; InvalidArgument when present but
  /// not fully numeric.
  Result<int64_t> GetInt(const std::string& flag, int64_t fallback) const;
};

/// \brief Strict flag parsing: every `--name` must be in `known_flags` and
/// must be followed by a value (either `--name value` or `--name=value`).
///
/// Unknown flags and a trailing flag with no value are errors — they are
/// never silently demoted to positionals (a dangling `--seed` used to be
/// swallowed that way). A literal `--` ends flag parsing; everything after
/// it is positional, so file names starting with dashes stay usable.
///
/// Flags in `bool_flags` (must also be in `known_flags`) take no value:
/// bare `--name` records "1", and an explicit `--name=VALUE` is still
/// honored (so `--progress=0` can switch one off).
Result<ParsedArgs> ParseFlags(const std::vector<std::string>& args,
                              const std::set<std::string>& known_flags,
                              const std::set<std::string>& bool_flags = {});

}  // namespace homets

#endif  // HOMETS_COMMON_FLAGS_H_
