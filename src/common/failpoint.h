#ifndef HOMETS_COMMON_FAILPOINT_H_
#define HOMETS_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace homets {

/// \brief What an armed failpoint does when it fires at its site.
enum class FailpointAction : uint8_t {
  kNone = 0,   ///< inactive (disarmed, no rule, or rule did not fire)
  kError,      ///< inject an IoError Status (transient, retryable)
  kCorrupt,    ///< mangle the data flowing through the site (e.g. a CSV row)
  kTruncate,   ///< cut the data stream short (e.g. mid-file EOF)
  kFail,       ///< fail the unit of work (e.g. a thread-pool task)
};

/// \brief Counters for one failpoint site, for tests and reports.
struct FailpointStats {
  uint64_t hits = 0;   ///< times the site was evaluated while armed
  uint64_t fires = 0;  ///< times a non-kNone action was returned
};

/// \brief Deterministic, seeded fault-injection registry.
///
/// Off by default with zero hot-path cost: every instrumented site first
/// checks `armed()` — a single relaxed atomic load — and only takes the
/// registry mutex when a spec has been installed. Sites are named
/// `<module>.<operation>` in dotted lower_snake_case (the canonical list
/// lives in the kFailpoint* constants below and DESIGN.md §8).
///
/// Spec grammar (`--failpoints=` flag or HOMETS_FAILPOINTS env var):
///
///   spec  := entry (';' entry)*
///   entry := site '=' action modifier*
///   action   := off | error | corrupt | truncate | fail
///   modifier := '*' COUNT   fire at most COUNT times (default: unlimited)
///             | '@' START   first hit (1-based) eligible to fire (default 1)
///             | '~' PROB    fire with probability PROB per hit, drawn from
///                           a SplitMix64 stream seeded with
///                           seed ^ hash(site) — deterministic per spec+seed
///
/// e.g. `io.csv.open=error*2;io.csv.row=corrupt@3;threadpool.task=fail~0.25`.
/// Counted and windowed rules are exactly reproducible wherever the site's
/// hits are sequenced (all IO sites); probabilistic rules are reproducible
/// per hit index, so under a multi-threaded site the set of firing hit
/// indices is stable even though which task observes them may vary.
class Failpoints {
 public:
  /// The process-wide registry used by the HOMETS_FAILPOINT macros and all
  /// instrumented sites.
  static Failpoints& Global();

  /// Parses `spec` and replaces the installed rules. An empty spec disarms
  /// the registry. On a malformed spec the registry is left unchanged and
  /// InvalidArgument is returned.
  Status Configure(std::string_view spec, uint64_t seed = 0);

  /// Configure() from the HOMETS_FAILPOINTS / HOMETS_FAILPOINTS_SEED
  /// environment variables; OK (and disarmed) when they are unset.
  Status ConfigureFromEnv();

  /// Removes every rule and disarms the registry.
  void Reset();

  /// True when any rule is installed. Relaxed atomic load — the only cost
  /// instrumented sites pay when fault injection is off.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Evaluates the rule at `site`; kNone when disarmed or no rule matches.
  FailpointAction Evaluate(std::string_view site);

  /// Schedule-independent variant for sites whose units carry a stable
  /// logical index (shard number, chunk number): the decision is a pure
  /// function of the armed rule and (`index`, `attempt`), never of hit
  /// arrival order, so `fleet.shard.run=fail@3` fires on shard index 3 under
  /// any `--shards`/thread-count combination. Both arguments are 1-based.
  /// Modifiers are reinterpreted per unit: `@K` makes indices >= K eligible,
  /// `*N` fires only the first N attempts at an eligible index (so
  /// `fail@3*1` fails shard 3 once and lets its retry through), and `~P`
  /// draws from a stream keyed on (seed, site, index, attempt).
  FailpointAction EvaluateAt(std::string_view site, uint64_t index,
                             uint64_t attempt = 1);

  /// Evaluate() mapped to a Status: kError becomes a retryable IoError,
  /// kFail becomes a ComputeError, anything else is OK (kCorrupt/kTruncate
  /// are data-shaping actions the site must apply itself).
  Status InjectedError(std::string_view site);

  /// EvaluateAt() mapped to a Status, same action mapping as InjectedError.
  Status InjectedErrorAt(std::string_view site, uint64_t index,
                         uint64_t attempt = 1);

  /// Counters for one site (zeros when the site has no rule).
  FailpointStats stats(std::string_view site) const;

 private:
  struct Rule {
    FailpointAction action = FailpointAction::kNone;
    uint64_t start = 1;                 ///< 1-based first eligible hit
    uint64_t max_fires = UINT64_MAX;    ///< '*COUNT' budget
    double probability = 1.0;           ///< '~PROB' per-hit chance
    uint64_t seed = 0;                  ///< seed ^ hash(site), for EvaluateAt
    SplitMix64 rng{0};                  ///< seeded stream for '~' draws
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  Failpoints() = default;

  mutable Mutex mu_;
  std::map<std::string, Rule, std::less<>> rules_ HOMETS_GUARDED_BY(mu_);
  std::atomic<bool> armed_{false};
};

/// Canonical failpoint site names. Instrumented call sites use these
/// constants so the injectable surface is greppable in one place.
inline constexpr std::string_view kFailpointCsvOpen = "io.csv.open";
inline constexpr std::string_view kFailpointCsvRow = "io.csv.row";
inline constexpr std::string_view kFailpointCsvWrite = "io.csv.write";
inline constexpr std::string_view kFailpointColOpen = "io.col.open";
inline constexpr std::string_view kFailpointColChunk = "io.col.chunk";
inline constexpr std::string_view kFailpointColWrite = "io.col.write";
inline constexpr std::string_view kFailpointTablePrint = "io.table.print";
inline constexpr std::string_view kFailpointThreadPoolTask =
    "threadpool.task";
inline constexpr std::string_view kFailpointEnginePairBlock =
    "engine.pair_block";
inline constexpr std::string_view kFailpointFleetShardRun =
    "fleet.shard.run";
inline constexpr std::string_view kFailpointCkptWrite = "io.ckpt.write";
inline constexpr std::string_view kFailpointCkptRead = "io.ckpt.read";

/// Evaluates `site` with zero cost when fault injection is disarmed.
inline FailpointAction EvaluateFailpoint(std::string_view site) {
  Failpoints& fp = Failpoints::Global();
  return fp.armed() ? fp.Evaluate(site) : FailpointAction::kNone;
}

/// Returns the injected error from `site`, if any, out of the enclosing
/// function (which must return Status or Result<T>). Compiles to a single
/// relaxed load when fault injection is off.
#define HOMETS_FAILPOINT(site)                                         \
  do {                                                                 \
    if (::homets::Failpoints::Global().armed()) {                      \
      ::homets::Status _homets_fp_status =                             \
          ::homets::Failpoints::Global().InjectedError(site);          \
      if (!_homets_fp_status.ok()) return _homets_fp_status;           \
    }                                                                  \
  } while (false)

}  // namespace homets

#endif  // HOMETS_COMMON_FAILPOINT_H_
