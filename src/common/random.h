#ifndef HOMETS_COMMON_RANDOM_H_
#define HOMETS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace homets {

/// \brief SplitMix64 generator, used to seed Xoshiro and as a cheap stateless
/// mixer. Reference: Steele, Lea, Flood (2014).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next();

 private:
  uint64_t state_;
};

/// \brief xoshiro256** 1.0 PRNG (Blackman & Vigna). Deterministic across
/// platforms, which the experiment harness relies on for reproducible fleets.
///
/// Satisfies the UniformRandomBitGenerator concept so it composes with
/// `<random>` distributions, but the generator also offers direct samplers
/// for every distribution the simulator needs, so results do not depend on
/// standard-library distribution implementations.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Exponential with the given rate λ (> 0).
  double Exponential(double rate);

  /// Pareto (Lomax-style: xm * U^{-1/alpha}) with scale xm > 0 and shape
  /// alpha > 0. Heavy-tailed; used for session volumes.
  double Pareto(double xm, double alpha);

  /// Log-normal with parameters of the underlying normal.
  double LogNormal(double mu, double sigma);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Poisson with mean lambda >= 0 (Knuth for small lambda, normal
  /// approximation above 64).
  int Poisson(double lambda);

  /// Zipf-distributed integer in [1, n] with exponent s > 0, via inverse
  /// transform on the precomputable harmonic CDF. Used for background-traffic
  /// value ranks.
  int Zipf(int n, double s);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Derives an independent child generator; `stream` distinguishes children
  /// of the same parent. Used to give each gateway/device its own stream so
  /// fleet generation is order-independent.
  Rng Fork(uint64_t stream) const;

 private:
  uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace homets

#endif  // HOMETS_COMMON_RANDOM_H_
