#include "common/random.h"

#include <cassert>
#include <cmath>

namespace homets {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64::Next() {
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // All-zero state is invalid for xoshiro; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = max() - max() % n;
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % n;
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  while (u1 <= 0.0) u1 = Uniform();  // avoid log(0)
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Exponential(double rate) {
  assert(rate > 0.0);
  double u = 0.0;
  while (u <= 0.0) u = Uniform();
  return -std::log(u) / rate;
}

double Rng::Pareto(double xm, double alpha) {
  assert(xm > 0.0 && alpha > 0.0);
  double u = 0.0;
  while (u <= 0.0) u = Uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

int Rng::Poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // traffic simulator's large-mean session counts.
    const double x = Normal(lambda, std::sqrt(lambda));
    return x < 0.0 ? 0 : static_cast<int>(x + 0.5);
  }
  const double limit = std::exp(-lambda);
  double prod = 1.0;
  int count = -1;
  do {
    prod *= Uniform();
    ++count;
  } while (prod > limit);
  return count;
}

int Rng::Zipf(int n, double s) {
  assert(n >= 1 && s > 0.0);
  // Inverse-transform over the truncated harmonic CDF. n is small (value
  // ranks for background traffic), so a linear scan is fine.
  double norm = 0.0;
  for (int k = 1; k <= n; ++k) norm += 1.0 / std::pow(k, s);
  double u = Uniform() * norm;
  double cum = 0.0;
  for (int k = 1; k <= n; ++k) {
    cum += 1.0 / std::pow(k, s);
    if (u <= cum) return k;
  }
  return n;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double u = Uniform() * total;
  double cum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cum += weights[i];
    if (u <= cum) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork(uint64_t stream) const {
  SplitMix64 sm(s_[0] ^ Rotl(stream, 32) ^ 0xd3833e804f4c574bULL);
  return Rng(sm.Next() ^ s_[3]);
}

}  // namespace homets
