#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace homets {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  // Last duplicate wins, so search back to front.
  for (auto it = object_.rbegin(); it != object_.rend(); ++it) {
    if (it->first == key) return &it->second;
  }
  return nullptr;
}

double JsonValue::NumberOr(std::string_view key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number_value() : fallback;
}

std::string JsonValue::StringOr(std::string_view key,
                                std::string fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string_value()
                                        : std::move(fallback);
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(members);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with a byte cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    HOMETS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("%s at byte %zu", what.c_str(), pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    if (++depth_ > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    Result<JsonValue> value = [&]() -> Result<JsonValue> {
      switch (text_[pos_]) {
        case '{':
          return ParseObject();
        case '[':
          return ParseArray();
        case '"':
          return ParseString();
        case 't':
          if (ConsumeWord("true")) return JsonValue::MakeBool(true);
          return Error("invalid literal");
        case 'f':
          if (ConsumeWord("false")) return JsonValue::MakeBool(false);
          return Error("invalid literal");
        case 'n':
          if (ConsumeWord("null")) return JsonValue::MakeNull();
          return Error("invalid literal");
        default:
          return ParseNumber();
      }
    }();
    --depth_;
    return value;
  }

  Result<JsonValue> ParseObject() {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (Consume('}')) return JsonValue::MakeObject(std::move(members));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      HOMETS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      HOMETS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      members.emplace_back(key.string_value(), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return JsonValue::MakeObject(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (Consume(']')) return JsonValue::MakeArray(std::move(items));
    for (;;) {
      HOMETS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return JsonValue::MakeArray(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseString() {
    Consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return JsonValue::MakeString(std::move(out));
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not needed
          // by any artifact this repo writes, so they decode as two chars.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
    return Error("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      pos_ = start;
      return Error("invalid number");
    }
    return JsonValue::MakeNumber(value);
  }

  static constexpr int kMaxDepth = 128;
  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).ParseDocument();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  auto parsed = ParseJson(buffer.str());
  if (!parsed.ok()) {
    return Status::InvalidArgument(path + ": " + parsed.status().message());
  }
  return parsed;
}

}  // namespace homets
