#include "common/failpoint.h"

#include <charconv>
#include <cstdlib>

#include "common/strings.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace homets {

namespace {

/// FNV-1a 64-bit — mixes the site name into the per-rule seed so two sites
/// under the same global seed draw independent probability streams.
uint64_t HashSite(std::string_view site) {
  uint64_t h = 1469598103934665603ull;
  for (const char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Uniform double in [0, 1) from one 64-bit draw.
double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

Result<FailpointAction> ParseAction(std::string_view word,
                                    std::string_view entry) {
  if (word == "off") return FailpointAction::kNone;
  if (word == "error") return FailpointAction::kError;
  if (word == "corrupt") return FailpointAction::kCorrupt;
  if (word == "truncate") return FailpointAction::kTruncate;
  if (word == "fail") return FailpointAction::kFail;
  return Status::InvalidArgument("failpoints: unknown action '" +
                                 std::string(word) + "' in '" +
                                 std::string(entry) + "'");
}

Result<uint64_t> ParseCount(std::string_view text, std::string_view entry) {
  uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size() || value == 0) {
    return Status::InvalidArgument("failpoints: expected positive integer in '" +
                                   std::string(entry) + "'");
  }
  return value;
}

}  // namespace

Failpoints& Failpoints::Global() {
  static Failpoints* const instance = new Failpoints();
  return *instance;
}

Status Failpoints::Configure(std::string_view spec, uint64_t seed) {
  std::map<std::string, Rule, std::less<>> parsed;
  for (const std::string& raw : StrSplit(spec, ';')) {
    const std::string_view entry = StrTrim(raw);
    if (entry.empty()) continue;
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument(
          "failpoints: expected 'site=action' in '" + std::string(entry) +
          "'");
    }
    const std::string site{StrTrim(entry.substr(0, eq))};
    std::string_view mode = StrTrim(entry.substr(eq + 1));
    Rule rule;
    // The action word runs up to the first modifier character.
    const size_t mod = mode.find_first_of("*@~");
    const std::string_view action_word =
        StrTrim(mode.substr(0, mod == std::string_view::npos ? mode.size()
                                                             : mod));
    HOMETS_ASSIGN_OR_RETURN(rule.action, ParseAction(action_word, entry));
    std::string_view rest =
        mod == std::string_view::npos ? std::string_view() : mode.substr(mod);
    while (!rest.empty()) {
      const char kind = rest.front();
      rest.remove_prefix(1);
      size_t next = rest.find_first_of("*@~");
      const std::string_view value =
          StrTrim(rest.substr(0, next == std::string_view::npos ? rest.size()
                                                                : next));
      rest = next == std::string_view::npos ? std::string_view()
                                            : rest.substr(next);
      if (kind == '*') {
        HOMETS_ASSIGN_OR_RETURN(rule.max_fires, ParseCount(value, entry));
      } else if (kind == '@') {
        HOMETS_ASSIGN_OR_RETURN(rule.start, ParseCount(value, entry));
      } else {  // '~'
        char* end = nullptr;
        const std::string text(value);
        const double p = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || !(p >= 0.0) || p > 1.0) {
          return Status::InvalidArgument(
              "failpoints: probability must be in [0, 1] in '" +
              std::string(entry) + "'");
        }
        rule.probability = p;
      }
    }
    rule.seed = seed ^ HashSite(site);
    rule.rng = SplitMix64(rule.seed);
    parsed.insert_or_assign(site, rule);
  }
  MutexLock lock(&mu_);
  rules_ = std::move(parsed);
  armed_.store(!rules_.empty(), std::memory_order_release);
  return Status::OK();
}

Status Failpoints::ConfigureFromEnv() {
  const char* spec = std::getenv("HOMETS_FAILPOINTS");
  if (spec == nullptr || spec[0] == '\0') {
    Reset();
    return Status::OK();
  }
  uint64_t seed = 0;
  if (const char* seed_text = std::getenv("HOMETS_FAILPOINTS_SEED")) {
    const std::string_view sv = seed_text;
    const auto [ptr, ec] =
        std::from_chars(sv.data(), sv.data() + sv.size(), seed);
    if (ec != std::errc() || ptr != sv.data() + sv.size()) {
      return Status::InvalidArgument(
          "HOMETS_FAILPOINTS_SEED: expected an unsigned integer, got '" +
          std::string(sv) + "'");
    }
  }
  return Configure(spec, seed);
}

void Failpoints::Reset() {
  MutexLock lock(&mu_);
  rules_.clear();
  armed_.store(false, std::memory_order_release);
}

FailpointAction Failpoints::Evaluate(std::string_view site) {
  if (!armed()) return FailpointAction::kNone;
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const evaluations =
      registry.GetCounter(obs::kFailpointEvaluations);
  static obs::Counter* const triggers =
      registry.GetCounter(obs::kFailpointTriggers);
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return FailpointAction::kNone;
  Rule& rule = it->second;
  ++rule.hits;
  evaluations->Increment();
  if (rule.action == FailpointAction::kNone) return FailpointAction::kNone;
  if (rule.hits < rule.start) return FailpointAction::kNone;
  if (rule.fires >= rule.max_fires) return FailpointAction::kNone;
  if (rule.probability < 1.0 && ToUnit(rule.rng.Next()) >= rule.probability) {
    return FailpointAction::kNone;
  }
  ++rule.fires;
  triggers->Increment();
  // Injected faults are intentionally rare and load-bearing for the run's
  // outcome — a structured record of each fire makes a chaos run's log
  // self-explanatory (and the manifest's failed_stage attributable).
  obs::LogWarn("failpoint", "failpoint fired",
               {obs::LogField::Str("site", std::string(site)),
                obs::LogField::Uint("fire", rule.fires),
                obs::LogField::Uint("hit", rule.hits)});
  return rule.action;
}

FailpointAction Failpoints::EvaluateAt(std::string_view site, uint64_t index,
                                       uint64_t attempt) {
  if (!armed()) return FailpointAction::kNone;
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const evaluations =
      registry.GetCounter(obs::kFailpointEvaluations);
  static obs::Counter* const triggers =
      registry.GetCounter(obs::kFailpointTriggers);
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return FailpointAction::kNone;
  Rule& rule = it->second;
  ++rule.hits;
  evaluations->Increment();
  if (rule.action == FailpointAction::kNone) return FailpointAction::kNone;
  // Every predicate below is a pure function of the rule and the caller's
  // (index, attempt), so the decision cannot depend on which thread's hit
  // reached the registry first.
  if (index < rule.start) return FailpointAction::kNone;
  if (attempt > rule.max_fires) return FailpointAction::kNone;
  if (rule.probability < 1.0) {
    SplitMix64 draw(rule.seed ^ (index * 0x9E3779B97F4A7C15ull) ^
                    (attempt * 0xBF58476D1CE4E5B9ull));
    if (ToUnit(draw.Next()) >= rule.probability) {
      return FailpointAction::kNone;
    }
  }
  ++rule.fires;
  triggers->Increment();
  obs::LogWarn("failpoint", "failpoint fired",
               {obs::LogField::Str("site", std::string(site)),
                obs::LogField::Uint("index", index),
                obs::LogField::Uint("attempt", attempt)});
  return rule.action;
}

Status Failpoints::InjectedError(std::string_view site) {
  switch (Evaluate(site)) {
    case FailpointAction::kError:
      return Status::IoError("injected by failpoint '" + std::string(site) +
                             "'");
    case FailpointAction::kFail:
      return Status::ComputeError("injected by failpoint '" +
                                  std::string(site) + "'");
    default:
      return Status::OK();
  }
}

Status Failpoints::InjectedErrorAt(std::string_view site, uint64_t index,
                                   uint64_t attempt) {
  switch (EvaluateAt(site, index, attempt)) {
    case FailpointAction::kError:
      return Status::IoError("injected by failpoint '" + std::string(site) +
                             "'");
    case FailpointAction::kFail:
      return Status::ComputeError("injected by failpoint '" +
                                  std::string(site) + "'");
    default:
      return Status::OK();
  }
}

FailpointStats Failpoints::stats(std::string_view site) const {
  MutexLock lock(&mu_);
  const auto it = rules_.find(site);
  if (it == rules_.end()) return FailpointStats{};
  return FailpointStats{it->second.hits, it->second.fires};
}

}  // namespace homets
