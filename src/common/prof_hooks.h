#ifndef HOMETS_COMMON_PROF_HOOKS_H_
#define HOMETS_COMMON_PROF_HOOKS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

// Lock-free accumulators for the execution profiler (obs/prof).
//
// This header is the substrate the instrumented hot paths write into:
// common/mutex.h records contended acquisitions here, common/thread_pool.h
// records per-worker block accounting, and the opt-in operator-new tally in
// obs/prof.cc records allocation volume. The obs/prof module reads these
// accumulators, publishes them as homets.prof.* metrics, and renders the
// --prof-out report — but the hooks themselves must stay standard-library
// only and must NEVER touch obs::MetricsRegistry: registry methods lock a
// homets::Mutex, whose instrumented Lock would re-enter the hooks (and,
// for the alloc tally, every registry allocation would recurse).
//
// Cost discipline (an acceptance criterion of the profiler PR): with the
// profiler disabled, every hook below is a single relaxed atomic load.
// Enabled, the counters are relaxed fetch_adds — safe under TSan, never
// ordered, and read only for monotonically-growing totals whose transient
// skew between fields is acceptable.
namespace homets::prof {

/// Master gate. One relaxed load on every instrumented hot path; flipped by
/// obs::EnableProfiler (CLI --prof, perf_pipeline --prof, tests).
inline std::atomic<bool> g_enabled{false};

inline bool ProfilerEnabled() {
  return g_enabled.load(std::memory_order_relaxed);
}

// --- Lock contention -------------------------------------------------------

/// Fixed-capacity per-named-mutex table. Slots are claimed by CAS on the
/// name pointer (names must have static storage duration — string literals
/// in practice); once full, further named mutexes fold into the global
/// totals only. 64 slots is an order of magnitude above the number of named
/// mutexes in the tree.
inline constexpr int kLockProfSlots = 64;

struct LockProfSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<uint64_t> contended{0};
  std::atomic<uint64_t> wait_ns{0};
};

struct LockProfState {
  std::atomic<uint64_t> contended_total{0};
  std::atomic<uint64_t> wait_ns_total{0};
  LockProfSlot slots[kLockProfSlots];
};

inline LockProfState g_lock_prof;

/// Records one contended acquisition (the try_lock fast path failed and the
/// caller had to block for `wait_ns`). Called only on the contended path, so
/// contention events are their own sampling: the uncontended path never
/// reaches here.
inline void RecordLockContention(const char* name, uint64_t wait_ns) {
  g_lock_prof.contended_total.fetch_add(1, std::memory_order_relaxed);
  g_lock_prof.wait_ns_total.fetch_add(wait_ns, std::memory_order_relaxed);
  if (name == nullptr) return;
  for (auto& slot : g_lock_prof.slots) {
    const char* have = slot.name.load(std::memory_order_acquire);
    if (have == nullptr) {
      const char* expected = nullptr;
      if (!slot.name.compare_exchange_strong(expected, name,
                                             std::memory_order_acq_rel)) {
        have = expected;  // someone else claimed it first
      } else {
        have = name;
      }
    }
    if (have == name) {
      slot.contended.fetch_add(1, std::memory_order_relaxed);
      slot.wait_ns.fetch_add(wait_ns, std::memory_order_relaxed);
      return;
    }
  }
  // Table full: counted in the totals above, unnamed in the breakdown.
}

// --- Thread-pool worker accounting -----------------------------------------

/// Per-worker slots are indexed by the loop-local worker id, which ParallelFor
/// caps at the hardware concurrency of any machine we target; workers beyond
/// the table fold into the totals only.
inline constexpr int kPoolProfWorkers = 64;

struct PoolProfWorkerSlot {
  std::atomic<uint64_t> blocks{0};
  std::atomic<uint64_t> run_ns{0};
  std::atomic<uint64_t> queue_wait_ns{0};
};

struct PoolProfState {
  std::atomic<uint64_t> loops{0};
  std::atomic<uint64_t> blocks_total{0};
  std::atomic<uint64_t> busy_ns_total{0};
  std::atomic<uint64_t> idle_ns_total{0};
  std::atomic<uint64_t> queue_wait_ns_total{0};
  PoolProfWorkerSlot workers[kPoolProfWorkers];
};

inline PoolProfState g_pool_prof;

/// Records one executed block: `queue_wait_ns` is the time the block sat in
/// the dispatch queue (loop start -> block start), `run_ns` its execution.
inline void RecordPoolBlock(int worker, uint64_t queue_wait_ns,
                            uint64_t run_ns) {
  g_pool_prof.blocks_total.fetch_add(1, std::memory_order_relaxed);
  g_pool_prof.busy_ns_total.fetch_add(run_ns, std::memory_order_relaxed);
  g_pool_prof.queue_wait_ns_total.fetch_add(queue_wait_ns,
                                            std::memory_order_relaxed);
  if (worker < 0 || worker >= kPoolProfWorkers) return;
  auto& slot = g_pool_prof.workers[worker];
  slot.blocks.fetch_add(1, std::memory_order_relaxed);
  slot.run_ns.fetch_add(run_ns, std::memory_order_relaxed);
  slot.queue_wait_ns.fetch_add(queue_wait_ns, std::memory_order_relaxed);
}

/// Records loop-level idle time: `workers * wall_ns` is the total worker-time
/// the loop had available, `busy_ns` what the blocks actually used; the
/// difference is workers spinning on the handout counter or joined early.
inline void RecordPoolLoop(int workers, uint64_t wall_ns, uint64_t busy_ns) {
  g_pool_prof.loops.fetch_add(1, std::memory_order_relaxed);
  const uint64_t capacity = static_cast<uint64_t>(workers) * wall_ns;
  if (capacity > busy_ns) {
    g_pool_prof.idle_ns_total.fetch_add(capacity - busy_ns,
                                        std::memory_order_relaxed);
  }
}

// --- Allocation tally (opt-in operator new replacement) --------------------

/// Separate gate from g_enabled: the operator-new replacement (defined in
/// obs/prof.cc, linked only into binaries that reference prof symbols) pays
/// this one relaxed load per allocation even when profiling, so the tally
/// stays opt-in on top of --prof.
inline std::atomic<bool> g_alloc_tally_enabled{false};
inline std::atomic<uint64_t> g_alloc_count{0};
inline std::atomic<uint64_t> g_alloc_bytes{0};

inline void NoteAlloc(std::size_t bytes) {
  if (!g_alloc_tally_enabled.load(std::memory_order_relaxed)) return;
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(bytes, std::memory_order_relaxed);
}

}  // namespace homets::prof

#endif  // HOMETS_COMMON_PROF_HOOKS_H_
