#ifndef HOMETS_COMMON_THREAD_ANNOTATIONS_H_
#define HOMETS_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis attribute macros (HOMETS_GUARDED_BY and
// friends). Under Clang with -Wthread-safety these let the compiler prove
// lock discipline at build time: every read/write of an annotated member is
// checked against the locks the enclosing function actually holds, and a
// violation is a hard error in HOMETS_WERROR builds. Under every other
// compiler (the container's GCC included) they expand to nothing, so
// annotated code stays portable.
//
// The vocabulary mirrors the Clang documentation
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) with a HOMETS_
// prefix. Conventions used in this repo (see DESIGN.md §7):
//   - every mutex-protected member is HOMETS_GUARDED_BY(mu_);
//   - private helpers that assume the lock is held take HOMETS_REQUIRES(mu_);
//   - public entry points that take the lock are HOMETS_EXCLUDES(mu_) so
//     self-deadlock through re-entry is caught;
//   - the rare function the analysis cannot model (condition-variable wait
//     loops through a native handle) is HOMETS_NO_THREAD_SAFETY_ANALYSIS
//     with a comment explaining why.
// Prefer homets::Mutex / homets::MutexLock (common/mutex.h) over raw
// std::mutex: the standard mutex carries no capability annotation, so the
// analysis can only see locks taken through the annotated wrapper.

#if defined(__clang__)
#define HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op off Clang
#endif

/// Declares a class to be a lockable capability, e.g.
/// `class HOMETS_CAPABILITY("mutex") Mutex { … };`.
#define HOMETS_CAPABILITY(x) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor (MutexLock).
#define HOMETS_SCOPED_CAPABILITY \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only while holding the given capability.
#define HOMETS_GUARDED_BY(x) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose pointee is protected by the given capability.
#define HOMETS_PT_GUARDED_BY(x) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// The function may only be called while holding the listed capabilities.
#define HOMETS_REQUIRES(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on return.
#define HOMETS_ACQUIRE(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define HOMETS_RELEASE(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// public entry points that take the lock themselves).
#define HOMETS_EXCLUDES(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Documents lock-ordering: this capability is acquired after the listed
/// ones.
#define HOMETS_ACQUIRED_AFTER(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// Documents lock-ordering: this capability is acquired before the listed
/// ones.
#define HOMETS_ACQUIRED_BEFORE(...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define HOMETS_RETURN_CAPABILITY(x) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Try-lock: acquires the capability only when returning `success`.
#define HOMETS_TRY_ACQUIRE(success, ...) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(    \
      try_acquire_capability(success, __VA_ARGS__))

/// Runtime assertion that the capability is held (for code the analysis
/// cannot follow, e.g. callbacks invoked under a caller's lock).
#define HOMETS_ASSERT_CAPABILITY(x) \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Opts a function out of the analysis entirely. Use sparingly, with a
/// comment: the only sanctioned case in this repo is a condition-variable
/// wait loop that must manipulate the native std::mutex directly.
#define HOMETS_NO_THREAD_SAFETY_ANALYSIS \
  HOMETS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // HOMETS_COMMON_THREAD_ANNOTATIONS_H_
