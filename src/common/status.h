#ifndef HOMETS_COMMON_STATUS_H_
#define HOMETS_COMMON_STATUS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace homets {

/// \brief Machine-readable classification of an error.
///
/// Mirrors the Arrow/RocksDB convention of a small closed set of codes plus a
/// free-form message. `kOk` is the only non-error code.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kComputeError = 6,
  kIoError = 7,
  kNotImplemented = 8,
  kUnknown = 9,
  kCancelled = 10,
  kDeadlineExceeded = 11,
};

/// \brief Returns the canonical name of a status code, e.g. "InvalidArgument".
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of a fallible operation: a code plus a human-readable
/// message.
///
/// The library does not throw exceptions across public API boundaries; every
/// fallible function returns `Status` or `Result<T>`. `Status` is cheap to
/// copy in the OK case (no message allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ComputeError(std::string msg) {
    return Status(StatusCode::kComputeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Unknown(std::string msg) {
    return Status(StatusCode::kUnknown, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type `T` or an error `Status`.
///
/// A lightweight `std::expected` stand-in (the toolchain targets C++20).
/// Accessing the value of an errored result aborts, so callers must check
/// `ok()` first; `ValueOr` provides a non-aborting accessor.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: enables `return value;` in functions
  /// returning `Result<T>`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. Constructing from an OK
  /// status is a programming error and yields StatusCode::kUnknown.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Unknown("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// The error, or OK when a value is present.
  const Status& status() const { return status_; }

  /// The contained value; aborts if `!ok()`.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// The value when present, otherwise `fallback`.
  T ValueOr(T fallback) const {
    return value_.has_value() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ is set.
};

/// Propagates an error status from an expression returning `Status`.
/// Canonical spelling; usable in functions returning `Status` or `Result<T>`
/// (a `Result` is implicitly constructible from an error status).
#define HOMETS_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::homets::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (false)

/// Older spelling of HOMETS_RETURN_IF_ERROR, kept for source compatibility.
#define HOMETS_RETURN_NOT_OK(expr) HOMETS_RETURN_IF_ERROR(expr)

/// Assigns the value of a `Result<T>` expression to `lhs`, or propagates its
/// error status.
#define HOMETS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#define HOMETS_ASSIGN_OR_RETURN_CONCAT(a, b) a##b
#define HOMETS_ASSIGN_OR_RETURN_NAME(a, b) HOMETS_ASSIGN_OR_RETURN_CONCAT(a, b)
#define HOMETS_ASSIGN_OR_RETURN(lhs, expr)                                  \
  HOMETS_ASSIGN_OR_RETURN_IMPL(                                             \
      HOMETS_ASSIGN_OR_RETURN_NAME(_homets_result_, __COUNTER__), lhs, expr)

}  // namespace homets

#endif  // HOMETS_COMMON_STATUS_H_
