#ifndef HOMETS_COMMON_STRINGS_H_
#define HOMETS_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace homets {

/// \brief printf-style formatting into a std::string.
///
/// The toolchain's libstdc++ predates <format>, so benches and reports use
/// this helper.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> StrSplit(std::string_view text, char delim);

/// \brief Joins `parts` with `sep`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view text);

/// \brief True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace homets

#endif  // HOMETS_COMMON_STRINGS_H_
