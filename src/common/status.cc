#include "common/status.h"

namespace homets {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kComputeError:
      return "ComputeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace homets
