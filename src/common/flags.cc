#include "common/flags.h"

#include <cstdlib>

#include "common/strings.h"

namespace homets {

Result<int64_t> ParsedArgs::GetInt(const std::string& flag,
                                   int64_t fallback) const {
  const auto it = flags.find(flag);
  if (it == flags.end()) return fallback;
  const std::string& text = it->second;
  if (text.empty()) {
    return Status::InvalidArgument("--" + flag + ": empty integer value");
  }
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::InvalidArgument("--" + flag + ": not an integer: " + text);
  }
  return static_cast<int64_t>(value);
}

Result<ParsedArgs> ParseFlags(const std::vector<std::string>& args,
                              const std::set<std::string>& known_flags,
                              const std::set<std::string>& bool_flags) {
  ParsedArgs parsed;
  bool flags_done = false;
  for (size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (flags_done || !StartsWith(arg, "--")) {
      parsed.positional.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    if (known_flags.count(name) == 0) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (!has_value) {
      if (bool_flags.count(name) > 0) {
        // assign(count, char) rather than operator=(const char*): GCC 12's
        // -Wrestrict misfires on the latter after the substr above and the
        // werror gate treats it as an error.
        value.assign(1, '1');
      } else {
        if (i + 1 >= args.size()) {
          return Status::InvalidArgument("flag --" + name +
                                         " expects a value");
        }
        value = args[++i];
      }
    }
    parsed.flags[name] = std::move(value);
  }
  return parsed;
}

}  // namespace homets
