#ifndef HOMETS_STATS_BOXPLOT_H_
#define HOMETS_STATS_BOXPLOT_H_

#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Tukey boxplot summary.
///
/// Whiskers follow the standard convention: the most extreme data points
/// within 1.5 · IQR of the quartiles. The paper derives its per-device
/// background-traffic threshold τ from `upper_whisker` (Section 6.1), because
/// for home traffic the bulk of the probability mass is low-valued background
/// and active-usage values appear as boxplot outliers (Figure 1c/1d).
struct Boxplot {
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double iqr = 0.0;
  double lower_whisker = 0.0;  ///< smallest observation >= q1 - 1.5 * iqr
  double upper_whisker = 0.0;  ///< largest observation <= q3 + 1.5 * iqr
  std::vector<double> outliers;  ///< observations outside the whiskers

  /// Fraction of observations flagged as outliers.
  double OutlierFraction(size_t n) const {
    return n == 0 ? 0.0
                  : static_cast<double>(outliers.size()) /
                        static_cast<double>(n);
  }
};

/// \brief Computes the boxplot of a non-empty sample. `whisker_factor` is the
/// Tukey multiplier (1.5 by convention).
Result<Boxplot> ComputeBoxplot(std::vector<double> xs,
                               double whisker_factor = 1.5);

}  // namespace homets::stats

#endif  // HOMETS_STATS_BOXPLOT_H_
