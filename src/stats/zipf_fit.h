#ifndef HOMETS_STATS_ZIPF_FIT_H_
#define HOMETS_STATS_ZIPF_FIT_H_

#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Result of a rank-frequency power-law fit.
///
/// The paper observes (Section 4.1) that gateway traffic values follow
/// Zipf's law: when positive traffic values are binned and bin frequencies
/// sorted descending, log(frequency) is linear in log(rank) with negative
/// slope. `exponent` is the magnitude of that slope and `r_squared` the OLS
/// goodness of fit; `r_squared` near 1 with `exponent` around or above 1
/// indicates Zipfian structure.
struct ZipfFit {
  double exponent = 0.0;   ///< −slope of log f vs log rank
  double r_squared = 0.0;  ///< OLS fit quality in log–log space
  size_t ranks_used = 0;   ///< number of non-empty frequency ranks
};

/// \brief Fits Zipf's law to a sample by value-binning.
///
/// Positive values are discretized into `bins` logarithmic bins; bin counts
/// are sorted into a rank-frequency curve and fit by OLS in log–log space.
/// Requires at least 3 non-empty ranks.
Result<ZipfFit> FitZipfRankFrequency(const std::vector<double>& sample,
                                     size_t bins = 64);

}  // namespace homets::stats

#endif  // HOMETS_STATS_ZIPF_FIT_H_
