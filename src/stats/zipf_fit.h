#ifndef HOMETS_STATS_ZIPF_FIT_H_
#define HOMETS_STATS_ZIPF_FIT_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Result of a rank-frequency power-law fit.
///
/// The paper observes (Section 4.1) that gateway traffic values follow
/// Zipf's law: when positive traffic values are binned and bin frequencies
/// sorted descending, log(frequency) is linear in log(rank) with negative
/// slope. `exponent` is the magnitude of that slope and `r_squared` the OLS
/// goodness of fit; `r_squared` near 1 with `exponent` around or above 1
/// indicates Zipfian structure.
struct ZipfFit {
  double exponent = 0.0;   ///< −slope of log f vs log rank
  double r_squared = 0.0;  ///< OLS fit quality in log–log space
  size_t ranks_used = 0;   ///< number of non-empty frequency ranks
};

/// \brief Fits Zipf's law to a sample by value-binning.
///
/// Positive values are discretized into `bins` logarithmic bins; bin counts
/// are sorted into a rank-frequency curve and fit by OLS in log–log space.
/// Requires at least 3 non-empty ranks.
Result<ZipfFit> FitZipfRankFrequency(const std::vector<double>& sample,
                                     size_t bins = 64);

/// \brief Fits Zipf's law to pre-binned frequency counts — e.g. the fleet
/// merge of per-shard absolute log-bin histograms, where the raw sample
/// never exists in one place. Non-zero counts are ranked descending and fit
/// by OLS in log–log space; requires at least 3 non-empty ranks. With counts
/// produced by the same binning, this is the distributed-equivalent of
/// FitZipfRankFrequency (which now delegates here).
Result<ZipfFit> FitZipfFromFrequencies(const std::vector<uint64_t>& counts);

}  // namespace homets::stats

#endif  // HOMETS_STATS_ZIPF_FIT_H_
