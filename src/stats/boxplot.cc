#include "stats/boxplot.h"

#include <algorithm>

#include "stats/descriptive.h"

namespace homets::stats {

Result<Boxplot> ComputeBoxplot(std::vector<double> xs, double whisker_factor) {
  if (xs.empty()) return Status::InvalidArgument("ComputeBoxplot: empty input");
  if (whisker_factor < 0.0) {
    return Status::InvalidArgument("ComputeBoxplot: negative whisker factor");
  }
  std::sort(xs.begin(), xs.end());
  Boxplot box;
  HOMETS_ASSIGN_OR_RETURN(box.q1, Quantile(xs, 0.25));
  HOMETS_ASSIGN_OR_RETURN(box.median, Quantile(xs, 0.5));
  HOMETS_ASSIGN_OR_RETURN(box.q3, Quantile(xs, 0.75));
  box.iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - whisker_factor * box.iqr;
  const double hi_fence = box.q3 + whisker_factor * box.iqr;
  // Whiskers reach to the most extreme observations inside the fences; with
  // all data outside a fence (degenerate), fall back to the quartile itself.
  box.lower_whisker = box.q1;
  box.upper_whisker = box.q3;
  for (double x : xs) {
    if (x >= lo_fence) {
      box.lower_whisker = x;
      break;
    }
  }
  for (auto it = xs.rbegin(); it != xs.rend(); ++it) {
    if (*it <= hi_fence) {
      box.upper_whisker = *it;
      break;
    }
  }
  for (double x : xs) {
    if (x < lo_fence || x > hi_fence) box.outliers.push_back(x);
  }
  return box;
}

}  // namespace homets::stats
