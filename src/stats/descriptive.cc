#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace homets::stats {

namespace {

// Quantile of an already-sorted vector (R type 7).
double SortedQuantile(const std::vector<double>& sorted, double q) {
  const size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

Result<double> Mean(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Mean: empty input");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

Result<double> Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) {
    return Status::InvalidArgument("Variance: need at least 2 observations");
  }
  HOMETS_ASSIGN_OR_RETURN(const double mean, Mean(xs));
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return ss / static_cast<double>(xs.size() - 1);
}

Result<double> StdDev(const std::vector<double>& xs) {
  HOMETS_ASSIGN_OR_RETURN(const double var, Variance(xs));
  return std::sqrt(var);
}

Result<double> Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return Status::InvalidArgument("Quantile: empty input");
  if (q < 0.0 || q > 1.0) {
    return Status::InvalidArgument("Quantile: q must be in [0, 1]");
  }
  std::sort(xs.begin(), xs.end());
  return SortedQuantile(xs, q);
}

Result<double> Median(std::vector<double> xs) {
  return Quantile(std::move(xs), 0.5);
}

Result<double> Min(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Min: empty input");
  return *std::min_element(xs.begin(), xs.end());
}

Result<double> Max(const std::vector<double>& xs) {
  if (xs.empty()) return Status::InvalidArgument("Max: empty input");
  return *std::max_element(xs.begin(), xs.end());
}

Result<double> Skewness(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 3) {
    return Status::InvalidArgument("Skewness: need at least 3 observations");
  }
  HOMETS_ASSIGN_OR_RETURN(const double mean, Mean(xs));
  double m2 = 0.0;
  double m3 = 0.0;
  for (double x : xs) {
    const double d = x - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 0.0) {
    return Status::ComputeError("Skewness: degenerate (zero variance)");
  }
  const double g1 = m3 / std::pow(m2, 1.5);
  const double nf = static_cast<double>(n);
  return g1 * std::sqrt(nf * (nf - 1.0)) / (nf - 2.0);
}

Result<Summary> Summarize(std::vector<double> xs) {
  if (xs.empty()) return Status::InvalidArgument("Summarize: empty input");
  Summary s;
  s.n = xs.size();
  HOMETS_ASSIGN_OR_RETURN(s.mean, Mean(xs));
  if (xs.size() >= 2) {
    HOMETS_ASSIGN_OR_RETURN(s.stddev, StdDev(xs));
  }
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.q1 = SortedQuantile(xs, 0.25);
  s.median = SortedQuantile(xs, 0.5);
  s.q3 = SortedQuantile(xs, 0.75);
  return s;
}

}  // namespace homets::stats
