#include "stats/histogram.h"

#include <cmath>

namespace homets::stats {

Result<Histogram> Histogram::Make(double lo, double hi, size_t bins) {
  if (!(lo < hi)) {
    return Status::InvalidArgument("Histogram: lo must be < hi");
  }
  if (bins == 0) {
    return Status::InvalidArgument("Histogram: need at least one bin");
  }
  return Histogram(lo, hi, bins);
}

void Histogram::Add(double x) {
  ++total_;
  if (std::isnan(x)) {
    ++underflow_;  // missing counts as out-of-range low
    return;
  }
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  size_t idx = static_cast<size_t>((x - lo_) / Width());
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // hi-edge rounding
  ++counts_[idx];
}

void Histogram::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double Histogram::CumulativeFraction(size_t i) const {
  size_t in_range = 0;
  for (size_t c : counts_) in_range += c;
  if (in_range == 0) return 0.0;
  size_t cum = 0;
  for (size_t j = 0; j <= i && j < counts_.size(); ++j) cum += counts_[j];
  return static_cast<double>(cum) / static_cast<double>(in_range);
}

}  // namespace homets::stats
