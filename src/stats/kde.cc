#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace homets::stats {

Result<KernelDensity> KernelDensity::Fit(std::vector<double> sample,
                                         double bandwidth) {
  if (sample.size() < 2) {
    return Status::InvalidArgument("KernelDensity: need at least 2 points");
  }
  if (bandwidth <= 0.0) {
    HOMETS_ASSIGN_OR_RETURN(const double sd, StdDev(sample));
    HOMETS_ASSIGN_OR_RETURN(const double q1, Quantile(sample, 0.25));
    HOMETS_ASSIGN_OR_RETURN(const double q3, Quantile(sample, 0.75));
    const double iqr = q3 - q1;
    double spread = sd;
    if (iqr > 0.0) spread = std::min(spread, iqr / 1.34);
    if (spread <= 0.0) spread = std::max(std::fabs(sample[0]), 1.0) * 1e-3;
    bandwidth = 0.9 * spread *
                std::pow(static_cast<double>(sample.size()), -0.2);
    if (bandwidth <= 0.0) bandwidth = 1e-9;
  }
  return KernelDensity(std::move(sample), bandwidth);
}

double KernelDensity::Evaluate(double x) const {
  const double inv_h = 1.0 / bandwidth_;
  const double norm =
      inv_h / (std::sqrt(2.0 * M_PI) * static_cast<double>(sample_.size()));
  double sum = 0.0;
  for (double xi : sample_) {
    const double u = (x - xi) * inv_h;
    sum += std::exp(-0.5 * u * u);
  }
  return norm * sum;
}

std::vector<std::pair<double, double>> KernelDensity::EvaluateGrid(
    size_t points) const {
  std::vector<std::pair<double, double>> grid;
  if (points == 0) return grid;
  const auto [lo_it, hi_it] =
      std::minmax_element(sample_.begin(), sample_.end());
  const double lo = *lo_it - 3.0 * bandwidth_;
  const double hi = *hi_it + 3.0 * bandwidth_;
  grid.reserve(points);
  for (size_t i = 0; i < points; ++i) {
    const double x =
        points == 1
            ? lo
            : lo + (hi - lo) * static_cast<double>(i) /
                  static_cast<double>(points - 1);
    grid.emplace_back(x, Evaluate(x));
  }
  return grid;
}

}  // namespace homets::stats
