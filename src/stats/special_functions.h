#ifndef HOMETS_STATS_SPECIAL_FUNCTIONS_H_
#define HOMETS_STATS_SPECIAL_FUNCTIONS_H_

namespace homets::stats {

/// \brief ln Γ(x) for x > 0 (Lanczos approximation, ~15 significant digits).
double LogGamma(double x);

/// \brief Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double RegularizedGammaP(double a, double x);

/// \brief Regularized incomplete beta I_x(a, b), a, b > 0, x in [0, 1]
/// (continued fraction, Numerical-Recipes style).
double RegularizedIncompleteBeta(double a, double b, double x);

/// \brief Standard normal CDF Φ(x).
double NormalCdf(double x);

/// \brief Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9). Input must be in (0, 1).
double NormalQuantile(double p);

/// \brief CDF of Student's t with `dof` degrees of freedom.
double StudentTCdf(double t, double dof);

/// \brief Two-sided p-value for a t statistic with `dof` degrees of freedom.
double StudentTTwoSidedPValue(double t, double dof);

/// \brief CDF of the chi-squared distribution with `dof` degrees of freedom.
double ChiSquaredCdf(double x, double dof);

/// \brief Complementary CDF Q(λ) of the Kolmogorov distribution,
/// Q(λ) = 2 Σ_{j≥1} (-1)^{j-1} exp(-2 j² λ²). Used for the two-sample KS
/// test's asymptotic p-value.
double KolmogorovQ(double lambda);

}  // namespace homets::stats

#endif  // HOMETS_STATS_SPECIAL_FUNCTIONS_H_
