#ifndef HOMETS_STATS_DESCRIPTIVE_H_
#define HOMETS_STATS_DESCRIPTIVE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Arithmetic mean; 0 for an empty input is a silent bug, so empty
/// input returns an error.
Result<double> Mean(const std::vector<double>& xs);

/// \brief Unbiased sample variance (n − 1 denominator); requires n >= 2.
Result<double> Variance(const std::vector<double>& xs);

/// \brief Sample standard deviation; requires n >= 2.
Result<double> StdDev(const std::vector<double>& xs);

/// \brief Linear-interpolation quantile (R type 7), q in [0, 1]; requires a
/// non-empty input. The input need not be sorted.
Result<double> Quantile(std::vector<double> xs, double q);

/// \brief Median, equivalent to Quantile(xs, 0.5).
Result<double> Median(std::vector<double> xs);

/// \brief Minimum of a non-empty vector.
Result<double> Min(const std::vector<double>& xs);

/// \brief Maximum of a non-empty vector.
Result<double> Max(const std::vector<double>& xs);

/// \brief Sample skewness (adjusted Fisher–Pearson); requires n >= 3 and a
/// non-degenerate distribution.
Result<double> Skewness(const std::vector<double>& xs);

/// \brief Moment summary used by reports.
struct Summary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
};

/// \brief Computes the full summary in one pass over a sorted copy.
Result<Summary> Summarize(std::vector<double> xs);

}  // namespace homets::stats

#endif  // HOMETS_STATS_DESCRIPTIVE_H_
