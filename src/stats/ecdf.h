#ifndef HOMETS_STATS_ECDF_H_
#define HOMETS_STATS_ECDF_H_

#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Empirical cumulative distribution function of a sample.
///
/// Backs distribution comparisons and the reports' percentile lookups; NaNs
/// are dropped at construction.
class Ecdf {
 public:
  /// Builds the ECDF; needs at least one non-NaN observation.
  static Result<Ecdf> Fit(std::vector<double> sample);

  /// F(x) = fraction of observations <= x.
  double Evaluate(double x) const;

  /// Smallest observation q with F(q) >= p, p in (0, 1].
  Result<double> Quantile(double p) const;

  size_t size() const { return sorted_.size(); }
  double min() const { return sorted_.front(); }
  double max() const { return sorted_.back(); }

  /// Kolmogorov–Smirnov statistic sup |F₁ − F₂| against another ECDF.
  double KsStatistic(const Ecdf& other) const;

 private:
  explicit Ecdf(std::vector<double> sorted) : sorted_(std::move(sorted)) {}

  std::vector<double> sorted_;
};

}  // namespace homets::stats

#endif  // HOMETS_STATS_ECDF_H_
