#include "stats/zipf_fit.h"

#include <algorithm>
#include <cmath>

namespace homets::stats {

Result<ZipfFit> FitZipfRankFrequency(const std::vector<double>& sample,
                                     size_t bins) {
  if (bins < 3) return Status::InvalidArgument("FitZipf: need >= 3 bins");
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  size_t positive = 0;
  for (double x : sample) {
    if (!(x > 0.0) || std::isnan(x)) continue;
    ++positive;
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  if (positive < 10) {
    return Status::InvalidArgument("FitZipf: need >= 10 positive values");
  }
  if (!(hi > lo)) {
    return Status::ComputeError("FitZipf: degenerate positive support");
  }
  // Logarithmic bins over [lo, hi].
  const double log_lo = std::log(lo);
  const double log_span = std::log(hi) - log_lo;
  std::vector<uint64_t> counts(bins, 0);
  for (double x : sample) {
    if (!(x > 0.0) || std::isnan(x)) continue;
    size_t idx = static_cast<size_t>((std::log(x) - log_lo) / log_span *
                                     static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;
    ++counts[idx];
  }
  return FitZipfFromFrequencies(counts);
}

Result<ZipfFit> FitZipfFromFrequencies(const std::vector<uint64_t>& counts) {
  std::vector<double> freq;
  for (uint64_t c : counts) {
    if (c > 0) freq.push_back(static_cast<double>(c));
  }
  std::sort(freq.begin(), freq.end(), std::greater<>());
  if (freq.size() < 3) {
    return Status::ComputeError("FitZipf: fewer than 3 non-empty ranks");
  }
  // OLS of log(freq) on log(rank).
  const size_t m = freq.size();
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t r = 0; r < m; ++r) {
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(freq[r]);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    syy += y * y;
  }
  const double mf = static_cast<double>(m);
  const double sxx_c = sxx - sx * sx / mf;
  const double sxy_c = sxy - sx * sy / mf;
  const double syy_c = syy - sy * sy / mf;
  if (sxx_c <= 0.0 || syy_c <= 0.0) {
    return Status::ComputeError("FitZipf: degenerate regression");
  }
  ZipfFit fit;
  const double slope = sxy_c / sxx_c;
  fit.exponent = -slope;
  fit.r_squared = (sxy_c * sxy_c) / (sxx_c * syy_c);
  fit.ranks_used = m;
  return fit;
}

}  // namespace homets::stats
