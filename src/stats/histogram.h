#ifndef HOMETS_STATS_HISTOGRAM_H_
#define HOMETS_STATS_HISTOGRAM_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Fixed-width histogram over [lo, hi) with `bins` equal bins.
///
/// Values outside the range are counted in `underflow`/`overflow` rather than
/// silently dropped, so reports can show truncation (Figure 4's τ histograms
/// truncate at 50 kB, for example).
class Histogram {
 public:
  /// Creates an empty histogram; requires lo < hi and bins >= 1.
  static Result<Histogram> Make(double lo, double hi, size_t bins);

  /// Adds one observation.
  void Add(double x);

  /// Adds a batch of observations.
  void AddAll(const std::vector<double>& xs);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  size_t bins() const { return counts_.size(); }
  const std::vector<size_t>& counts() const { return counts_; }
  size_t underflow() const { return underflow_; }
  size_t overflow() const { return overflow_; }
  size_t total() const { return total_; }

  /// Left edge of bin `i`.
  double BinLeft(size_t i) const {
    return lo_ + static_cast<double>(i) * Width();
  }

  /// Bin width.
  double Width() const {
    return (hi_ - lo_) / static_cast<double>(counts_.size());
  }

  /// Fraction of in-range observations at or below the right edge of bin `i`.
  double CumulativeFraction(size_t i) const;

 private:
  Histogram(double lo, double hi, size_t bins)
      : lo_(lo), hi_(hi), counts_(bins, 0) {}

  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  size_t underflow_ = 0;
  size_t overflow_ = 0;
  size_t total_ = 0;
};

}  // namespace homets::stats

#endif  // HOMETS_STATS_HISTOGRAM_H_
