#ifndef HOMETS_STATS_RANKS_H_
#define HOMETS_STATS_RANKS_H_

#include <cstddef>
#include <vector>

namespace homets::stats {

/// \brief Fractional (average) ranks, 1-based, with ties receiving the mean
/// of the ranks they span — the convention Spearman's ρ requires.
///
/// Example: {10, 20, 20, 30} → {1, 2.5, 2.5, 4}.
std::vector<double> AverageRanks(const std::vector<double>& xs);

/// \brief Tie-group sizes of the sample (groups of size >= 2 only), needed
/// by tie-corrected variance formulas (Kendall, Spearman).
std::vector<size_t> TieGroupSizes(std::vector<double> xs);

}  // namespace homets::stats

#endif  // HOMETS_STATS_RANKS_H_
