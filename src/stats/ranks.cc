#include "stats/ranks.h"

#include <algorithm>
#include <numeric>

namespace homets::stats {

std::vector<double> AverageRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Positions i..j (0-based) tie; average rank is the mean of i+1..j+1.
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 +
                       1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

std::vector<size_t> TieGroupSizes(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::vector<size_t> groups;
  size_t i = 0;
  const size_t n = xs.size();
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[j + 1] == xs[i]) ++j;
    const size_t size = j - i + 1;
    if (size >= 2) groups.push_back(size);
    i = j + 1;
  }
  return groups;
}

}  // namespace homets::stats
