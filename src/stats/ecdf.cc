#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>

namespace homets::stats {

Result<Ecdf> Ecdf::Fit(std::vector<double> sample) {
  std::vector<double> clean;
  clean.reserve(sample.size());
  for (double x : sample) {
    if (!std::isnan(x)) clean.push_back(x);
  }
  if (clean.empty()) {
    return Status::InvalidArgument("Ecdf: no non-NaN observations");
  }
  std::sort(clean.begin(), clean.end());
  return Ecdf(std::move(clean));
}

double Ecdf::Evaluate(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

Result<double> Ecdf::Quantile(double p) const {
  if (!(p > 0.0) || p > 1.0) {
    return Status::InvalidArgument("Ecdf::Quantile: p must be in (0, 1]");
  }
  const size_t idx = static_cast<size_t>(
      std::ceil(p * static_cast<double>(sorted_.size()))) - 1;
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

double Ecdf::KsStatistic(const Ecdf& other) const {
  double d = 0.0;
  for (double x : sorted_) {
    d = std::max(d, std::fabs(Evaluate(x) - other.Evaluate(x)));
  }
  for (double x : other.sorted_) {
    d = std::max(d, std::fabs(Evaluate(x) - other.Evaluate(x)));
  }
  return d;
}

}  // namespace homets::stats
