#ifndef HOMETS_STATS_KDE_H_
#define HOMETS_STATS_KDE_H_

#include <vector>

#include "common/status.h"

namespace homets::stats {

/// \brief Gaussian kernel density estimator.
///
/// Used to approximate the traffic-value PDF of a gateway (Figure 1a); the
/// heavy concentration near zero is what motivates the paper's background
/// threshold.
class KernelDensity {
 public:
  /// Fits the estimator to a sample of at least 2 points. `bandwidth <= 0`
  /// selects Silverman's rule of thumb
  /// h = 0.9 · min(σ, IQR/1.34) · n^{−1/5}.
  static Result<KernelDensity> Fit(std::vector<double> sample,
                                   double bandwidth = 0.0);

  /// Density estimate at `x`.
  double Evaluate(double x) const;

  /// Density evaluated on `points` equally spaced points spanning
  /// [min − 3h, max + 3h]. Returns (x, density) pairs.
  std::vector<std::pair<double, double>> EvaluateGrid(size_t points) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_size() const { return sample_.size(); }

 private:
  KernelDensity(std::vector<double> sample, double bandwidth)
      : sample_(std::move(sample)), bandwidth_(bandwidth) {}

  std::vector<double> sample_;
  double bandwidth_;
};

}  // namespace homets::stats

#endif  // HOMETS_STATS_KDE_H_
