#include "stats/special_functions.h"

#include <cassert>
#include <cmath>
#include <limits>

namespace homets::stats {

namespace {

constexpr double kEps = 3.0e-14;
constexpr int kMaxIter = 300;

// Continued-fraction evaluation of the incomplete beta (Lentz's method).
double BetaContinuedFraction(double a, double b, double x) {
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < 1e-300) d = 1e-300;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = 1.0 + aa / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

// Series expansion for P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < kMaxIter; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * kEps) break;
  }
  return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / 1e-300;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIter; ++i) {
    const double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < 1e-300) d = 1e-300;
    c = b + an / c;
    if (std::fabs(c) < 1e-300) c = 1e-300;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
}

}  // namespace

double LogGamma(double x) {
  assert(x > 0.0);
  // Lanczos coefficients (g = 7, n = 9).
  static constexpr double kCoef[] = {
      0.99999999999980993,      676.5203681218851,    -1259.1392167224028,
      771.32342877765313,       -176.61502916214059,  12.507343278686905,
      -0.13857109526572012,     9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula keeps accuracy for small x.
    return std::log(M_PI / std::sin(M_PI * x)) - LogGamma(1.0 - x);
  }
  const double z = x - 1.0;
  double sum = kCoef[0];
  for (int i = 1; i < 9; ++i) sum += kCoef[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * M_PI) + (z + 0.5) * std::log(t) - t +
         std::log(sum);
}

double RegularizedGammaP(double a, double x) {
  assert(a > 0.0 && x >= 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double RegularizedIncompleteBeta(double a, double b, double x) {
  assert(a > 0.0 && b > 0.0);
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double NormalQuantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double StudentTCdf(double t, double dof) {
  assert(dof > 0.0);
  const double x = dof / (dof + t * t);
  const double prob = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t > 0.0 ? 1.0 - prob : prob;
}

double StudentTTwoSidedPValue(double t, double dof) {
  assert(dof > 0.0);
  const double x = dof / (dof + t * t);
  return RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
}

double ChiSquaredCdf(double x, double dof) {
  assert(dof > 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double KolmogorovQ(double lambda) {
  if (lambda <= 0.0) return 1.0;
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-12) break;
    sign = -sign;
  }
  const double q = 2.0 * sum;
  return q < 0.0 ? 0.0 : (q > 1.0 ? 1.0 : q);
}

}  // namespace homets::stats
