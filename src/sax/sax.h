#ifndef HOMETS_SAX_SAX_H_
#define HOMETS_SAX_SAX_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace homets::sax {

/// \brief Piecewise Aggregate Approximation: mean of `segments` equal chunks.
///
/// Requires segments >= 1 and segments <= n. When n is not divisible by the
/// segment count, fractional weighting is applied (the standard PAA
/// definition).
Result<std::vector<double>> Paa(const std::vector<double>& x, size_t segments);

/// \brief Symbolic Aggregate approXimation (Lin, Keogh et al.).
///
/// Implemented as the related-work baseline: SAX assumes z-normalized values
/// are standard normal and cuts them at Gaussian quantile breakpoints. The
/// paper (Section 2) argues this is unsuitable for Zipfian traffic — the
/// symbol distribution stays heavily skewed instead of uniform. The
/// `SymbolDistributionSkew` helper quantifies that failure and is exercised
/// in the benches.
class SaxEncoder {
 public:
  /// Creates an encoder with `alphabet_size` in [2, 20] and `segments` >= 1.
  static Result<SaxEncoder> Make(size_t alphabet_size, size_t segments);

  /// Encodes a series: z-normalize → PAA → Gaussian-breakpoint symbols.
  /// Symbols are 'a', 'b', ... in increasing value order.
  Result<std::string> Encode(const std::vector<double>& x) const;

  /// MINDIST lower bound between two SAX words of this encoder, scaled for
  /// original length `n`.
  Result<double> MinDist(const std::string& a, const std::string& b,
                         size_t n) const;

  /// Fraction of probability mass in the most frequent symbol of an encoded
  /// corpus minus the uniform share 1/alphabet; 0 means the normality
  /// assumption holds, values near 1 − 1/alphabet mean it is badly violated.
  double SymbolDistributionSkew(const std::vector<std::string>& words) const;

  size_t alphabet_size() const { return alphabet_size_; }
  size_t segments() const { return segments_; }
  const std::vector<double>& breakpoints() const { return breakpoints_; }

 private:
  SaxEncoder(size_t alphabet_size, size_t segments,
             std::vector<double> breakpoints)
      : alphabet_size_(alphabet_size),
        segments_(segments),
        breakpoints_(std::move(breakpoints)) {}

  size_t alphabet_size_;
  size_t segments_;
  std::vector<double> breakpoints_;  ///< alphabet_size − 1 Gaussian quantiles
};

}  // namespace homets::sax

#endif  // HOMETS_SAX_SAX_H_
