#ifndef HOMETS_SAX_SAX_MOTIF_H_
#define HOMETS_SAX_SAX_MOTIF_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sax/sax.h"
#include "ts/time_series.h"

namespace homets::sax {

/// \brief A motif found by SAX-word matching: windows whose SAX encodings
/// are identical.
struct SaxMotif {
  std::string word;
  std::vector<size_t> members;  ///< indices into the input windows

  size_t support() const { return members.size(); }
};

/// \brief The GrammarViz/VizTree-style baseline the paper argues against
/// (Section 2): encode each window with SAX and call identically-encoded
/// windows a motif.
///
/// Windows that fail to encode (constant after z-normalization is fine;
/// NaN-containing windows are skipped after zero-filling missing bins).
/// Motifs with support >= `min_support` are returned, sorted by descending
/// support. Used by the ablation bench to show how the Zipfian value
/// distribution degrades SAX's discrimination compared to Definition 5.
Result<std::vector<SaxMotif>> DiscoverSaxMotifs(
    const std::vector<ts::TimeSeries>& windows, const SaxEncoder& encoder,
    size_t min_support = 2);

}  // namespace homets::sax

#endif  // HOMETS_SAX_SAX_MOTIF_H_
