#include "sax/sax.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace homets::sax {

Result<std::vector<double>> Paa(const std::vector<double>& x,
                                size_t segments) {
  const size_t n = x.size();
  if (segments == 0) return Status::InvalidArgument("PAA: segments must be >= 1");
  if (n == 0) return Status::InvalidArgument("PAA: empty input");
  if (segments > n) {
    return Status::InvalidArgument("PAA: more segments than points");
  }
  for (double v : x) {
    if (std::isnan(v)) return Status::InvalidArgument("PAA: NaN in input");
  }
  std::vector<double> out(segments, 0.0);
  if (n % segments == 0) {
    const size_t w = n / segments;
    for (size_t s = 0; s < segments; ++s) {
      double sum = 0.0;
      for (size_t i = 0; i < w; ++i) sum += x[s * w + i];
      out[s] = sum / static_cast<double>(w);
    }
    return out;
  }
  // Fractional weighting: point i contributes to segment ⌊i·segments/n⌋ with
  // the overlap length of [i, i+1) and the segment interval.
  const double seg_len = static_cast<double>(n) / static_cast<double>(segments);
  for (size_t s = 0; s < segments; ++s) {
    const double lo = static_cast<double>(s) * seg_len;
    const double hi = lo + seg_len;
    double sum = 0.0;
    for (size_t i = static_cast<size_t>(lo); i < n && static_cast<double>(i) < hi;
         ++i) {
      const double overlap = std::min(hi, static_cast<double>(i) + 1.0) -
                             std::max(lo, static_cast<double>(i));
      if (overlap > 0.0) sum += x[i] * overlap;
    }
    out[s] = sum / seg_len;
  }
  return out;
}

Result<SaxEncoder> SaxEncoder::Make(size_t alphabet_size, size_t segments) {
  if (alphabet_size < 2 || alphabet_size > 20) {
    return Status::InvalidArgument("SAX: alphabet size must be in [2, 20]");
  }
  if (segments == 0) {
    return Status::InvalidArgument("SAX: segments must be >= 1");
  }
  std::vector<double> breakpoints(alphabet_size - 1);
  for (size_t i = 1; i < alphabet_size; ++i) {
    breakpoints[i - 1] = stats::NormalQuantile(
        static_cast<double>(i) / static_cast<double>(alphabet_size));
  }
  return SaxEncoder(alphabet_size, segments, std::move(breakpoints));
}

Result<std::string> SaxEncoder::Encode(const std::vector<double>& x) const {
  if (x.size() < segments_) {
    return Status::InvalidArgument("SAX: series shorter than segment count");
  }
  // z-normalize (the canonical SAX pre-step whose normality assumption the
  // paper challenges for Zipfian traffic).
  double mean = 0.0;
  for (double v : x) {
    if (std::isnan(v)) return Status::InvalidArgument("SAX: NaN in input");
    mean += v;
  }
  mean /= static_cast<double>(x.size());
  double ss = 0.0;
  for (double v : x) ss += (v - mean) * (v - mean);
  const double sd =
      x.size() > 1 ? std::sqrt(ss / static_cast<double>(x.size() - 1)) : 0.0;
  std::vector<double> z(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    z[i] = sd > 0.0 ? (x[i] - mean) / sd : 0.0;
  }
  HOMETS_ASSIGN_OR_RETURN(const std::vector<double> paa, Paa(z, segments_));
  std::string word(segments_, 'a');
  for (size_t s = 0; s < segments_; ++s) {
    const size_t idx = static_cast<size_t>(
        std::upper_bound(breakpoints_.begin(), breakpoints_.end(), paa[s]) -
        breakpoints_.begin());
    word[s] = static_cast<char>('a' + idx);
  }
  return word;
}

Result<double> SaxEncoder::MinDist(const std::string& a, const std::string& b,
                                   size_t n) const {
  if (a.size() != segments_ || b.size() != segments_) {
    return Status::InvalidArgument("MINDIST: word length mismatch");
  }
  if (n < segments_) {
    return Status::InvalidArgument("MINDIST: original length below segments");
  }
  auto cell = [this](char ca, char cb) {
    const int i = ca - 'a';
    const int j = cb - 'a';
    if (std::abs(i - j) <= 1) return 0.0;
    const int hi = std::max(i, j);
    const int lo = std::min(i, j);
    const double d = breakpoints_[static_cast<size_t>(hi - 1)] -
                     breakpoints_[static_cast<size_t>(lo)];
    return d * d;
  };
  double sum = 0.0;
  for (size_t s = 0; s < segments_; ++s) sum += cell(a[s], b[s]);
  return std::sqrt(static_cast<double>(n) / static_cast<double>(segments_)) *
         std::sqrt(sum);
}

double SaxEncoder::SymbolDistributionSkew(
    const std::vector<std::string>& words) const {
  std::vector<size_t> counts(alphabet_size_, 0);
  size_t total = 0;
  for (const auto& w : words) {
    for (char c : w) {
      const size_t idx = static_cast<size_t>(c - 'a');
      if (idx < alphabet_size_) {
        ++counts[idx];
        ++total;
      }
    }
  }
  if (total == 0) return 0.0;
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  const double top = static_cast<double>(max_count) / static_cast<double>(total);
  return top - 1.0 / static_cast<double>(alphabet_size_);
}

}  // namespace homets::sax
