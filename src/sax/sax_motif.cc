#include "sax/sax_motif.h"

#include <algorithm>
#include <map>

namespace homets::sax {

Result<std::vector<SaxMotif>> DiscoverSaxMotifs(
    const std::vector<ts::TimeSeries>& windows, const SaxEncoder& encoder,
    size_t min_support) {
  if (windows.empty()) {
    return Status::InvalidArgument("DiscoverSaxMotifs: no windows");
  }
  std::map<std::string, std::vector<size_t>> buckets;
  for (size_t w = 0; w < windows.size(); ++w) {
    // Missing bins carry no traffic for this analysis.
    const ts::TimeSeries filled = windows[w].FillMissing(0.0);
    const auto word = encoder.Encode(filled.values());
    if (!word.ok()) continue;  // window shorter than the segment count
    buckets[*word].push_back(w);
  }
  std::vector<SaxMotif> motifs;
  for (auto& [word, members] : buckets) {
    if (members.size() < min_support) continue;
    SaxMotif motif;
    motif.word = word;
    motif.members = std::move(members);
    motifs.push_back(std::move(motif));
  }
  std::sort(motifs.begin(), motifs.end(),
            [](const SaxMotif& a, const SaxMotif& b) {
              return a.support() > b.support();
            });
  return motifs;
}

}  // namespace homets::sax
