#include "storage/homets_format.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/wire.h"

namespace homets::storage {

namespace {

/// File layout constants. The magic's trailing byte doubles as the format
/// major version; a reader seeing a different byte refuses the file.
constexpr char kFileMagic[8] = {'H', 'O', 'M', 'E', 'T', 'S', 'C', '1'};
constexpr char kTrailerMagic[4] = {'H', 'T', 'S', 'F'};
/// footer offset (u64 LE) + footer CRC32 (u32 LE) + trailer magic.
constexpr size_t kTrailerSize = 8 + 4 + 4;
/// Footer wire version, varint-leading so old readers fail loudly.
constexpr uint64_t kFooterVersion = 1;
/// |v| bound under which llround(v * 1000.0) cannot overflow int64.
constexpr double kFixedE3Bound = 9.0e15;

struct StorageMetrics {
  obs::Counter* chunks_written;
  obs::Counter* chunks_read;
  obs::Counter* chunks_skipped;
  obs::Counter* bytes_written;
  obs::Counter* bytes_read;
  obs::Counter* raw_bytes;
  obs::Counter* files_written;
  obs::Counter* files_opened;
  obs::Counter* crc_failures;
};

const StorageMetrics& Metrics() {
  static const StorageMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return StorageMetrics{registry.GetCounter(obs::kStorageChunksWritten),
                          registry.GetCounter(obs::kStorageChunksRead),
                          registry.GetCounter(obs::kStorageChunksSkipped),
                          registry.GetCounter(obs::kStorageBytesWritten),
                          registry.GetCounter(obs::kStorageBytesRead),
                          registry.GetCounter(obs::kStorageRawBytes),
                          registry.GetCounter(obs::kStorageFilesWritten),
                          registry.GetCounter(obs::kStorageFilesOpened),
                          registry.GetCounter(obs::kStorageCrcFailures)};
  }();
  return metrics;
}

// CRC-32, varint/zigzag encoders and the bounds-checked ByteReader live in
// storage/wire.h, shared with the fleet checkpoint format.

// --- chunk encode / decode -------------------------------------------------

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Encodes `count` bins starting at `values`: encoding byte, presence
/// bitmap, then either zigzag-varint milli-unit deltas (when every present
/// value survives the quantization bit-exactly) or raw IEEE-754 bits.
std::string EncodeChunkPayload(const double* values, uint32_t count) {
  std::string bitmap((count + 7) / 8, '\0');
  std::vector<int64_t> milli;
  milli.reserve(count);
  std::vector<double> present;
  present.reserve(count);
  bool e3_ok = true;
  for (uint32_t i = 0; i < count; ++i) {
    const double v = values[i];
    if (ts::TimeSeries::IsMissing(v)) continue;
    bitmap[i / 8] = static_cast<char>(bitmap[i / 8] | (1 << (i % 8)));
    present.push_back(v);
    if (e3_ok) {
      if (!std::isfinite(v) || std::fabs(v) >= kFixedE3Bound) {
        e3_ok = false;
      } else {
        const int64_t q = std::llround(v * 1000.0);
        const double back = static_cast<double>(q) / 1000.0;
        if (SameBits(back, v)) {
          milli.push_back(q);
        } else {
          e3_ok = false;
        }
      }
    }
  }
  std::string payload;
  payload.push_back(static_cast<char>(e3_ok ? ChunkEncoding::kFixedE3
                                            : ChunkEncoding::kRaw64));
  payload += bitmap;
  if (e3_ok) {
    int64_t prev = 0;
    for (const int64_t q : milli) {
      PutZigzag(&payload, q - prev);
      prev = q;
    }
  } else {
    for (const double v : present) {
      uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof(bits));
      PutU64(&payload, bits);
    }
  }
  return payload;
}

Result<std::vector<double>> DecodeChunkPayload(const uint8_t* payload,
                                               size_t size, uint32_t count,
                                               const std::string& context) {
  ByteReader reader(payload, size);
  uint8_t encoding = 0;
  if (!reader.ReadU8(&encoding) ||
      encoding > static_cast<uint8_t>(ChunkEncoding::kRaw64)) {
    return Status::IoError("corrupt chunk encoding in " + context);
  }
  const uint8_t* bitmap = reader.Skip((count + 7) / 8);
  if (bitmap == nullptr) {
    return Status::IoError("corrupt chunk bitmap in " + context);
  }
  std::vector<double> values(count, ts::TimeSeries::Missing());
  if (encoding == static_cast<uint8_t>(ChunkEncoding::kFixedE3)) {
    int64_t prev = 0;
    for (uint32_t i = 0; i < count; ++i) {
      if ((bitmap[i / 8] & (1 << (i % 8))) == 0) continue;
      int64_t delta = 0;
      if (!reader.ReadZigzag(&delta)) {
        return Status::IoError("corrupt chunk varint stream in " + context);
      }
      prev += delta;
      values[i] = static_cast<double>(prev) / 1000.0;
    }
  } else {
    for (uint32_t i = 0; i < count; ++i) {
      if ((bitmap[i / 8] & (1 << (i % 8))) == 0) continue;
      uint64_t bits = 0;
      if (!reader.ReadU64(&bits)) {
        return Status::IoError("corrupt chunk value stream in " + context);
      }
      double v = 0.0;
      std::memcpy(&v, &bits, sizeof(v));
      values[i] = v;
    }
  }
  return values;
}

uint64_t SeriesKey(uint32_t gateway, uint32_t device, uint8_t direction) {
  return (static_cast<uint64_t>(gateway) << 32) |
         (static_cast<uint64_t>(device) << 1) | direction;
}

}  // namespace

// --- normalization ---------------------------------------------------------

Result<simgen::GatewayTrace> NormalizeToObservedSpan(
    const simgen::GatewayTrace& gateway) {
  struct Accum {
    simgen::DeviceType true_type = simgen::DeviceType::kPortable;
    simgen::DeviceType reported_type = simgen::DeviceType::kPortable;
    std::map<int64_t, std::pair<double, double>> rows;
  };
  // std::map gives the CSV reader's name-sorted device order; per-minute
  // first-observation-wins mirrors its duplicate rule.
  std::map<std::string, Accum> devices;
  int64_t min_minute = 0;
  int64_t max_minute = -1;
  for (const simgen::DeviceTrace& dev : gateway.devices) {
    for (size_t i = 0; i < dev.incoming.size(); ++i) {
      const double in_v = dev.incoming[i];
      const double out_v = i < dev.outgoing.size()
                               ? dev.outgoing[i]
                               : ts::TimeSeries::Missing();
      if (ts::TimeSeries::IsMissing(in_v) &&
          ts::TimeSeries::IsMissing(out_v)) {
        continue;  // the CSV long format stores observed minutes only
      }
      const int64_t minute = dev.incoming.MinuteAt(i);
      Accum& acc = devices[dev.name];
      acc.true_type = dev.true_type;
      acc.reported_type = dev.reported_type;
      acc.rows.emplace(minute, std::make_pair(in_v, out_v));
      if (max_minute < min_minute) {
        min_minute = minute;
        max_minute = minute;
      } else {
        min_minute = std::min(min_minute, minute);
        max_minute = std::max(max_minute, minute);
      }
    }
  }
  if (max_minute < min_minute) {
    return Status::InvalidArgument("gateway has no observed minutes");
  }

  simgen::GatewayTrace normalized;
  normalized.id = gateway.id;
  normalized.surveyed_residents = gateway.surveyed_residents;
  normalized.regular_home = gateway.regular_home;
  const size_t n = static_cast<size_t>(max_minute - min_minute + 1);
  for (auto& [name, acc] : devices) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.true_type = acc.true_type;
    dev.reported_type = acc.reported_type;
    std::vector<double> in_vals(n, ts::TimeSeries::Missing());
    std::vector<double> out_vals(n, ts::TimeSeries::Missing());
    for (const auto& [minute, pair] : acc.rows) {
      const size_t idx = static_cast<size_t>(minute - min_minute);
      in_vals[idx] = pair.first;
      out_vals[idx] = pair.second;
    }
    dev.incoming = ts::TimeSeries(min_minute, 1, std::move(in_vals));
    dev.outgoing = ts::TimeSeries(min_minute, 1, std::move(out_vals));
    normalized.devices.push_back(std::move(dev));
  }
  return normalized;
}

// --- writer ----------------------------------------------------------------

Result<HometsWriter> HometsWriter::Create(const std::string& path) {
  obs::ScopedSpan span("storage.create");
  HOMETS_FAILPOINT(kFailpointColOpen);
  HometsWriter writer;
  writer.path_ = path;
  writer.out_.open(path, std::ios::binary | std::ios::trunc);
  if (!writer.out_) return Status::IoError("cannot open for write: " + path);
  writer.out_.write(kFileMagic, sizeof(kFileMagic));
  if (!writer.out_) return Status::IoError("write failed: " + path);
  writer.offset_ = sizeof(kFileMagic);
  return writer;
}

Status HometsWriter::AppendSeries(uint32_t gateway, uint32_t device,
                                  uint8_t direction,
                                  const ts::TimeSeries& series) {
  const std::vector<double>& values = series.values();
  for (uint32_t at = 0; at < values.size(); at += kChunkValues) {
    const uint32_t count = std::min<uint32_t>(
        kChunkValues, static_cast<uint32_t>(values.size()) - at);
    const std::string payload = EncodeChunkPayload(values.data() + at, count);
    ChunkRef ref;
    ref.gateway = gateway;
    ref.device = device;
    ref.direction = direction;
    ref.start_minute = series.MinuteAt(at);
    ref.value_count = count;
    ref.offset = offset_;
    ref.payload_size = static_cast<uint32_t>(payload.size());
    ref.crc32 = Crc32(reinterpret_cast<const uint8_t*>(payload.data()),
                      payload.size());
    out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (!out_) return Status::IoError("write failed: " + path_);
    offset_ += payload.size();
    chunks_.push_back(ref);
    Metrics().chunks_written->Increment();
    Metrics().bytes_written->Increment(payload.size());
    Metrics().raw_bytes->Increment(sizeof(double) * count);
  }
  return Status::OK();
}

Status HometsWriter::Append(const simgen::GatewayTrace& gateway) {
  if (finished_) {
    return Status::FailedPrecondition("Append after Finish: " + path_);
  }
  obs::ScopedSpan span("storage.append_gateway");
  HOMETS_FAILPOINT(kFailpointColWrite);
  HOMETS_ASSIGN_OR_RETURN(const simgen::GatewayTrace normalized,
                          NormalizeToObservedSpan(gateway));
  const uint32_t g = static_cast<uint32_t>(gateways_.size());
  GatewayMeta meta;
  meta.id = normalized.id;
  meta.surveyed_residents = normalized.surveyed_residents;
  meta.regular_home = normalized.regular_home;
  for (uint32_t d = 0; d < normalized.devices.size(); ++d) {
    const simgen::DeviceTrace& dev = normalized.devices[d];
    meta.devices.push_back(
        DeviceMeta{dev.name, dev.true_type, dev.reported_type});
    HOMETS_RETURN_IF_ERROR(AppendSeries(g, d, 0, dev.incoming));
    HOMETS_RETURN_IF_ERROR(AppendSeries(g, d, 1, dev.outgoing));
  }
  gateways_.push_back(std::move(meta));
  return Status::OK();
}

size_t HometsWriter::devices_appended() const {
  size_t devices = 0;
  for (const GatewayMeta& gw : gateways_) devices += gw.devices.size();
  return devices;
}

Status HometsWriter::Finish() {
  if (finished_) {
    return Status::FailedPrecondition("Finish called twice: " + path_);
  }
  obs::ScopedSpan span("storage.finish");
  HOMETS_FAILPOINT(kFailpointColWrite);
  finished_ = true;

  std::string footer;
  PutVarint(&footer, kFooterVersion);
  PutVarint(&footer, gateways_.size());
  for (const GatewayMeta& gw : gateways_) {
    PutZigzag(&footer, gw.id);
    footer.push_back(gw.surveyed_residents.has_value() ? '\1' : '\0');
    if (gw.surveyed_residents.has_value()) {
      PutZigzag(&footer, *gw.surveyed_residents);
    }
    footer.push_back(gw.regular_home ? '\1' : '\0');
    PutVarint(&footer, gw.devices.size());
    for (const DeviceMeta& dev : gw.devices) {
      PutVarint(&footer, dev.name.size());
      footer += dev.name;
      footer.push_back(static_cast<char>(dev.true_type));
      footer.push_back(static_cast<char>(dev.reported_type));
    }
  }
  PutVarint(&footer, chunks_.size());
  for (const ChunkRef& chunk : chunks_) {
    PutVarint(&footer, chunk.gateway);
    PutVarint(&footer, chunk.device);
    footer.push_back(static_cast<char>(chunk.direction));
    PutZigzag(&footer, chunk.start_minute);
    PutVarint(&footer, chunk.value_count);
    PutVarint(&footer, chunk.offset);
    PutVarint(&footer, chunk.payload_size);
    PutU32(&footer, chunk.crc32);
  }

  std::string trailer;
  PutU64(&trailer, offset_);
  PutU32(&trailer, Crc32(reinterpret_cast<const uint8_t*>(footer.data()),
                         footer.size()));
  trailer.append(kTrailerMagic, sizeof(kTrailerMagic));

  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out_.flush();
  if (!out_) return Status::IoError("write failed: " + path_);
  Metrics().bytes_written->Increment(footer.size() + trailer.size());
  Metrics().files_written->Increment();
  return Status::OK();
}

Status WriteGatewayHomets(const std::string& path,
                          const simgen::GatewayTrace& gateway) {
  HOMETS_ASSIGN_OR_RETURN(HometsWriter writer, HometsWriter::Create(path));
  HOMETS_RETURN_IF_ERROR(writer.Append(gateway));
  return writer.Finish();
}

Result<FleetWriteStats> WriteFleetHomets(const simgen::FleetGenerator& fleet,
                                         const std::string& path) {
  obs::ScopedSpan span("storage.write_fleet");
  HOMETS_ASSIGN_OR_RETURN(HometsWriter writer, HometsWriter::Create(path));
  FleetWriteStats stats;
  for (int id = 0; id < fleet.config().n_gateways; ++id) {
    // One gateway in memory at a time: generate, append, discard.
    const Status appended = writer.Append(fleet.Generate(id));
    if (!appended.ok()) {
      // A gateway with nothing observed is unreadable as CSV too; drop it
      // so both formats expose the same gateway set.
      if (appended.code() == StatusCode::kInvalidArgument) {
        ++stats.gateways_skipped;
        continue;
      }
      return appended;
    }
  }
  HOMETS_RETURN_IF_ERROR(writer.Finish());
  stats.gateways = writer.gateways_appended();
  stats.devices = writer.devices_appended();
  stats.chunks = writer.chunks_written();
  return stats;
}

// --- reader ----------------------------------------------------------------

struct HometsReader::Rep {
  std::string path;
  int fd = -1;
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool mmapped = false;
  std::string buffer;  ///< fallback storage when mmap is unavailable
  std::vector<GatewayMeta> gateways;
  std::vector<ChunkRef> chunks;
  /// (gateway, device, direction) -> indices into `chunks`, time-sorted.
  std::map<uint64_t, std::vector<size_t>> series_index;

  ~Rep() {
    if (mmapped && data != nullptr) {
      munmap(const_cast<uint8_t*>(data), size);
    }
    if (fd >= 0) close(fd);
  }
};

namespace {

/// Maps (or, failing that, reads) the file into rep. Size and magic are
/// validated by the caller.
Status LoadFile(const std::string& path, HometsReader::Rep* rep) {
  rep->fd = open(path.c_str(), O_RDONLY);
  if (rep->fd < 0) return Status::IoError("cannot open for read: " + path);
  struct stat st {};
  if (fstat(rep->fd, &st) != 0 || st.st_size < 0) {
    return Status::IoError("cannot stat: " + path);
  }
  rep->size = static_cast<size_t>(st.st_size);
  if (rep->size == 0) return Status::IoError("empty file: " + path);
  void* mapped = mmap(nullptr, rep->size, PROT_READ, MAP_PRIVATE, rep->fd, 0);
  if (mapped != MAP_FAILED) {
    rep->data = static_cast<const uint8_t*>(mapped);
    rep->mmapped = true;
    return Status::OK();
  }
  // Buffered fallback (e.g. filesystems without mmap support).
  rep->buffer.resize(rep->size);
  size_t done = 0;
  while (done < rep->size) {
    const ssize_t got =
        pread(rep->fd, rep->buffer.data() + done, rep->size - done,
              static_cast<off_t>(done));
    if (got <= 0) return Status::IoError("read failed: " + path);
    done += static_cast<size_t>(got);
  }
  rep->data = reinterpret_cast<const uint8_t*>(rep->buffer.data());
  return Status::OK();
}

Status ParseFooter(const uint8_t* footer, size_t footer_size,
                   uint64_t footer_offset, HometsReader::Rep* rep) {
  const std::string& path = rep->path;
  const auto corrupt = [&path](const char* what) {
    return Status::IoError(StrFormat("corrupt homets footer in %s: %s",
                                     path.c_str(), what));
  };
  ByteReader reader(footer, footer_size);
  uint64_t version = 0;
  if (!reader.ReadVarint(&version)) return corrupt("missing version");
  if (version != kFooterVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported homets footer version %llu", path.c_str(),
                  static_cast<unsigned long long>(version)));
  }
  uint64_t gateway_count = 0;
  if (!reader.ReadVarint(&gateway_count)) return corrupt("gateway count");
  for (uint64_t g = 0; g < gateway_count; ++g) {
    GatewayMeta meta;
    int64_t id = 0;
    uint8_t has_residents = 0;
    uint8_t regular = 0;
    uint64_t device_count = 0;
    if (!reader.ReadZigzag(&id)) return corrupt("gateway id");
    meta.id = static_cast<int>(id);
    if (!reader.ReadU8(&has_residents)) return corrupt("survey flag");
    if (has_residents != 0) {
      int64_t residents = 0;
      if (!reader.ReadZigzag(&residents)) return corrupt("residents");
      meta.surveyed_residents = static_cast<int>(residents);
    }
    if (!reader.ReadU8(&regular)) return corrupt("regular flag");
    meta.regular_home = regular != 0;
    if (!reader.ReadVarint(&device_count)) return corrupt("device count");
    for (uint64_t d = 0; d < device_count; ++d) {
      DeviceMeta dev;
      uint64_t name_len = 0;
      if (!reader.ReadVarint(&name_len)) return corrupt("device name length");
      const uint8_t* name = reader.Skip(name_len);
      if (name == nullptr) return corrupt("device name");
      dev.name.assign(reinterpret_cast<const char*>(name), name_len);
      uint8_t true_type = 0;
      uint8_t reported_type = 0;
      if (!reader.ReadU8(&true_type) || !reader.ReadU8(&reported_type) ||
          true_type > static_cast<uint8_t>(simgen::DeviceType::kUnlabeled) ||
          reported_type >
              static_cast<uint8_t>(simgen::DeviceType::kUnlabeled)) {
        return corrupt("device type");
      }
      dev.true_type = static_cast<simgen::DeviceType>(true_type);
      dev.reported_type = static_cast<simgen::DeviceType>(reported_type);
      meta.devices.push_back(std::move(dev));
    }
    rep->gateways.push_back(std::move(meta));
  }
  uint64_t chunk_count = 0;
  if (!reader.ReadVarint(&chunk_count)) return corrupt("chunk count");
  for (uint64_t c = 0; c < chunk_count; ++c) {
    ChunkRef ref;
    uint64_t gateway = 0;
    uint64_t device = 0;
    uint8_t direction = 0;
    uint64_t value_count = 0;
    uint64_t payload_size = 0;
    if (!reader.ReadVarint(&gateway) || !reader.ReadVarint(&device) ||
        !reader.ReadU8(&direction) || !reader.ReadZigzag(&ref.start_minute) ||
        !reader.ReadVarint(&value_count) || !reader.ReadVarint(&ref.offset) ||
        !reader.ReadVarint(&payload_size) || !reader.ReadU32(&ref.crc32)) {
      return corrupt("chunk entry");
    }
    if (gateway >= rep->gateways.size() ||
        device >= rep->gateways[gateway].devices.size() || direction > 1 ||
        value_count == 0 || value_count > kChunkValues ||
        ref.offset < sizeof(kFileMagic) || ref.offset > footer_offset ||
        payload_size > footer_offset - ref.offset) {
      return corrupt("chunk bounds");
    }
    ref.gateway = static_cast<uint32_t>(gateway);
    ref.device = static_cast<uint32_t>(device);
    ref.direction = direction;
    ref.value_count = static_cast<uint32_t>(value_count);
    ref.payload_size = static_cast<uint32_t>(payload_size);
    const size_t index = rep->chunks.size();
    rep->chunks.push_back(ref);
    rep->series_index[SeriesKey(ref.gateway, ref.device, ref.direction)]
        .push_back(index);
  }
  if (reader.remaining() != 0) return corrupt("trailing bytes");
  for (auto& [key, refs] : rep->series_index) {
    (void)key;
    std::sort(refs.begin(), refs.end(), [rep](size_t a, size_t b) {
      return rep->chunks[a].start_minute < rep->chunks[b].start_minute;
    });
  }
  return Status::OK();
}

/// Decodes one chunk, applying the io.col.chunk failpoint and verifying the
/// CRC before touching the payload structure.
Result<std::vector<double>> DecodeChunk(const HometsReader::Rep& rep,
                                        const ChunkRef& ref) {
  const uint8_t* payload = rep.data + ref.offset;
  size_t size = ref.payload_size;
  std::string mangled;
  switch (EvaluateFailpoint(kFailpointColChunk)) {
    case FailpointAction::kError:
      return Status::IoError("injected by failpoint 'io.col.chunk'");
    case FailpointAction::kCorrupt:
      mangled.assign(reinterpret_cast<const char*>(payload), size);
      if (!mangled.empty()) mangled[0] = static_cast<char>(~mangled[0]);
      payload = reinterpret_cast<const uint8_t*>(mangled.data());
      break;
    case FailpointAction::kTruncate:
      size /= 2;
      break;
    default:
      break;
  }
  if (Crc32(payload, size) != ref.crc32) {
    Metrics().crc_failures->Increment();
    obs::LogError("storage", "chunk crc mismatch",
                  {obs::LogField::Str("path", rep.path),
                   obs::LogField::Uint("offset", ref.offset)});
    return Status::IoError(
        StrFormat("chunk crc mismatch in %s at offset %llu", rep.path.c_str(),
                  static_cast<unsigned long long>(ref.offset)));
  }
  auto values = DecodeChunkPayload(payload, size, ref.value_count, rep.path);
  if (values.ok()) {
    Metrics().chunks_read->Increment();
    Metrics().bytes_read->Increment(ref.payload_size);
  }
  return values;
}

/// Decodes the chunk run `refs[first, last)` of one series into a single
/// contiguous TimeSeries (chunks must be adjacent on the minute grid).
Result<ts::TimeSeries> AssembleSeries(const HometsReader::Rep& rep,
                                      const std::vector<size_t>& refs,
                                      size_t first, size_t last) {
  const int64_t start = rep.chunks[refs[first]].start_minute;
  std::vector<double> values;
  int64_t expected = start;
  for (size_t i = first; i < last; ++i) {
    const ChunkRef& ref = rep.chunks[refs[i]];
    if (ref.start_minute != expected) {
      return Status::IoError("non-contiguous chunk run in " + rep.path);
    }
    HOMETS_ASSIGN_OR_RETURN(const std::vector<double> chunk,
                            DecodeChunk(rep, ref));
    values.insert(values.end(), chunk.begin(), chunk.end());
    expected += static_cast<int64_t>(ref.value_count);
  }
  return ts::TimeSeries(start, 1, std::move(values));
}

}  // namespace

HometsReader::HometsReader(HometsReader&&) noexcept = default;
HometsReader& HometsReader::operator=(HometsReader&&) noexcept = default;
HometsReader::~HometsReader() = default;

Result<HometsReader> HometsReader::Open(const std::string& path) {
  obs::ScopedSpan span("storage.open");
  HOMETS_FAILPOINT(kFailpointColOpen);
  HometsReader reader;
  reader.rep_ = std::make_unique<Rep>();
  Rep* rep = reader.rep_.get();
  rep->path = path;
  HOMETS_RETURN_IF_ERROR(LoadFile(path, rep));
  Metrics().files_opened->Increment();
  if (rep->size < sizeof(kFileMagic) ||
      std::memcmp(rep->data, kFileMagic, sizeof(kFileMagic)) != 0) {
    return Status::InvalidArgument("not a homets file (bad magic): " + path);
  }
  if (rep->size < sizeof(kFileMagic) + kTrailerSize) {
    // Good magic but no room for a trailer: a write died before Finish.
    obs::LogWarn("storage", "torn homets file",
                 {obs::LogField::Str("path", path)});
    return Status::IoError("torn homets file (missing trailer): " + path);
  }
  ByteReader trailer(rep->data + rep->size - kTrailerSize, kTrailerSize);
  uint64_t footer_offset = 0;
  uint32_t footer_crc = 0;
  bool trailer_ok = trailer.ReadU64(&footer_offset);
  trailer_ok = trailer_ok && trailer.ReadU32(&footer_crc);
  const uint8_t* magic = trailer.Skip(sizeof(kTrailerMagic));
  if (!trailer_ok || magic == nullptr ||
      std::memcmp(magic, kTrailerMagic, sizeof(kTrailerMagic)) != 0) {
    obs::LogWarn("storage", "torn homets file",
                 {obs::LogField::Str("path", path)});
    return Status::IoError("torn homets file (missing trailer): " + path);
  }
  if (footer_offset < sizeof(kFileMagic) ||
      footer_offset > rep->size - kTrailerSize) {
    return Status::IoError("corrupt homets trailer in " + path);
  }
  const uint8_t* footer = rep->data + footer_offset;
  const size_t footer_size = rep->size - kTrailerSize - footer_offset;
  if (Crc32(footer, footer_size) != footer_crc) {
    Metrics().crc_failures->Increment();
    obs::LogError("storage", "footer crc mismatch",
                  {obs::LogField::Str("path", path)});
    return Status::IoError("footer crc mismatch in " + path);
  }
  HOMETS_RETURN_IF_ERROR(ParseFooter(footer, footer_size, footer_offset, rep));
  return reader;
}

size_t HometsReader::gateway_count() const { return rep_->gateways.size(); }

const GatewayMeta& HometsReader::gateway_meta(size_t gateway) const {
  return rep_->gateways[gateway];
}

size_t HometsReader::chunk_count() const { return rep_->chunks.size(); }

bool HometsReader::mmap_backed() const { return rep_->mmapped; }

Result<simgen::GatewayTrace> HometsReader::ReadGateway(size_t gateway) const {
  obs::ScopedSpan span("storage.read_gateway");
  const Rep& rep = *rep_;
  if (gateway >= rep.gateways.size()) {
    return Status::OutOfRange(
        StrFormat("gateway %zu out of range in %s (%zu gateways)", gateway,
                  rep.path.c_str(), rep.gateways.size()));
  }
  const GatewayMeta& meta = rep.gateways[gateway];
  simgen::GatewayTrace trace;
  trace.id = meta.id;
  trace.surveyed_residents = meta.surveyed_residents;
  trace.regular_home = meta.regular_home;
  size_t decoded = 0;
  for (uint32_t d = 0; d < meta.devices.size(); ++d) {
    simgen::DeviceTrace dev;
    dev.name = meta.devices[d].name;
    dev.true_type = meta.devices[d].true_type;
    dev.reported_type = meta.devices[d].reported_type;
    for (uint8_t direction = 0; direction <= 1; ++direction) {
      const auto it = rep.series_index.find(
          SeriesKey(static_cast<uint32_t>(gateway), d, direction));
      if (it == rep.series_index.end()) {
        return Status::IoError(StrFormat("missing column for device %s in %s",
                                         dev.name.c_str(), rep.path.c_str()));
      }
      HOMETS_ASSIGN_OR_RETURN(
          ts::TimeSeries series,
          AssembleSeries(rep, it->second, 0, it->second.size()));
      decoded += it->second.size();
      (direction == 0 ? dev.incoming : dev.outgoing) = std::move(series);
    }
    trace.devices.push_back(std::move(dev));
  }
  Metrics().chunks_skipped->Increment(rep.chunks.size() - decoded);
  return trace;
}

Result<ts::TimeSeries> HometsReader::ReadSeries(size_t gateway, size_t device,
                                                uint8_t direction,
                                                int64_t begin_minute,
                                                int64_t end_minute) const {
  obs::ScopedSpan span("storage.read_series");
  const Rep& rep = *rep_;
  if (begin_minute >= end_minute) {
    return Status::InvalidArgument("empty minute range");
  }
  const auto it = rep.series_index.find(SeriesKey(
      static_cast<uint32_t>(gateway), static_cast<uint32_t>(device),
      direction));
  if (it == rep.series_index.end()) {
    return Status::NotFound(
        StrFormat("no series (gateway %zu, device %zu, direction %u) in %s",
                  gateway, device, direction, rep.path.c_str()));
  }
  const std::vector<size_t>& refs = it->second;
  size_t first = refs.size();
  size_t last = 0;
  for (size_t i = 0; i < refs.size(); ++i) {
    const ChunkRef& ref = rep.chunks[refs[i]];
    const int64_t chunk_end =
        ref.start_minute + static_cast<int64_t>(ref.value_count);
    if (ref.start_minute < end_minute && chunk_end > begin_minute) {
      first = std::min(first, i);
      last = std::max(last, i + 1);
    }
  }
  if (first >= last) {
    Metrics().chunks_skipped->Increment(rep.chunks.size());
    return ts::TimeSeries();  // no overlap: an empty series, not an error
  }
  HOMETS_ASSIGN_OR_RETURN(const ts::TimeSeries assembled,
                          AssembleSeries(rep, refs, first, last));
  Metrics().chunks_skipped->Increment(rep.chunks.size() - (last - first));
  const int64_t clip_begin = std::max(begin_minute, assembled.start_minute());
  const int64_t clip_end = std::min(end_minute, assembled.EndMinute());
  return assembled.Slice(clip_begin, clip_end);
}

}  // namespace homets::storage
