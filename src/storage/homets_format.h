#ifndef HOMETS_STORAGE_HOMETS_FORMAT_H_
#define HOMETS_STORAGE_HOMETS_FORMAT_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "simgen/fleet.h"
#include "simgen/types.h"
#include "ts/time_series.h"

// The `homets` binary columnar trace format (DESIGN.md §11).
//
// A .homets file holds one or more gateway traces as per-(device, direction)
// column chunks of minute counters. Each chunk covers a contiguous run of
// the device's step-1 minute grid (frame of reference: the chunk's
// start_minute; at most kChunkValues bins) and is CRC32-protected. Values
// are encoded per chunk as either
//   kFixedE3  delta + zigzag + varint over milli-unit integers — chosen only
//             when every present value survives the quantization bit-exactly
//             (true for anything that ever passed through the CSV exporter's
//             %.3f cells), or
//   kRaw64    raw little-endian IEEE-754 bits — the lossless fallback.
// Missing bins (NaN) are carried by a presence bitmap, so decoded series are
// bit-identical to what the resilient CSV reader produces, including
// explicit Missing markers from kRepair.
//
// The file ends with a varint-encoded index footer (gateway/device metadata
// plus one entry per chunk) and a fixed 16-byte trailer locating it, so
// readers can mmap the file and decode exactly the chunks a
// (gateway, device, time-range) request overlaps — nothing else is touched.
namespace homets::storage {

/// Bins per column chunk; the random-access granularity (~2.8 days of
/// minutes). Small enough that a time-range slice decodes little beyond its
/// overlap, large enough that varint streams amortize the chunk header.
inline constexpr uint32_t kChunkValues = 4096;

/// Per-chunk value encodings. Stable wire values; append only.
enum class ChunkEncoding : uint8_t {
  kFixedE3 = 0,  ///< delta+zigzag+varint milli-units (bit-exact verified)
  kRaw64 = 1,    ///< little-endian IEEE-754 doubles
};

/// One column chunk in the footer index.
struct ChunkRef {
  uint32_t gateway = 0;      ///< index into the file's gateway table
  uint32_t device = 0;       ///< index into the gateway's device table
  uint8_t direction = 0;     ///< 0 = incoming, 1 = outgoing
  int64_t start_minute = 0;  ///< absolute minute of the chunk's first bin
  uint32_t value_count = 0;  ///< bins covered (present + missing)
  uint64_t offset = 0;       ///< payload offset from the start of the file
  uint32_t payload_size = 0;
  uint32_t crc32 = 0;        ///< CRC32 (IEEE) of the payload bytes
};

/// Device metadata stored in the footer (the CSV long format's identity
/// columns).
struct DeviceMeta {
  std::string name;
  simgen::DeviceType true_type = simgen::DeviceType::kPortable;
  simgen::DeviceType reported_type = simgen::DeviceType::kPortable;
};

/// Gateway metadata stored in the footer. Unlike CSV, the columnar format
/// keeps the simulator's gateway id, survey label and regularity ground
/// truth; CSV-converted files carry the CSV defaults (0 / unset / false).
struct GatewayMeta {
  int id = 0;
  std::optional<int> surveyed_residents;
  bool regular_home = false;
  std::vector<DeviceMeta> devices;
};

/// \brief Rewrites `gateway` into the shape a CSV write→read round trip
/// produces: devices merged and sorted by name, never-observed devices
/// dropped, and every surviving series expanded onto the gateway-wide step-1
/// minute grid [min, max] of observed minutes (unobserved bins Missing).
///
/// HometsWriter::Append applies this before encoding, which is what makes
/// analysis outputs byte-identical across --input-format=csv and
/// --input-format=homets. Fails with InvalidArgument when no device has a
/// single observed minute (the CSV reader rejects such files too).
Result<simgen::GatewayTrace> NormalizeToObservedSpan(
    const simgen::GatewayTrace& gateway);

/// \brief Streaming writer: Append gateways one at a time (chunks go to disk
/// immediately; only the index is held in memory), then Finish writes the
/// footer + trailer. Failing to Finish leaves an unreadable torn file — by
/// design, so half-written fleets are never mistaken for data.
class HometsWriter {
 public:
  static Result<HometsWriter> Create(const std::string& path);

  HometsWriter(HometsWriter&&) = default;
  HometsWriter& operator=(HometsWriter&&) = default;

  /// Normalizes and appends one gateway trace (see NormalizeToObservedSpan).
  Status Append(const simgen::GatewayTrace& gateway);

  /// Writes the index footer and trailer; the writer is unusable afterwards.
  Status Finish();

  size_t gateways_appended() const { return gateways_.size(); }
  size_t devices_appended() const;
  size_t chunks_written() const { return chunks_.size(); }

 private:
  HometsWriter() = default;

  Status AppendSeries(uint32_t gateway, uint32_t device, uint8_t direction,
                      const ts::TimeSeries& series);

  std::string path_;
  std::ofstream out_;
  uint64_t offset_ = 0;
  bool finished_ = false;
  std::vector<GatewayMeta> gateways_;
  std::vector<ChunkRef> chunks_;
};

/// \brief Writes a single-gateway .homets file (Create + Append + Finish).
Status WriteGatewayHomets(const std::string& path,
                          const simgen::GatewayTrace& gateway);

/// What WriteFleetHomets put on disk.
struct FleetWriteStats {
  size_t gateways = 0;
  size_t devices = 0;
  size_t chunks = 0;
  /// Gateways with no observed minute at all. The CSV exporter writes them
  /// as header-only files the CSV reader rejects, so the columnar fleet
  /// drops them too — keeping the readable-gateway set identical.
  size_t gateways_skipped = 0;
};

/// \brief Streams an entire simgen fleet into one .homets file, one gateway
/// at a time — the out-of-core generation path: peak memory is a single
/// gateway trace plus the index, regardless of fleet size.
Result<FleetWriteStats> WriteFleetHomets(const simgen::FleetGenerator& fleet,
                                         const std::string& path);

/// \brief mmap-backed reader. Open parses and validates only the footer;
/// chunk payloads are faulted in on demand by ReadGateway/ReadSeries, so a
/// time-range slice never touches unrelated pages. Falls back to a buffered
/// whole-file read where mmap is unavailable.
class HometsReader {
 public:
  static Result<HometsReader> Open(const std::string& path);

  // Out-of-line so the pimpl stays incomplete in this header.
  HometsReader(HometsReader&&) noexcept;
  HometsReader& operator=(HometsReader&&) noexcept;
  ~HometsReader();

  size_t gateway_count() const;
  const GatewayMeta& gateway_meta(size_t gateway) const;
  size_t chunk_count() const;
  bool mmap_backed() const;

  /// Decodes every chunk of gateway `gateway` into a full GatewayTrace
  /// (devices in stored — name-sorted — order, bit-exact values).
  Result<simgen::GatewayTrace> ReadGateway(size_t gateway) const;

  /// Decodes only the chunks of (gateway, device, direction) overlapping
  /// [begin_minute, end_minute) and returns that range clipped to the
  /// series' coverage; bounds must be minute-aligned ints. The
  /// homets.storage.chunks_read / chunks_skipped counters account for what
  /// was and was not decoded.
  Result<ts::TimeSeries> ReadSeries(size_t gateway, size_t device,
                                    uint8_t direction, int64_t begin_minute,
                                    int64_t end_minute) const;

  /// Opaque implementation record (defined in homets_format.cc; public only
  /// so the file-local parse/decode helpers there can name it).
  struct Rep;

 private:
  HometsReader() = default;

  std::unique_ptr<Rep> rep_;
};

}  // namespace homets::storage

#endif  // HOMETS_STORAGE_HOMETS_FORMAT_H_
