#ifndef HOMETS_STORAGE_WIRE_H_
#define HOMETS_STORAGE_WIRE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

// Wire-format primitives shared by every on-disk artifact in the repo: the
// columnar .homets files (storage/homets_format.cc) and the fleet shard
// checkpoints (fleet/checkpoint.cc). Keeping the encoders and the
// bounds-checked decoder in one header guarantees the two formats agree on
// byte order, varint shape and CRC polynomial, so a checkpoint reader can
// never "almost" parse a chunk and vice versa.
namespace homets::storage {

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), table-driven.
inline uint32_t Crc32(const uint8_t* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- little-endian / varint primitives -------------------------------------

inline void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

inline void PutVarint(std::string* out, uint64_t v) {
  while (v >= 0x80u) {
    out->push_back(static_cast<char>((v & 0x7Fu) | 0x80u));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1u) + 1u));
}

inline void PutZigzag(std::string* out, int64_t v) {
  PutVarint(out, ZigzagEncode(v));
}

/// Bounds-checked sequential decoder over a byte span; every Read returns
/// false instead of running past the end, so corrupt lengths surface as a
/// clean Status, never a wild read.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool ReadVarint(uint64_t* v) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      if (pos_ >= size_) return false;
      const uint8_t byte = data_[pos_++];
      result |= static_cast<uint64_t>(byte & 0x7Fu) << shift;
      if ((byte & 0x80u) == 0) {
        *v = result;
        return true;
      }
    }
    return false;
  }

  bool ReadZigzag(int64_t* v) {
    uint64_t raw = 0;
    if (!ReadVarint(&raw)) return false;
    *v = ZigzagDecode(raw);
    return true;
  }

  bool ReadU8(uint8_t* v) {
    if (pos_ >= size_) return false;
    *v = data_[pos_++];
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > size_) return false;
    uint32_t result = 0;
    for (int i = 0; i < 4; ++i) {
      result |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    *v = result;
    return true;
  }

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > size_) return false;
    uint64_t result = 0;
    for (int i = 0; i < 8; ++i) {
      result |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    *v = result;
    return true;
  }

  const uint8_t* Skip(size_t n) {
    if (pos_ + n > size_) return nullptr;
    const uint8_t* at = data_ + pos_;
    pos_ += n;
    return at;
  }

  size_t remaining() const { return size_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace homets::storage

#endif  // HOMETS_STORAGE_WIRE_H_
