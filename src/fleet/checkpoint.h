#ifndef HOMETS_FLEET_CHECKPOINT_H_
#define HOMETS_FLEET_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/shard.h"

// Crash-safe shard checkpoints (DESIGN.md §15.2).
//
// Each completed shard is persisted as one small file in --checkpoint-dir:
//
//   "HSHARDC1" | payload | CRC-32(payload)
//
// The payload (storage/wire.h varints, little-endian fixed ints, raw
// IEEE-754 bits for doubles) starts with the checkpoint schema version and
// the run fingerprint, so a resumed run silently discards checkpoints that
// are torn (CRC), from another input set / shard layout (fingerprint), or
// from an older code version (schema). Writes go to a ".tmp" sibling and
// are atomically renamed into place: a crash mid-write leaves no partial
// file under the final name, and a torn final file (power loss after
// rename) is caught by the CRC on read.
namespace homets::fleet {

/// Bump on any incompatible change to the checkpoint payload.
inline constexpr uint64_t kCheckpointSchemaVersion = 1;

/// \brief FNV-1a 64-bit fingerprint of everything that must match for a
/// checkpoint to be reusable: input paths with sizes, mtimes and order, the
/// shard layout, the dataset format policy, and the checkpoint schema
/// version. The mtime catches an input edited in place without changing
/// size, which size alone would wave through.
uint64_t FleetFingerprint(const FleetInputs& inputs, int n_shards,
                          std::string_view format_name);

/// Canonical checkpoint file path for one shard.
std::string ShardCheckpointPath(const std::string& dir, int shard_index);

/// \brief Serializes a shard result (magic + payload + CRC).
std::string EncodeShardCheckpoint(const ShardResult& result,
                                  uint64_t fingerprint);

/// \brief Parses checkpoint bytes; FailedPrecondition on a magic/CRC/
/// schema/fingerprint mismatch (the caller discards and re-runs the shard).
Result<ShardResult> DecodeShardCheckpoint(const std::string& bytes,
                                          uint64_t fingerprint);

/// \brief Writes the shard checkpoint via tmp-file + atomic rename. The
/// `io.ckpt.write` failpoint is evaluated per (shard index, attempt):
/// `error` fails the write, `truncate` leaves a torn file under the final
/// name (a simulated crash), `corrupt` flips a payload byte.
Status WriteShardCheckpoint(const std::string& dir, const ShardResult& result,
                            uint64_t fingerprint, uint64_t attempt = 1);

/// \brief Loads and validates one shard checkpoint. NotFound when the file
/// does not exist; FailedPrecondition when it exists but cannot be trusted.
/// The `io.ckpt.read` failpoint injects IoError per shard index.
Result<ShardResult> ReadShardCheckpoint(const std::string& dir,
                                        int shard_index, uint64_t fingerprint);

// --- checkpoint-directory hygiene -----------------------------------------

std::string FleetLockPath(const std::string& dir);
std::string FleetManifestPath(const std::string& dir);

/// \brief Creates `dir` (one level) if needed and takes its LOCK sentinel
/// atomically (open with O_CREAT|O_EXCL, so two racing runs cannot both
/// win; the loser inspects the existing lock instead).
///
/// An existing LOCK is honoured only when it plausibly belongs to a live
/// run: its pid is alive (with the recorded /proc start-time token, when
/// present, ruling out a recycled pid) AND the directory still carries a
/// fleet manifest. Anything else (dead pid, no manifest — e.g. a SIGKILLed
/// run) is a stale lock, reclaimed with a logged warning. Refusal is
/// FailedPrecondition.
Status AcquireFleetLock(const std::string& dir, uint64_t fingerprint);

/// Removes the LOCK sentinel (no-op if missing).
void ReleaseFleetLock(const std::string& dir);

/// \brief Writes the small fleet manifest recording the fingerprint and the
/// shard layout, so operators (and the lock-staleness check) can see what
/// run owns the directory.
Status WriteFleetManifest(const std::string& dir, uint64_t fingerprint,
                          int n_shards, int n_gateways);

}  // namespace homets::fleet

#endif  // HOMETS_FLEET_CHECKPOINT_H_
