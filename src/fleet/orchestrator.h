#ifndef HOMETS_FLEET_ORCHESTRATOR_H_
#define HOMETS_FLEET_ORCHESTRATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/profiling.h"
#include "fleet/shard.h"
#include "io/dataset.h"

// Fleet orchestration (DESIGN.md §15): plan shards, run them on the thread
// pool with per-shard retry/deadline/cancellation, checkpoint completed
// shards, quarantine poison shards, and merge everything into one
// deterministic fleet report.
namespace homets::fleet {

/// \brief Knobs of a fleet run.
struct FleetOptions {
  int n_shards = 1;
  int threads = 0;  ///< 0 = hardware concurrency
  /// Directory for shard checkpoints + LOCK + fleet manifest; empty
  /// disables checkpointing (and resume).
  std::string checkpoint_dir;
  /// Load valid checkpoints from `checkpoint_dir` and re-run only the rest.
  bool resume = false;
  /// Failed shards are quarantined and the report marked degraded; when
  /// false the first shard failure aborts the whole run (fail-fast).
  bool quarantine = true;
  int max_attempts = 3;          ///< per-shard attempts (1 = no retry)
  double retry_backoff_ms = 0.0; ///< base backoff, doubled per attempt
  double shard_deadline_ms = 0.0;  ///< per-attempt deadline; 0 = none
  io::DatasetOptions dataset;
  core::ProfilingOptions profiling;
};

/// \brief A shard that exhausted its attempts and was set aside.
struct QuarantinedShard {
  int shard_index = 0;
  Status status;     ///< the last attempt's failure
  int attempts = 0;  ///< attempts consumed (== max_attempts)
};

/// \brief Merged fleet-level results, in deterministic gateway order.
struct FleetReport {
  int n_gateways = 0;  ///< planned fleet size
  int n_shards = 0;
  std::vector<GatewaySummary> gateways;  ///< from completed shards only
  std::vector<uint64_t> zipf_bins;       ///< size kZipfBins, merged
  uint64_t values_binned = 0;
  bool degraded = false;  ///< at least one shard quarantined
  std::vector<QuarantinedShard> quarantined;  ///< sorted by shard_index
  uint64_t shards_resumed = 0;    ///< loaded from checkpoints
  uint64_t checkpoints_discarded = 0;  ///< present but torn/stale
};

/// \brief Runs the sharded fleet pipeline end to end.
///
/// The merge is by shard index, never completion order, so the report bytes
/// are identical across thread counts — and a run killed at shard K then
/// resumed reproduces the uninterrupted report exactly (the resume counters
/// above are surfaced in telemetry only, not in FormatFleetReport).
class FleetOrchestrator {
 public:
  FleetOrchestrator(std::vector<std::string> inputs, FleetOptions options);

  /// `cancel` (may be nullptr) aborts the run; each in-flight shard watches
  /// it through a child token, so a shard-level deadline never leaks into
  /// its siblings.
  Result<FleetReport> Analyze(CancellationToken* cancel = nullptr);

 private:
  std::vector<std::string> inputs_;
  FleetOptions options_;
};

/// \brief Renders the fleet-level figures (Zipf fit, dominance histogram,
/// stationarity/τ/motif aggregates, quarantine state) as a stable
/// human-readable report. Pure function of the report's data.
std::string FormatFleetReport(const FleetReport& report);

}  // namespace homets::fleet

#endif  // HOMETS_FLEET_ORCHESTRATOR_H_
