#include "fleet/orchestrator.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "fleet/checkpoint.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "stats/zipf_fit.h"

namespace homets::fleet {

namespace {

struct FleetMetrics {
  obs::Counter* shards_planned;
  obs::Counter* shards_run;
  obs::Counter* shards_resumed;
  obs::Counter* shards_quarantined;
  obs::Counter* shard_retries;
  obs::Counter* checkpoints_loaded;
  obs::Counter* checkpoints_discarded;
};

const FleetMetrics& Metrics() {
  static const FleetMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return FleetMetrics{
        registry.GetCounter(obs::kFleetShardsPlanned),
        registry.GetCounter(obs::kFleetShardsRun),
        registry.GetCounter(obs::kFleetShardsResumed),
        registry.GetCounter(obs::kFleetShardsQuarantined),
        registry.GetCounter(obs::kFleetShardRetries),
        registry.GetCounter(obs::kFleetCheckpointsLoaded),
        registry.GetCounter(obs::kFleetCheckpointsDiscarded)};
  }();
  return metrics;
}

/// Removes the LOCK sentinel when the run leaves the directory, however it
/// leaves (success, fail-fast abort, cancellation). A SIGKILL skips this —
/// that is the stale-lock reclaim path in AcquireFleetLock.
class FleetLockGuard {
 public:
  explicit FleetLockGuard(std::string dir) : dir_(std::move(dir)) {}
  FleetLockGuard(const FleetLockGuard&) = delete;
  FleetLockGuard& operator=(const FleetLockGuard&) = delete;
  ~FleetLockGuard() {
    if (!dir_.empty()) ReleaseFleetLock(dir_);
  }

 private:
  std::string dir_;
};

}  // namespace

FleetOrchestrator::FleetOrchestrator(std::vector<std::string> inputs,
                                     FleetOptions options)
    : inputs_(std::move(inputs)), options_(std::move(options)) {}

Result<FleetReport> FleetOrchestrator::Analyze(CancellationToken* cancel) {
  if (options_.n_shards < 1) {
    return Status::InvalidArgument("fleet: --shards must be >= 1");
  }
  if (options_.max_attempts < 1) {
    return Status::InvalidArgument("fleet: need >= 1 attempt per shard");
  }
  HOMETS_ASSIGN_OR_RETURN(
      const FleetInputs inputs,
      EnumerateFleetInputs(inputs_, options_.dataset));
  HOMETS_ASSIGN_OR_RETURN(
      const std::vector<ShardPlan> plans,
      ShardPlanner::Plan(static_cast<int>(inputs.gateways.size()),
                         options_.n_shards));
  const std::string format_name(io::InputFormatName(
      io::GuessFormat(inputs.paths.front(), options_.dataset.format)));
  const uint64_t fingerprint =
      FleetFingerprint(inputs, options_.n_shards, format_name);
  Metrics().shards_planned->Increment(plans.size());

  FleetReport report;
  report.n_gateways = static_cast<int>(inputs.gateways.size());
  report.n_shards = options_.n_shards;
  report.zipf_bins.assign(kZipfBins, 0);

  const bool checkpointing = !options_.checkpoint_dir.empty();
  std::string locked_dir;
  if (checkpointing) {
    HOMETS_RETURN_IF_ERROR(
        AcquireFleetLock(options_.checkpoint_dir, fingerprint));
    locked_dir = options_.checkpoint_dir;
  }
  // The guard exists from the instant the lock is held, so every exit path
  // below — including a failed manifest write — releases the LOCK.
  FleetLockGuard lock_guard(locked_dir);
  if (checkpointing) {
    HOMETS_RETURN_IF_ERROR(WriteFleetManifest(
        options_.checkpoint_dir, fingerprint, options_.n_shards,
        report.n_gateways));
  }

  // Phase 1: load whatever valid checkpoints the directory holds.
  // `done` is vector<char>, not vector<bool>: workers set distinct slots
  // concurrently in Phase 2, and vector<bool>'s bit-packing would make
  // those writes race on shared words.
  std::vector<ShardResult> results(plans.size());
  std::vector<char> done(plans.size(), 0);
  if (checkpointing && options_.resume) {
    for (size_t s = 0; s < plans.size(); ++s) {
      auto loaded = ReadShardCheckpoint(options_.checkpoint_dir,
                                        plans[s].shard_index, fingerprint);
      if (loaded.ok()) {
        results[s] = std::move(*loaded);
        done[s] = 1;
        Metrics().checkpoints_loaded->Increment();
        Metrics().shards_resumed->Increment();
        ++report.shards_resumed;
        continue;
      }
      if (loaded.status().code() == StatusCode::kNotFound) continue;
      // Present but torn / stale / unreadable: discard and re-run.
      obs::LogWarn("fleet", "discarding unusable shard checkpoint",
                   {obs::LogField::Int("shard", plans[s].shard_index),
                    obs::LogField::Str("reason",
                                       loaded.status().ToString())});
      Metrics().checkpoints_discarded->Increment();
      ++report.checkpoints_discarded;
    }
  }
  std::vector<size_t> pending;
  for (size_t s = 0; s < plans.size(); ++s) {
    if (!done[s]) pending.push_back(s);
  }

  // Phase 2: run the remainder on the pool, one shard per block. Shard
  // failures stay local (retry, then quarantine) unless fail-fast is on;
  // ParallelForStatus still surfaces the lowest-index error
  // deterministically when they do propagate.
  const ShardRunner runner(&inputs, options_.dataset, options_.profiling);
  Mutex quarantine_mu{"fleet.quarantine"};
  std::vector<QuarantinedShard> quarantined;
  obs::ProgressTracker::Stage* progress = obs::ProgressStage("fleet.shards");
  if (progress != nullptr) progress->AddTotal(pending.size());
  const Status run_status = ParallelForStatus(
      pending.size(), options_.threads, 1, cancel,
      [&](size_t begin, size_t end, int) -> Status {
        for (size_t p = begin; p < end; ++p) {
          const size_t slot = pending[p];
          const ShardPlan& plan = plans[slot];
          Status last = Status::OK();
          for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
            if (attempt > 1) {
              Metrics().shard_retries->Increment();
              if (options_.retry_backoff_ms > 0.0) {
                // Cap the doubling exponent: --shard-attempts is unbounded
                // and a shift past 63 would be UB (and the sleep absurd).
                const double factor = static_cast<double>(
                    1ull << std::min(attempt - 2, 20));
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        options_.retry_backoff_ms * factor));
              }
            }
            // Each attempt gets a fresh child token: the run-level cancel
            // shows through it, while a per-attempt deadline cancels only
            // this shard.
            CancellationToken shard_token(cancel);
            std::optional<DeadlineWatchdog> watchdog;
            if (options_.shard_deadline_ms > 0.0) {
              watchdog.emplace(&shard_token, options_.shard_deadline_ms);
            }
            auto result = runner.RunShard(plan, &shard_token,
                                     static_cast<uint64_t>(attempt));
            const bool deadline_fired =
                watchdog.has_value() && watchdog->fired();
            if (watchdog.has_value()) watchdog->Disarm();
            if (result.ok()) {
              Status persisted = Status::OK();
              if (checkpointing) {
                persisted = WriteShardCheckpoint(
                    options_.checkpoint_dir, *result, fingerprint,
                    static_cast<uint64_t>(attempt));
              }
              if (persisted.ok()) {
                results[slot] = std::move(*result);
                done[slot] = 1;
                Metrics().shards_run->Increment();
                last = Status::OK();
                break;
              }
              last = persisted;  // checkpoint write failures are retryable
            } else {
              last = result.status();
            }
            if (cancel != nullptr && cancel->cancelled()) {
              // The whole run is being cancelled — don't burn retries.
              return cancel->AsStatus();
            }
            if (deadline_fired) {
              last = Status::DeadlineExceeded(
                  StrFormat("fleet: shard %d exceeded its %.0f ms deadline",
                            plan.shard_index, options_.shard_deadline_ms));
            }
          }
          if (!last.ok()) {
            if (!options_.quarantine) return last;  // fail-fast
            obs::LogWarn("fleet", "quarantining shard",
                         {obs::LogField::Int("shard", plan.shard_index),
                          obs::LogField::Int("attempts",
                                             options_.max_attempts),
                          obs::LogField::Str("status", last.ToString())});
            Metrics().shards_quarantined->Increment();
            MutexLock lock(&quarantine_mu);
            quarantined.push_back(QuarantinedShard{
                plan.shard_index, last, options_.max_attempts});
          }
          if (progress != nullptr) progress->Tick();
        }
        return Status::OK();
      });
  if (progress != nullptr) progress->Finish();
  HOMETS_RETURN_IF_ERROR(run_status);

  // Phase 3: merge strictly by shard index — never completion order — so
  // the report is bit-identical across thread counts and resume patterns.
  std::sort(quarantined.begin(), quarantined.end(),
            [](const QuarantinedShard& a, const QuarantinedShard& b) {
              return a.shard_index < b.shard_index;
            });
  report.quarantined = std::move(quarantined);
  report.degraded = !report.quarantined.empty();
  for (size_t s = 0; s < plans.size(); ++s) {
    if (!done[s]) continue;
    const ShardResult& shard = results[s];
    report.gateways.insert(report.gateways.end(), shard.gateways.begin(),
                           shard.gateways.end());
    for (size_t b = 0; b < kZipfBins; ++b) {
      report.zipf_bins[b] += shard.zipf_bins[b];
    }
    report.values_binned += shard.values_binned;
  }
  return report;
}

std::string FormatFleetReport(const FleetReport& report) {
  std::string out;
  out += StrFormat("fleet report: %d gateways in %d shards\n",
                   report.n_gateways, report.n_shards);
  size_t eligible = 0;
  size_t weekly_stationary = 0;
  size_t dominance_hist[4] = {0, 0, 0, 0};
  uint64_t min_residents_total = 0;
  double evening_share_sum = 0.0;
  size_t quietest_hist[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  uint64_t tau_small = 0, tau_medium = 0, tau_large = 0;
  uint64_t daily_motifs = 0, daily_windows = 0;
  for (const GatewaySummary& g : report.gateways) {
    daily_motifs += g.daily_motifs;
    daily_windows += g.daily_windows;
    tau_small += g.tau_small;
    tau_medium += g.tau_medium;
    tau_large += g.tau_large;
    if (!g.eligible) continue;
    ++eligible;
    if (g.weekly_stationary) ++weekly_stationary;
    ++dominance_hist[std::min<uint32_t>(g.dominant_count, 3)];
    min_residents_total += g.min_residents;
    evening_share_sum += g.evening_share;
    if (g.quietest_slot >= 0 && g.quietest_slot < 8) {
      ++quietest_hist[g.quietest_slot];
    }
  }
  out += StrFormat("gateways analyzed: %zu (%zu eligible, %zu ineligible)\n",
                   report.gateways.size(), eligible,
                   report.gateways.size() - eligible);
  const auto zipf = stats::FitZipfFromFrequencies(report.zipf_bins);
  if (zipf.ok()) {
    out += StrFormat(
        "zipf rank-frequency: exponent=%.4f r2=%.4f ranks=%zu over %llu "
        "values\n",
        zipf->exponent, zipf->r_squared, zipf->ranks_used,
        static_cast<unsigned long long>(report.values_binned));
  } else {
    out += "zipf rank-frequency: not fitted (" + zipf.status().ToString() +
           ")\n";
  }
  out += StrFormat(
      "dominance histogram (eligible): 0:%zu 1:%zu 2:%zu 3+:%zu\n",
      dominance_hist[0], dominance_hist[1], dominance_hist[2],
      dominance_hist[3]);
  out += StrFormat("weekly stationary: %zu of %zu eligible\n",
                   weekly_stationary, eligible);
  out += StrFormat("min residents (sum over eligible): %llu\n",
                   static_cast<unsigned long long>(min_residents_total));
  size_t quietest_mode = 0;
  for (size_t s = 1; s < 8; ++s) {
    if (quietest_hist[s] > quietest_hist[quietest_mode]) quietest_mode = s;
  }
  out += StrFormat("quietest 3h slot (mode): %zu\n", quietest_mode);
  out += StrFormat(
      "mean evening share (eligible): %.6f\n",
      eligible == 0 ? 0.0 : evening_share_sum / static_cast<double>(eligible));
  out += StrFormat("tau groups: small=%llu medium=%llu large=%llu\n",
                   static_cast<unsigned long long>(tau_small),
                   static_cast<unsigned long long>(tau_medium),
                   static_cast<unsigned long long>(tau_large));
  out += StrFormat("daily motifs: %llu from %llu windows\n",
                   static_cast<unsigned long long>(daily_motifs),
                   static_cast<unsigned long long>(daily_windows));
  if (report.degraded) {
    out += StrFormat("DEGRADED: %zu shard(s) quarantined\n",
                     report.quarantined.size());
    for (const QuarantinedShard& q : report.quarantined) {
      out += StrFormat("  shard %d: %s (attempts: %d)\n", q.shard_index,
                       q.status.ToString().c_str(), q.attempts);
    }
  } else {
    out += "quarantined shards: none\n";
  }
  return out;
}

}  // namespace homets::fleet
