#include "fleet/shard.h"

#include <sys/stat.h>

#include <cmath>
#include <map>
#include <utility>

#include "common/failpoint.h"
#include "core/background.h"
#include "core/motif.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::fleet {

namespace {

/// Daily motif mining parameters — the paper's daily analysis: 3 h bins,
/// midnight-anchored daily windows (matches the CLI `motifs --period daily`).
constexpr int64_t kDailyGranularityMinutes = 180;
constexpr int64_t kDailyAnchorMinutes = 0;

GatewaySummary Summarize(int32_t gateway_id,
                         const simgen::GatewayTrace& trace,
                         const core::ProfilingOptions& profiling) {
  GatewaySummary summary;
  summary.gateway_id = gateway_id;
  summary.devices_observed = static_cast<uint32_t>(trace.devices.size());
  const auto profile = core::ProfileGateway(trace, profiling);
  if (profile.ok()) {
    summary.eligible = true;
    summary.dominant_count =
        static_cast<uint32_t>(profile->dominant_devices.size());
    summary.min_residents = static_cast<uint32_t>(profile->min_residents);
    summary.weekly_stationary = profile->weekly_stationary;
    summary.quietest_slot = profile->quietest_slot;
    summary.evening_share = profile->evening_share;
    for (const auto& [device, group] : profile->device_tau_groups) {
      switch (group) {
        case core::TauGroup::kSmall:
          ++summary.tau_small;
          break;
        case core::TauGroup::kMedium:
          ++summary.tau_medium;
          break;
        case core::TauGroup::kLarge:
          ++summary.tau_large;
          break;
      }
    }
  }
  // Daily motifs per gateway: background-free aggregate, 3 h bins, daily
  // windows. A gateway too short to mine simply reports zero motifs.
  const auto active = core::ActiveAggregate(trace);
  const auto aggregated =
      ts::Aggregate(active, kDailyGranularityMinutes, kDailyAnchorMinutes,
                    ts::AggKind::kSum);
  if (aggregated.ok()) {
    const auto windows = ts::SliceWindows(*aggregated, ts::kMinutesPerDay,
                                          kDailyAnchorMinutes);
    summary.daily_windows = static_cast<uint32_t>(windows.size());
    if (windows.size() >= 2) {
      const auto motifs = core::MotifDiscovery().Discover(windows);
      if (motifs.ok()) {
        summary.daily_motifs = static_cast<uint32_t>(motifs->size());
      }
    }
  }
  return summary;
}

}  // namespace

Result<std::vector<ShardPlan>> ShardPlanner::Plan(int n_gateways,
                                                  int n_shards) {
  if (n_gateways < 0) {
    return Status::InvalidArgument("ShardPlanner: negative gateway count");
  }
  if (n_shards < 1) {
    return Status::InvalidArgument("ShardPlanner: need >= 1 shard");
  }
  std::vector<ShardPlan> plans;
  plans.reserve(static_cast<size_t>(n_shards));
  const int base = n_gateways / n_shards;
  const int extra = n_gateways % n_shards;
  int begin = 0;
  for (int s = 0; s < n_shards; ++s) {
    const int size = base + (s < extra ? 1 : 0);
    plans.push_back(ShardPlan{s, begin, begin + size});
    begin += size;
  }
  return plans;
}

Result<FleetInputs> EnumerateFleetInputs(
    const std::vector<std::string>& paths,
    const io::DatasetOptions& options) {
  if (paths.empty()) {
    return Status::InvalidArgument("fleet: at least one input expected");
  }
  FleetInputs inputs;
  inputs.paths = paths;
  inputs.bytes.reserve(paths.size());
  inputs.mtime_ns.reserve(paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    struct stat st = {};
    if (::stat(paths[i].c_str(), &st) != 0) {
      return Status::IoError("fleet: cannot stat '" + paths[i] + "'");
    }
    inputs.bytes.push_back(static_cast<uint64_t>(st.st_size));
    inputs.mtime_ns.push_back(
        static_cast<uint64_t>(st.st_mtim.tv_sec) * 1000000000ull +
        static_cast<uint64_t>(st.st_mtim.tv_nsec));
    HOMETS_ASSIGN_OR_RETURN(auto reader,
                            io::DatasetReader::Open(paths[i], options));
    for (size_t g = 0; g < reader.gateway_count(); ++g) {
      inputs.gateways.push_back(GatewaySourceRef{i, g});
    }
  }
  if (inputs.gateways.empty()) {
    return Status::InvalidArgument("fleet: inputs hold no gateways");
  }
  return inputs;
}

size_t ZipfBinIndex(double value) {
  // Absolute half-log2 bins over [2^-32, 2^32); everything outside clamps
  // to the edge bins. Fixed bin edges are what make per-shard counts
  // mergeable by plain addition.
  const double position = (std::log2(value) + 32.0) * 2.0;
  if (!(position > 0.0)) return 0;
  if (position >= static_cast<double>(kZipfBins)) return kZipfBins - 1;
  return static_cast<size_t>(position);
}

ShardRunner::ShardRunner(const FleetInputs* inputs,
                         io::DatasetOptions options,
                         core::ProfilingOptions profiling)
    : inputs_(inputs),
      options_(std::move(options)),
      profiling_(profiling) {}

Result<ShardResult> ShardRunner::RunShard(const ShardPlan& plan,
                                     const CancellationToken* cancel,
                                     uint64_t attempt) const {
  static obs::Counter* const gateways_analyzed =
      obs::MetricsRegistry::Global().GetCounter(obs::kFleetGatewaysAnalyzed);
  if (Failpoints::Global().armed()) {
    HOMETS_RETURN_IF_ERROR(Failpoints::Global().InjectedErrorAt(
        kFailpointFleetShardRun,
        static_cast<uint64_t>(plan.shard_index) + 1, attempt));
  }
  if (plan.begin_gateway < 0 || plan.end_gateway < plan.begin_gateway ||
      static_cast<size_t>(plan.end_gateway) > inputs_->gateways.size()) {
    return Status::InvalidArgument("fleet: shard range out of bounds");
  }
  ShardResult result;
  result.plan = plan;
  result.zipf_bins.assign(kZipfBins, 0);
  result.gateways.reserve(
      static_cast<size_t>(plan.end_gateway - plan.begin_gateway));
  // Readers are opened per shard run (and cached per input file within it):
  // a retry starts from a clean slate and a poisoned file only fails the
  // shards that actually read it.
  std::map<size_t, io::DatasetReader> readers;
  for (int g = plan.begin_gateway; g < plan.end_gateway; ++g) {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("fleet: shard cancelled");
    }
    const GatewaySourceRef& ref = inputs_->gateways[static_cast<size_t>(g)];
    auto it = readers.find(ref.input_index);
    if (it == readers.end()) {
      HOMETS_ASSIGN_OR_RETURN(
          auto reader,
          io::DatasetReader::Open(inputs_->paths[ref.input_index], options_));
      it = readers.emplace(ref.input_index, std::move(reader)).first;
    }
    HOMETS_ASSIGN_OR_RETURN(const auto trace,
                            it->second.ReadGateway(ref.gateway_index));
    result.gateways.push_back(Summarize(g, trace, profiling_));
    const auto aggregate = trace.AggregateTraffic();
    for (const double v : aggregate.values()) {
      if (!(v > 0.0) || std::isnan(v)) continue;
      ++result.zipf_bins[ZipfBinIndex(v)];
      ++result.values_binned;
    }
    gateways_analyzed->Increment();
  }
  return result;
}

}  // namespace homets::fleet
