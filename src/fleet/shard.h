#ifndef HOMETS_FLEET_SHARD_H_
#define HOMETS_FLEET_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/profiling.h"
#include "io/dataset.h"

// Sharded fleet execution (DESIGN.md §15).
//
// A fleet run partitions the gateway population into contiguous shards,
// executes the per-gateway pipeline (profile, τ groups, daily motifs, Zipf
// binning) shard by shard, and merges per-shard results into fleet-level
// figures. Everything in this header is deterministic in the gateway order:
// a ShardResult depends only on the input data and the shard's gateway
// range, never on thread scheduling or shard completion order — that is
// what makes checkpoints reusable across interrupted runs.
namespace homets::fleet {

/// \brief One shard: a contiguous half-open range of global gateway indices.
struct ShardPlan {
  int shard_index = 0;
  int begin_gateway = 0;  ///< inclusive
  int end_gateway = 0;    ///< exclusive
};

/// \brief Deterministically partitions `n_gateways` into `n_shards`
/// contiguous, near-equal ranges (the first `n_gateways % n_shards` shards
/// get one extra gateway). Shards beyond the gateway count come back empty
/// rather than failing, so `--shards` larger than the fleet still works.
class ShardPlanner {
 public:
  static Result<std::vector<ShardPlan>> Plan(int n_gateways, int n_shards);
};

/// \brief Where a global gateway index lives on disk.
struct GatewaySourceRef {
  size_t input_index = 0;    ///< into FleetInputs::paths
  size_t gateway_index = 0;  ///< within that file
};

/// \brief The resolved input set of a fleet run: every path with its size
/// and mtime (for the resume fingerprint) and the global gateway order
/// (inputs in command-line order, gateways in file order within each input).
struct FleetInputs {
  std::vector<std::string> paths;
  std::vector<uint64_t> bytes;
  std::vector<uint64_t> mtime_ns;  ///< parallel to paths; ns since epoch
  std::vector<GatewaySourceRef> gateways;
};

/// \brief Opens every input once to count gateways and sizes. The global
/// gateway order this fixes is part of the fleet fingerprint: reordering
/// inputs invalidates checkpoints.
Result<FleetInputs> EnumerateFleetInputs(
    const std::vector<std::string>& paths,
    const io::DatasetOptions& options);

/// \brief Per-gateway extract of the pipeline outputs that fleet reports
/// aggregate. `evening_share` keeps its raw IEEE-754 bits through checkpoint
/// round trips, so merged reports are byte-identical however they were
/// computed.
struct GatewaySummary {
  int32_t gateway_id = 0;  ///< global gateway index in the fleet order
  bool eligible = false;   ///< ProfileGateway succeeded (>= 2 weekly windows)
  uint32_t devices_observed = 0;
  uint32_t dominant_count = 0;
  uint32_t min_residents = 0;
  bool weekly_stationary = false;
  int32_t quietest_slot = 0;
  double evening_share = 0.0;
  uint32_t tau_small = 0;
  uint32_t tau_medium = 0;
  uint32_t tau_large = 0;
  uint32_t daily_windows = 0;
  uint32_t daily_motifs = 0;
};

/// Number of absolute logarithmic traffic-value bins kept per shard for the
/// fleet-wide Zipf rank-frequency fit. Bins are fixed (half-log2 steps over
/// [2^-32, 2^32)), so per-shard counts add associatively and the merged
/// histogram is independent of how the fleet was sharded.
inline constexpr size_t kZipfBins = 128;

/// Maps a positive traffic value to its absolute log bin.
size_t ZipfBinIndex(double value);

/// \brief Everything one shard contributes to the fleet report.
struct ShardResult {
  ShardPlan plan;
  std::vector<GatewaySummary> gateways;  ///< in global gateway order
  std::vector<uint64_t> zipf_bins;       ///< size kZipfBins
  uint64_t values_binned = 0;
};

/// \brief Executes one shard of the per-gateway pipeline.
///
/// Each RunShard() opens its own DatasetReader per input file it touches, so a
/// poisoned file fails only the shards that read it. The `fleet.shard.run`
/// failpoint is evaluated per (shard index, attempt) with the
/// schedule-independent EvaluateAt semantics, so chaos schedules hit the
/// same shards under any thread count.
class ShardRunner {
 public:
  ShardRunner(const FleetInputs* inputs, io::DatasetOptions options,
              core::ProfilingOptions profiling = {});

  /// Runs the shard; `cancel` (may be nullptr) is polled per gateway;
  /// `attempt` is the 1-based retry attempt, forwarded to the failpoint.
  Result<ShardResult> RunShard(const ShardPlan& plan,
                          const CancellationToken* cancel,
                          uint64_t attempt = 1) const;

 private:
  const FleetInputs* inputs_;
  io::DatasetOptions options_;
  core::ProfilingOptions profiling_;
};

}  // namespace homets::fleet

#endif  // HOMETS_FLEET_SHARD_H_
