#include "fleet/checkpoint.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "storage/wire.h"

namespace homets::fleet {

namespace {

constexpr char kCheckpointMagic[8] = {'H', 'S', 'H', 'A', 'R', 'D',
                                      'C', '1'};

/// FNV-1a 64-bit over a byte string.
uint64_t Fnv1a(std::string_view bytes, uint64_t h = 1469598103934665603ull) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double DoubleFromBits(uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::IoError("fleet: cannot open '" + path + "' for write");
  }
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (!out) {
    return Status::IoError("fleet: short write to '" + path + "'");
  }
  return Status::OK();
}

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("fleet: no file at '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("fleet: read failed for '" + path + "'");
  }
  return buffer.str();
}

Status Untrusted(const std::string& why) {
  return Status::FailedPrecondition("fleet: checkpoint " + why);
}

}  // namespace

uint64_t FleetFingerprint(const FleetInputs& inputs, int n_shards,
                          std::string_view format_name) {
  // A canonical string keyed field-by-field; any change to the input set,
  // its order, the shard layout or the schema flips the fingerprint and
  // invalidates prior checkpoints.
  std::string canonical;
  canonical += "ckpt_schema=" + StrFormat("%llu", static_cast<unsigned long long>(
                                                      kCheckpointSchemaVersion));
  canonical += ";shards=" + StrFormat("%d", n_shards);
  canonical += ";format=" + std::string(format_name);
  canonical += ";gateways=" + StrFormat("%zu", inputs.gateways.size());
  for (size_t i = 0; i < inputs.paths.size(); ++i) {
    // Size alone misses an in-place edit that keeps the byte count; mtime
    // makes such a checkpoint stale instead of silently accepted.
    const uint64_t mtime =
        i < inputs.mtime_ns.size() ? inputs.mtime_ns[i] : 0;
    canonical += ";input=" + inputs.paths[i] + ":" +
                 StrFormat("%llu@%llu",
                           static_cast<unsigned long long>(inputs.bytes[i]),
                           static_cast<unsigned long long>(mtime));
  }
  return Fnv1a(canonical);
}

std::string ShardCheckpointPath(const std::string& dir, int shard_index) {
  return dir + StrFormat("/shard-%05d.ckpt", shard_index);
}

std::string EncodeShardCheckpoint(const ShardResult& result,
                                  uint64_t fingerprint) {
  std::string payload;
  storage::PutVarint(&payload, kCheckpointSchemaVersion);
  storage::PutU64(&payload, fingerprint);
  storage::PutVarint(&payload, static_cast<uint64_t>(result.plan.shard_index));
  storage::PutVarint(&payload,
                     static_cast<uint64_t>(result.plan.begin_gateway));
  storage::PutVarint(&payload, static_cast<uint64_t>(result.plan.end_gateway));
  storage::PutVarint(&payload, result.gateways.size());
  for (const GatewaySummary& g : result.gateways) {
    storage::PutZigzag(&payload, g.gateway_id);
    const uint8_t flags = static_cast<uint8_t>(
        (g.eligible ? 1u : 0u) | (g.weekly_stationary ? 2u : 0u));
    payload.push_back(static_cast<char>(flags));
    storage::PutVarint(&payload, g.devices_observed);
    storage::PutVarint(&payload, g.dominant_count);
    storage::PutVarint(&payload, g.min_residents);
    storage::PutZigzag(&payload, g.quietest_slot);
    storage::PutU64(&payload, DoubleBits(g.evening_share));
    storage::PutVarint(&payload, g.tau_small);
    storage::PutVarint(&payload, g.tau_medium);
    storage::PutVarint(&payload, g.tau_large);
    storage::PutVarint(&payload, g.daily_windows);
    storage::PutVarint(&payload, g.daily_motifs);
  }
  storage::PutVarint(&payload, result.zipf_bins.size());
  for (const uint64_t count : result.zipf_bins) {
    storage::PutVarint(&payload, count);
  }
  storage::PutVarint(&payload, result.values_binned);

  std::string bytes(kCheckpointMagic, sizeof(kCheckpointMagic));
  bytes += payload;
  storage::PutU32(&bytes,
                  storage::Crc32(
                      reinterpret_cast<const uint8_t*>(payload.data()),
                      payload.size()));
  return bytes;
}

Result<ShardResult> DecodeShardCheckpoint(const std::string& bytes,
                                          uint64_t fingerprint) {
  if (bytes.size() < sizeof(kCheckpointMagic) + 4) {
    return Untrusted("truncated");
  }
  if (std::memcmp(bytes.data(), kCheckpointMagic,
                  sizeof(kCheckpointMagic)) != 0) {
    return Untrusted("has wrong magic");
  }
  const size_t payload_size = bytes.size() - sizeof(kCheckpointMagic) - 4;
  const uint8_t* payload =
      reinterpret_cast<const uint8_t*>(bytes.data()) + sizeof(kCheckpointMagic);
  storage::ByteReader crc_reader(payload + payload_size, 4);
  uint32_t stored_crc = 0;
  crc_reader.ReadU32(&stored_crc);
  if (storage::Crc32(payload, payload_size) != stored_crc) {
    return Untrusted("failed its CRC check (torn write?)");
  }
  storage::ByteReader reader(payload, payload_size);
  uint64_t schema = 0;
  if (!reader.ReadVarint(&schema) || schema != kCheckpointSchemaVersion) {
    return Untrusted("has unsupported schema version");
  }
  uint64_t stored_fingerprint = 0;
  if (!reader.ReadU64(&stored_fingerprint)) return Untrusted("truncated");
  if (stored_fingerprint != fingerprint) {
    return Untrusted("is stale (fingerprint mismatch)");
  }
  ShardResult result;
  uint64_t shard_index = 0, begin = 0, end = 0, n_gateways = 0;
  if (!reader.ReadVarint(&shard_index) || !reader.ReadVarint(&begin) ||
      !reader.ReadVarint(&end) || !reader.ReadVarint(&n_gateways)) {
    return Untrusted("truncated");
  }
  result.plan.shard_index = static_cast<int>(shard_index);
  result.plan.begin_gateway = static_cast<int>(begin);
  result.plan.end_gateway = static_cast<int>(end);
  if (n_gateways != end - begin) return Untrusted("is inconsistent");
  result.gateways.reserve(n_gateways);
  for (uint64_t i = 0; i < n_gateways; ++i) {
    GatewaySummary g;
    int64_t gateway_id = 0, quietest = 0;
    uint8_t flags = 0;
    uint64_t devices = 0, dominant = 0, residents = 0, share_bits = 0;
    uint64_t tau_small = 0, tau_medium = 0, tau_large = 0;
    uint64_t windows = 0, motifs = 0;
    if (!reader.ReadZigzag(&gateway_id) || !reader.ReadU8(&flags) ||
        !reader.ReadVarint(&devices) || !reader.ReadVarint(&dominant) ||
        !reader.ReadVarint(&residents) || !reader.ReadZigzag(&quietest) ||
        !reader.ReadU64(&share_bits) || !reader.ReadVarint(&tau_small) ||
        !reader.ReadVarint(&tau_medium) || !reader.ReadVarint(&tau_large) ||
        !reader.ReadVarint(&windows) || !reader.ReadVarint(&motifs)) {
      return Untrusted("truncated");
    }
    g.gateway_id = static_cast<int32_t>(gateway_id);
    g.eligible = (flags & 1u) != 0;
    g.weekly_stationary = (flags & 2u) != 0;
    g.devices_observed = static_cast<uint32_t>(devices);
    g.dominant_count = static_cast<uint32_t>(dominant);
    g.min_residents = static_cast<uint32_t>(residents);
    g.quietest_slot = static_cast<int32_t>(quietest);
    g.evening_share = DoubleFromBits(share_bits);
    g.tau_small = static_cast<uint32_t>(tau_small);
    g.tau_medium = static_cast<uint32_t>(tau_medium);
    g.tau_large = static_cast<uint32_t>(tau_large);
    g.daily_windows = static_cast<uint32_t>(windows);
    g.daily_motifs = static_cast<uint32_t>(motifs);
    result.gateways.push_back(g);
  }
  uint64_t n_bins = 0;
  if (!reader.ReadVarint(&n_bins) || n_bins != kZipfBins) {
    return Untrusted("has wrong zipf bin layout");
  }
  result.zipf_bins.assign(kZipfBins, 0);
  for (uint64_t b = 0; b < n_bins; ++b) {
    if (!reader.ReadVarint(&result.zipf_bins[b])) return Untrusted("truncated");
  }
  if (!reader.ReadVarint(&result.values_binned)) return Untrusted("truncated");
  if (reader.remaining() != 0) return Untrusted("has trailing bytes");
  return result;
}

Status WriteShardCheckpoint(const std::string& dir, const ShardResult& result,
                            uint64_t fingerprint, uint64_t attempt) {
  static obs::Counter* const written =
      obs::MetricsRegistry::Global().GetCounter(obs::kFleetCheckpointsWritten);
  const std::string path = ShardCheckpointPath(dir, result.plan.shard_index);
  std::string bytes = EncodeShardCheckpoint(result, fingerprint);
  if (Failpoints::Global().armed()) {
    const uint64_t index = static_cast<uint64_t>(result.plan.shard_index) + 1;
    switch (Failpoints::Global().EvaluateAt(kFailpointCkptWrite, index,
                                            attempt)) {
      case FailpointAction::kError:
        return Status::IoError("injected by failpoint 'io.ckpt.write'");
      case FailpointAction::kTruncate:
        // A simulated crash: half the bytes land under the FINAL name, as
        // if power was lost after rename but before the data flushed. The
        // CRC check catches it on resume.
        return WriteFileBytes(path,
                              std::string_view(bytes).substr(0, bytes.size() / 2));
      case FailpointAction::kCorrupt:
        bytes[bytes.size() / 2] = static_cast<char>(
            static_cast<uint8_t>(bytes[bytes.size() / 2]) ^ 0xFFu);
        break;
      default:
        break;
    }
  }
  const std::string tmp = path + ".tmp";
  HOMETS_RETURN_IF_ERROR(WriteFileBytes(tmp, bytes));
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("fleet: rename to '" + path + "' failed");
  }
  written->Increment();
  return Status::OK();
}

Result<ShardResult> ReadShardCheckpoint(const std::string& dir,
                                        int shard_index,
                                        uint64_t fingerprint) {
  if (Failpoints::Global().armed()) {
    HOMETS_RETURN_IF_ERROR(Failpoints::Global().InjectedErrorAt(
        kFailpointCkptRead, static_cast<uint64_t>(shard_index) + 1));
  }
  HOMETS_ASSIGN_OR_RETURN(
      const std::string bytes,
      ReadFileBytes(ShardCheckpointPath(dir, shard_index)));
  HOMETS_ASSIGN_OR_RETURN(ShardResult result,
                          DecodeShardCheckpoint(bytes, fingerprint));
  if (result.plan.shard_index != shard_index) {
    return Untrusted("belongs to another shard");
  }
  return result;
}

// --- checkpoint-directory hygiene -----------------------------------------

std::string FleetLockPath(const std::string& dir) { return dir + "/LOCK"; }

std::string FleetManifestPath(const std::string& dir) {
  return dir + "/fleet_manifest.json";
}

namespace {

/// Start time of `pid` in clock ticks since boot (field 22 of
/// /proc/<pid>/stat), or 0 when unavailable (non-Linux, proc gone). Two
/// processes that reuse a pid get different start ticks, so recording this
/// beside the pid in the LOCK detects pid recycling.
uint64_t ProcStartTicks(long long pid) {
  const auto content =
      ReadFileBytes(StrFormat("/proc/%lld/stat", pid));
  if (!content.ok()) return 0;
  // comm (field 2) may hold spaces; everything after its closing paren is
  // plain space-separated fields, starting at field 3.
  const size_t close = content->rfind(')');
  if (close == std::string::npos) return 0;
  std::istringstream fields(content->substr(close + 1));
  std::string token;
  for (int field = 3; field <= 22; ++field) {
    if (!(fields >> token)) return 0;
  }
  return std::strtoull(token.c_str(), nullptr, 10);
}

}  // namespace

Status AcquireFleetLock(const std::string& dir, uint64_t fingerprint) {
  static obs::Counter* const reclaimed =
      obs::MetricsRegistry::Global().GetCounter(obs::kFleetLocksReclaimed);
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("fleet: cannot create checkpoint dir '" + dir +
                           "'");
  }
  const std::string lock_path = FleetLockPath(dir);
  // O_CREAT|O_EXCL makes creation atomic: two racing runs cannot both pass
  // a read-then-write staleness check, only one open() can win. The loop
  // allows exactly one reclaim of a lock judged stale; if someone else
  // recreates the lock in that window, the second O_EXCL loses and we
  // refuse rather than spin.
  for (int acquire_attempt = 0; acquire_attempt < 2; ++acquire_attempt) {
    const int fd =
        ::open(lock_path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd >= 0) {
      const long long self = static_cast<long long>(::getpid());
      const std::string body = StrFormat(
          "%lld %016llx %llu\n", self,
          static_cast<unsigned long long>(fingerprint),
          static_cast<unsigned long long>(ProcStartTicks(self)));
      const ssize_t written = ::write(fd, body.data(), body.size());
      ::close(fd);
      if (written != static_cast<ssize_t>(body.size())) {
        std::remove(lock_path.c_str());
        return Status::IoError("fleet: short write to '" + lock_path + "'");
      }
      return Status::OK();
    }
    if (errno != EEXIST) {
      return Status::IoError("fleet: cannot create '" + lock_path + "'");
    }
    const auto existing = ReadFileBytes(lock_path);
    if (!existing.ok()) continue;  // vanished under us — retry the open
    long long pid = 0;
    unsigned long long start_ticks = 0;  // absent in pre-token locks
    std::sscanf(existing->c_str(), "%lld %*s %llu", &pid, &start_ticks);
    bool pid_alive =
        pid > 0 && (::kill(static_cast<pid_t>(pid), 0) == 0 ||
                    errno == EPERM);
    if (pid_alive && start_ticks != 0) {
      const uint64_t current = ProcStartTicks(pid);
      // A live process with a different start time recycled the pid; the
      // lock's owner is gone. Unknown (0) stays conservative: alive.
      if (current != 0 && current != start_ticks) pid_alive = false;
    }
    struct stat st = {};
    const bool has_manifest = ::stat(FleetManifestPath(dir).c_str(), &st) == 0;
    if (pid_alive && has_manifest &&
        static_cast<pid_t>(pid) != ::getpid()) {
      return Status::FailedPrecondition(
          StrFormat("fleet: checkpoint dir '%s' is owned by live run "
                    "(pid %lld); refusing to resume",
                    dir.c_str(), pid));
    }
    obs::LogWarn("fleet", "reclaiming stale checkpoint-dir lock",
                 {obs::LogField::Str("dir", dir),
                  obs::LogField::Int("pid", static_cast<int64_t>(pid)),
                  obs::LogField::Bool("pid_alive", pid_alive),
                  obs::LogField::Bool("has_manifest", has_manifest)});
    reclaimed->Increment();
    std::remove(lock_path.c_str());
  }
  return Status::FailedPrecondition(
      "fleet: lost the race for '" + lock_path + "'; another run took it");
}

void ReleaseFleetLock(const std::string& dir) {
  std::remove(FleetLockPath(dir).c_str());
}

Status WriteFleetManifest(const std::string& dir, uint64_t fingerprint,
                          int n_shards, int n_gateways) {
  const std::string json = StrFormat(
      "{\n  \"schema_version\": 1,\n  \"fingerprint\": \"%016llx\",\n"
      "  \"shards\": %d,\n  \"gateways\": %d,\n"
      "  \"checkpoint_schema\": %llu\n}\n",
      static_cast<unsigned long long>(fingerprint), n_shards, n_gateways,
      static_cast<unsigned long long>(kCheckpointSchemaVersion));
  return WriteFileBytes(FleetManifestPath(dir), json);
}

}  // namespace homets::fleet
