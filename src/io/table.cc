#include "io/table.h"

#include <algorithm>

#include "common/failpoint.h"

namespace homets::io {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  if (EvaluateFailpoint(kFailpointTablePrint) == FailpointAction::kError) {
    // Reported the way a real sink failure would be: callers see failbit on
    // the stream, nothing half-rendered.
    os.setstate(std::ios_base::failbit);
    return;
  }
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[0];
      os << "  " << cell;
      for (size_t pad = cell.size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << "  ";
  for (size_t i = 2; i < total; ++i) os << '-';
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string AsciiBar(double value, double max_value, size_t width) {
  if (max_value <= 0.0 || value <= 0.0 || width == 0) return "";
  size_t len = static_cast<size_t>(value / max_value * static_cast<double>(width) + 0.5);
  len = std::min(len, width);
  if (len == 0) len = 1;  // visible tick for any positive value
  return std::string(len, '#');
}

void PrintSection(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace homets::io
