#ifndef HOMETS_IO_CSV_H_
#define HOMETS_IO_CSV_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::io {

/// \brief What a reader does with a row it cannot use as-is (malformed,
/// duplicate minute, out-of-order minute, off-grid minute).
enum class ErrorPolicy : uint8_t {
  /// Any bad row fails the whole read — the historical behavior, and the
  /// right one for data that is supposed to be machine-generated.
  kStrict = 0,
  /// Bad rows are quarantined (dropped, counted, sampled into the report)
  /// and the read succeeds if what remains is usable.
  kSkipAndReport,
  /// kSkipAndReport plus structural repair: out-of-order rows are sorted
  /// back into place and minute gaps are filled with explicit missing
  /// markers, so downstream stages see a contiguous grid.
  kRepair,
};

/// \brief Knobs for resilient ingestion. The defaults reproduce the strict
/// historical behavior exactly.
struct ReadOptions {
  ErrorPolicy policy = ErrorPolicy::kStrict;
  /// Per-file cap on quarantined rows (malformed + duplicate + out-of-order);
  /// exceeding it fails the read even under kSkipAndReport/kRepair, so a
  /// thoroughly corrupt file cannot silently dwindle to three usable rows.
  size_t max_errors = 256;
  /// Transient-IO retry budget: a read failing with kIoError is retried up
  /// to this many times (parse errors are never retried).
  int max_retries = 0;
  /// Deterministic exponential backoff between retries: attempt k sleeps
  /// `backoff_ms * 2^k` milliseconds. 0 retries immediately.
  double backoff_ms = 0.0;
};

/// \brief One quarantined row, sampled into the IngestReport.
struct QuarantinedRow {
  size_t line = 0;     ///< 1-based line number in the file
  std::string text;    ///< the raw row
  std::string reason;  ///< e.g. "non-numeric minute", "duplicate minute"
};

/// \brief What resilient ingestion did to one file.
struct IngestReport {
  std::string path;
  size_t rows_parsed = 0;       ///< rows accepted into the result
  size_t rows_malformed = 0;    ///< wrong arity / non-numeric / bad header
  size_t rows_duplicate = 0;    ///< minute (or device+minute) seen before
  size_t rows_out_of_order = 0; ///< minute moved backwards
  size_t gaps_repaired = 0;     ///< grid slots filled with missing markers
  size_t retries = 0;           ///< transient-IO retries that were needed
  bool truncated = false;       ///< the file ended mid-stream (failpoint)
  /// First few quarantined rows verbatim (capped; the counters above are
  /// exact even when this sample is not exhaustive).
  std::vector<QuarantinedRow> quarantine;

  /// Total quarantined rows, the quantity capped by ReadOptions::max_errors.
  size_t SkippedTotal() const {
    return rows_malformed + rows_duplicate + rows_out_of_order;
  }
  /// One-line human summary for logs ("3 malformed, 1 duplicate, ...").
  std::string Summary() const;
};

/// \brief Writes a time series as CSV with header `minute,value`; missing
/// values are written as empty fields.
Status WriteTimeSeriesCsv(const std::string& path,
                          const ts::TimeSeries& series);

/// \brief Reads a series written by WriteTimeSeriesCsv under `options`.
///
/// kStrict requires a contiguous constant-step minute column and fully
/// numeric cells. kSkipAndReport quarantines unusable rows and requires the
/// survivors to form a constant-step grid. kRepair additionally re-sorts
/// out-of-order rows and fills minute gaps with explicit missing markers
/// (step inferred as the smallest positive minute delta). `report` (may be
/// nullptr) receives what happened; the `homets.ingest.*` metrics aggregate
/// the same counts across files.
Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path,
                                         const ReadOptions& options,
                                         IngestReport* report = nullptr);

/// \brief Strict read — `ReadOptions{}` semantics, kept for existing callers.
Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path);

/// \brief Writes one gateway's per-device traces in long format:
/// `device,true_type,reported_type,minute,incoming,outgoing` — the shape a
/// real RGW measurement campaign would export.
Status WriteGatewayCsv(const std::string& path,
                       const simgen::GatewayTrace& gateway);

/// \brief Reads a gateway trace written by WriteGatewayCsv under `options`.
///
/// The long format names minutes explicitly, so missing minutes are always
/// implicit and need no repair; the policies differ on malformed rows,
/// unknown device types, and duplicate (device, minute) observations (first
/// row wins under kSkipAndReport/kRepair).
Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path,
                                            const ReadOptions& options,
                                            IngestReport* report = nullptr);

/// \brief Strict read — `ReadOptions{}` semantics, kept for existing callers.
Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path);

}  // namespace homets::io

#endif  // HOMETS_IO_CSV_H_
