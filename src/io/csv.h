#ifndef HOMETS_IO_CSV_H_
#define HOMETS_IO_CSV_H_

#include <string>

#include "common/status.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::io {

/// \brief Writes a time series as CSV with header `minute,value`; missing
/// values are written as empty fields.
Status WriteTimeSeriesCsv(const std::string& path,
                          const ts::TimeSeries& series);

/// \brief Reads a series written by WriteTimeSeriesCsv. The minute column
/// must be contiguous with a constant step.
Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path);

/// \brief Writes one gateway's per-device traces in long format:
/// `device,true_type,reported_type,minute,incoming,outgoing` — the shape a
/// real RGW measurement campaign would export.
Status WriteGatewayCsv(const std::string& path,
                       const simgen::GatewayTrace& gateway);

/// \brief Reads a gateway trace written by WriteGatewayCsv.
Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path);

}  // namespace homets::io

#endif  // HOMETS_IO_CSV_H_
