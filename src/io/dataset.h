#ifndef HOMETS_IO_DATASET_H_
#define HOMETS_IO_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"
#include "io/csv.h"
#include "simgen/types.h"
#include "storage/homets_format.h"

// Format-agnostic dataset access (DESIGN.md §11.4).
//
// DatasetReader is the one door through which the pipeline, the CLI and the
// bench harnesses read gateway traces; only src/io and src/storage talk to
// the concrete CSV/columnar readers (homets_lint's `csv-include` rule keeps
// it that way). A path is interpreted by extension under kAuto — `.homets`
// is columnar, anything else is CSV — or forced with an explicit format.
namespace homets::io {

/// \brief On-disk trace encodings DatasetReader understands.
enum class InputFormat : uint8_t {
  kAuto = 0,  ///< decide per path: ".homets" → kHomets, else kCsv
  kCsv,
  kHomets,
};

/// \brief Parses a --input-format flag value ("auto", "csv", "homets").
Result<InputFormat> ParseInputFormat(std::string_view name);

/// \brief Canonical flag spelling of a format ("auto", "csv", "homets").
std::string_view InputFormatName(InputFormat format);

/// \brief Resolves kAuto against a path's extension; returns kCsv or
/// kHomets.
InputFormat GuessFormat(const std::string& path, InputFormat format);

/// \brief Knobs for opening a dataset.
struct DatasetOptions {
  InputFormat format = InputFormat::kAuto;
  /// Error policy for the CSV edge; columnar files are CRC-checked instead
  /// and ignore this.
  ReadOptions read;
};

/// \brief Reads gateway traces from one file, whatever its format.
///
/// CSV files hold one gateway; .homets files hold one or more. Open is
/// cheap for CSV (the parse happens in ReadGateway, so benchmarks time the
/// actual ingest) and parses only the index footer for columnar files.
class DatasetReader {
 public:
  static Result<DatasetReader> Open(const std::string& path,
                                    const DatasetOptions& options = {});

  DatasetReader(DatasetReader&&) = default;
  DatasetReader& operator=(DatasetReader&&) = default;

  /// The format the reader resolved to (never kAuto).
  InputFormat format() const { return format_; }

  size_t gateway_count() const;

  /// Decodes gateway `index`. Non-const because the CSV edge reads lazily
  /// and records its IngestReport here.
  Result<simgen::GatewayTrace> ReadGateway(size_t index);

  /// The resilient-ingest report of the last CSV ReadGateway (empty for
  /// columnar files, which fail hard on corruption instead of repairing).
  const IngestReport& report() const { return report_; }

 private:
  DatasetReader() = default;

  InputFormat format_ = InputFormat::kCsv;
  std::string path_;
  ReadOptions read_options_;
  IngestReport report_;
  std::optional<storage::HometsReader> homets_;
};

/// \brief Writes one gateway as `format` (kAuto: by extension) — the
/// format-agnostic counterpart of WriteGatewayCsv / WriteGatewayHomets.
Status WriteGatewayFile(const std::string& path,
                        const simgen::GatewayTrace& gateway,
                        InputFormat format = InputFormat::kAuto);

/// What a conversion moved.
struct ConvertStats {
  size_t gateways = 0;
  size_t devices = 0;
  size_t rows = 0;  ///< observed device-minutes (CSV data rows)
};

/// \brief Compacts one gateway CSV into a .homets file through the resilient
/// CSV reader — the ingest-edge → columnar hot-path hand-off. `report` (may
/// be nullptr) receives what the CSV edge had to skip or repair.
Result<ConvertStats> CompactCsvToHomets(const std::string& csv_path,
                                        const std::string& homets_path,
                                        const ReadOptions& options = {},
                                        IngestReport* report = nullptr);

/// \brief Exports a single-gateway .homets file back to CSV (lossless: the
/// columnar format stores exactly what the CSV round trip preserves).
/// Multi-gateway files are rejected — export each gateway to its own file.
Result<ConvertStats> ExportHometsToCsv(const std::string& homets_path,
                                       const std::string& csv_path);

}  // namespace homets::io

#endif  // HOMETS_IO_DATASET_H_
