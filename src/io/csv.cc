#include "io/csv.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/strings.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace homets::io {

namespace {

struct IoMetrics {
  obs::Counter* rows_parsed;
  obs::Counter* rows_skipped;
  obs::Counter* files_read;
};

const IoMetrics& Metrics() {
  static const IoMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return IoMetrics{registry.GetCounter(obs::kIoRowsParsed),
                     registry.GetCounter(obs::kIoRowsSkipped),
                     registry.GetCounter(obs::kIoFilesRead)};
  }();
  return metrics;
}

Result<simgen::DeviceType> ParseDeviceType(const std::string& name) {
  if (name == "portable") return simgen::DeviceType::kPortable;
  if (name == "fixed") return simgen::DeviceType::kFixed;
  if (name == "network_equipment") return simgen::DeviceType::kNetworkEquipment;
  if (name == "game_console") return simgen::DeviceType::kGameConsole;
  if (name == "unlabeled") return simgen::DeviceType::kUnlabeled;
  return Status::InvalidArgument("unknown device type: " + name);
}

}  // namespace

Status WriteTimeSeriesCsv(const std::string& path,
                          const ts::TimeSeries& series) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "minute,value\n";
  for (size_t i = 0; i < series.size(); ++i) {
    out << series.MinuteAt(i) << ',';
    if (!ts::TimeSeries::IsMissing(series[i])) {
      out << StrFormat("%.6f", series[i]);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path) {
  obs::ScopedSpan span("io.read_time_series_csv");
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Metrics().files_read->Increment();
  std::string line;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  std::vector<int64_t> minutes;
  std::vector<double> values;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) {
      Metrics().rows_skipped->Increment();
      continue;
    }
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 2) {
      return Status::IoError("malformed row in " + path + ": " + line);
    }
    Metrics().rows_parsed->Increment();
    minutes.push_back(std::stoll(fields[0]));
    const auto value_field = StrTrim(fields[1]);
    values.push_back(value_field.empty() ? ts::TimeSeries::Missing()
                                         : std::stod(std::string(value_field)));
  }
  if (minutes.empty()) return Status::IoError("no data rows in " + path);
  int64_t step = 1;
  if (minutes.size() >= 2) {
    step = minutes[1] - minutes[0];
    if (step <= 0) return Status::IoError("non-increasing minutes in " + path);
    for (size_t i = 2; i < minutes.size(); ++i) {
      if (minutes[i] - minutes[i - 1] != step) {
        return Status::IoError("irregular minute step in " + path);
      }
    }
  }
  return ts::TimeSeries(minutes[0], step, std::move(values));
}

Status WriteGatewayCsv(const std::string& path,
                       const simgen::GatewayTrace& gateway) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "device,true_type,reported_type,minute,incoming,outgoing\n";
  for (const auto& dev : gateway.devices) {
    for (size_t i = 0; i < dev.incoming.size(); ++i) {
      const double in_v = dev.incoming[i];
      const double out_v = i < dev.outgoing.size()
                               ? dev.outgoing[i]
                               : ts::TimeSeries::Missing();
      if (ts::TimeSeries::IsMissing(in_v) && ts::TimeSeries::IsMissing(out_v)) {
        continue;  // long format stores observed minutes only
      }
      out << dev.name << ',' << simgen::DeviceTypeName(dev.true_type) << ','
          << simgen::DeviceTypeName(dev.reported_type) << ','
          << dev.incoming.MinuteAt(i) << ',';
      if (!ts::TimeSeries::IsMissing(in_v)) out << StrFormat("%.3f", in_v);
      out << ',';
      if (!ts::TimeSeries::IsMissing(out_v)) out << StrFormat("%.3f", out_v);
      out << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path) {
  obs::ScopedSpan span("io.read_gateway_csv");
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Metrics().files_read->Increment();
  std::string line;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);

  struct Accum {
    simgen::DeviceType true_type;
    simgen::DeviceType reported_type;
    std::map<int64_t, std::pair<double, double>> rows;
  };
  std::map<std::string, Accum> devices;
  int64_t min_minute = 0;
  int64_t max_minute = -1;
  while (std::getline(in, line)) {
    if (StrTrim(line).empty()) {
      Metrics().rows_skipped->Increment();
      continue;
    }
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 6) {
      return Status::IoError("malformed row in " + path + ": " + line);
    }
    Metrics().rows_parsed->Increment();
    HOMETS_ASSIGN_OR_RETURN(const auto true_type, ParseDeviceType(fields[1]));
    HOMETS_ASSIGN_OR_RETURN(const auto reported_type,
                            ParseDeviceType(fields[2]));
    const int64_t minute = std::stoll(fields[3]);
    const double in_v = StrTrim(fields[4]).empty()
                            ? ts::TimeSeries::Missing()
                            : std::stod(fields[4]);
    const double out_v = StrTrim(fields[5]).empty()
                             ? ts::TimeSeries::Missing()
                             : std::stod(fields[5]);
    auto& acc = devices[fields[0]];
    acc.true_type = true_type;
    acc.reported_type = reported_type;
    acc.rows[minute] = {in_v, out_v};
    if (max_minute < 0) {
      min_minute = minute;
      max_minute = minute;
    } else {
      min_minute = std::min(min_minute, minute);
      max_minute = std::max(max_minute, minute);
    }
  }
  if (devices.empty()) return Status::IoError("no data rows in " + path);

  simgen::GatewayTrace gw;
  const size_t n = static_cast<size_t>(max_minute - min_minute + 1);
  for (auto& [name, acc] : devices) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.true_type = acc.true_type;
    dev.reported_type = acc.reported_type;
    std::vector<double> in_vals(n, ts::TimeSeries::Missing());
    std::vector<double> out_vals(n, ts::TimeSeries::Missing());
    for (const auto& [minute, pair] : acc.rows) {
      const size_t idx = static_cast<size_t>(minute - min_minute);
      in_vals[idx] = pair.first;
      out_vals[idx] = pair.second;
    }
    dev.incoming = ts::TimeSeries(min_minute, 1, std::move(in_vals));
    dev.outgoing = ts::TimeSeries(min_minute, 1, std::move(out_vals));
    gw.devices.push_back(std::move(dev));
  }
  return gw;
}

}  // namespace homets::io
