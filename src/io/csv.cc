#include "io/csv.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <thread>
#include <tuple>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace homets::io {

namespace {

/// Quarantine samples kept verbatim per file; counters stay exact beyond it.
constexpr size_t kQuarantineSampleCap = 16;

struct IoMetrics {
  obs::Counter* rows_parsed;
  obs::Counter* rows_skipped;
  obs::Counter* files_read;
  obs::Counter* rows_malformed;
  obs::Counter* rows_duplicate;
  obs::Counter* rows_out_of_order;
  obs::Counter* gaps_repaired;
  obs::Counter* retries;
  obs::Counter* files_quarantined;
};

const IoMetrics& Metrics() {
  static const IoMetrics metrics = [] {
    auto& registry = obs::MetricsRegistry::Global();
    return IoMetrics{registry.GetCounter(obs::kIoRowsParsed),
                     registry.GetCounter(obs::kIoRowsSkipped),
                     registry.GetCounter(obs::kIoFilesRead),
                     registry.GetCounter(obs::kIngestRowsMalformed),
                     registry.GetCounter(obs::kIngestRowsDuplicate),
                     registry.GetCounter(obs::kIngestRowsOutOfOrder),
                     registry.GetCounter(obs::kIngestGapsRepaired),
                     registry.GetCounter(obs::kIngestRetries),
                     registry.GetCounter(obs::kIngestFilesQuarantined)};
  }();
  return metrics;
}

void PublishIngest(const IngestReport& report, bool file_quarantined) {
  const IoMetrics& m = Metrics();
  if (report.rows_malformed > 0) m.rows_malformed->Increment(report.rows_malformed);
  if (report.rows_duplicate > 0) m.rows_duplicate->Increment(report.rows_duplicate);
  if (report.rows_out_of_order > 0) {
    m.rows_out_of_order->Increment(report.rows_out_of_order);
  }
  if (report.gaps_repaired > 0) m.gaps_repaired->Increment(report.gaps_repaired);
  if (report.retries > 0) m.retries->Increment(report.retries);
  if (file_quarantined) m.files_quarantined->Increment();
}

Result<simgen::DeviceType> ParseDeviceType(const std::string& name) {
  if (name == "portable") return simgen::DeviceType::kPortable;
  if (name == "fixed") return simgen::DeviceType::kFixed;
  if (name == "network_equipment") return simgen::DeviceType::kNetworkEquipment;
  if (name == "game_console") return simgen::DeviceType::kGameConsole;
  if (name == "unlabeled") return simgen::DeviceType::kUnlabeled;
  return Status::InvalidArgument("unknown device type: " + name);
}

/// Whole-field integer parse; never throws (std::stoll would).
Result<int64_t> ParseMinute(std::string_view field) {
  const std::string_view text = StrTrim(field);
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size() || text.empty()) {
    return Status::InvalidArgument("non-numeric minute: " +
                                   std::string(field));
  }
  return value;
}

/// Whole-field double parse; an empty field is a missing observation.
Result<double> ParseValue(std::string_view field) {
  const std::string_view text = StrTrim(field);
  if (text.empty()) return ts::TimeSeries::Missing();
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    return Status::InvalidArgument("non-numeric value: " + std::string(field));
  }
  return value;
}

/// Per-file quarantine bookkeeping shared by both readers.
class RowQuarantine {
 public:
  RowQuarantine(const ReadOptions& options, const std::string& path,
                IngestReport* report)
      : options_(options), path_(path), report_(report) {}

  /// Records one unusable row against `counter` (a field of the report);
  /// fails the read once the per-file cap is exhausted.
  Status Add(size_t* counter, size_t line_no, const std::string& text,
             const char* reason) {
    ++*counter;
    if (report_->quarantine.size() < kQuarantineSampleCap) {
      report_->quarantine.push_back(QuarantinedRow{line_no, text, reason});
    }
    if (report_->SkippedTotal() > options_.max_errors) {
      return Status::InvalidArgument(
          StrFormat("too many bad rows in %s (cap %zu)", path_.c_str(),
                    options_.max_errors));
    }
    return Status::OK();
  }

 private:
  const ReadOptions& options_;
  const std::string& path_;
  IngestReport* report_;
};

/// Applies the `io.csv.row` failpoint to one raw line. kCorrupt mangles the
/// line so it parses as malformed; kTruncate simulates the file ending
/// mid-stream; kError is a transient (retryable) read failure.
enum class RowFate { kKeep, kTruncateStream };

Result<RowFate> ApplyRowFailpoint(std::string* line) {
  switch (EvaluateFailpoint(kFailpointCsvRow)) {
    case FailpointAction::kError:
      return Status::IoError("injected by failpoint 'io.csv.row'");
    case FailpointAction::kCorrupt:
      line->insert(0, "\x01corrupt\x01");
      return RowFate::kKeep;
    case FailpointAction::kTruncate:
      return RowFate::kTruncateStream;
    default:
      return RowFate::kKeep;
  }
}

/// One read attempt of a `minute,value` series file under `options`.
Result<ts::TimeSeries> ReadTimeSeriesCsvOnce(const std::string& path,
                                             const ReadOptions& options,
                                             IngestReport* report) {
  obs::ScopedSpan span("io.read_time_series_csv");
  HOMETS_FAILPOINT(kFailpointCsvOpen);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Metrics().files_read->Increment();
  const bool strict = options.policy == ErrorPolicy::kStrict;
  const bool repair = options.policy == ErrorPolicy::kRepair;
  RowQuarantine quarantine(options, path, report);
  std::string line;
  size_t line_no = 1;
  if (!std::getline(in, line)) {
    return Status::IoError("empty file: " + path);
  }
  if (StrTrim(line) != "minute,value") {
    if (strict) {
      return Status::InvalidArgument("bad header in " + path + ": " + line);
    }
    HOMETS_RETURN_IF_ERROR(
        quarantine.Add(&report->rows_malformed, line_no, line, "bad header"));
  }
  // Accepted rows in file order (strict/skip) plus a key set for duplicate
  // and order detection; repair re-sorts via the map at the end.
  std::vector<std::pair<int64_t, double>> rows;
  std::set<int64_t> seen;
  int64_t last_minute = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (Failpoints::Global().armed()) {
      HOMETS_ASSIGN_OR_RETURN(const RowFate fate, ApplyRowFailpoint(&line));
      if (fate == RowFate::kTruncateStream) {
        report->truncated = true;
        break;
      }
    }
    if (StrTrim(line).empty()) {
      Metrics().rows_skipped->Increment();
      continue;
    }
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 2) {
      if (strict) {
        return Status::IoError("malformed row in " + path + ": " + line);
      }
      HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_malformed, line_no,
                                            line, "wrong field count"));
      continue;
    }
    const auto minute = ParseMinute(fields[0]);
    const auto value = minute.ok() ? ParseValue(fields[1])
                                   : Result<double>(minute.status());
    if (!value.ok()) {
      if (strict) return value.status();
      HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_malformed, line_no,
                                            line, "non-numeric cell"));
      continue;
    }
    if (!strict) {
      if (!seen.insert(*minute).second) {
        HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_duplicate, line_no,
                                              line, "duplicate minute"));
        continue;
      }
      if (!rows.empty() && *minute < last_minute) {
        if (!repair) {
          HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_out_of_order,
                                                line_no, line,
                                                "out-of-order minute"));
          continue;
        }
        // kRepair keeps the row; the sort below moves it into place.
        ++report->rows_out_of_order;
      }
    }
    Metrics().rows_parsed->Increment();
    rows.emplace_back(*minute, *value);
    last_minute = std::max(last_minute, *minute);
  }
  if (report->truncated && strict) {
    return Status::IoError("truncated stream in " + path);
  }
  if (rows.empty()) return Status::IoError("no data rows in " + path);
  report->rows_parsed = rows.size();
  if (repair) {
    std::sort(rows.begin(), rows.end());
    // Grid step = smallest positive minute delta; every other delta must be
    // a multiple of it or there is no grid to repair onto.
    int64_t step = 1;
    if (rows.size() >= 2) {
      step = rows[1].first - rows[0].first;
      for (size_t i = 2; i < rows.size(); ++i) {
        step = std::min(step, rows[i].first - rows[i - 1].first);
      }
      for (size_t i = 1; i < rows.size(); ++i) {
        if ((rows[i].first - rows[0].first) % step != 0) {
          return Status::InvalidArgument("cannot infer minute grid in " +
                                         path);
        }
      }
    }
    const size_t n =
        static_cast<size_t>((rows.back().first - rows.front().first) / step) +
        1;
    std::vector<double> values(n, ts::TimeSeries::Missing());
    for (const auto& [minute, value] : rows) {
      values[static_cast<size_t>((minute - rows.front().first) / step)] =
          value;
    }
    report->gaps_repaired = n - rows.size();
    return ts::TimeSeries(rows.front().first, step, std::move(values));
  }
  // kStrict and kSkipAndReport require the (surviving) rows to already form
  // an increasing constant-step grid — the historical contract.
  int64_t step = 1;
  if (rows.size() >= 2) {
    step = rows[1].first - rows[0].first;
    if (step <= 0) return Status::IoError("non-increasing minutes in " + path);
    for (size_t i = 2; i < rows.size(); ++i) {
      if (rows[i].first - rows[i - 1].first != step) {
        return Status::IoError("irregular minute step in " + path);
      }
    }
  }
  std::vector<double> values;
  values.reserve(rows.size());
  for (const auto& [minute, value] : rows) values.push_back(value);
  return ts::TimeSeries(rows[0].first, step, std::move(values));
}

/// One read attempt of a gateway long-format file under `options`.
Result<simgen::GatewayTrace> ReadGatewayCsvOnce(const std::string& path,
                                                const ReadOptions& options,
                                                IngestReport* report) {
  obs::ScopedSpan span("io.read_gateway_csv");
  HOMETS_FAILPOINT(kFailpointCsvOpen);
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  Metrics().files_read->Increment();
  const bool strict = options.policy == ErrorPolicy::kStrict;
  RowQuarantine quarantine(options, path, report);
  std::string line;
  size_t line_no = 1;
  if (!std::getline(in, line)) return Status::IoError("empty file: " + path);
  if (StrTrim(line) !=
      "device,true_type,reported_type,minute,incoming,outgoing") {
    if (strict) {
      return Status::InvalidArgument("bad header in " + path + ": " + line);
    }
    HOMETS_RETURN_IF_ERROR(
        quarantine.Add(&report->rows_malformed, line_no, line, "bad header"));
  }

  struct Accum {
    simgen::DeviceType true_type;
    simgen::DeviceType reported_type;
    std::map<int64_t, std::pair<double, double>> rows;
  };
  std::map<std::string, Accum> devices;
  int64_t min_minute = 0;
  int64_t max_minute = -1;
  while (std::getline(in, line)) {
    ++line_no;
    if (Failpoints::Global().armed()) {
      HOMETS_ASSIGN_OR_RETURN(const RowFate fate, ApplyRowFailpoint(&line));
      if (fate == RowFate::kTruncateStream) {
        report->truncated = true;
        break;
      }
    }
    if (StrTrim(line).empty()) {
      Metrics().rows_skipped->Increment();
      continue;
    }
    const auto fields = StrSplit(line, ',');
    if (fields.size() != 6) {
      if (strict) {
        return Status::IoError("malformed row in " + path + ": " + line);
      }
      HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_malformed, line_no,
                                            line, "wrong field count"));
      continue;
    }
    const auto parse_row =
        [&]() -> Result<std::tuple<simgen::DeviceType, simgen::DeviceType,
                                   int64_t, double, double>> {
      HOMETS_ASSIGN_OR_RETURN(const auto true_type,
                              ParseDeviceType(fields[1]));
      HOMETS_ASSIGN_OR_RETURN(const auto reported_type,
                              ParseDeviceType(fields[2]));
      HOMETS_ASSIGN_OR_RETURN(const int64_t minute, ParseMinute(fields[3]));
      HOMETS_ASSIGN_OR_RETURN(const double in_v, ParseValue(fields[4]));
      HOMETS_ASSIGN_OR_RETURN(const double out_v, ParseValue(fields[5]));
      return std::make_tuple(true_type, reported_type, minute, in_v, out_v);
    };
    const auto parsed = parse_row();
    if (!parsed.ok()) {
      if (strict) return parsed.status();
      HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_malformed, line_no,
                                            line,
                                            "unparseable cell or type"));
      continue;
    }
    const auto& [true_type, reported_type, minute, in_v, out_v] = *parsed;
    auto& acc = devices[fields[0]];
    acc.true_type = true_type;
    acc.reported_type = reported_type;
    if (!acc.rows.emplace(minute, std::make_pair(in_v, out_v)).second) {
      // First observation wins; a repeated (device, minute) key means the
      // exporter misbehaved and strict mode refuses to guess.
      if (strict) {
        return Status::InvalidArgument(
            StrFormat("duplicate observation in %s: device %s minute %lld",
                      path.c_str(), fields[0].c_str(),
                      static_cast<long long>(minute)));
      }
      HOMETS_RETURN_IF_ERROR(quarantine.Add(&report->rows_duplicate, line_no,
                                            line, "duplicate minute"));
      continue;
    }
    Metrics().rows_parsed->Increment();
    ++report->rows_parsed;
    if (max_minute < 0) {
      min_minute = minute;
      max_minute = minute;
    } else {
      min_minute = std::min(min_minute, minute);
      max_minute = std::max(max_minute, minute);
    }
  }
  if (report->truncated && strict) {
    return Status::IoError("truncated stream in " + path);
  }
  if (devices.empty()) return Status::IoError("no data rows in " + path);

  simgen::GatewayTrace gw;
  const size_t n = static_cast<size_t>(max_minute - min_minute + 1);
  for (auto& [name, acc] : devices) {
    simgen::DeviceTrace dev;
    dev.name = name;
    dev.true_type = acc.true_type;
    dev.reported_type = acc.reported_type;
    std::vector<double> in_vals(n, ts::TimeSeries::Missing());
    std::vector<double> out_vals(n, ts::TimeSeries::Missing());
    for (const auto& [minute, pair] : acc.rows) {
      const size_t idx = static_cast<size_t>(minute - min_minute);
      in_vals[idx] = pair.first;
      out_vals[idx] = pair.second;
    }
    dev.incoming = ts::TimeSeries(min_minute, 1, std::move(in_vals));
    dev.outgoing = ts::TimeSeries(min_minute, 1, std::move(out_vals));
    gw.devices.push_back(std::move(dev));
  }
  return gw;
}

/// Retry harness shared by both readers: transient failures (kIoError) are
/// retried with deterministic exponential backoff, each attempt on a fresh
/// report; parse/content failures are never retried. Publishes the ingest
/// metrics exactly once per call.
template <typename T, typename Fn>
Result<T> ReadWithRetries(const std::string& path, const ReadOptions& options,
                          IngestReport* report, const Fn& attempt) {
  IngestReport local;
  Result<T> result = Status::Unknown("read never attempted");
  for (int attempt_no = 0;; ++attempt_no) {
    const size_t retries_so_far = local.retries;
    local = IngestReport{};
    local.path = path;
    local.retries = retries_so_far;
    result = attempt(path, options, &local);
    if (result.ok() || result.status().code() != StatusCode::kIoError ||
        attempt_no >= options.max_retries) {
      break;
    }
    ++local.retries;
    obs::LogWarn("io.csv", "transient read failure, retrying",
                 {obs::LogField::Str("path", path),
                  obs::LogField::Int("attempt", attempt_no + 1),
                  obs::LogField::Str("error", result.status().message())});
    if (options.backoff_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          options.backoff_ms * static_cast<double>(int64_t{1} << attempt_no)));
    }
  }
  const bool quarantined_file =
      !result.ok() && options.policy != ErrorPolicy::kStrict;
  if (local.SkippedTotal() > 0 || local.gaps_repaired > 0 ||
      quarantined_file) {
    obs::LogWarn("io.csv",
                 quarantined_file ? "file quarantined" : "rows quarantined",
                 {obs::LogField::Str("path", path),
                  obs::LogField::Uint("rows_malformed", local.rows_malformed),
                  obs::LogField::Uint("rows_duplicate", local.rows_duplicate),
                  obs::LogField::Uint("rows_out_of_order",
                                      local.rows_out_of_order),
                  obs::LogField::Uint("gaps_repaired", local.gaps_repaired)});
  }
  PublishIngest(local, quarantined_file);
  if (report != nullptr) *report = std::move(local);
  return result;
}

}  // namespace

std::string IngestReport::Summary() const {
  return StrFormat(
      "%s: %zu rows, %zu malformed, %zu duplicate, %zu out-of-order, "
      "%zu gaps repaired, %zu retries%s",
      path.c_str(), rows_parsed, rows_malformed, rows_duplicate,
      rows_out_of_order, gaps_repaired, retries,
      truncated ? ", truncated" : "");
}

Status WriteTimeSeriesCsv(const std::string& path,
                          const ts::TimeSeries& series) {
  HOMETS_FAILPOINT(kFailpointCsvWrite);
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "minute,value\n";
  for (size_t i = 0; i < series.size(); ++i) {
    out << series.MinuteAt(i) << ',';
    if (!ts::TimeSeries::IsMissing(series[i])) {
      out << StrFormat("%.6f", series[i]);
    }
    out << '\n';
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path,
                                         const ReadOptions& options,
                                         IngestReport* report) {
  return ReadWithRetries<ts::TimeSeries>(path, options, report,
                                         ReadTimeSeriesCsvOnce);
}

Result<ts::TimeSeries> ReadTimeSeriesCsv(const std::string& path) {
  return ReadTimeSeriesCsv(path, ReadOptions{}, nullptr);
}

Status WriteGatewayCsv(const std::string& path,
                       const simgen::GatewayTrace& gateway) {
  HOMETS_FAILPOINT(kFailpointCsvWrite);
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "device,true_type,reported_type,minute,incoming,outgoing\n";
  for (const auto& dev : gateway.devices) {
    for (size_t i = 0; i < dev.incoming.size(); ++i) {
      const double in_v = dev.incoming[i];
      const double out_v = i < dev.outgoing.size()
                               ? dev.outgoing[i]
                               : ts::TimeSeries::Missing();
      if (ts::TimeSeries::IsMissing(in_v) && ts::TimeSeries::IsMissing(out_v)) {
        continue;  // long format stores observed minutes only
      }
      out << dev.name << ',' << simgen::DeviceTypeName(dev.true_type) << ','
          << simgen::DeviceTypeName(dev.reported_type) << ','
          << dev.incoming.MinuteAt(i) << ',';
      if (!ts::TimeSeries::IsMissing(in_v)) out << StrFormat("%.3f", in_v);
      out << ',';
      if (!ts::TimeSeries::IsMissing(out_v)) out << StrFormat("%.3f", out_v);
      out << '\n';
    }
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path,
                                            const ReadOptions& options,
                                            IngestReport* report) {
  return ReadWithRetries<simgen::GatewayTrace>(path, options, report,
                                               ReadGatewayCsvOnce);
}

Result<simgen::GatewayTrace> ReadGatewayCsv(const std::string& path) {
  return ReadGatewayCsv(path, ReadOptions{}, nullptr);
}

}  // namespace homets::io
