#ifndef HOMETS_IO_TABLE_H_
#define HOMETS_IO_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace homets::io {

/// \brief Fixed-width text table used by the experiment benches to print
/// paper-style rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment and a header separator.
  void Print(std::ostream& os) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Renders a horizontal ASCII bar of `value` relative to `max_value`
/// using at most `width` characters — benches use it to sketch the paper's
/// histogram figures in text.
std::string AsciiBar(double value, double max_value, size_t width = 40);

/// \brief Prints a section header ("== Figure 4 ... ==") in a consistent
/// style across benches.
void PrintSection(std::ostream& os, const std::string& title);

}  // namespace homets::io

#endif  // HOMETS_IO_TABLE_H_
