#include "io/dataset.h"

#include <utility>

#include "common/strings.h"
#include "obs/log.h"

namespace homets::io {

namespace {

constexpr std::string_view kHometsExtension = ".homets";

bool HasHometsExtension(const std::string& path) {
  return path.size() >= kHometsExtension.size() &&
         path.compare(path.size() - kHometsExtension.size(),
                      kHometsExtension.size(), kHometsExtension) == 0;
}

size_t ObservedRows(const simgen::GatewayTrace& gateway) {
  size_t rows = 0;
  for (const simgen::DeviceTrace& dev : gateway.devices) {
    // One CSV data row per minute where either direction is observed; on
    // the normalized grid outgoing is observed only where incoming's bin
    // exists, so counting per-bin like the CSV writer does is exact.
    const std::vector<double>& in_v = dev.incoming.values();
    const std::vector<double>& out_v = dev.outgoing.values();
    for (size_t i = 0; i < in_v.size(); ++i) {
      const bool in_obs = !ts::TimeSeries::IsMissing(in_v[i]);
      const bool out_obs =
          i < out_v.size() && !ts::TimeSeries::IsMissing(out_v[i]);
      if (in_obs || out_obs) ++rows;
    }
  }
  return rows;
}

}  // namespace

Result<InputFormat> ParseInputFormat(std::string_view name) {
  if (name == "auto") return InputFormat::kAuto;
  if (name == "csv") return InputFormat::kCsv;
  if (name == "homets") return InputFormat::kHomets;
  return Status::InvalidArgument(
      StrFormat("unknown input format '%.*s' (want auto, csv or homets)",
                static_cast<int>(name.size()), name.data()));
}

std::string_view InputFormatName(InputFormat format) {
  switch (format) {
    case InputFormat::kAuto:
      return "auto";
    case InputFormat::kCsv:
      return "csv";
    case InputFormat::kHomets:
      return "homets";
  }
  return "auto";
}

InputFormat GuessFormat(const std::string& path, InputFormat format) {
  if (format != InputFormat::kAuto) return format;
  return HasHometsExtension(path) ? InputFormat::kHomets : InputFormat::kCsv;
}

Result<DatasetReader> DatasetReader::Open(const std::string& path,
                                          const DatasetOptions& options) {
  DatasetReader reader;
  reader.format_ = GuessFormat(path, options.format);
  reader.path_ = path;
  reader.read_options_ = options.read;
  if (reader.format_ == InputFormat::kHomets) {
    HOMETS_ASSIGN_OR_RETURN(storage::HometsReader homets,
                            storage::HometsReader::Open(path));
    reader.homets_.emplace(std::move(homets));
  }
  obs::LogInfo(
      "io.dataset", "opened",
      {obs::LogField::Str("path", path),
       obs::LogField::Str(
           "format",
           reader.format_ == InputFormat::kHomets ? "homets" : "csv"),
       obs::LogField::Uint("gateways", reader.gateway_count())});
  return reader;
}

size_t DatasetReader::gateway_count() const {
  return homets_.has_value() ? homets_->gateway_count() : 1;
}

Result<simgen::GatewayTrace> DatasetReader::ReadGateway(size_t index) {
  if (index >= gateway_count()) {
    return Status::OutOfRange(
        StrFormat("gateway %zu out of range in %s (%zu gateways)", index,
                  path_.c_str(), gateway_count()));
  }
  if (homets_.has_value()) return homets_->ReadGateway(index);
  report_ = IngestReport{};
  return ReadGatewayCsv(path_, read_options_, &report_);
}

Status WriteGatewayFile(const std::string& path,
                        const simgen::GatewayTrace& gateway,
                        InputFormat format) {
  if (GuessFormat(path, format) == InputFormat::kHomets) {
    return storage::WriteGatewayHomets(path, gateway);
  }
  return WriteGatewayCsv(path, gateway);
}

Result<ConvertStats> CompactCsvToHomets(const std::string& csv_path,
                                        const std::string& homets_path,
                                        const ReadOptions& options,
                                        IngestReport* report) {
  HOMETS_ASSIGN_OR_RETURN(const simgen::GatewayTrace gateway,
                          ReadGatewayCsv(csv_path, options, report));
  HOMETS_RETURN_IF_ERROR(storage::WriteGatewayHomets(homets_path, gateway));
  ConvertStats stats;
  stats.gateways = 1;
  stats.devices = gateway.devices.size();
  stats.rows = ObservedRows(gateway);
  return stats;
}

Result<ConvertStats> ExportHometsToCsv(const std::string& homets_path,
                                       const std::string& csv_path) {
  HOMETS_ASSIGN_OR_RETURN(const storage::HometsReader reader,
                          storage::HometsReader::Open(homets_path));
  if (reader.gateway_count() != 1) {
    return Status::InvalidArgument(
        StrFormat("%s holds %zu gateways; export each to its own CSV",
                  homets_path.c_str(), reader.gateway_count()));
  }
  HOMETS_ASSIGN_OR_RETURN(const simgen::GatewayTrace gateway,
                          reader.ReadGateway(0));
  HOMETS_RETURN_IF_ERROR(WriteGatewayCsv(csv_path, gateway));
  ConvertStats stats;
  stats.gateways = 1;
  stats.devices = gateway.devices.size();
  stats.rows = ObservedRows(gateway);
  return stats;
}

}  // namespace homets::io
