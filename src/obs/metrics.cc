#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace homets::obs {

namespace {

// Local formatting helpers: this library sits below homets_common, so it
// cannot use StrFormat.
std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string FormatU64(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

std::string FormatI64(int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

std::string HistogramJson(const HistogramSnapshot& h) {
  std::string out = "{\"count\": " + FormatU64(h.count) +
                    ", \"sum\": " + FormatDouble(h.sum) + ", \"buckets\": [";
  for (size_t b = 0; b < h.buckets.size(); ++b) {
    if (b > 0) out += ", ";
    const std::string le =
        b < h.bounds.size() ? FormatDouble(h.bounds[b]) : "\"+inf\"";
    out += "{\"le\": " + le + ", \"count\": " + FormatU64(h.buckets[b]) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t b = 0; b <= bounds_.size(); ++b) buckets_[b] = 0;
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double current = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(current, current + value,
                                     std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> counts(bounds_.size() + 1);
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  return counts;
}

void Histogram::Reset() {
  for (size_t b = 0; b <= bounds_.size(); ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
      b.push_back(decade);
      b.push_back(2.0 * decade);
      b.push_back(5.0 * decade);
    }
    return b;  // 1, 2, 5, 10, …, 5e6 µs
  }();
  return bounds;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = LatencyBucketsUs();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    HistogramSnapshot h;
    h.bounds = histogram->bounds();
    h.buckets = histogram->BucketCounts();
    h.count = histogram->Count();
    h.sum = histogram->Sum();
    snapshot.histograms[name] = std::move(h);
  }
  return snapshot;
}

std::string MetricsRegistry::ExportText() const {
  const MetricsSnapshot snapshot = Snapshot();
  // One sorted stream across all kinds: merge the three sorted maps.
  std::map<std::string, std::string> lines;
  for (const auto& [name, value] : snapshot.counters) {
    lines[name] = name + " " + FormatU64(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    lines[name] = name + " " + FormatI64(value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    lines[name] = name + " count=" + FormatU64(h.count) +
                  " sum=" + FormatDouble(h.sum);
  }
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::ExportJson() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::map<std::string, std::string> entries;
  for (const auto& [name, value] : snapshot.counters) {
    entries[name] = FormatU64(value);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    entries[name] = FormatI64(value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    entries[name] = HistogramJson(h);
  }
  std::string out = "{\n";
  size_t i = 0;
  for (const auto& [name, value] : entries) {
    out += "  \"" + JsonEscape(name) + "\": " + value;
    if (++i < entries.size()) out += ',';
    out += '\n';
  }
  out += "}\n";
  return out;
}

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:] and must not start with a
// digit; our `homets.<layer>.<name>` scheme mangles cleanly by replacing
// every other character with '_'. Colons are reserved for recording rules,
// so they are not emitted here.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

}  // namespace

double HistogramPercentile(const HistogramSnapshot& hist, double quantile) {
  if (hist.count == 0 || hist.buckets.empty()) return 0.0;
  if (quantile < 0.0) quantile = 0.0;
  if (quantile > 1.0) quantile = 1.0;
  const double target = quantile * static_cast<double>(hist.count);
  uint64_t cumulative = 0;
  for (size_t b = 0; b < hist.buckets.size(); ++b) {
    const uint64_t in_bucket = hist.buckets[b];
    if (static_cast<double>(cumulative + in_bucket) < target || in_bucket == 0) {
      cumulative += in_bucket;
      continue;
    }
    if (b >= hist.bounds.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward — clamp
      // to the highest finite bound (Prometheus histogram_quantile does the
      // same).
      return hist.bounds.empty() ? 0.0 : hist.bounds.back();
    }
    const double lower = b == 0 ? 0.0 : hist.bounds[b - 1];
    const double upper = hist.bounds[b];
    const double into =
        (target - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
    return lower + (upper - lower) * into;
  }
  return hist.bounds.empty() ? 0.0 : hist.bounds.back();
}

std::string MetricsRegistry::ExportPrometheus() const {
  const MetricsSnapshot snapshot = Snapshot();
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + FormatU64(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + FormatI64(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string prom = PrometheusName(name);
    out += "# TYPE " + prom + " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b < h.bounds.size() ? FormatDouble(h.bounds[b]) : "+Inf";
      out += prom + "_bucket{le=\"" + le + "\"} " + FormatU64(cumulative) +
             "\n";
    }
    out += prom + "_sum " + FormatDouble(h.sum) + "\n";
    out += prom + "_count " + FormatU64(h.count) + "\n";
    // Percentile estimates as derived gauges: a histogram family may only
    // contain _bucket/_sum/_count samples, so these get their own names.
    // Skipped for empty histograms — an interpolated quantile of nothing is
    // noise, not data.
    if (h.count > 0) {
      static constexpr struct {
        const char* suffix;
        double quantile;
      } kPercentiles[] = {
          {"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}};
      for (const auto& p : kPercentiles) {
        out += "# TYPE " + prom + p.suffix + " gauge\n";
        out += prom + p.suffix + " " +
               FormatDouble(HistogramPercentile(h, p.quantile)) + "\n";
      }
    }
  }
  return out;
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

}  // namespace homets::obs
