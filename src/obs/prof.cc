#include "obs/prof.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/prof_hooks.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#define HOMETS_PROF_HAS_RUSAGE 1
#else
#define HOMETS_PROF_HAS_RUSAGE 0
#endif

// The global operator-new replacement (the byte tally) is compiled out under
// ASan/TSan: their runtimes interpose the allocator themselves and a second
// replacement would fight over interception order.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HOMETS_PROF_REPLACE_NEW 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HOMETS_PROF_REPLACE_NEW 0
#else
#define HOMETS_PROF_REPLACE_NEW 1
#endif
#else
#define HOMETS_PROF_REPLACE_NEW 1
#endif

#if HOMETS_PROF_REPLACE_NEW
// Minimal malloc-backed replacement set. Reaches a binary only when it links
// prof.cc (every homets_obs consumer); costs one relaxed load per allocation
// until EnableAllocTally(true). Aligned-new overloads are intentionally left
// to the library defaults — they pair internally and stay untallied.
void* operator new(std::size_t size) {
  homets::prof::NoteAlloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  homets::prof::NoteAlloc(size);
  if (void* p = std::malloc(size != 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  homets::prof::NoteAlloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  homets::prof::NoteAlloc(size);
  return std::malloc(size != 0 ? size : 1);
}

void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
void operator delete[](void* ptr, const std::nothrow_t&) noexcept {
  std::free(ptr);
}
#endif  // HOMETS_PROF_REPLACE_NEW

namespace homets::obs {
namespace {

void AppendEscaped(std::string* out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendUint(std::string* out, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  *out += buf;
}

void AppendSeconds(std::string* out, double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", seconds);
  *out += buf;
}

/// Delta-increments `name` up to `total`: the counter carries the published
/// prefix of a monotonic accumulator, so stage-boundary snapshots see the
/// per-stage delta.
void PublishCounter(std::string_view name, uint64_t total) {
  auto& registry = MetricsRegistry::Global();
  Counter* counter = registry.GetCounter(name);
  const uint64_t published = counter->Value();
  if (total > published) counter->Increment(total - published);
}

}  // namespace

ResourceUsage CaptureRusage() {
  ResourceUsage out;
#if HOMETS_PROF_HAS_RUSAGE
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (getrusage(RUSAGE_SELF, &ru) != 0) return out;
  out.user_seconds = static_cast<double>(ru.ru_utime.tv_sec) +
                     static_cast<double>(ru.ru_utime.tv_usec) / 1e6;
  out.sys_seconds = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) / 1e6;
#if defined(__APPLE__)
  out.max_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss);
#else
  // Linux reports ru_maxrss in kilobytes.
  out.max_rss_bytes = static_cast<uint64_t>(ru.ru_maxrss) * 1024;
#endif
  out.minor_faults = static_cast<uint64_t>(ru.ru_minflt);
  out.major_faults = static_cast<uint64_t>(ru.ru_majflt);
#endif
  return out;
}

void EnableProfiler(bool on) {
  prof::g_enabled.store(on, std::memory_order_relaxed);
}

bool ProfilerEnabled() { return prof::ProfilerEnabled(); }

void EnableAllocTally(bool on) {
  prof::g_alloc_tally_enabled.store(on, std::memory_order_relaxed);
}

bool AllocTallyAvailable() { return HOMETS_PROF_REPLACE_NEW != 0; }

ProfSnapshot CaptureProfSnapshot() {
  ProfSnapshot out;
  const auto& locks = prof::g_lock_prof;
  out.contended_locks = locks.contended_total.load(std::memory_order_relaxed);
  out.lock_wait_ns = locks.wait_ns_total.load(std::memory_order_relaxed);
  for (const auto& slot : locks.slots) {
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    ProfSnapshot::LockEntry entry;
    entry.name = name;
    entry.contended = slot.contended.load(std::memory_order_relaxed);
    entry.wait_ns = slot.wait_ns.load(std::memory_order_relaxed);
    out.locks.push_back(std::move(entry));
  }
  const auto& pool = prof::g_pool_prof;
  out.pool_loops = pool.loops.load(std::memory_order_relaxed);
  out.pool_blocks = pool.blocks_total.load(std::memory_order_relaxed);
  out.pool_busy_ns = pool.busy_ns_total.load(std::memory_order_relaxed);
  out.pool_idle_ns = pool.idle_ns_total.load(std::memory_order_relaxed);
  out.pool_queue_wait_ns =
      pool.queue_wait_ns_total.load(std::memory_order_relaxed);
  for (int w = 0; w < prof::kPoolProfWorkers; ++w) {
    const auto& slot = pool.workers[w];
    const uint64_t blocks = slot.blocks.load(std::memory_order_relaxed);
    if (blocks == 0) continue;
    ProfSnapshot::WorkerEntry entry;
    entry.worker = w;
    entry.blocks = blocks;
    entry.run_ns = slot.run_ns.load(std::memory_order_relaxed);
    entry.queue_wait_ns = slot.queue_wait_ns.load(std::memory_order_relaxed);
    out.workers.push_back(entry);
  }
  out.alloc_count = prof::g_alloc_count.load(std::memory_order_relaxed);
  out.alloc_bytes = prof::g_alloc_bytes.load(std::memory_order_relaxed);
  out.rusage = CaptureRusage();
  return out;
}

void ResetProfCounters() {
  auto& locks = prof::g_lock_prof;
  locks.contended_total.store(0, std::memory_order_relaxed);
  locks.wait_ns_total.store(0, std::memory_order_relaxed);
  for (auto& slot : locks.slots) {
    slot.contended.store(0, std::memory_order_relaxed);
    slot.wait_ns.store(0, std::memory_order_relaxed);
  }
  auto& pool = prof::g_pool_prof;
  pool.loops.store(0, std::memory_order_relaxed);
  pool.blocks_total.store(0, std::memory_order_relaxed);
  pool.busy_ns_total.store(0, std::memory_order_relaxed);
  pool.idle_ns_total.store(0, std::memory_order_relaxed);
  pool.queue_wait_ns_total.store(0, std::memory_order_relaxed);
  for (auto& slot : pool.workers) {
    slot.blocks.store(0, std::memory_order_relaxed);
    slot.run_ns.store(0, std::memory_order_relaxed);
    slot.queue_wait_ns.store(0, std::memory_order_relaxed);
  }
  prof::g_alloc_count.store(0, std::memory_order_relaxed);
  prof::g_alloc_bytes.store(0, std::memory_order_relaxed);
}

void PublishProfMetrics() {
  const auto& locks = prof::g_lock_prof;
  PublishCounter(kProfContendedLocks,
                 locks.contended_total.load(std::memory_order_relaxed));
  PublishCounter(kProfLockWaitUs,
                 locks.wait_ns_total.load(std::memory_order_relaxed) / 1000);
  PublishCounter(kProfAllocs,
                 prof::g_alloc_count.load(std::memory_order_relaxed));
  PublishCounter(kProfAllocBytes,
                 prof::g_alloc_bytes.load(std::memory_order_relaxed));
}

std::string ProfReportJson() {
  const ProfSnapshot snap = CaptureProfSnapshot();
  std::string out;
  out += "{\n  \"schema\": \"homets.prof_report\",\n";
  out += "  \"schema_version\": 1,\n";
  out += "  \"profiler_enabled\": ";
  out += ProfilerEnabled() ? "true" : "false";
  out += ",\n  \"rusage\": {\"user_seconds\": ";
  AppendSeconds(&out, snap.rusage.user_seconds);
  out += ", \"sys_seconds\": ";
  AppendSeconds(&out, snap.rusage.sys_seconds);
  out += ", \"max_rss_bytes\": ";
  AppendUint(&out, snap.rusage.max_rss_bytes);
  out += ", \"minor_faults\": ";
  AppendUint(&out, snap.rusage.minor_faults);
  out += ", \"major_faults\": ";
  AppendUint(&out, snap.rusage.major_faults);
  out += "},\n  \"locks\": {\"contended\": ";
  AppendUint(&out, snap.contended_locks);
  out += ", \"wait_ns\": ";
  AppendUint(&out, snap.lock_wait_ns);
  out += ", \"by_name\": [";
  for (size_t i = 0; i < snap.locks.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"name\": \"";
    AppendEscaped(&out, snap.locks[i].name);
    out += "\", \"contended\": ";
    AppendUint(&out, snap.locks[i].contended);
    out += ", \"wait_ns\": ";
    AppendUint(&out, snap.locks[i].wait_ns);
    out += "}";
  }
  out += "]},\n  \"pool\": {\"loops\": ";
  AppendUint(&out, snap.pool_loops);
  out += ", \"blocks\": ";
  AppendUint(&out, snap.pool_blocks);
  out += ", \"busy_ns\": ";
  AppendUint(&out, snap.pool_busy_ns);
  out += ", \"idle_ns\": ";
  AppendUint(&out, snap.pool_idle_ns);
  out += ", \"queue_wait_ns\": ";
  AppendUint(&out, snap.pool_queue_wait_ns);
  out += ", \"workers\": [";
  for (size_t i = 0; i < snap.workers.size(); ++i) {
    if (i != 0) out += ", ";
    out += "{\"worker\": ";
    AppendUint(&out, static_cast<uint64_t>(snap.workers[i].worker));
    out += ", \"blocks\": ";
    AppendUint(&out, snap.workers[i].blocks);
    out += ", \"run_ns\": ";
    AppendUint(&out, snap.workers[i].run_ns);
    out += ", \"queue_wait_ns\": ";
    AppendUint(&out, snap.workers[i].queue_wait_ns);
    out += "}";
  }
  out += "]},\n  \"alloc\": {\"available\": ";
  out += AllocTallyAvailable() ? "true" : "false";
  out += ", \"count\": ";
  AppendUint(&out, snap.alloc_count);
  out += ", \"bytes\": ";
  AppendUint(&out, snap.alloc_bytes);
  out += "}\n}\n";
  return out;
}

}  // namespace homets::obs
