#ifndef HOMETS_OBS_PROF_H_
#define HOMETS_OBS_PROF_H_

#include <cstdint>
#include <string>
#include <vector>

// Execution profiler: the reporting side of the common/prof_hooks.h
// accumulators.
//
// The split matters for layering and for re-entrancy: the hooks (written by
// common/mutex.h and common/thread_pool.h hot paths) are lock-free atomics
// that know nothing about the metrics registry, because registry calls lock
// the very Mutex being profiled. This module reads the accumulators from
// cold paths only — stage boundaries, heartbeats, teardown — and turns them
// into homets.prof.* metrics, manifest fields, and the --prof-out report.
//
// Enablement surface:
//   - EnableProfiler(true): gates the mutex/pool instrumentation (CLI
//     --prof, perf_pipeline --prof, perf_microbench --prof, tests).
//   - EnableAllocTally(true): additionally turns on the global operator-new
//     byte tally. The replacement operators are defined in prof.cc and reach
//     a binary only by linking it; AllocTallyAvailable() says whether they
//     did (they are compiled out under ASan/TSan, whose runtimes own the
//     allocator).
namespace homets::obs {

/// Point-in-time getrusage(RUSAGE_SELF) reading. Zeroes on platforms
/// without <sys/resource.h>.
struct ResourceUsage {
  double user_seconds = 0.0;
  double sys_seconds = 0.0;
  uint64_t max_rss_bytes = 0;  ///< peak RSS of the process so far
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
};

ResourceUsage CaptureRusage();

void EnableProfiler(bool on);
bool ProfilerEnabled();
void EnableAllocTally(bool on);
bool AllocTallyAvailable();

/// Point-in-time copy of every profiler accumulator.
struct ProfSnapshot {
  struct LockEntry {
    std::string name;
    uint64_t contended = 0;
    uint64_t wait_ns = 0;
  };
  struct WorkerEntry {
    int worker = 0;
    uint64_t blocks = 0;
    uint64_t run_ns = 0;
    uint64_t queue_wait_ns = 0;
  };

  uint64_t contended_locks = 0;
  uint64_t lock_wait_ns = 0;
  std::vector<LockEntry> locks;  ///< named mutexes with contention, if any

  uint64_t pool_loops = 0;
  uint64_t pool_blocks = 0;
  uint64_t pool_busy_ns = 0;
  uint64_t pool_idle_ns = 0;
  uint64_t pool_queue_wait_ns = 0;
  std::vector<WorkerEntry> workers;  ///< workers that ran at least one block

  uint64_t alloc_count = 0;
  uint64_t alloc_bytes = 0;

  ResourceUsage rusage;
};

ProfSnapshot CaptureProfSnapshot();

/// Zeroes every prof accumulator (named-mutex slots keep their names).
/// Test-only: production totals are monotonic by design.
void ResetProfCounters();

/// Folds the accumulator totals into the homets.prof.* registry counters by
/// delta-increment, so StageTimer's before/after counter diffs attribute
/// lock waits and allocation volume to stages. Cold-path only; single
/// logical publisher (stage boundaries + teardown) by construction.
void PublishProfMetrics();

/// The full ProfSnapshot as a JSON document (--prof-out payload).
std::string ProfReportJson();

}  // namespace homets::obs

#endif  // HOMETS_OBS_PROF_H_
