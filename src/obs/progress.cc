#include "obs/progress.h"

#include <chrono>
#include <mutex>
#include <utility>

#include "common/prof_hooks.h"
#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/prof.h"

namespace homets::obs {

namespace {

std::atomic<ProgressTracker*> g_tracker{nullptr};

}  // namespace

void ProgressTracker::Stage::Tick(uint64_t units) {
  done_.fetch_add(units, std::memory_order_relaxed);
  const int64_t now = Logger::NowUs();
  int64_t expected = -1;
  first_tick_us_.compare_exchange_strong(expected, now,
                                         std::memory_order_relaxed);
  last_tick_us_.store(now, std::memory_order_relaxed);
}

void ProgressTracker::Stage::Finish() {
  const uint64_t total = total_.load(std::memory_order_relaxed);
  if (total > 0) done_.store(total, std::memory_order_relaxed);
  last_tick_us_.store(Logger::NowUs(), std::memory_order_relaxed);
  finished_.store(true, std::memory_order_relaxed);
}

ProgressTracker::~ProgressTracker() { StopHeartbeat(); }

ProgressTracker::Stage* ProgressTracker::GetStage(std::string_view name) {
  MutexLock lock(&mu_);
  for (Stage& stage : stages_) {
    if (stage.name_ == name) return &stage;
  }
  stages_.emplace_back(std::string(name));
  return &stages_.back();
}

std::vector<ProgressTracker::StageSnapshot> ProgressTracker::Snapshot()
    const {
  MutexLock lock(&mu_);
  std::vector<StageSnapshot> out;
  out.reserve(stages_.size());
  for (const Stage& stage : stages_) {
    StageSnapshot snap;
    snap.name = stage.name_;
    snap.done = stage.done_.load(std::memory_order_relaxed);
    snap.total = stage.total_.load(std::memory_order_relaxed);
    snap.finished = stage.finished_.load(std::memory_order_relaxed);
    const int64_t first = stage.first_tick_us_.load(std::memory_order_relaxed);
    const int64_t last = stage.last_tick_us_.load(std::memory_order_relaxed);
    if (first >= 0 && last > first && snap.done > 0) {
      snap.rate_per_sec =
          static_cast<double>(snap.done) /
          (static_cast<double>(last - first) / 1e6);
      if (snap.total > snap.done && snap.rate_per_sec > 0.0) {
        snap.eta_sec =
            static_cast<double>(snap.total - snap.done) / snap.rate_per_sec;
      }
    }
    if (snap.finished) snap.eta_sec = 0.0;
    out.push_back(std::move(snap));
  }
  return out;
}

void ProgressTracker::EmitHeartbeat() {
  static Counter* heartbeats =
      MetricsRegistry::Global().GetCounter(kProgressHeartbeats);
  static Gauge* units_done =
      MetricsRegistry::Global().GetGauge(kProgressUnitsDone);
  static Gauge* units_total =
      MetricsRegistry::Global().GetGauge(kProgressUnitsTotal);
  static Gauge* active_stages =
      MetricsRegistry::Global().GetGauge(kProgressActiveStages);
  static Gauge* peak_rss =
      MetricsRegistry::Global().GetGauge(kProfPeakRssBytes);
  static Gauge* lock_contention =
      MetricsRegistry::Global().GetGauge(kProfLockContention);
  heartbeats->Increment();

  const std::vector<StageSnapshot> stages = Snapshot();
  const int64_t queue_depth =
      MetricsRegistry::Global().GetGauge(kThreadPoolQueueDepth)->Value();
  // Mirror the live resource picture next to queue depth: peak RSS from
  // getrusage and the contended-lock total from the profiler accumulator
  // (zero until --prof enables it). Gauges, so a scraper sees them between
  // stage boundaries, not only in the final manifest.
  const uint64_t rss_bytes = CaptureRusage().max_rss_bytes;
  const uint64_t contended =
      homets::prof::g_lock_prof.contended_total.load(
          std::memory_order_relaxed);
  peak_rss->Set(static_cast<int64_t>(rss_bytes));
  lock_contention->Set(static_cast<int64_t>(contended));

  uint64_t done_sum = 0;
  uint64_t total_sum = 0;
  int64_t active = 0;
  for (const StageSnapshot& s : stages) {
    done_sum += s.done;
    total_sum += s.total;
    if (!s.finished && (s.done > 0 || s.total > 0)) ++active;
  }
  units_done->Set(static_cast<int64_t>(done_sum));
  units_total->Set(static_cast<int64_t>(total_sum));
  active_stages->Set(active);

  Logger& logger = Logger::Global();
  for (const StageSnapshot& s : stages) {
    const bool started = s.done > 0 || s.total > 0;
    if (!started) continue;
    if (s.finished) {
      MutexLock lock(&mu_);
      bool already_reported = false;
      for (const std::string& seen : hb_reported_done_) {
        if (seen == s.name) {
          already_reported = true;
          break;
        }
      }
      if (already_reported) continue;
      hb_reported_done_.push_back(s.name);
    }
    std::vector<LogField> fields;
    fields.push_back(LogField::Str("stage", s.name));
    fields.push_back(LogField::Uint("done", s.done));
    fields.push_back(LogField::Uint("total", s.total));
    if (s.total > 0) {
      fields.push_back(LogField::Double(
          "pct", 100.0 * static_cast<double>(s.done) /
                     static_cast<double>(s.total)));
    }
    fields.push_back(LogField::Double("rate_per_sec", s.rate_per_sec));
    if (s.eta_sec >= 0.0) {
      fields.push_back(LogField::Double("eta_sec", s.eta_sec));
    }
    fields.push_back(LogField::Int("queue_depth", queue_depth));
    fields.push_back(LogField::Uint("rss_bytes", rss_bytes));
    fields.push_back(LogField::Uint("contended_locks", contended));
    logger.Log(LogLevel::kInfo, "progress",
               s.finished ? "stage done" : "heartbeat", std::move(fields));
  }
  logger.Drain();
}

void ProgressTracker::StartHeartbeat(double interval_sec) {
  if (!(interval_sec > 0.0)) return;
  MutexLock lock(&hb_mu_);
  if (hb_running_) return;
  hb_running_ = true;
  hb_stop_ = false;
  hb_thread_ =
      std::thread(&ProgressTracker::HeartbeatLoop, this, interval_sec);
}

void ProgressTracker::StopHeartbeat() {
  {
    MutexLock lock(&hb_mu_);
    if (!hb_running_) return;
    hb_stop_ = true;
  }
  hb_cv_.notify_all();
  if (hb_thread_.joinable()) hb_thread_.join();
  EmitHeartbeat();  // final state, incl. "stage done" lines
  MutexLock lock(&hb_mu_);
  hb_running_ = false;
}

// Same condvar-through-native-handle escape as MetricsFlusher::Loop: the
// analysis cannot model locks taken via hb_mu_.native().
void ProgressTracker::HeartbeatLoop(double interval_sec)
    HOMETS_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(hb_mu_.native());
  const auto interval = std::chrono::duration<double>(interval_sec);
  while (!hb_stop_) {
    if (hb_cv_.wait_for(lock, interval, [this] { return hb_stop_; })) {
      break;  // StopHeartbeat emits one final heartbeat after the join
    }
    lock.unlock();
    EmitHeartbeat();
    lock.lock();
  }
}

void InstallGlobalProgressTracker(ProgressTracker* tracker) {
  g_tracker.store(tracker, std::memory_order_release);
}

ProgressTracker* GlobalProgressTracker() {
  return g_tracker.load(std::memory_order_acquire);
}

ProgressTracker::Stage* ProgressStage(std::string_view name) {
  ProgressTracker* tracker = g_tracker.load(std::memory_order_acquire);
  return tracker == nullptr ? nullptr : tracker->GetStage(name);
}

}  // namespace homets::obs
