#ifndef HOMETS_OBS_LOG_H_
#define HOMETS_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

// common/mutex.h and common/status.h are header-only for everything used
// here, so homets_obs stays free of link dependencies even though obs sits
// below homets_common in the layering (same contract as obs/flusher.h).
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Structured run logging: JSON-lines records (severity, component, message,
// typed key/value fields, monotonic timestamp, current trace-span id) with a
// deterministic per-(component, severity) token-bucket rate limiter, a
// human-readable stderr sink, and an optional JSONL file sink.
//
// Hot-path contract: a call below the configured minimum level is a single
// relaxed atomic load and an immediate return, so library instrumentation is
// compiled in everywhere (the default level is kWarn — narration costs
// nothing unless a run opts in). An accepted record is rate-limited under a
// short mutex, then enqueued into a lock-free MPSC ring; the expensive work
// (formatting, stderr/file I/O) happens only in Drain(), which the CLI runs
// on the MetricsFlusher/heartbeat cadence and at exit. Warn/error records
// additionally attempt an opportunistic try-lock drain so problems surface
// promptly even in runs with no background drainer.
namespace homets::obs {

/// \brief Record severity, ordered so `level >= min_level` is the filter.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,  ///< sink threshold meaning "never"; not a record level
};

/// Canonical lowercase name ("debug", "info", "warn", "error", "off").
std::string_view LogLevelName(LogLevel level);

/// Parses a canonical level name; false (and `*out` untouched) on anything
/// else. Accepts exactly the LogLevelName spellings.
bool ParseLogLevel(std::string_view text, LogLevel* out);

/// \brief One typed key/value pair attached to a record.
struct LogField {
  enum class Kind { kInt, kUint, kDouble, kBool, kString };

  std::string key;
  Kind kind = Kind::kInt;
  int64_t int_value = 0;
  uint64_t uint_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
  std::string string_value;

  static LogField Int(std::string key, int64_t v);
  static LogField Uint(std::string key, uint64_t v);
  static LogField Double(std::string key, double v);
  static LogField Bool(std::string key, bool v);
  static LogField Str(std::string key, std::string v);
};

/// \brief One structured log record.
struct LogRecord {
  int64_t ts_us = 0;  ///< µs on the process-wide monotonic log clock
  LogLevel level = LogLevel::kInfo;
  std::string component;  ///< dotted source module, e.g. "io.csv"
  std::string message;
  uint64_t span_id = 0;  ///< innermost open trace span (0 = none)
  uint32_t tid = 0;      ///< CurrentThreadTraceId — joins with the trace
  std::vector<LogField> fields;
};

/// One JSONL line (no trailing newline):
/// {"ts_us":N,"level":"warn","component":"io.csv","msg":"...","span":N,
///  "tid":N,<fields...>}. Field keys land as top-level members after the
/// fixed header keys; strings are escaped, doubles use shortest round-trip.
std::string FormatJsonLine(const LogRecord& record);

/// Human-readable single line for the stderr sink (no trailing newline):
/// `W 12.345678 io.csv: message key=value ... [span N]`.
std::string FormatHumanLine(const LogRecord& record);

/// \brief Deterministic token bucket fed explicit timestamps.
///
/// Starts full; Allow(now_us) refills `refill_per_sec` tokens per elapsed
/// second (fractional accumulation, capped at `capacity`) and spends one
/// token when available. Pure state machine over the timestamps it is shown
/// — identical call sequences give identical verdicts, which is what the
/// rate-limiter determinism tests pin down.
class TokenBucket {
 public:
  TokenBucket(double capacity, double refill_per_sec)
      : capacity_(capacity), refill_per_sec_(refill_per_sec),
        tokens_(capacity) {}

  bool Allow(int64_t now_us);

  double tokens() const { return tokens_; }

 private:
  double capacity_;
  double refill_per_sec_;
  double tokens_;
  int64_t last_us_ = 0;
  bool primed_ = false;  ///< first Allow anchors last_us_ without refilling
};

/// \brief Logger configuration; Configure() swaps the whole set atomically
/// with respect to Drain().
struct LoggerOptions {
  /// Records below this are dropped at the call site (one relaxed load).
  LogLevel min_level = LogLevel::kWarn;
  /// Human-readable sink threshold; kOff silences stderr entirely.
  LogLevel stderr_level = LogLevel::kWarn;
  /// JSONL sink path; empty disables the file sink. Opened for append by
  /// Configure (truncate controls first-open semantics).
  std::string file_path;
  /// Truncate file_path when (re)configuring instead of appending.
  bool truncate = true;
  /// Token-bucket burst size per (component, severity) key.
  double rate_capacity = 20.0;
  /// Steady-state records/sec per key once the burst is spent.
  double rate_per_sec = 5.0;
};

/// \brief Thread-safe structured logger (see file comment for the path a
/// record takes). One process-wide instance via Global(); tests construct
/// their own.
class Logger {
 public:
  /// `queue_capacity` is the ring size (rounded up to a power of two),
  /// fixed for the logger's lifetime — resizing live would race with
  /// producers holding claimed positions. Overflow drops (counted).
  explicit Logger(size_t queue_capacity = 4096);
  ~Logger();
  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

  static Logger& Global();

  /// Applies `options`: drains pending records under the old sinks, then
  /// swaps levels/sinks/rate parameters. IoError when file_path cannot be
  /// opened (sinks are left as before on failure).
  Status Configure(LoggerOptions options) HOMETS_EXCLUDES(drain_mu_);

  /// Stamps the monotonic clock, current span id and thread id, applies the
  /// level filter and rate limiter, and enqueues. Cheap no-op below
  /// min_level.
  void Log(LogLevel level, std::string_view component,
           std::string_view message, std::vector<LogField> fields = {});

  /// Deterministic seam: like Log but with a caller-supplied timestamp
  /// driving both the record and the rate limiter. Tests use this to pin
  /// down suppression sequences without real clocks.
  void LogAt(int64_t ts_us, LogLevel level, std::string_view component,
             std::string_view message, std::vector<LogField> fields = {});

  /// Dequeues and emits everything currently published; returns the number
  /// of records emitted. Serialized internally; safe from any thread.
  size_t Drain() HOMETS_EXCLUDES(drain_mu_);

  /// Drain + close the file sink (stderr sink stays). Idempotent.
  void Close() HOMETS_EXCLUDES(drain_mu_);

  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// True when `level` would pass the call-site filter — for callers that
  /// want to skip building expensive field values.
  bool Enabled(LogLevel level) const {
    return static_cast<int>(level) >=
           min_level_.load(std::memory_order_relaxed);
  }

  // Lifetime tallies (also exported as homets.log.* metrics when the
  // global metrics registry is in use).
  uint64_t records_logged() const {
    return records_.load(std::memory_order_relaxed);
  }
  uint64_t records_suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }
  uint64_t records_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// µs on the logger's process-wide monotonic clock (0 at first use).
  static int64_t NowUs();

 private:
  struct RateKey {
    std::string component;
    int level;
    bool operator==(const RateKey& o) const {
      return level == o.level && component == o.component;
    }
  };
  struct RateKeyHash {
    size_t operator()(const RateKey& k) const {
      return std::hash<std::string>()(k.component) * 31 +
             static_cast<size_t>(k.level);
    }
  };

  void Enqueue(LogRecord* record, LogLevel level);
  void Emit(const LogRecord& record) HOMETS_REQUIRES(drain_mu_);
  size_t DrainLocked() HOMETS_REQUIRES(drain_mu_);

  std::atomic<int> min_level_;
  std::atomic<int> stderr_level_;

  // Rate limiter: keyed buckets under a short mutex. Only reached by
  // records that already passed the level filter, so contention tracks the
  // (rate-limited) accepted volume, not call volume.
  Mutex rate_mu_;
  std::unordered_map<RateKey, TokenBucket, RateKeyHash> buckets_
      HOMETS_GUARDED_BY(rate_mu_);
  double rate_capacity_ HOMETS_GUARDED_BY(rate_mu_);
  double rate_per_sec_ HOMETS_GUARDED_BY(rate_mu_);

  // Lock-free MPSC ring: producers claim a position with fetch_add and
  // publish with a CAS; an occupied slot (drainer lapped) drops the record.
  std::vector<std::atomic<LogRecord*>> slots_;
  size_t slot_mask_;
  std::atomic<uint64_t> head_{0};

  Mutex drain_mu_;  ///< serializes Drain/Configure/Close and sink writes
  uint64_t tail_ HOMETS_GUARDED_BY(drain_mu_) = 0;
  std::FILE* file_ HOMETS_GUARDED_BY(drain_mu_) = nullptr;

  std::atomic<uint64_t> records_{0};
  std::atomic<uint64_t> suppressed_{0};
  std::atomic<uint64_t> dropped_{0};
};

// Convenience wrappers over Logger::Global().
inline void LogDebug(std::string_view component, std::string_view message,
                     std::vector<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kDebug, component, message,
                       std::move(fields));
}
inline void LogInfo(std::string_view component, std::string_view message,
                    std::vector<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kInfo, component, message,
                       std::move(fields));
}
inline void LogWarn(std::string_view component, std::string_view message,
                    std::vector<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kWarn, component, message,
                       std::move(fields));
}
inline void LogError(std::string_view component, std::string_view message,
                     std::vector<LogField> fields = {}) {
  Logger::Global().Log(LogLevel::kError, component, message,
                       std::move(fields));
}

}  // namespace homets::obs

#endif  // HOMETS_OBS_LOG_H_
