#include "obs/log.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <utility>

#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace homets::obs {

namespace {

// JSON string escaping (same rules as obs/trace.cc — kept local so the two
// files stay independently readable).
void AppendJsonEscaped(std::string_view s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void AppendQuoted(std::string_view s, std::string* out) {
  *out += '"';
  AppendJsonEscaped(s, out);
  *out += '"';
}

// Shortest-round-trip double for JSON; bare NaN/Inf are not valid JSON, so
// they are emitted as null (log fields carry measurements, not payloads
// worth inventing an encoding for).
void AppendDouble(double v, std::string* out) {
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    *out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double round_trip = 0.0;
  std::sscanf(buf, "%lf", &round_trip);
  if (round_trip == v) {
    char shorter[40];
    std::snprintf(shorter, sizeof(shorter), "%g", v);
    std::sscanf(shorter, "%lf", &round_trip);
    if (round_trip == v) {
      *out += shorter;
      return;
    }
  }
  *out += buf;
}

void AppendFieldValue(const LogField& f, std::string* out) {
  char buf[32];
  switch (f.kind) {
    case LogField::Kind::kInt:
      std::snprintf(buf, sizeof(buf), "%" PRId64, f.int_value);
      *out += buf;
      break;
    case LogField::Kind::kUint:
      std::snprintf(buf, sizeof(buf), "%" PRIu64, f.uint_value);
      *out += buf;
      break;
    case LogField::Kind::kDouble:
      AppendDouble(f.double_value, out);
      break;
    case LogField::Kind::kBool:
      *out += f.bool_value ? "true" : "false";
      break;
    case LogField::Kind::kString:
      AppendQuoted(f.string_value, out);
      break;
  }
}

char LevelLetter(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return 'D';
    case LogLevel::kInfo:
      return 'I';
    case LogLevel::kWarn:
      return 'W';
    case LogLevel::kError:
      return 'E';
    case LogLevel::kOff:
      break;
  }
  return '?';
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

std::string_view LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      break;
  }
  return "off";
}

bool ParseLogLevel(std::string_view text, LogLevel* out) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    if (text == LogLevelName(level)) {
      *out = level;
      return true;
    }
  }
  return false;
}

LogField LogField::Int(std::string key, int64_t v) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kInt;
  f.int_value = v;
  return f;
}

LogField LogField::Uint(std::string key, uint64_t v) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kUint;
  f.uint_value = v;
  return f;
}

LogField LogField::Double(std::string key, double v) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kDouble;
  f.double_value = v;
  return f;
}

LogField LogField::Bool(std::string key, bool v) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kBool;
  f.bool_value = v;
  return f;
}

LogField LogField::Str(std::string key, std::string v) {
  LogField f;
  f.key = std::move(key);
  f.kind = Kind::kString;
  f.string_value = std::move(v);
  return f;
}

std::string FormatJsonLine(const LogRecord& record) {
  std::string out;
  out.reserve(96 + record.message.size());
  char buf[48];
  std::snprintf(buf, sizeof(buf), "{\"ts_us\":%lld,\"level\":",
                static_cast<long long>(record.ts_us));
  out += buf;
  AppendQuoted(LogLevelName(record.level), &out);
  out += ",\"component\":";
  AppendQuoted(record.component, &out);
  out += ",\"msg\":";
  AppendQuoted(record.message, &out);
  std::snprintf(buf, sizeof(buf), ",\"span\":%llu,\"tid\":%u",
                static_cast<unsigned long long>(record.span_id), record.tid);
  out += buf;
  for (const LogField& f : record.fields) {
    out += ',';
    AppendQuoted(f.key, &out);
    out += ':';
    AppendFieldValue(f, &out);
  }
  out += '}';
  return out;
}

std::string FormatHumanLine(const LogRecord& record) {
  std::string out;
  out.reserve(64 + record.message.size());
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%c %.6f ", LevelLetter(record.level),
                static_cast<double>(record.ts_us) / 1e6);
  out += buf;
  out += record.component;
  out += ": ";
  out += record.message;
  for (const LogField& f : record.fields) {
    out += ' ';
    out += f.key;
    out += '=';
    AppendFieldValue(f, &out);
  }
  if (record.span_id != 0) {
    std::snprintf(buf, sizeof(buf), " [span %llu]",
                  static_cast<unsigned long long>(record.span_id));
    out += buf;
  }
  return out;
}

bool TokenBucket::Allow(int64_t now_us) {
  if (!primed_) {
    primed_ = true;
    last_us_ = now_us;
  } else if (now_us > last_us_) {
    tokens_ = std::min(
        capacity_, tokens_ + static_cast<double>(now_us - last_us_) / 1e6 *
                                 refill_per_sec_);
    last_us_ = now_us;
  }
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  return false;
}

Logger::Logger(size_t queue_capacity)
    : min_level_(static_cast<int>(LogLevel::kWarn)),
      stderr_level_(static_cast<int>(LogLevel::kWarn)),
      rate_capacity_(20.0),
      rate_per_sec_(5.0),
      slots_(RoundUpPow2(std::max<size_t>(queue_capacity, 2))),
      slot_mask_(slots_.size() - 1) {}

Logger::~Logger() { Close(); }

Logger& Logger::Global() {
  static Logger* logger = new Logger();  // leaked: usable during exit
  return *logger;
}

int64_t Logger::NowUs() {
  static const std::chrono::steady_clock::time_point origin =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - origin)
      .count();
}

Status Logger::Configure(LoggerOptions options) {
  MutexLock lock(&drain_mu_);
  DrainLocked();  // flush what the old sinks were promised
  std::FILE* file = nullptr;
  if (!options.file_path.empty()) {
    file = std::fopen(options.file_path.c_str(),
                      options.truncate ? "w" : "a");
    if (file == nullptr) {
      return Status::IoError("cannot open log file: " + options.file_path);
    }
  }
  if (file_ != nullptr) std::fclose(file_);
  file_ = file;
  min_level_.store(static_cast<int>(options.min_level),
                   std::memory_order_relaxed);
  stderr_level_.store(static_cast<int>(options.stderr_level),
                      std::memory_order_relaxed);
  {
    MutexLock rate_lock(&rate_mu_);
    rate_capacity_ = options.rate_capacity;
    rate_per_sec_ = options.rate_per_sec;
    buckets_.clear();
  }
  return Status::OK();
}

void Logger::Log(LogLevel level, std::string_view component,
                 std::string_view message, std::vector<LogField> fields) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  LogAt(NowUs(), level, component, message, std::move(fields));
}

void Logger::LogAt(int64_t ts_us, LogLevel level, std::string_view component,
                   std::string_view message, std::vector<LogField> fields) {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }
  {
    MutexLock lock(&rate_mu_);
    auto [it, inserted] = buckets_.try_emplace(
        RateKey{std::string(component), static_cast<int>(level)},
        rate_capacity_, rate_per_sec_);
    if (!it->second.Allow(ts_us)) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      static Counter* suppressed_metric =
          MetricsRegistry::Global().GetCounter(kLogSuppressed);
      suppressed_metric->Increment();
      return;
    }
  }
  auto* record = new LogRecord;
  record->ts_us = ts_us;
  record->level = level;
  record->component = std::string(component);
  record->message = std::string(message);
  record->span_id = CurrentSpanId();
  record->tid = CurrentThreadTraceId();
  record->fields = std::move(fields);
  records_.fetch_add(1, std::memory_order_relaxed);
  static Counter* records_metric =
      MetricsRegistry::Global().GetCounter(kLogRecords);
  records_metric->Increment();
  Enqueue(record, level);
}

void Logger::Enqueue(LogRecord* record, LogLevel level) {
  const uint64_t pos = head_.fetch_add(1, std::memory_order_relaxed);
  std::atomic<LogRecord*>& slot = slots_[pos & slot_mask_];
  LogRecord* expected = nullptr;
  if (!slot.compare_exchange_strong(expected, record,
                                    std::memory_order_release,
                                    std::memory_order_relaxed)) {
    // Drainer lapped: the slot still holds an older record. Drop the new
    // one (counted) rather than block the producer.
    delete record;
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter* dropped_metric =
        MetricsRegistry::Global().GetCounter(kLogDropped);
    dropped_metric->Increment();
    return;
  }
  // Problems should surface even in runs with no background drainer; a
  // failed TryLock means someone else is already draining.
  if (level >= LogLevel::kWarn && drain_mu_.TryLock()) {
    DrainLocked();
    drain_mu_.Unlock();
  }
}

size_t Logger::Drain() {
  MutexLock lock(&drain_mu_);
  return DrainLocked();
}

size_t Logger::DrainLocked() {
  size_t emitted = 0;
  const uint64_t head = head_.load(std::memory_order_acquire);
  while (tail_ != head) {
    LogRecord* record =
        slots_[tail_ & slot_mask_].exchange(nullptr, std::memory_order_acq_rel);
    ++tail_;
    if (record == nullptr) continue;  // claimed but not yet published
    Emit(*record);
    delete record;
    ++emitted;
  }
  if (file_ != nullptr && emitted > 0) std::fflush(file_);
  return emitted;
}

void Logger::Emit(const LogRecord& record) {
  if (static_cast<int>(record.level) >=
      stderr_level_.load(std::memory_order_relaxed)) {
    const std::string line = FormatHumanLine(record);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (file_ != nullptr) {
    const std::string line = FormatJsonLine(record);
    std::fprintf(file_, "%s\n", line.c_str());
  }
}

void Logger::Close() {
  MutexLock lock(&drain_mu_);
  DrainLocked();
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace homets::obs
