#ifndef HOMETS_OBS_METRIC_NAMES_H_
#define HOMETS_OBS_METRIC_NAMES_H_

#include <string_view>

// Canonical registry of every metric name the library exports.
//
// Naming scheme (enforced by tools/check_metrics_names.sh, registered as the
// `check_metrics_names` ctest): `homets.<layer>.<name>` where `<layer>` is
// the source module (threadpool, engine, correlation, stationarity,
// dominance, motif, background, io, cli) and both segments are
// lower_snake_case. Instrumentation sites must use these constants — raw
// "homets.*" literals at registration sites fail the lint — so the full
// metric surface is readable in one file.
namespace homets::obs {

// common/thread_pool.h — ParallelFor dispatch.
inline constexpr std::string_view kThreadPoolLoops =
    "homets.threadpool.parallel_loops";
inline constexpr std::string_view kThreadPoolTasks =
    "homets.threadpool.tasks";
inline constexpr std::string_view kThreadPoolQueueDepth =
    "homets.threadpool.queue_depth";
inline constexpr std::string_view kThreadPoolTaskLatencyUs =
    "homets.threadpool.task_latency_us";

// core/similarity_engine — parallel pairwise Definition 1.
inline constexpr std::string_view kEnginePairsComputed =
    "homets.engine.pairs_computed";
inline constexpr std::string_view kEngineWorkers = "homets.engine.workers";
inline constexpr std::string_view kEngineWorkerBusyUs =
    "homets.engine.worker_busy_us";

// correlation/prepared_series — windows that cannot take the profiled fast
// path (NaNs or < 3 values) and fall back to pairwise-complete gathering.
inline constexpr std::string_view kCorrelationDegenerateFallbacks =
    "homets.correlation.degenerate_fallbacks";

// core/stationarity — Definition 2 funnel.
inline constexpr std::string_view kStationarityWindowsTested =
    "homets.stationarity.windows_tested";
inline constexpr std::string_view kStationarityWindowPairs =
    "homets.stationarity.window_pairs";
inline constexpr std::string_view kStationarityKsRejections =
    "homets.stationarity.ks_rejections";
inline constexpr std::string_view kStationarityPairsBelowPhi =
    "homets.stationarity.pairs_below_phi";

// core/dominance — Definition 4 funnel.
inline constexpr std::string_view kDominanceDevicesTested =
    "homets.dominance.devices_tested";
inline constexpr std::string_view kDominanceDevicesAbovePhi =
    "homets.dominance.devices_above_phi";

// core/motif — Definition 5 funnel.
inline constexpr std::string_view kMotifWindowsMined =
    "homets.motif.windows_mined";
inline constexpr std::string_view kMotifMotifsMerged =
    "homets.motif.motifs_merged";
inline constexpr std::string_view kMotifMotifsReported =
    "homets.motif.motifs_reported";
inline constexpr std::string_view kMotifCacheHits = "homets.motif.cache_hits";
inline constexpr std::string_view kMotifCacheMisses =
    "homets.motif.cache_misses";

// core/background — τ estimation and thresholding.
inline constexpr std::string_view kBackgroundThresholdsEstimated =
    "homets.background.thresholds_estimated";
inline constexpr std::string_view kBackgroundTauCapped =
    "homets.background.tau_capped";
inline constexpr std::string_view kBackgroundValuesZeroed =
    "homets.background.values_zeroed";

// core/streaming — window assembly and online motif maintenance.
inline constexpr std::string_view kStreamingObservationsIngested =
    "homets.streaming.observations_ingested";
inline constexpr std::string_view kStreamingWindowsAssembled =
    "homets.streaming.windows_assembled";
inline constexpr std::string_view kStreamingWindowsEvicted =
    "homets.streaming.windows_evicted";
inline constexpr std::string_view kStreamingMotifsMerged =
    "homets.streaming.motifs_merged";

// obs/flusher — periodic Prometheus exposition metering itself.
inline constexpr std::string_view kObsFlushes = "homets.obs.flushes";
inline constexpr std::string_view kObsFlushErrors =
    "homets.obs.flush_errors";
inline constexpr std::string_view kObsFlushWriteUs =
    "homets.obs.flush_write_us";

// io/csv — trace ingestion.
inline constexpr std::string_view kIoRowsParsed = "homets.io.rows_parsed";
inline constexpr std::string_view kIoRowsSkipped = "homets.io.rows_skipped";
inline constexpr std::string_view kIoFilesRead = "homets.io.files_read";

// io/csv resilient ingestion — ReadOptions error-policy funnel (rows
// quarantined by class, minute-gap repairs, transient-error retries, and
// reads abandoned at the per-file error cap).
inline constexpr std::string_view kIngestRowsMalformed =
    "homets.ingest.rows_malformed";
inline constexpr std::string_view kIngestRowsDuplicate =
    "homets.ingest.rows_duplicate";
inline constexpr std::string_view kIngestRowsOutOfOrder =
    "homets.ingest.rows_out_of_order";
inline constexpr std::string_view kIngestGapsRepaired =
    "homets.ingest.gaps_repaired";
inline constexpr std::string_view kIngestRetries = "homets.ingest.retries";
inline constexpr std::string_view kIngestFilesQuarantined =
    "homets.ingest.files_quarantined";

// storage/homets_format — columnar chunk IO. raw_bytes is the uncompressed
// size of what chunks_written encoded (8 bytes/bin), so
// raw_bytes / bytes_written is the compression ratio; chunks_skipped counts
// chunks a read left untouched (the mmap pages never faulted in).
inline constexpr std::string_view kStorageChunksWritten =
    "homets.storage.chunks_written";
inline constexpr std::string_view kStorageChunksRead =
    "homets.storage.chunks_read";
inline constexpr std::string_view kStorageChunksSkipped =
    "homets.storage.chunks_skipped";
inline constexpr std::string_view kStorageBytesWritten =
    "homets.storage.bytes_written";
inline constexpr std::string_view kStorageBytesRead =
    "homets.storage.bytes_read";
inline constexpr std::string_view kStorageRawBytes =
    "homets.storage.raw_bytes";
inline constexpr std::string_view kStorageFilesWritten =
    "homets.storage.files_written";
inline constexpr std::string_view kStorageFilesOpened =
    "homets.storage.files_opened";
inline constexpr std::string_view kStorageCrcFailures =
    "homets.storage.crc_failures";

// obs/log — structured logger funnel: records accepted into the ring,
// records the per-(component, severity) token bucket suppressed, and
// records dropped because the ring was full (drainer lapped).
inline constexpr std::string_view kLogRecords = "homets.log.records";
inline constexpr std::string_view kLogSuppressed = "homets.log.suppressed";
inline constexpr std::string_view kLogDropped = "homets.log.dropped";

// obs/progress — heartbeat/progress substrate. units_done/units_total are
// gauges summed across live stages (a fleet orchestrator scrapes them for
// per-shard progress); heartbeats counts emitted heartbeat lines.
inline constexpr std::string_view kProgressHeartbeats =
    "homets.progress.heartbeats";
inline constexpr std::string_view kProgressUnitsDone =
    "homets.progress.units_done";
inline constexpr std::string_view kProgressUnitsTotal =
    "homets.progress.units_total";
inline constexpr std::string_view kProgressActiveStages =
    "homets.progress.active_stages";

// common/thread_pool.h + obs/prof — execution-profiler surface. All of these
// advance only while the profiler is enabled (--prof), so they read zero in
// ordinary runs. queue_wait_us is a histogram of block time-in-queue
// (dispatch start -> block start); pool_busy_us/pool_idle_us split worker
// wall-time so a stage's parallel efficiency is busy/(busy+idle); the
// contended-lock and alloc counters are published from the prof_hooks
// accumulators at stage boundaries.
inline constexpr std::string_view kThreadPoolQueueWaitUs =
    "homets.threadpool.queue_wait_us";
inline constexpr std::string_view kProfPoolBusyUs =
    "homets.prof.pool_busy_us";
inline constexpr std::string_view kProfPoolIdleUs =
    "homets.prof.pool_idle_us";
inline constexpr std::string_view kProfQueueWaitUs =
    "homets.prof.queue_wait_us";
inline constexpr std::string_view kProfContendedLocks =
    "homets.prof.contended_locks";
inline constexpr std::string_view kProfLockWaitUs =
    "homets.prof.lock_wait_us";
inline constexpr std::string_view kProfAllocs = "homets.prof.allocs";
inline constexpr std::string_view kProfAllocBytes =
    "homets.prof.alloc_bytes";
// obs/progress heartbeat mirrors (gauges, live even between stage
// boundaries): current peak RSS and the contended-lock total.
inline constexpr std::string_view kProfPeakRssBytes =
    "homets.prof.peak_rss_bytes";
inline constexpr std::string_view kProfLockContention =
    "homets.prof.lock_contention";

// fleet — shard orchestration funnel: plan → run/resume → checkpoint →
// quarantine. shards_resumed counts shards satisfied from valid checkpoints;
// checkpoints_discarded counts files that existed but failed validation
// (torn CRC, stale fingerprint, old schema); locks_reclaimed counts stale
// LOCK sentinels taken over with a warning.
inline constexpr std::string_view kFleetShardsPlanned =
    "homets.fleet.shards_planned";
inline constexpr std::string_view kFleetShardsRun =
    "homets.fleet.shards_run";
inline constexpr std::string_view kFleetShardsResumed =
    "homets.fleet.shards_resumed";
inline constexpr std::string_view kFleetShardsQuarantined =
    "homets.fleet.shards_quarantined";
inline constexpr std::string_view kFleetShardRetries =
    "homets.fleet.shard_retries";
inline constexpr std::string_view kFleetCheckpointsWritten =
    "homets.fleet.checkpoints_written";
inline constexpr std::string_view kFleetCheckpointsLoaded =
    "homets.fleet.checkpoints_loaded";
inline constexpr std::string_view kFleetCheckpointsDiscarded =
    "homets.fleet.checkpoints_discarded";
inline constexpr std::string_view kFleetGatewaysAnalyzed =
    "homets.fleet.gateways_analyzed";
inline constexpr std::string_view kFleetLocksReclaimed =
    "homets.fleet.locks_reclaimed";

// common/failpoint — fault-injection registry (counts only while armed, so
// both stay zero in production runs).
inline constexpr std::string_view kFailpointEvaluations =
    "homets.failpoint.evaluations";
inline constexpr std::string_view kFailpointTriggers =
    "homets.failpoint.triggers";

}  // namespace homets::obs

#endif  // HOMETS_OBS_METRIC_NAMES_H_
