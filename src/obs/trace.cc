#include "obs/trace.h"

#include <cstdio>

namespace homets::obs {

namespace {

std::atomic<TraceSession*> g_session{nullptr};

// Per-thread open-span count: children record parent_depth + 1. Plain
// thread_local — only the owning thread touches it.
thread_local uint32_t tls_open_spans = 0;

// Per-thread stack of open span ids; the top is what CurrentSpanId()
// reports, so a log line emitted inside a span carries that span's id. A
// fixed-depth array instead of a vector keeps span construction
// allocation-free; spans nested deeper than the array simply stop updating
// the innermost id (depth 16 is far beyond any real nesting in this tree).
constexpr uint32_t kMaxSpanStack = 16;
thread_local uint64_t tls_span_stack[kMaxSpanStack] = {};

// Process-unique span ids, 1-based so 0 means "no span open".
std::atomic<uint64_t> g_next_span_id{0};

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void TraceSession::Add(TraceEvent event) {
  MutexLock lock(&mu_);
  events_.push_back(std::move(event));
}

size_t TraceSession::size() const {
  MutexLock lock(&mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceSession::Events() const {
  MutexLock lock(&mu_);
  return events_;
}

std::string TraceSession::ToChromeJson() const {
  const std::vector<TraceEvent> events = Events();
  std::string out = "{\"traceEvents\": [\n";
  char buf[160];
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  {\"name\": \"" + JsonEscape(e.name) + "\", \"cat\": \"" +
           JsonEscape(e.category) + "\", ";
    std::snprintf(buf, sizeof(buf),
                  "\"ph\": \"X\", \"ts\": %lld, \"dur\": %lld, \"pid\": 1, "
                  "\"tid\": %u, \"args\": {\"depth\": %u, \"span_id\": %llu}}",
                  static_cast<long long>(e.ts_us),
                  static_cast<long long>(e.dur_us), e.tid, e.depth,
                  static_cast<unsigned long long>(e.span_id));
    out += buf;
    if (i + 1 < events.size()) out += ',';
    out += '\n';
  }
  out += "]}\n";
  return out;
}

void InstallGlobalTraceSession(TraceSession* session) {
  g_session.store(session, std::memory_order_release);
}

TraceSession* GlobalTraceSession() {
  return g_session.load(std::memory_order_acquire);
}

uint32_t CurrentThreadTraceId() {
  static std::atomic<uint32_t> next_id{0};
  thread_local const uint32_t id =
      next_id.fetch_add(1, std::memory_order_relaxed);
  return id;
}

uint64_t CurrentSpanId() {
  const uint32_t depth = std::min(tls_open_spans, kMaxSpanStack);
  return depth == 0 ? 0 : tls_span_stack[depth - 1];
}

ScopedSpan::ScopedSpan(std::string name, SpanSink* sink, std::string category)
    : name_(std::move(name)),
      category_(std::move(category)),
      sink_(sink),
      session_(GlobalTraceSession()) {
  if (session_ == nullptr && sink_ == nullptr) return;
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
  depth_ = tls_open_spans++;
  if (depth_ < kMaxSpanStack) tls_span_stack[depth_] = id_;
  start_ = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan() {
  if (session_ == nullptr && sink_ == nullptr) return;
  const auto end = std::chrono::steady_clock::now();
  --tls_open_spans;
  if (tls_open_spans < kMaxSpanStack) tls_span_stack[tls_open_spans] = 0;
  if (sink_ != nullptr) {
    sink_->OnSpan(name_, static_cast<uint64_t>(
                             std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 end - start_)
                                 .count()));
  }
  if (session_ != nullptr) {
    TraceEvent event;
    event.name = std::move(name_);
    event.category = std::move(category_);
    event.ts_us = session_->SinceStartUs(start_);
    event.dur_us = session_->SinceStartUs(end) - event.ts_us;
    event.tid = CurrentThreadTraceId();
    event.depth = depth_;
    event.span_id = id_;
    // TraceSession::Add returns void; the name collides with the
    // Result-returning TimeSeries::Add in the linter's tree-wide match.
    session_->Add(std::move(event));  // homets-lint: allow(discarded-status)
  }
}

}  // namespace homets::obs
