#ifndef HOMETS_OBS_METRICS_H_
#define HOMETS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

// Process-wide metrics: named counters, gauges and fixed-bucket histograms.
//
// The hot path (Increment/Set/Observe) is lock-free — plain relaxed atomics —
// so instrumentation is safe from any thread, including TSan-checked worker
// pools, and cheap enough for per-block accounting inside ParallelFor.
// Registration (GetCounter & co.) takes a mutex but returns a pointer that
// stays valid and hot for the registry's lifetime; call sites cache it in a
// function-local static. Reading (Snapshot/Export*) locks only the name maps,
// never the increments: values are sampled with relaxed loads, so a snapshot
// is a consistent-enough view for telemetry, not a linearization point.
//
// This layer sits below homets_common on purpose (common/thread_pool.h is
// instrumented with it), so it links nothing but the standard library; the
// only common/ headers it includes (mutex.h, thread_annotations.h) are
// header-only and standard-library-only themselves.
namespace homets::obs {

/// \brief Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, worker count).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// \brief Fixed-bucket histogram with Prometheus-style `le` (inclusive upper
/// bound) buckets plus an overflow bucket, a total count, and a value sum.
///
/// Bucket bounds are fixed at registration; Observe is a binary search plus
/// three relaxed atomic adds. The sum accumulates with a CAS loop, so its
/// exact value is scheduling-dependent under concurrency — fine for
/// telemetry, not for anything bit-exact.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket counts, bounds().size() + 1 entries (last is overflow).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  std::vector<double> bounds_;  ///< ascending inclusive upper bounds
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Exponential bucket bounds: {start, start·factor, …}, `count` entries.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       size_t count);

/// Default microsecond latency bounds, 1 µs … 5 s in a 1-2-5 series.
const std::vector<double>& LatencyBucketsUs();

/// \brief Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> buckets;  ///< bounds.size() + 1, last is overflow
  uint64_t count = 0;
  double sum = 0.0;
};

/// Percentile estimate from cumulative bucket counts, Prometheus
/// histogram_quantile style: linear interpolation inside the winning bucket
/// (lower edge 0 for the first), observations in the overflow bucket clamp
/// to the highest finite bound. `quantile` is in [0, 1]; returns 0 for an
/// empty histogram.
double HistogramPercentile(const HistogramSnapshot& hist, double quantile);

/// \brief Point-in-time copy of every registered metric.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief Thread-safe name → metric registry.
///
/// `Global()` is the process-wide instance every instrumentation site uses;
/// independent instances exist only so tests can run in isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  /// Returns the counter registered under `name`, creating it on first use.
  /// The pointer is stable for the registry's lifetime.
  Counter* GetCounter(std::string_view name) HOMETS_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) HOMETS_EXCLUDES(mu_);
  /// First registration fixes the bucket bounds; later calls with the same
  /// name return the existing histogram regardless of `bounds`. Empty bounds
  /// mean LatencyBucketsUs().
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds = {})
      HOMETS_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const HOMETS_EXCLUDES(mu_);

  /// One `name value` (or `name count=… sum=…` for histograms) line per
  /// metric, sorted by name.
  std::string ExportText() const;
  /// Prometheus text exposition format (version 0.0.4): metric names are
  /// mangled to [a-zA-Z0-9_] (dots become underscores), each metric gets a
  /// `# TYPE` line, and histograms expand to cumulative `_bucket{le="…"}`
  /// series plus `_sum` and `_count`, ending with the mandatory
  /// `le="+Inf"` bucket. Non-empty histograms additionally export
  /// `<name>_p50`/`_p95`/`_p99` gauges (HistogramPercentile estimates —
  /// derived series, since a native histogram family may only contain
  /// _bucket/_sum/_count samples). Suitable for a node-exporter-style
  /// textfile collector or an HTTP /metrics endpoint.
  std::string ExportPrometheus() const;
  /// Flat JSON object: counters and gauges as numbers, histograms as
  /// {"count", "sum", "buckets": [{"le", "count"}, …]} objects.
  std::string ExportJson() const;

  /// Zeroes every metric's value. Registered pointers stay valid.
  void Reset() HOMETS_EXCLUDES(mu_);

 private:
  /// Guards the name maps only — never the metric values, which are atomics
  /// reached through pointers handed out under the lock.
  mutable Mutex mu_{"obs.metrics_registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HOMETS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HOMETS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HOMETS_GUARDED_BY(mu_);
};

}  // namespace homets::obs

#endif  // HOMETS_OBS_METRICS_H_
