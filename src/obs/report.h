#ifndef HOMETS_OBS_REPORT_H_
#define HOMETS_OBS_REPORT_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/prof.h"

// Run manifests: a schema-versioned machine-readable record of what a run
// was (config, inputs, failpoint schedule, read policy), what it did
// (per-stage wall times + metric deltas, ingest counters, thread counts) and
// how it ended (success / failure / cancelled, failing stage, Status) —
// written as RUN_MANIFEST.json on success AND on failure, so a fleet
// orchestrator can audit every shard afterwards. Stage entries deliberately
// mirror the BENCH_pipeline.json shape ({"stage", "seconds", "units",
// "metrics": {counter deltas}}) so the same tooling reads both.
//
// Layering: homets_obs links only the standard library, so the builder takes
// plain counters (the CLI copies them out of io::IngestReport) and maps
// StatusCode to its canonical name locally.
namespace homets::obs {

/// \brief Ingest counters copied from io::IngestReport (plain numbers keep
/// homets_obs below homets_io in the link graph).
struct ManifestIngestCounters {
  uint64_t rows_parsed = 0;
  uint64_t rows_malformed = 0;
  uint64_t rows_duplicate = 0;
  uint64_t rows_out_of_order = 0;
  uint64_t gaps_repaired = 0;
  uint64_t retries = 0;
  uint64_t files_quarantined = 0;
};

/// \brief Per-stage OS resource accounting (schema v2): CPU, fault and
/// allocation figures are deltas over the stage; max_rss_bytes is the
/// process peak as of stage end (RSS peaks never come back down).
struct StageResources {
  double cpu_user_seconds = 0.0;
  double cpu_sys_seconds = 0.0;
  uint64_t max_rss_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t alloc_bytes = 0;  ///< opt-in operator-new tally; 0 when off
};

/// \brief Accumulates one run's manifest; thread-safe, write-mostly.
///
/// The CLI owns one instance for the whole run and calls WriteJson from
/// every exit path (including FailWith), so a run killed by a failpoint
/// still leaves a partial manifest with the failing stage and Status.
class RunManifestBuilder {
 public:
  /// Bump on any incompatible change to the JSON shape; readers check it
  /// (versioning policy in DESIGN.md §12). v2 adds per-stage "resources"
  /// (CPU/RSS/faults/allocs + parallel_efficiency) and the top-level
  /// "histograms" percentile digest.
  static constexpr int kSchemaVersion = 2;

  RunManifestBuilder();
  RunManifestBuilder(const RunManifestBuilder&) = delete;
  RunManifestBuilder& operator=(const RunManifestBuilder&) = delete;

  void SetTool(std::string name) HOMETS_EXCLUDES(mu_);
  /// Full command line, argv joined with single spaces.
  void SetCommand(std::string command) HOMETS_EXCLUDES(mu_);
  /// One resolved config flag (insertion order preserved; re-setting a key
  /// overwrites in place).
  void SetConfig(std::string_view key, std::string value)
      HOMETS_EXCLUDES(mu_);
  void AddInput(std::string path, std::string format, uint64_t bytes)
      HOMETS_EXCLUDES(mu_);
  void SetFailpoints(std::string spec, uint64_t seed) HOMETS_EXCLUDES(mu_);
  void SetThreads(int hardware, int used) HOMETS_EXCLUDES(mu_);
  void SetReadPolicy(std::string policy, int retries) HOMETS_EXCLUDES(mu_);
  /// Accumulates (a run can ingest many files/datasets).
  void RecordIngest(const ManifestIngestCounters& counters)
      HOMETS_EXCLUDES(mu_);

  /// Appends a completed stage. `metric_deltas` holds counters that changed
  /// while the stage ran (StageTimer computes them automatically).
  void AddStage(std::string stage, double seconds, uint64_t units,
                std::map<std::string, uint64_t> metric_deltas)
      HOMETS_EXCLUDES(mu_);
  /// Same, with resource accounting (StageTimer captures it via
  /// CaptureRusage + the prof alloc tally).
  void AddStage(std::string stage, double seconds, uint64_t units,
                std::map<std::string, uint64_t> metric_deltas,
                const StageResources& resources) HOMETS_EXCLUDES(mu_);

  /// Records the failing stage and Status; flips the outcome to "failure"
  /// (or "cancelled" for kCancelled/kDeadlineExceeded). First failure wins.
  void MarkFailed(std::string_view stage, const Status& status)
      HOMETS_EXCLUDES(mu_);

  /// Records one quarantined fleet shard (its final Status and the attempts
  /// it burned) and marks the run's outputs degraded. Additive v2 fields:
  /// runs without quarantined shards emit neither key.
  void AddQuarantinedShard(int shard_index, const Status& status,
                           int attempts) HOMETS_EXCLUDES(mu_);

  /// Marks outputs degraded without a shard entry (e.g. partial inputs).
  void SetDegraded() HOMETS_EXCLUDES(mu_);

  void SetExitCode(int exit_code) HOMETS_EXCLUDES(mu_);

  /// The manifest as pretty-enough JSON (stable key order, one stage per
  /// line) reflecting everything recorded so far.
  std::string ToJson() const HOMETS_EXCLUDES(mu_);

  /// Writes ToJson() to `path` (truncating); IoError on failure.
  Status WriteJson(const std::string& path) const HOMETS_EXCLUDES(mu_);

  /// \brief RAII stage clock: captures a metrics snapshot and a
  /// getrusage reading at construction and records the stage (wall seconds +
  /// counter deltas + resource deltas + `units`) into the builder at
  /// destruction. Publishes the profiler accumulators into the registry at
  /// both edges, so the counter deltas attribute lock waits / pool busy time
  /// to this stage. `set_units` lets the stage report its unit count once
  /// known.
  class StageTimer {
   public:
    StageTimer(RunManifestBuilder* builder, std::string stage);
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;
    ~StageTimer();

    void set_units(uint64_t units) { units_ = units; }

   private:
    RunManifestBuilder* builder_;
    std::string stage_;
    uint64_t units_ = 0;
    std::chrono::steady_clock::time_point start_;
    MetricsSnapshot before_;
    ResourceUsage rusage_before_;
    uint64_t alloc_bytes_before_ = 0;
  };

 private:
  mutable Mutex mu_{"obs.run_manifest"};
  std::chrono::steady_clock::time_point run_start_;

  struct Input {
    std::string path;
    std::string format;
    uint64_t bytes = 0;
  };
  struct StageEntry {
    std::string stage;
    double seconds = 0.0;
    uint64_t units = 0;
    std::map<std::string, uint64_t> metric_deltas;
    bool has_resources = false;
    StageResources resources;
  };

  std::string tool_ HOMETS_GUARDED_BY(mu_);
  std::string command_ HOMETS_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::string>> config_
      HOMETS_GUARDED_BY(mu_);
  std::vector<Input> inputs_ HOMETS_GUARDED_BY(mu_);
  bool has_failpoints_ HOMETS_GUARDED_BY(mu_) = false;
  std::string failpoint_spec_ HOMETS_GUARDED_BY(mu_);
  uint64_t failpoint_seed_ HOMETS_GUARDED_BY(mu_) = 0;
  int threads_hardware_ HOMETS_GUARDED_BY(mu_) = 0;
  int threads_used_ HOMETS_GUARDED_BY(mu_) = 0;
  std::string read_policy_ HOMETS_GUARDED_BY(mu_);
  int read_retries_ HOMETS_GUARDED_BY(mu_) = 0;
  bool has_ingest_ HOMETS_GUARDED_BY(mu_) = false;
  ManifestIngestCounters ingest_ HOMETS_GUARDED_BY(mu_);
  struct QuarantineEntry {
    int shard_index = 0;
    Status status;
    int attempts = 0;
  };

  std::vector<StageEntry> stages_ HOMETS_GUARDED_BY(mu_);
  std::vector<QuarantineEntry> quarantine_ HOMETS_GUARDED_BY(mu_);
  bool degraded_ HOMETS_GUARDED_BY(mu_) = false;
  bool failed_ HOMETS_GUARDED_BY(mu_) = false;
  std::string failed_stage_ HOMETS_GUARDED_BY(mu_);
  Status final_status_ HOMETS_GUARDED_BY(mu_);
  int exit_code_ HOMETS_GUARDED_BY(mu_) = 0;
};

}  // namespace homets::obs

#endif  // HOMETS_OBS_REPORT_H_
