#ifndef HOMETS_OBS_FLUSHER_H_
#define HOMETS_OBS_FLUSHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <string>
#include <thread>

// common/status.h is header-only for everything used here (construction,
// ok(), message()), so this keeps homets_obs free of link dependencies even
// though obs sits below homets_common in the layering.
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

// Periodic background exposition of a MetricsRegistry, so multi-hour runs
// (the streaming mode) are observable in flight instead of only at exit.
namespace homets::obs {

/// \brief Options for MetricsFlusher.
struct MetricsFlusherOptions {
  /// Output file. Flushes append: each flush is a standalone Prometheus
  /// text block preceded by a `# HOMETS flush seq=<n>` comment line, the
  /// shape a textfile-collector sidecar or a test can split on.
  std::string path;
  /// Seconds between periodic flushes; must be > 0.
  double interval_sec = 60.0;
  /// Registry to expose; nullptr means MetricsRegistry::Global().
  MetricsRegistry* registry = nullptr;
  /// Truncate `path` on Start instead of appending to it.
  bool truncate = false;
};

/// \brief Interval-driven background thread writing ExportPrometheus blocks.
///
/// Start() truncates/opens the file, performs one immediate flush, and
/// spawns the timer thread; Stop() (or the destructor) wakes the thread,
/// joins it, and performs one final flush — so even a run shorter than the
/// interval produces two observable flushes (start + stop). Flush activity
/// is itself metered (kObsFlushes/kObsFlushErrors/kObsFlushWriteUs) in the
/// exposed registry, so the exposition reports its own health.
class MetricsFlusher {
 public:
  explicit MetricsFlusher(MetricsFlusherOptions options);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Validates options, writes the first flush, starts the thread.
  /// InvalidArgument on a bad interval/path; IoError when the first write
  /// fails. Calling Start twice is FailedPrecondition.
  Status Start() HOMETS_EXCLUDES(mu_, flush_mu_);

  /// Final flush + clean shutdown. Idempotent; returns the status of the
  /// final flush. A flusher that never started stops trivially.
  Status Stop() HOMETS_EXCLUDES(mu_, flush_mu_);

  /// Flushes the registry to the file right now (also used internally).
  Status FlushNow() HOMETS_EXCLUDES(flush_mu_);

  /// Number of completed flush attempts (successful or not) so far.
  uint64_t flush_count() const;

 private:
  /// Timer loop. Waits on cv_ through mu_'s native handle, which the
  /// thread-safety analysis cannot follow — opted out at the definition.
  void Loop();

  MetricsFlusherOptions options_;
  Counter* flushes_;        ///< kObsFlushes in the exposed registry
  Counter* flush_errors_;   ///< kObsFlushErrors
  Histogram* write_us_;     ///< kObsFlushWriteUs

  /// Guards running_/stop_requested_ and cv_'s wait state. Acquired before
  /// flush_mu_ when both are needed (Start/Stop); never the reverse.
  Mutex mu_ HOMETS_ACQUIRED_BEFORE(flush_mu_);
  std::condition_variable cv_;
  std::thread thread_;
  bool running_ HOMETS_GUARDED_BY(mu_) = false;
  bool stop_requested_ HOMETS_GUARDED_BY(mu_) = false;
  Mutex flush_mu_;  ///< serializes file writes
  std::atomic<uint64_t> seq_{0};  ///< completed flush attempts
};

}  // namespace homets::obs

#endif  // HOMETS_OBS_FLUSHER_H_
