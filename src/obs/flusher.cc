#include "obs/flusher.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <utility>

#include "obs/log.h"
#include "obs/metric_names.h"

namespace homets::obs {

MetricsFlusher::MetricsFlusher(MetricsFlusherOptions options)
    : options_(std::move(options)) {
  if (options_.registry == nullptr) {
    options_.registry = &MetricsRegistry::Global();
  }
  flushes_ = options_.registry->GetCounter(kObsFlushes);
  flush_errors_ = options_.registry->GetCounter(kObsFlushErrors);
  write_us_ = options_.registry->GetHistogram(kObsFlushWriteUs);
}

// A destructor has nowhere to propagate the Status; Stop() already counted
// any write error in kObsFlushErrors.
MetricsFlusher::~MetricsFlusher() { Stop(); }  // homets-lint: allow(discarded-status)

Status MetricsFlusher::Start() {
  if (options_.path.empty()) {
    return Status::InvalidArgument("MetricsFlusher: path is required");
  }
  if (!(options_.interval_sec > 0.0)) {
    return Status::InvalidArgument(
        "MetricsFlusher: interval_sec must be > 0");
  }
  {
    MutexLock lock(&mu_);
    if (running_) {
      return Status::FailedPrecondition("MetricsFlusher already started");
    }
    running_ = true;
    stop_requested_ = false;
  }
  if (options_.truncate) {
    std::ofstream clear(options_.path, std::ios::trunc);
    if (!clear) {
      MutexLock lock(&mu_);
      running_ = false;
      return Status::IoError("cannot open for write: " + options_.path);
    }
  }
  // First flush is synchronous so a misconfigured path fails Start() itself
  // rather than a background thread nobody checks.
  const Status first = FlushNow();
  if (!first.ok()) {
    MutexLock lock(&mu_);
    running_ = false;
    return first;
  }
  thread_ = std::thread(&MetricsFlusher::Loop, this);
  return Status::OK();
}

Status MetricsFlusher::Stop() {
  {
    MutexLock lock(&mu_);
    if (!running_) return Status::OK();
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  const Status final_flush = FlushNow();
  MutexLock lock(&mu_);
  running_ = false;
  return final_flush;
}

Status MetricsFlusher::FlushNow() {
  // The flusher cadence doubles as the structured logger's drain tick, so a
  // run with --metrics-flush-out gets its buffered log records written out
  // on the same interval (DESIGN.md §12).
  Logger::Global().Drain();
  MutexLock lock(&flush_mu_);
  // Count the attempt before exporting so the written block already carries
  // the up-to-date homets.obs.flushes value.
  flushes_->Increment();
  const uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const auto start = std::chrono::steady_clock::now();
  std::ofstream out(options_.path, std::ios::app);
  if (out) {
    char header[96];
    std::snprintf(header, sizeof(header),
                  "# HOMETS flush seq=%llu interval_sec=%g\n",
                  static_cast<unsigned long long>(seq),
                  options_.interval_sec);
    out << header << options_.registry->ExportPrometheus() << "\n";
    out.flush();
  }
  const double us = static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  write_us_->Observe(us);
  if (!out) {
    flush_errors_->Increment();
    return Status::IoError("metrics flush failed: " + options_.path);
  }
  return Status::OK();
}

uint64_t MetricsFlusher::flush_count() const {
  return seq_.load(std::memory_order_relaxed);
}

// Opted out of thread-safety analysis: the condition-variable wait must go
// through the native std::mutex handle, which the analysis cannot model.
// The loop only reads stop_requested_, always under the lock it waits on.
void MetricsFlusher::Loop() HOMETS_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu_.native());
  const auto interval =
      std::chrono::duration<double>(options_.interval_sec);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_requested_; })) {
      break;  // Stop() flushes one final time after the join
    }
    lock.unlock();
    const Status status = FlushNow();  // errors are already metered
    (void)status;
    lock.lock();
  }
}

}  // namespace homets::obs
