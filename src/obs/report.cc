#include "obs/report.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "common/prof_hooks.h"

namespace homets::obs {

namespace {

// Local code → canonical name map: StatusCodeToString lives in
// homets_common, which obs must not link (same reasoning as the snprintf
// formatting throughout this file vs. common/strings.h).
std::string_view CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kComputeError:
      return "ComputeError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kUnknown:
      return "Unknown";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

void AppendEscaped(std::string_view s, std::string* out) {
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      *out += '\\';
      *out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      *out += buf;
    } else {
      *out += c;
    }
  }
}

void AppendQuoted(std::string_view s, std::string* out) {
  *out += '"';
  AppendEscaped(s, out);
  *out += '"';
}

void AppendUint(uint64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendInt(int64_t v, std::string* out) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  *out += buf;
}

void AppendSeconds(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  *out += buf;
}

void AppendDouble(double v, std::string* out) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

// parallel_efficiency = cpu_seconds / (wall_seconds * threads_used) is only
// emitted for stages at least this long: getrusage CPU time advances in
// scheduler ticks (1-4 ms), so on sub-centisecond stages the ratio flips
// between 0 and >1 on tick luck and would poison the bench-compare gate.
constexpr double kEfficiencyWallFloorSeconds = 0.01;

}  // namespace

RunManifestBuilder::RunManifestBuilder()
    : run_start_(std::chrono::steady_clock::now()) {}

void RunManifestBuilder::SetTool(std::string name) {
  MutexLock lock(&mu_);
  tool_ = std::move(name);
}

void RunManifestBuilder::SetCommand(std::string command) {
  MutexLock lock(&mu_);
  command_ = std::move(command);
}

void RunManifestBuilder::SetConfig(std::string_view key, std::string value) {
  MutexLock lock(&mu_);
  for (auto& [existing, existing_value] : config_) {
    if (existing == key) {
      existing_value = std::move(value);
      return;
    }
  }
  config_.emplace_back(std::string(key), std::move(value));
}

void RunManifestBuilder::AddInput(std::string path, std::string format,
                                  uint64_t bytes) {
  MutexLock lock(&mu_);
  inputs_.push_back(Input{std::move(path), std::move(format), bytes});
}

void RunManifestBuilder::SetFailpoints(std::string spec, uint64_t seed) {
  MutexLock lock(&mu_);
  has_failpoints_ = true;
  failpoint_spec_ = std::move(spec);
  failpoint_seed_ = seed;
}

void RunManifestBuilder::SetThreads(int hardware, int used) {
  MutexLock lock(&mu_);
  threads_hardware_ = hardware;
  threads_used_ = used;
}

void RunManifestBuilder::SetReadPolicy(std::string policy, int retries) {
  MutexLock lock(&mu_);
  read_policy_ = std::move(policy);
  read_retries_ = retries;
}

void RunManifestBuilder::RecordIngest(
    const ManifestIngestCounters& counters) {
  MutexLock lock(&mu_);
  has_ingest_ = true;
  ingest_.rows_parsed += counters.rows_parsed;
  ingest_.rows_malformed += counters.rows_malformed;
  ingest_.rows_duplicate += counters.rows_duplicate;
  ingest_.rows_out_of_order += counters.rows_out_of_order;
  ingest_.gaps_repaired += counters.gaps_repaired;
  ingest_.retries += counters.retries;
  ingest_.files_quarantined += counters.files_quarantined;
}

void RunManifestBuilder::AddStage(
    std::string stage, double seconds, uint64_t units,
    std::map<std::string, uint64_t> metric_deltas) {
  MutexLock lock(&mu_);
  stages_.push_back(StageEntry{std::move(stage), seconds, units,
                               std::move(metric_deltas), false,
                               StageResources{}});
}

void RunManifestBuilder::AddStage(
    std::string stage, double seconds, uint64_t units,
    std::map<std::string, uint64_t> metric_deltas,
    const StageResources& resources) {
  MutexLock lock(&mu_);
  stages_.push_back(StageEntry{std::move(stage), seconds, units,
                               std::move(metric_deltas), true, resources});
}

void RunManifestBuilder::MarkFailed(std::string_view stage,
                                    const Status& status) {
  MutexLock lock(&mu_);
  if (failed_) return;  // first failure wins; later ones are fallout
  failed_ = true;
  failed_stage_ = std::string(stage);
  final_status_ = status;
}

void RunManifestBuilder::AddQuarantinedShard(int shard_index,
                                             const Status& status,
                                             int attempts) {
  MutexLock lock(&mu_);
  quarantine_.push_back(QuarantineEntry{shard_index, status, attempts});
  degraded_ = true;
}

void RunManifestBuilder::SetDegraded() {
  MutexLock lock(&mu_);
  degraded_ = true;
}

void RunManifestBuilder::SetExitCode(int exit_code) {
  MutexLock lock(&mu_);
  exit_code_ = exit_code;
}

std::string RunManifestBuilder::ToJson() const {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    run_start_)
          .count();
  // Snapshot the global registry before taking mu_ (the registry has its own
  // lock); only non-empty histograms enter the percentile digest.
  std::map<std::string, HistogramSnapshot> histograms;
  for (auto& [name, h] : MetricsRegistry::Global().Snapshot().histograms) {
    if (h.count > 0) histograms.emplace(name, std::move(h));
  }
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(1024);
  out += "{\n  \"schema_version\": ";
  AppendInt(kSchemaVersion, &out);
  out += ",\n  \"tool\": ";
  AppendQuoted(tool_, &out);
  out += ",\n  \"command\": ";
  AppendQuoted(command_, &out);
  out += ",\n  \"config\": {";
  for (size_t i = 0; i < config_.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    ";
    AppendQuoted(config_[i].first, &out);
    out += ": ";
    AppendQuoted(config_[i].second, &out);
  }
  out += config_.empty() ? "}" : "\n  }";
  out += ",\n  \"inputs\": [";
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (i > 0) out += ',';
    out += "\n    {\"path\": ";
    AppendQuoted(inputs_[i].path, &out);
    out += ", \"format\": ";
    AppendQuoted(inputs_[i].format, &out);
    out += ", \"bytes\": ";
    AppendUint(inputs_[i].bytes, &out);
    out += '}';
  }
  out += inputs_.empty() ? "]" : "\n  ]";
  if (has_failpoints_) {
    out += ",\n  \"failpoints\": {\"spec\": ";
    AppendQuoted(failpoint_spec_, &out);
    out += ", \"seed\": ";
    AppendUint(failpoint_seed_, &out);
    out += '}';
  }
  out += ",\n  \"threads\": {\"hardware\": ";
  AppendInt(threads_hardware_, &out);
  out += ", \"used\": ";
  AppendInt(threads_used_, &out);
  out += '}';
  if (!read_policy_.empty()) {
    out += ",\n  \"read_policy\": {\"policy\": ";
    AppendQuoted(read_policy_, &out);
    out += ", \"retries\": ";
    AppendInt(read_retries_, &out);
    out += '}';
  }
  if (has_ingest_) {
    out += ",\n  \"ingest\": {\"rows_parsed\": ";
    AppendUint(ingest_.rows_parsed, &out);
    out += ", \"rows_malformed\": ";
    AppendUint(ingest_.rows_malformed, &out);
    out += ", \"rows_duplicate\": ";
    AppendUint(ingest_.rows_duplicate, &out);
    out += ", \"rows_out_of_order\": ";
    AppendUint(ingest_.rows_out_of_order, &out);
    out += ", \"gaps_repaired\": ";
    AppendUint(ingest_.gaps_repaired, &out);
    out += ", \"retries\": ";
    AppendUint(ingest_.retries, &out);
    out += ", \"files_quarantined\": ";
    AppendUint(ingest_.files_quarantined, &out);
    out += '}';
  }
  out += ",\n  \"stages\": [";
  for (size_t i = 0; i < stages_.size(); ++i) {
    const StageEntry& s = stages_[i];
    if (i > 0) out += ',';
    out += "\n    {\"stage\": ";
    AppendQuoted(s.stage, &out);
    out += ", \"seconds\": ";
    AppendSeconds(s.seconds, &out);
    out += ", \"units\": ";
    AppendUint(s.units, &out);
    out += ", \"metrics\": {";
    size_t j = 0;
    for (const auto& [name, delta] : s.metric_deltas) {
      if (j++ > 0) out += ", ";
      AppendQuoted(name, &out);
      out += ": ";
      AppendUint(delta, &out);
    }
    out += '}';
    if (s.has_resources) {
      const double cpu_seconds =
          s.resources.cpu_user_seconds + s.resources.cpu_sys_seconds;
      out += ", \"resources\": {\"cpu_user_seconds\": ";
      AppendSeconds(s.resources.cpu_user_seconds, &out);
      out += ", \"cpu_sys_seconds\": ";
      AppendSeconds(s.resources.cpu_sys_seconds, &out);
      out += ", \"cpu_seconds\": ";
      AppendSeconds(cpu_seconds, &out);
      out += ", \"max_rss_bytes\": ";
      AppendUint(s.resources.max_rss_bytes, &out);
      out += ", \"minor_faults\": ";
      AppendUint(s.resources.minor_faults, &out);
      out += ", \"major_faults\": ";
      AppendUint(s.resources.major_faults, &out);
      out += ", \"alloc_bytes\": ";
      AppendUint(s.resources.alloc_bytes, &out);
      if (threads_used_ > 0 && s.seconds >= kEfficiencyWallFloorSeconds) {
        out += ", \"parallel_efficiency\": ";
        AppendDouble(cpu_seconds / (s.seconds * threads_used_), &out);
      }
      out += '}';
    }
    out += '}';
  }
  out += stages_.empty() ? "]" : "\n  ]";
  // Degraded runs list every quarantined fleet shard with its final Status,
  // so an operator can audit exactly which slices of the fleet are missing
  // from the (still-written) outputs.
  if (degraded_) {
    out += ",\n  \"degraded\": true";
    out += ",\n  \"quarantine\": [";
    for (size_t i = 0; i < quarantine_.size(); ++i) {
      const QuarantineEntry& q = quarantine_[i];
      if (i > 0) out += ',';
      out += "\n    {\"shard\": ";
      AppendInt(q.shard_index, &out);
      out += ", \"attempts\": ";
      AppendInt(q.attempts, &out);
      out += ", \"status\": {\"code\": ";
      AppendQuoted(CodeName(q.status.code()), &out);
      out += ", \"message\": ";
      AppendQuoted(q.status.message(), &out);
      out += "}}";
    }
    out += quarantine_.empty() ? "]" : "\n  ]";
  }
  // Percentile digest of every non-empty histogram (satellite of the
  // profiler PR): manifests carry the latency distribution shape, not just
  // count/sum, without inlining full bucket arrays.
  if (!histograms.empty()) {
    out += ",\n  \"histograms\": {";
    size_t h_index = 0;
    for (const auto& [name, h] : histograms) {
      if (h_index++ > 0) out += ',';
      out += "\n    ";
      AppendQuoted(name, &out);
      out += ": {\"count\": ";
      AppendUint(h.count, &out);
      out += ", \"sum\": ";
      AppendDouble(h.sum, &out);
      out += ", \"p50\": ";
      AppendDouble(HistogramPercentile(h, 0.50), &out);
      out += ", \"p95\": ";
      AppendDouble(HistogramPercentile(h, 0.95), &out);
      out += ", \"p99\": ";
      AppendDouble(HistogramPercentile(h, 0.99), &out);
      out += '}';
    }
    out += "\n  }";
  }
  const std::string_view outcome =
      !failed_ ? "success"
      : (final_status_.code() == StatusCode::kCancelled ||
         final_status_.code() == StatusCode::kDeadlineExceeded)
          ? "cancelled"
          : "failure";
  out += ",\n  \"outcome\": ";
  AppendQuoted(outcome, &out);
  if (failed_) {
    out += ",\n  \"failed_stage\": ";
    AppendQuoted(failed_stage_, &out);
  }
  out += ",\n  \"status\": {\"code\": ";
  AppendQuoted(CodeName(final_status_.code()), &out);
  out += ", \"message\": ";
  AppendQuoted(final_status_.message(), &out);
  out += '}';
  out += ",\n  \"exit_code\": ";
  AppendInt(exit_code_, &out);
  out += ",\n  \"wall_seconds\": ";
  AppendSeconds(wall_seconds, &out);
  out += "\n}\n";
  return out;
}

Status RunManifestBuilder::WriteJson(const std::string& path) const {
  const std::string json = ToJson();
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::IoError("cannot open manifest for write: " + path);
  }
  out << json;
  out.flush();
  if (!out) {
    return Status::IoError("manifest write failed: " + path);
  }
  return Status::OK();
}

RunManifestBuilder::StageTimer::StageTimer(RunManifestBuilder* builder,
                                           std::string stage)
    : builder_(builder), stage_(std::move(stage)) {
  // A null builder makes the timer inert; skip the snapshots so instrumented
  // call sites cost nothing when no manifest is requested.
  if (builder_ == nullptr) return;
  // Fold the profiler accumulators into the registry first, so the before
  // snapshot carries the published prefix and the stage delta is exactly
  // what this stage contributes.
  PublishProfMetrics();
  before_ = MetricsRegistry::Global().Snapshot();
  rusage_before_ = CaptureRusage();
  alloc_bytes_before_ =
      homets::prof::g_alloc_bytes.load(std::memory_order_relaxed);
  start_ = std::chrono::steady_clock::now();
}

RunManifestBuilder::StageTimer::~StageTimer() {
  if (builder_ == nullptr) return;
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_)
          .count();
  PublishProfMetrics();
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  std::map<std::string, uint64_t> deltas;
  for (const auto& [name, value] : after.counters) {
    uint64_t previous = 0;
    const auto it = before_.counters.find(name);
    if (it != before_.counters.end()) previous = it->second;
    if (value > previous) deltas[name] = value - previous;
  }
  const ResourceUsage now = CaptureRusage();
  StageResources resources;
  resources.cpu_user_seconds =
      std::max(0.0, now.user_seconds - rusage_before_.user_seconds);
  resources.cpu_sys_seconds =
      std::max(0.0, now.sys_seconds - rusage_before_.sys_seconds);
  resources.max_rss_bytes = now.max_rss_bytes;
  resources.minor_faults = now.minor_faults >= rusage_before_.minor_faults
                               ? now.minor_faults - rusage_before_.minor_faults
                               : 0;
  resources.major_faults = now.major_faults >= rusage_before_.major_faults
                               ? now.major_faults - rusage_before_.major_faults
                               : 0;
  const uint64_t alloc_now =
      homets::prof::g_alloc_bytes.load(std::memory_order_relaxed);
  resources.alloc_bytes =
      alloc_now >= alloc_bytes_before_ ? alloc_now - alloc_bytes_before_ : 0;
  builder_->AddStage(stage_, seconds, units_, std::move(deltas), resources);
}

}  // namespace homets::obs
