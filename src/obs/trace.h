#ifndef HOMETS_OBS_TRACE_H_
#define HOMETS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

// Structured run tracing: RAII spans collected into a TraceSession that
// serializes to Chrome trace_event JSON, so a run opens directly in
// about:tracing or https://ui.perfetto.dev.
//
// Spans nest naturally: a span that opens and closes while another span on
// the same thread is open renders as its child (the Chrome "X" complete-event
// convention), and each event also carries its explicit nesting depth. When
// no session is installed, ScopedSpan without a sink is a single relaxed
// atomic load — cheap enough to leave instrumentation compiled in everywhere.
namespace homets::obs {

/// \brief One completed span ("ph": "X" in the Chrome trace format).
struct TraceEvent {
  std::string name;
  std::string category;
  int64_t ts_us = 0;   ///< span start, µs since the session started
  int64_t dur_us = 0;  ///< span duration in µs
  uint32_t tid = 0;    ///< small dense thread id (see CurrentThreadTraceId)
  uint32_t depth = 0;  ///< open spans on this thread above this one
  uint64_t span_id = 0;  ///< process-unique id (see CurrentSpanId); 0 = none
};

/// \brief Collects spans for one run. Append is thread-safe.
class TraceSession {
 public:
  TraceSession() : start_(std::chrono::steady_clock::now()) {}
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  void Add(TraceEvent event) HOMETS_EXCLUDES(mu_);

  size_t size() const HOMETS_EXCLUDES(mu_);
  std::vector<TraceEvent> Events() const HOMETS_EXCLUDES(mu_);

  /// µs from session start to `t` on the session's steady clock.
  int64_t SinceStartUs(std::chrono::steady_clock::time_point t) const {
    return std::chrono::duration_cast<std::chrono::microseconds>(t - start_)
        .count();
  }

  /// Chrome trace_event JSON (object form: {"traceEvents": [...]}).
  std::string ToChromeJson() const;

 private:
  std::chrono::steady_clock::time_point start_;
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ HOMETS_GUARDED_BY(mu_);
};

/// \brief Installs `session` (not owned) as the process-wide span
/// destination; nullptr uninstalls. Install before the traced work starts
/// and uninstall after it finishes — spans capture the session pointer at
/// construction, so the session must outlive every span opened while it was
/// installed.
void InstallGlobalTraceSession(TraceSession* session);
TraceSession* GlobalTraceSession();

/// \brief Small dense id for the calling thread (0, 1, 2, … in first-use
/// order), stable for the thread's lifetime — the "tid" spans are tagged
/// with, chosen over std::thread::id so Perfetto rows sort sensibly.
uint32_t CurrentThreadTraceId();

/// \brief Id of the innermost span currently open on the calling thread, or
/// 0 when none is. Spans receive a process-unique 1-based id whenever they
/// are active (a TraceSession is installed or a sink is attached); the
/// structured logger stamps this onto every record, so a log line written
/// inside `cli.mine_motifs` carries the exact span it belongs to and the two
/// artifacts (JSON-lines log, Chrome trace) join on `span_id`.
uint64_t CurrentSpanId();

/// \brief Receives completed span durations; PhaseTimings is the main
/// implementation, adapting spans onto the legacy per-phase accumulator.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void OnSpan(const std::string& name, uint64_t duration_ns) = 0;
};

/// \brief RAII span: measures from construction to destruction and reports
/// to the installed TraceSession (if any) and to `sink` (if non-null).
/// With neither, construction is one atomic load and no clock reads.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, SpanSink* sink = nullptr,
                      std::string category = "homets");
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan();

 private:
  std::string name_;
  std::string category_;
  SpanSink* sink_;
  TraceSession* session_;  ///< captured once at construction
  std::chrono::steady_clock::time_point start_;
  uint32_t depth_ = 0;
  uint64_t id_ = 0;  ///< process-unique span id, assigned when active
};

}  // namespace homets::obs

#endif  // HOMETS_OBS_TRACE_H_
