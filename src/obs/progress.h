#ifndef HOMETS_OBS_PROGRESS_H_
#define HOMETS_OBS_PROGRESS_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

// Live progress for long fleet runs: pipeline stages tick units done/total
// into named Stage accumulators; a heartbeat thread periodically turns the
// tracker state into info-level log lines (percent, rate, ETA, thread-pool
// queue depth) and homets.progress.* gauges — the per-shard health signal
// the ROADMAP's fleet orchestrator will aggregate.
//
// Instrumentation sites use ProgressStage("stage"), which is nullptr-safe:
// when no tracker is installed (every run without --progress, all tests by
// default) the cost is one relaxed atomic load.
namespace homets::obs {

/// \brief Collects per-stage progress. Stage pointers are stable for the
/// tracker's lifetime; all tick paths are lock-free.
class ProgressTracker {
 public:
  /// \brief One named unit-counted stage ("csv_ingest", "pairwise", …).
  class Stage {
   public:
    explicit Stage(std::string name) : name_(std::move(name)) {}
    Stage(const Stage&) = delete;
    Stage& operator=(const Stage&) = delete;

    /// Grows the expected unit count (stages often learn their total
    /// incrementally, e.g. per input file).
    void AddTotal(uint64_t units) {
      total_.fetch_add(units, std::memory_order_relaxed);
    }

    /// Records `units` finished. First tick anchors the stage's rate clock.
    void Tick(uint64_t units = 1);

    /// Marks the stage complete (done snaps to total when total is known).
    void Finish();

    const std::string& name() const { return name_; }
    uint64_t done() const { return done_.load(std::memory_order_relaxed); }
    uint64_t total() const { return total_.load(std::memory_order_relaxed); }
    bool finished() const {
      return finished_.load(std::memory_order_relaxed);
    }

   private:
    friend class ProgressTracker;
    std::string name_;
    std::atomic<uint64_t> done_{0};
    std::atomic<uint64_t> total_{0};
    std::atomic<bool> finished_{false};
    std::atomic<int64_t> first_tick_us_{-1};  ///< Logger::NowUs clock
    std::atomic<int64_t> last_tick_us_{-1};
  };

  /// \brief Point-in-time copy of one stage, with derived rate/ETA.
  struct StageSnapshot {
    std::string name;
    uint64_t done = 0;
    uint64_t total = 0;  ///< 0 = unknown
    bool finished = false;
    double rate_per_sec = 0.0;  ///< 0 until two clock-distinct ticks
    double eta_sec = -1.0;      ///< -1 = unknown (no total or no rate)
  };

  ProgressTracker() = default;
  ProgressTracker(const ProgressTracker&) = delete;
  ProgressTracker& operator=(const ProgressTracker&) = delete;
  ~ProgressTracker();

  /// Returns the stage registered under `name`, creating it on first use.
  /// The pointer is stable for the tracker's lifetime.
  Stage* GetStage(std::string_view name) HOMETS_EXCLUDES(mu_);

  /// Stages in registration order (the pipeline's natural stage order).
  std::vector<StageSnapshot> Snapshot() const HOMETS_EXCLUDES(mu_);

  /// Emits one heartbeat now: logs an info line per unfinished stage (and a
  /// final line per newly finished stage) through Logger::Global(), updates
  /// the homets.progress.* gauges, and drains the logger so the lines land.
  /// Also called by the heartbeat thread every `interval_sec`.
  void EmitHeartbeat() HOMETS_EXCLUDES(mu_);

  /// Starts the background heartbeat thread; no-op when one is running or
  /// `interval_sec <= 0`.
  void StartHeartbeat(double interval_sec) HOMETS_EXCLUDES(hb_mu_);

  /// Stops the heartbeat thread (if running) after one final heartbeat.
  void StopHeartbeat() HOMETS_EXCLUDES(hb_mu_);

 private:
  void HeartbeatLoop(double interval_sec);

  mutable Mutex mu_;
  /// Deque, not vector: Stage is pinned (atomics + handed-out pointers).
  std::deque<Stage> stages_ HOMETS_GUARDED_BY(mu_);

  Mutex hb_mu_;
  std::condition_variable hb_cv_;
  std::thread hb_thread_;
  bool hb_running_ HOMETS_GUARDED_BY(hb_mu_) = false;
  bool hb_stop_ HOMETS_GUARDED_BY(hb_mu_) = false;
  /// Stage names already reported as finished, so each gets exactly one
  /// final heartbeat line.
  std::vector<std::string> hb_reported_done_ HOMETS_GUARDED_BY(mu_);
};

/// \brief Installs `tracker` (not owned) as the process-wide tick
/// destination; nullptr uninstalls. Same lifetime contract as
/// InstallGlobalTraceSession: install before the tracked work, uninstall
/// after it finishes.
void InstallGlobalProgressTracker(ProgressTracker* tracker);
ProgressTracker* GlobalProgressTracker();

/// Stage accessor instrumentation sites use: nullptr (one relaxed load)
/// when no tracker is installed.
ProgressTracker::Stage* ProgressStage(std::string_view name);

}  // namespace homets::obs

#endif  // HOMETS_OBS_PROGRESS_H_
