#ifndef HOMETS_SIMGEN_FLEET_H_
#define HOMETS_SIMGEN_FLEET_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::simgen {

/// \brief Knobs of the synthetic fleet.
///
/// Defaults are calibrated so the fleet reproduces the dataset statistics
/// the paper reports: 196 gateways, ~5 regular devices each (plus sporadic
/// guests), 78% of gateways weekly-eligible and ~51% daily-eligible, in/out
/// correlation near 0.92, background traffic below 5 kB/min for most devices
/// with a small heavy-background (mostly fixed) tail.
struct SimConfig {
  int n_gateways = 196;
  int weeks = 6;                    ///< horizon; the paper uses 4–6 weeks
  uint64_t seed = 20140317;         ///< dataset start date as default seed

  double long_outage_prob = 0.22;   ///< gateway misses 1–2 whole weeks
  double unreliable_daily_prob = 0.35;  ///< gateway misses 1–4 random days
  double unlabeled_prob = 0.25;     ///< device-type inference failure rate
  double regular_home_prob = 0.22;  ///< homes with low week-to-week drift
  int surveyed_gateways = 49;       ///< homes with known resident counts

  /// Horizon length in minutes.
  int64_t HorizonMinutes() const {
    return static_cast<int64_t>(weeks) * ts::kMinutesPerWeek;
  }
};

/// \brief Checks a SimConfig for usable values (positive sizes, probabilities
/// in [0, 1], surveyed subset within the fleet). FleetGenerator assumes a
/// valid config; callers taking user input (the CLI) should validate first.
Status ValidateSimConfig(const SimConfig& config);

/// \brief Deterministic lazy generator of gateway traces.
///
/// `Generate(id)` derives an independent RNG stream per gateway, so traces
/// are identical regardless of generation order and callers can stream
/// through the fleet one gateway at a time (a full 6-week gateway is a few
/// MB; the whole fleet at once would be GBs).
class FleetGenerator {
 public:
  explicit FleetGenerator(SimConfig config);

  const SimConfig& config() const { return config_; }

  /// All traces start at the epoch (Monday 00:00).
  int64_t start_minute() const { return 0; }

  /// Generates gateway `gateway_id` in [0, n_gateways).
  GatewayTrace Generate(int gateway_id) const;

  /// Convenience: generates every gateway (small configs/tests only).
  std::vector<GatewayTrace> GenerateAll() const;

 private:
  SimConfig config_;
  Rng master_;
};

}  // namespace homets::simgen

#endif  // HOMETS_SIMGEN_FLEET_H_
