#ifndef HOMETS_SIMGEN_TYPES_H_
#define HOMETS_SIMGEN_TYPES_H_

#include <optional>
#include <string>
#include <vector>

#include "ts/time_series.h"

namespace homets::simgen {

/// \brief Device categories used by the paper (Section 3). `kUnlabeled` only
/// occurs as a *reported* type: the paper's MAC/name heuristic fails on some
/// devices, which the simulator reproduces with a label-corruption model.
enum class DeviceType {
  kPortable,
  kFixed,
  kNetworkEquipment,
  kGameConsole,
  kUnlabeled,
};

/// \brief Short name used in reports ("portable", "fixed", ...).
std::string DeviceTypeName(DeviceType type);

/// \brief A single wireless device's trace as the gateway reports it.
///
/// Per-minute byte counters; a minute is missing (NaN) when the device was
/// not connected or the gateway was not reporting.
struct DeviceTrace {
  std::string name;                 ///< e.g. "gw042-dev3"
  DeviceType true_type = DeviceType::kPortable;
  DeviceType reported_type = DeviceType::kPortable;  ///< after label noise
  ts::TimeSeries incoming;          ///< received bytes per minute
  ts::TimeSeries outgoing;          ///< transmitted bytes per minute

  /// Total (incoming + outgoing) traffic series.
  ts::TimeSeries TotalTraffic() const;
};

/// \brief One residential gateway's full trace.
struct GatewayTrace {
  int id = 0;
  std::vector<DeviceTrace> devices;
  /// Number of residents, known only for surveyed gateways (the paper has a
  /// 49-home survey).
  std::optional<int> surveyed_residents;
  /// Simulator ground truth: the home was generated with low week-to-week
  /// behavioral drift. Real deployments have no such label — use it only to
  /// evaluate detectors, never inside them.
  bool regular_home = false;

  /// Aggregated gateway traffic: sum of total traffic over devices. Missing
  /// only where no device reported (gateway offline).
  ts::TimeSeries AggregateTraffic() const;

  /// Aggregated traffic split by direction.
  ts::TimeSeries AggregateIncoming() const;
  ts::TimeSeries AggregateOutgoing() const;

  /// Per-minute count of connected (reporting) devices; missing where the
  /// gateway was offline.
  ts::TimeSeries ConnectedDeviceCount() const;

  /// True if every one of the `weeks` weekly windows starting at
  /// `start_minute` has at least one observation (the paper's eligibility
  /// filter for weekly analyses).
  bool HasObservationEveryWeek(int64_t start_minute, int weeks) const;

  /// True if every one of the `days` daily windows has at least one
  /// observation (eligibility for daily analyses).
  bool HasObservationEveryDay(int64_t start_minute, int days) const;
};

}  // namespace homets::simgen

#endif  // HOMETS_SIMGEN_TYPES_H_
