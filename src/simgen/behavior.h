#ifndef HOMETS_SIMGEN_BEHAVIOR_H_
#define HOMETS_SIMGEN_BEHAVIOR_H_

#include <array>
#include <string>

#include "ts/time_series.h"

namespace homets::simgen {

/// \brief Resident behavior archetypes.
///
/// Each profile is a deterministic hour-of-week activity template; residents
/// drive their devices' active sessions through a profile. These archetypes
/// are what make the paper's motif families emerge: evening profiles yield
/// the "late evening users" daily motif, weekend-heavy profiles the "heavy
/// weekend users" weekly motif, all-day profiles the fixed-device "all day
/// users" motif, and so on.
enum class ProfileKind {
  kEvening,         ///< active 18:00–23:00 every day
  kMorningEvening,  ///< bimodal: 07:00–09:00 and 19:00–23:00
  kWorkday,         ///< weekday working hours (home office / fixed device)
  kWeekendHeavy,    ///< light weekdays, heavy Saturday/Sunday
  kAllDay,          ///< sustained day-and-evening usage (fixed devices)
  kNightOwl,        ///< 22:00–03:00 — the night-active homes the paper notes
};

inline constexpr int kProfileKindCount = 6;

/// \brief Short profile name for reports.
std::string ProfileKindName(ProfileKind kind);

/// \brief Hour-of-week activity template, one weight per (day, hour).
///
/// Weights are relative session-arrival intensities in [0, 1]; 0 means the
/// resident never starts sessions in that hour.
class BehaviorProfile {
 public:
  explicit BehaviorProfile(ProfileKind kind);

  ProfileKind kind() const { return kind_; }

  /// Weight for an absolute minute since the Monday epoch.
  double WeightAt(int64_t minute) const {
    const int day = static_cast<int>(ts::DayOfWeekAt(minute));
    const int hour = static_cast<int>(ts::MinuteOfDay(minute) /
                                      ts::kMinutesPerHour);
    return weights_[static_cast<size_t>(day)][static_cast<size_t>(hour)];
  }

  /// Raw template access (day 0 = Monday).
  const std::array<std::array<double, 24>, 7>& weights() const {
    return weights_;
  }

 private:
  ProfileKind kind_;
  std::array<std::array<double, 24>, 7> weights_{};
};

}  // namespace homets::simgen

#endif  // HOMETS_SIMGEN_BEHAVIOR_H_
