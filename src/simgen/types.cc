#include "simgen/types.h"

namespace homets::simgen {

std::string DeviceTypeName(DeviceType type) {
  switch (type) {
    case DeviceType::kPortable:
      return "portable";
    case DeviceType::kFixed:
      return "fixed";
    case DeviceType::kNetworkEquipment:
      return "network_equipment";
    case DeviceType::kGameConsole:
      return "game_console";
    case DeviceType::kUnlabeled:
      return "unlabeled";
  }
  return "unlabeled";
}

ts::TimeSeries DeviceTrace::TotalTraffic() const {
  auto sum = ts::TimeSeries::Add(incoming, outgoing);
  // incoming/outgoing are generated on one grid; Add cannot fail here.
  return sum.ok() ? std::move(sum).value() : incoming;
}

namespace {

ts::TimeSeries SumSeries(const std::vector<ts::TimeSeries>& parts) {
  ts::TimeSeries total;
  bool first = true;
  for (const auto& part : parts) {
    if (part.empty()) continue;
    if (first) {
      total = part;
      first = false;
      continue;
    }
    auto sum = ts::TimeSeries::Add(total, part);
    if (sum.ok()) total = std::move(sum).value();
  }
  return total;
}

}  // namespace

ts::TimeSeries GatewayTrace::AggregateTraffic() const {
  std::vector<ts::TimeSeries> parts;
  parts.reserve(devices.size());
  for (const auto& dev : devices) parts.push_back(dev.TotalTraffic());
  return SumSeries(parts);
}

ts::TimeSeries GatewayTrace::AggregateIncoming() const {
  std::vector<ts::TimeSeries> parts;
  parts.reserve(devices.size());
  for (const auto& dev : devices) parts.push_back(dev.incoming);
  return SumSeries(parts);
}

ts::TimeSeries GatewayTrace::AggregateOutgoing() const {
  std::vector<ts::TimeSeries> parts;
  parts.reserve(devices.size());
  for (const auto& dev : devices) parts.push_back(dev.outgoing);
  return SumSeries(parts);
}

ts::TimeSeries GatewayTrace::ConnectedDeviceCount() const {
  const ts::TimeSeries agg = AggregateTraffic();
  if (agg.empty()) return agg;
  std::vector<double> counts(agg.size(), ts::TimeSeries::Missing());
  for (const auto& dev : devices) {
    const ts::TimeSeries total = dev.TotalTraffic();
    const int64_t offset =
        (total.start_minute() - agg.start_minute()) / agg.step_minutes();
    for (size_t i = 0; i < total.size(); ++i) {
      if (ts::TimeSeries::IsMissing(total[i])) continue;
      const size_t slot = static_cast<size_t>(offset) + i;
      if (slot >= counts.size()) continue;
      counts[slot] =
          ts::TimeSeries::IsMissing(counts[slot]) ? 1.0 : counts[slot] + 1.0;
    }
  }
  return ts::TimeSeries(agg.start_minute(), agg.step_minutes(),
                        std::move(counts));
}

bool GatewayTrace::HasObservationEveryWeek(int64_t start_minute,
                                           int weeks) const {
  const ts::TimeSeries agg = AggregateTraffic();
  if (agg.empty()) return false;
  for (int w = 0; w < weeks; ++w) {
    const int64_t begin = start_minute + w * ts::kMinutesPerWeek;
    const int64_t end = begin + ts::kMinutesPerWeek;
    auto window = agg.Slice(std::max(begin, agg.start_minute()),
                            std::min(end, agg.EndMinute()));
    if (!window.ok() || window->CountObserved() == 0) return false;
  }
  return true;
}

bool GatewayTrace::HasObservationEveryDay(int64_t start_minute,
                                          int days) const {
  const ts::TimeSeries agg = AggregateTraffic();
  if (agg.empty()) return false;
  for (int d = 0; d < days; ++d) {
    const int64_t begin = start_minute + d * ts::kMinutesPerDay;
    const int64_t end = begin + ts::kMinutesPerDay;
    auto window = agg.Slice(std::max(begin, agg.start_minute()),
                            std::min(end, agg.EndMinute()));
    if (!window.ok() || window->CountObserved() == 0) return false;
  }
  return true;
}

}  // namespace homets::simgen
