#include "simgen/fleet.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "simgen/behavior.h"

namespace homets::simgen {

namespace {

constexpr double kMaxPerMinuteBytes = 3.0e7;  // matches Figure 1's axis

// A resident drives sessions on its devices through a behavior profile.
struct Resident {
  BehaviorProfile profile{ProfileKind::kEvening};
  double intensity = 0.5;               ///< peak sessions/hour
  int hour_shift = 0;                   ///< personal offset of the template
  std::vector<double> week_modulation;  ///< per-week activity scaling
  std::vector<double> day_modulation;   ///< per-day activity scaling

  double WeightAt(int64_t minute) const {
    return profile.WeightAt(minute - hour_shift * ts::kMinutesPerHour);
  }
};

// Static description of a device prior to trace synthesis.
struct DevicePlan {
  DeviceType type = DeviceType::kPortable;
  int resident = -1;          ///< driving resident index; −1 = none
  double session_share = 1.0; ///< fraction of the resident's sessions
  double background_base = 150.0;
  /// Spread of per-session rates. Habitual users (regular homes) stream the
  /// same services at consistent bitrates; without this the heavy-tailed
  /// volumes dominate window sums and no home can be strongly stationary.
  double rate_sigma = 1.3;
  /// Spread of session durations; habitual users watch/play for consistent
  /// stretches.
  double duration_sigma = 0.8;
  bool is_guest = false;
  int64_t guest_begin = 0;    ///< guest visit window (minutes)
  int64_t guest_end = 0;
};

Resident MakeResident(Rng* rng, bool regular_home, const SimConfig& config,
                      int weeks_horizon_days) {
  Resident r;
  const size_t kind = rng->Categorical({0.30, 0.20, 0.15, 0.15, 0.10, 0.10});
  r.profile = BehaviorProfile(static_cast<ProfileKind>(kind));
  r.intensity = rng->LogNormal(std::log(0.25), 0.35);
  // Regular homes are not only less modulated but also more intensive: the
  // law of large numbers then makes their window sums repeat week to week.
  if (regular_home) r.intensity *= 3.5;
  // Residents of the same home do not share one clock: stagger each
  // resident's template by up to ±2 hours so their devices decorrelate.
  r.hour_shift = static_cast<int>(rng->UniformInt(5)) - 2;
  const double week_sigma = regular_home ? 0.05 : 0.55;
  const double day_sigma = regular_home ? 0.07 : 0.60;
  // Humans are bursty: outside the regular homes, a resident skips whole
  // days of online activity (travel, busy days) — the inhomogeneity the
  // paper stresses in Sections 2 and 4.
  const double skip_day_prob = regular_home ? 0.02 : 0.22;
  r.week_modulation.resize(static_cast<size_t>(config.weeks));
  for (auto& m : r.week_modulation) m = rng->LogNormal(0.0, week_sigma);
  r.day_modulation.resize(static_cast<size_t>(weeks_horizon_days));
  for (auto& m : r.day_modulation) {
    m = rng->Bernoulli(skip_day_prob) ? 0.0 : rng->LogNormal(0.0, day_sigma);
  }
  return r;
}

double BackgroundBase(Rng* rng, DeviceType type) {
  switch (type) {
    case DeviceType::kPortable:
      return rng->LogNormal(std::log(150.0), 0.7);
    case DeviceType::kFixed: {
      double base = rng->LogNormal(std::log(2500.0), 0.8);
      // A small "chatty" tail of fixed devices (many background apps) whose
      // τ lands above 40 kB/min, as in Figure 4.
      if (rng->Bernoulli(0.04)) base *= 8.0;
      return base;
    }
    case DeviceType::kNetworkEquipment:
      return rng->LogNormal(std::log(800.0), 0.6);
    case DeviceType::kGameConsole:
      return rng->LogNormal(std::log(200.0), 0.8);
    case DeviceType::kUnlabeled:
      break;
  }
  return 150.0;
}

DeviceType CorruptLabel(Rng* rng, DeviceType true_type, double unlabeled_prob) {
  return rng->Bernoulli(unlabeled_prob) ? DeviceType::kUnlabeled : true_type;
}

// Fraction of connected *hours* in which the device's radio stays mostly
// silent. Background chatter comes in hour-scale bouts (mail sync, app
// refresh, cloud backup) rather than as a continuous hum; battery-powered
// gear sleeps aggressively, wired gear chats more. Beyond realism this
// matters statistically: independent per-device bouts decorrelate each
// device's idle traffic from the gateway aggregate, which keeps
// Definition 4 from crowning every always-on device dominant.
double RadioQuietHourProbability(DeviceType type) {
  switch (type) {
    case DeviceType::kPortable:
      return 0.55;
    case DeviceType::kGameConsole:
      return 0.75;
    case DeviceType::kFixed:
      return 0.25;
    case DeviceType::kNetworkEquipment:
      return 0.10;
    case DeviceType::kUnlabeled:
      break;
  }
  return 0.5;
}

}  // namespace

Status ValidateSimConfig(const SimConfig& config) {
  if (config.n_gateways <= 0) {
    return Status::InvalidArgument("SimConfig: n_gateways must be positive");
  }
  if (config.weeks <= 0) {
    return Status::InvalidArgument("SimConfig: weeks must be positive");
  }
  const auto is_prob = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!is_prob(config.long_outage_prob) ||
      !is_prob(config.unreliable_daily_prob) ||
      !is_prob(config.unlabeled_prob) || !is_prob(config.regular_home_prob)) {
    return Status::InvalidArgument("SimConfig: probabilities must be in [0, 1]");
  }
  if (config.surveyed_gateways < 0 ||
      config.surveyed_gateways > config.n_gateways) {
    return Status::InvalidArgument(
        "SimConfig: surveyed_gateways must be within [0, n_gateways]");
  }
  return Status::OK();
}

FleetGenerator::FleetGenerator(SimConfig config)
    : config_(config), master_(config.seed) {}

std::vector<GatewayTrace> FleetGenerator::GenerateAll() const {
  std::vector<GatewayTrace> fleet;
  fleet.reserve(static_cast<size_t>(config_.n_gateways));
  for (int id = 0; id < config_.n_gateways; ++id) fleet.push_back(Generate(id));
  return fleet;
}

GatewayTrace FleetGenerator::Generate(int gateway_id) const {
  Rng rng = master_.Fork(static_cast<uint64_t>(gateway_id) + 1);
  const int64_t horizon = config_.HorizonMinutes();
  const int n_days = config_.weeks * ts::kDaysPerWeek;

  GatewayTrace gw;
  gw.id = gateway_id;

  // --- Household composition --------------------------------------------
  const int n_residents =
      1 + static_cast<int>(rng.Categorical({0.35, 0.40, 0.15, 0.10}));
  if (gateway_id < config_.surveyed_gateways) {
    gw.surveyed_residents = n_residents;
  }
  const bool regular_home = rng.Bernoulli(config_.regular_home_prob);
  gw.regular_home = regular_home;

  std::vector<Resident> residents;
  residents.reserve(static_cast<size_t>(n_residents));
  for (int r = 0; r < n_residents; ++r) {
    residents.push_back(MakeResident(&rng, regular_home, config_, n_days));
  }
  // Resident 0 is the household's heaviest user; their main device becomes
  // the natural dominant device of the gateway. Other residents are lighter
  // and less regular, so their devices rarely co-dominate.
  residents[0].intensity *= 2.0;
  for (size_t r = 1; r < residents.size(); ++r) {
    residents[r].intensity *= 0.55;
    if (!regular_home) {
      for (auto& m : residents[r].day_modulation) {
        m *= rng.LogNormal(0.0, 0.35);
      }
    }
  }

  // --- Gateway reporting availability -------------------------------------
  std::vector<bool> reported(static_cast<size_t>(horizon), true);
  if (rng.Bernoulli(config_.long_outage_prob)) {
    const int outage_weeks = 1 + static_cast<int>(rng.UniformInt(2));
    const int start_week = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(config_.weeks)));
    const int64_t begin = static_cast<int64_t>(start_week) * ts::kMinutesPerWeek;
    const int64_t end =
        std::min(horizon, begin + outage_weeks * ts::kMinutesPerWeek);
    for (int64_t m = begin; m < end; ++m) reported[static_cast<size_t>(m)] = false;
  }
  if (rng.Bernoulli(config_.unreliable_daily_prob)) {
    const int missing_days = 1 + static_cast<int>(rng.UniformInt(4));
    for (int k = 0; k < missing_days; ++k) {
      const int day = static_cast<int>(
          rng.UniformInt(static_cast<uint64_t>(n_days)));
      const int64_t begin = static_cast<int64_t>(day) * ts::kMinutesPerDay;
      const int64_t end = std::min(horizon, begin + ts::kMinutesPerDay);
      for (int64_t m = begin; m < end; ++m) {
        reported[static_cast<size_t>(m)] = false;
      }
    }
  }

  // --- Device plans --------------------------------------------------------
  std::vector<DevicePlan> plans;
  for (int r = 0; r < n_residents; ++r) {
    DevicePlan primary;
    primary.type = DeviceType::kPortable;
    primary.resident = r;
    primary.session_share = 1.0;
    plans.push_back(primary);
    if (rng.Bernoulli(0.6)) {
      DevicePlan secondary;
      secondary.type =
          rng.Bernoulli(0.7) ? DeviceType::kPortable : DeviceType::kFixed;
      secondary.resident = r;
      secondary.session_share = 0.35;
      plans.back().session_share = 0.65;  // split the resident's sessions
      plans.push_back(secondary);
    }
  }
  // Shared household gear scales with household size: a single person's
  // "shared" computer is just their own second device, while families
  // almost always have one.
  if (rng.Bernoulli(n_residents == 1 ? 0.45 : 0.85)) {
    // Shared household computer/TV, driven by an extra all-day/workday
    // pseudo-resident.
    DevicePlan shared;
    shared.type = DeviceType::kFixed;
    shared.resident = n_residents;  // pseudo-resident appended below
    shared.session_share = 1.0;
    plans.push_back(shared);
    Resident pseudo = MakeResident(&rng, regular_home, config_, n_days);
    pseudo.profile = BehaviorProfile(rng.Bernoulli(0.6) ? ProfileKind::kAllDay
                                                        : ProfileKind::kWorkday);
    pseudo.intensity = rng.LogNormal(std::log(0.35), 0.3);
    residents.push_back(pseudo);
  }
  if (rng.Bernoulli(0.25)) {
    DevicePlan net;
    net.type = DeviceType::kNetworkEquipment;
    plans.push_back(net);
  }
  if (rng.Bernoulli(0.10)) {
    DevicePlan console;
    console.type = DeviceType::kGameConsole;
    console.resident = static_cast<int>(rng.UniformInt(
        static_cast<uint64_t>(n_residents)));
    console.session_share = 0.25;
    plans.push_back(console);
  }
  if (regular_home) {
    for (auto& plan : plans) {
      plan.rate_sigma = 0.35;
      plan.duration_sigma = 0.35;
    }
  }
  // Sporadic guest devices: single visit window, no recurring pattern.
  const int n_guests = rng.Poisson(0.8);
  for (int g = 0; g < n_guests; ++g) {
    DevicePlan guest;
    guest.type = DeviceType::kPortable;
    guest.is_guest = true;
    const int day = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(n_days)));
    const int64_t visit_start = static_cast<int64_t>(day) * ts::kMinutesPerDay +
                                (14 + static_cast<int64_t>(rng.UniformInt(5))) *
                                    ts::kMinutesPerHour;
    guest.guest_begin = visit_start;
    guest.guest_end = std::min(
        horizon, visit_start + (2 + static_cast<int64_t>(rng.UniformInt(5))) *
                                   ts::kMinutesPerHour);
    plans.push_back(guest);
  }

  // --- Trace synthesis -----------------------------------------------------
  int device_index = 0;
  for (const DevicePlan& plan : plans) {
    Rng dev_rng = rng.Fork(static_cast<uint64_t>(device_index) + 101);
    DeviceTrace dev;
    dev.name = StrFormat("gw%03d-dev%d", gateway_id, device_index);
    dev.true_type = plan.type;
    dev.reported_type =
        CorruptLabel(&dev_rng, plan.type, config_.unlabeled_prob);
    const double background_base = BackgroundBase(&dev_rng, plan.type);
    const double out_ratio = dev_rng.Uniform(0.05, 0.20);
    // Direction split of background traffic; a small class of fixed devices
    // is upload-heavy (NAS/backup gear), which produces the large-τ outgoing
    // tail of Figure 4.
    double bg_in_share = dev_rng.Uniform(0.6, 0.9);
    double uploader_boost = 1.0;
    if (plan.type == DeviceType::kFixed && dev_rng.Bernoulli(0.07)) {
      bg_in_share = dev_rng.Uniform(0.15, 0.3);
      uploader_boost = 6.0;  // sync/backup chatter dwarfs normal idle traffic
    }

    std::vector<double> incoming(static_cast<size_t>(horizon),
                                 ts::TimeSeries::Missing());
    std::vector<double> outgoing(static_cast<size_t>(horizon),
                                 ts::TimeSeries::Missing());
    std::vector<double> active(static_cast<size_t>(horizon), 0.0);

    // Connection state per hour: fixed-type gear is always on; portables are
    // on when the driving resident is plausibly home, with random flapping
    // elsewhere (this keeps the connected-count/traffic correlation low, as
    // in Section 4.2c).
    const int64_t n_hours = horizon / ts::kMinutesPerHour;
    std::vector<bool> connected_hour(static_cast<size_t>(n_hours), true);
    if (plan.is_guest) {
      for (int64_t h = 0; h < n_hours; ++h) {
        const int64_t m = h * ts::kMinutesPerHour;
        connected_hour[static_cast<size_t>(h)] =
            m >= plan.guest_begin && m < plan.guest_end;
      }
    } else if (plan.type == DeviceType::kPortable && plan.resident >= 0) {
      const Resident& res = residents[static_cast<size_t>(plan.resident)];
      for (int64_t h = 0; h < n_hours; ++h) {
        const int64_t m = h * ts::kMinutesPerHour;
        const int hour_of_day =
            static_cast<int>(ts::MinuteOfDay(m) / ts::kMinutesPerHour);
        const bool home_hours = hour_of_day >= 17 || hour_of_day < 9 ||
                                ts::IsWeekend(ts::DayOfWeekAt(m));
        const bool profile_active = res.WeightAt(m) > 0.0;
        connected_hour[static_cast<size_t>(h)] =
            home_hours || profile_active || dev_rng.Bernoulli(0.25);
      }
    }

    // Hour-scale background bouts, independent across devices.
    std::vector<bool> chatty_hour(static_cast<size_t>(n_hours), true);
    {
      const double quiet_prob = RadioQuietHourProbability(plan.type);
      for (int64_t h = 0; h < n_hours; ++h) {
        chatty_hour[static_cast<size_t>(h)] = !dev_rng.Bernoulli(quiet_prob);
      }
    }

    // Active sessions (inhomogeneous Poisson arrivals).
    if (plan.resident >= 0 &&
        static_cast<size_t>(plan.resident) < residents.size()) {
      const Resident& res = residents[static_cast<size_t>(plan.resident)];
      for (int64_t m = 0; m < horizon; ++m) {
        const size_t hour = static_cast<size_t>(m / ts::kMinutesPerHour);
        if (!connected_hour[hour]) continue;
        const size_t week = static_cast<size_t>(m / ts::kMinutesPerWeek);
        const size_t day = static_cast<size_t>(m / ts::kMinutesPerDay);
        const double weight = res.WeightAt(m);
        if (weight <= 0.0) continue;
        const double p = weight * res.intensity * res.week_modulation[week] *
                         res.day_modulation[day] * plan.session_share / 60.0;
        if (!dev_rng.Bernoulli(std::min(p, 0.5))) continue;
        // Session: heavy-tailed duration and rate.
        const int64_t duration = std::min<int64_t>(
            240, 5 + static_cast<int64_t>(dev_rng.LogNormal(
                         std::log(20.0), plan.duration_sigma)));
        double rate = dev_rng.LogNormal(std::log(4.0e5), plan.rate_sigma);
        rate = std::min(rate, 2.4e7);
        const int64_t end = std::min(horizon, m + duration);
        for (int64_t t = m; t < end; ++t) {
          active[static_cast<size_t>(t)] +=
              rate * dev_rng.LogNormal(0.0, 0.35);
        }
      }
    } else if (plan.is_guest) {
      for (int64_t m = plan.guest_begin; m < plan.guest_end; ++m) {
        if (m < 0 || m >= horizon) continue;
        if (!dev_rng.Bernoulli(0.006)) continue;
        const int64_t duration = 3 + static_cast<int64_t>(dev_rng.UniformInt(12));
        const double rate = dev_rng.LogNormal(std::log(5.0e4), 1.0);
        const int64_t end = std::min(plan.guest_end, m + duration);
        for (int64_t t = m; t < end; ++t) {
          active[static_cast<size_t>(t)] +=
              rate * dev_rng.LogNormal(0.0, 0.35);
        }
      }
    }

    // Fill counters: background + active while connected and reported.
    for (int64_t m = 0; m < horizon; ++m) {
      if (!reported[static_cast<size_t>(m)]) continue;
      const size_t hour = static_cast<size_t>(m / ts::kMinutesPerHour);
      if (!connected_hour[hour]) continue;
      double background = 0.0;
      if (chatty_hour[hour] && !dev_rng.Bernoulli(0.2)) {
        background = background_base * dev_rng.LogNormal(0.0, 0.9);
      } else if (dev_rng.Bernoulli(0.05)) {
        // Keep-alive beacons even in quiet hours.
        background = 0.1 * background_base * dev_rng.LogNormal(0.0, 0.5);
      }
      if (dev_rng.Bernoulli(0.0008)) {  // occasional OS/app update burst
        background += dev_rng.LogNormal(std::log(3.0e5), 0.8);
      }
      const double act = active[static_cast<size_t>(m)];
      background *= uploader_boost;
      double in_bytes = background * bg_in_share + act;
      double out_bytes = background * (1.0 - bg_in_share) +
                         act * out_ratio * dev_rng.LogNormal(0.0, 0.25);
      in_bytes = std::min(in_bytes, kMaxPerMinuteBytes);
      out_bytes = std::min(out_bytes, kMaxPerMinuteBytes);
      incoming[static_cast<size_t>(m)] = in_bytes;
      outgoing[static_cast<size_t>(m)] = out_bytes;
    }

    dev.incoming = ts::TimeSeries(0, 1, std::move(incoming));
    dev.outgoing = ts::TimeSeries(0, 1, std::move(outgoing));
    gw.devices.push_back(std::move(dev));
    ++device_index;
  }
  return gw;
}

}  // namespace homets::simgen
