#include "simgen/behavior.h"

namespace homets::simgen {

std::string ProfileKindName(ProfileKind kind) {
  switch (kind) {
    case ProfileKind::kEvening:
      return "evening";
    case ProfileKind::kMorningEvening:
      return "morning_evening";
    case ProfileKind::kWorkday:
      return "workday";
    case ProfileKind::kWeekendHeavy:
      return "weekend_heavy";
    case ProfileKind::kAllDay:
      return "all_day";
    case ProfileKind::kNightOwl:
      return "night_owl";
  }
  return "evening";
}

namespace {

void FillHours(std::array<double, 24>* day, int from, int to, double w) {
  // [from, to) with wrap-around across midnight; `to` is taken modulo 24 so
  // that 24 means "until midnight".
  from %= 24;
  to %= 24;
  int h = from;
  do {
    (*day)[static_cast<size_t>(h)] = w;
    h = (h + 1) % 24;
  } while (h != to);
}

}  // namespace

BehaviorProfile::BehaviorProfile(ProfileKind kind) : kind_(kind) {
  for (auto& day : weights_) day.fill(0.0);
  switch (kind) {
    case ProfileKind::kEvening:
      for (int d = 0; d < 7; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 18, 23, 1.0);
        FillHours(&weights_[static_cast<size_t>(d)], 17, 18, 0.4);
        FillHours(&weights_[static_cast<size_t>(d)], 23, 0, 0.3);
      }
      break;
    case ProfileKind::kMorningEvening:
      for (int d = 0; d < 7; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 7, 9, 0.9);
        FillHours(&weights_[static_cast<size_t>(d)], 19, 23, 1.0);
      }
      break;
    case ProfileKind::kWorkday:
      for (int d = 0; d < 5; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 9, 18, 1.0);
        FillHours(&weights_[static_cast<size_t>(d)], 18, 21, 0.3);
      }
      // Quiet weekends: occasional light usage.
      FillHours(&weights_[5], 10, 20, 0.15);
      FillHours(&weights_[6], 10, 20, 0.15);
      break;
    case ProfileKind::kWeekendHeavy:
      for (int d = 0; d < 5; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 19, 22, 0.25);
      }
      FillHours(&weights_[5], 9, 24, 1.0);   // Saturday
      FillHours(&weights_[6], 9, 23, 1.0);   // Sunday
      // Friday evening ramps into the weekend.
      FillHours(&weights_[4], 19, 24, 0.8);
      break;
    case ProfileKind::kAllDay:
      for (int d = 0; d < 7; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 8, 24, 0.8);
        FillHours(&weights_[static_cast<size_t>(d)], 0, 2, 0.4);
      }
      break;
    case ProfileKind::kNightOwl:
      for (int d = 0; d < 7; ++d) {
        FillHours(&weights_[static_cast<size_t>(d)], 22, 24, 1.0);
        FillHours(&weights_[static_cast<size_t>(d)], 0, 3, 0.9);
      }
      break;
  }
}

}  // namespace homets::simgen
