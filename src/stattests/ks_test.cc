#include "stattests/ks_test.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace homets::stattests {

Result<KsTest> KolmogorovSmirnov(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  std::vector<double> xs, ys;
  xs.reserve(a.size());
  ys.reserve(b.size());
  for (double v : a) {
    if (!std::isnan(v)) xs.push_back(v);
  }
  for (double v : b) {
    if (!std::isnan(v)) ys.push_back(v);
  }
  if (xs.size() < 2 || ys.size() < 2) {
    return Status::InvalidArgument(
        "KolmogorovSmirnov: need >= 2 observations per sample");
  }
  std::sort(xs.begin(), xs.end());
  std::sort(ys.begin(), ys.end());

  // Walk the two sorted samples in merge order tracking the ECDF gap.
  double d = 0.0;
  size_t i = 0, j = 0;
  const double n1 = static_cast<double>(xs.size());
  const double n2 = static_cast<double>(ys.size());
  while (i < xs.size() && j < ys.size()) {
    const double x1 = xs[i];
    const double x2 = ys[j];
    if (x1 <= x2) {
      while (i < xs.size() && xs[i] == x1) ++i;
    }
    if (x2 <= x1) {
      while (j < ys.size() && ys[j] == x2) ++j;
    }
    const double f1 = static_cast<double>(i) / n1;
    const double f2 = static_cast<double>(j) / n2;
    d = std::max(d, std::fabs(f1 - f2));
  }

  KsTest test;
  test.statistic = d;
  test.n1 = xs.size();
  test.n2 = ys.size();
  const double ne = n1 * n2 / (n1 + n2);
  const double sqrt_ne = std::sqrt(ne);
  // Stephens' small-sample correction to the asymptotic distribution.
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  test.p_value = stats::KolmogorovQ(lambda);
  return test;
}

}  // namespace homets::stattests
