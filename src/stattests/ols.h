#ifndef HOMETS_STATTESTS_OLS_H_
#define HOMETS_STATTESTS_OLS_H_

#include <vector>

#include "common/status.h"

namespace homets::stattests {

/// \brief Ordinary least squares fit of y on a design matrix X.
///
/// Small dense problems only (the ADF regression has a handful of
/// regressors), solved by normal equations with partial-pivot Gaussian
/// elimination.
struct OlsFit {
  std::vector<double> coefficients;    ///< β̂, one per design column
  std::vector<double> standard_errors; ///< se(β̂)
  double sigma2 = 0.0;                 ///< residual variance (n − k dof)
  double rss = 0.0;                    ///< residual sum of squares
  size_t n = 0;                        ///< observations
  size_t k = 0;                        ///< regressors

  /// t statistic of coefficient `j`.
  double TStat(size_t j) const {
    return standard_errors[j] > 0.0 ? coefficients[j] / standard_errors[j]
                                    : 0.0;
  }
};

/// \brief Fits y ≈ X β. `x` is row-major with `n_rows` rows of `n_cols`
/// columns; requires n_rows > n_cols and a non-singular X'X.
Result<OlsFit> FitOls(const std::vector<double>& x, size_t n_rows,
                      size_t n_cols, const std::vector<double>& y);

}  // namespace homets::stattests

#endif  // HOMETS_STATTESTS_OLS_H_
