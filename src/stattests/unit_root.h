#ifndef HOMETS_STATTESTS_UNIT_ROOT_H_
#define HOMETS_STATTESTS_UNIT_ROOT_H_

#include <vector>

#include "common/status.h"

namespace homets::stattests {

/// \brief Augmented Dickey–Fuller test (constant, no trend).
///
/// Null hypothesis: the series has a unit root (is non-stationary). The
/// paper (Section 4.2) runs ADF on gateway traffic and finds classical
/// stationarity rejected across the board, motivating the custom "strong
/// stationarity" notion.
struct AdfTest {
  double statistic = 0.0;       ///< t statistic of the lagged level
  size_t lags = 0;              ///< augmentation lags used
  size_t n_obs = 0;             ///< effective regression observations
  double crit_1pct = 0.0;       ///< MacKinnon finite-sample critical values
  double crit_5pct = 0.0;
  double crit_10pct = 0.0;

  /// True when the unit-root null is rejected (series looks stationary) at
  /// the 5% level.
  bool StationaryAt5pct() const { return statistic < crit_5pct; }
  bool StationaryAt1pct() const { return statistic < crit_1pct; }
  bool StationaryAt10pct() const { return statistic < crit_10pct; }
};

/// \brief Runs ADF. `lags < 0` selects the Schwert rule
/// ⌊12 (T/100)^{1/4}⌋. NaNs are mean-imputed. Needs enough observations for
/// the augmented regression.
Result<AdfTest> AugmentedDickeyFuller(const std::vector<double>& x,
                                      int lags = -1);

/// \brief KPSS test for level stationarity.
///
/// Null hypothesis: the series is (level-)stationary — the opposite null of
/// ADF. Long-run variance uses the Bartlett kernel (Newey–West).
struct KpssTest {
  double statistic = 0.0;
  size_t bandwidth = 0;     ///< Newey–West truncation lag
  size_t n_obs = 0;
  double crit_1pct = 0.739;  ///< KPSS (1992) level-case critical values
  double crit_2_5pct = 0.574;
  double crit_5pct = 0.463;
  double crit_10pct = 0.347;

  /// True when the stationarity null is rejected at the 5% level.
  bool RejectedAt5pct() const { return statistic > crit_5pct; }
};

/// \brief Runs KPSS (level case). `bandwidth < 0` selects
/// ⌊4 (T/100)^{1/4}⌋. NaNs are mean-imputed.
Result<KpssTest> Kpss(const std::vector<double>& x, int bandwidth = -1);

/// \brief Ljung–Box portmanteau test for autocorrelation up to lag `h`.
///
/// Null hypothesis: the series is white noise (no autocorrelation).
struct LjungBoxTest {
  double statistic = 0.0;
  double p_value = 1.0;
  size_t lags = 0;

  bool Rejected(double alpha = 0.05) const { return p_value < alpha; }
};

/// \brief Runs Ljung–Box with `h` lags (h >= 1, series length > h + 1).
Result<LjungBoxTest> LjungBox(const std::vector<double>& x, size_t h);

}  // namespace homets::stattests

#endif  // HOMETS_STATTESTS_UNIT_ROOT_H_
