#include "stattests/mann_whitney.h"

#include <cmath>

#include "stats/ranks.h"
#include "stats/special_functions.h"

namespace homets::stattests {

Result<MannWhitneyTest> MannWhitneyU(const std::vector<double>& a,
                                     const std::vector<double>& b) {
  std::vector<double> pooled;
  pooled.reserve(a.size() + b.size());
  size_t n1 = 0, n2 = 0;
  for (double x : a) {
    if (!std::isnan(x)) {
      pooled.push_back(x);
      ++n1;
    }
  }
  for (double x : b) {
    if (!std::isnan(x)) {
      pooled.push_back(x);
      ++n2;
    }
  }
  if (n1 < 2 || n2 < 2) {
    return Status::InvalidArgument(
        "MannWhitneyU: need >= 2 observations per sample");
  }
  const std::vector<double> ranks = stats::AverageRanks(pooled);
  double rank_sum_1 = 0.0;
  for (size_t i = 0; i < n1; ++i) rank_sum_1 += ranks[i];

  const double n1f = static_cast<double>(n1);
  const double n2f = static_cast<double>(n2);
  const double u1 = rank_sum_1 - n1f * (n1f + 1.0) / 2.0;
  const double mean_u = n1f * n2f / 2.0;

  // Tie-corrected variance.
  const double n = n1f + n2f;
  double tie_term = 0.0;
  for (size_t t : stats::TieGroupSizes(pooled)) {
    const double tf = static_cast<double>(t);
    tie_term += tf * tf * tf - tf;
  }
  const double var_u =
      n1f * n2f / 12.0 * ((n + 1.0) - tie_term / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    return Status::ComputeError("MannWhitneyU: all pooled values tied");
  }

  MannWhitneyTest test;
  test.u_statistic = u1;
  test.n1 = n1;
  test.n2 = n2;
  // Continuity correction toward the mean.
  const double diff = u1 - mean_u;
  const double corrected =
      diff > 0.5 ? diff - 0.5 : (diff < -0.5 ? diff + 0.5 : 0.0);
  test.z = corrected / std::sqrt(var_u);
  test.p_value = 2.0 * (1.0 - stats::NormalCdf(std::fabs(test.z)));
  if (test.p_value > 1.0) test.p_value = 1.0;
  return test;
}

}  // namespace homets::stattests
