#ifndef HOMETS_STATTESTS_MANN_WHITNEY_H_
#define HOMETS_STATTESTS_MANN_WHITNEY_H_

#include <vector>

#include "common/status.h"

namespace homets::stattests {

/// \brief Mann–Whitney U test (Wilcoxon rank-sum), two-sided.
///
/// Complements the KS test in the strong-stationarity analysis: KS reacts to
/// any distribution difference, Mann–Whitney specifically to a location
/// shift — useful to tell *how* two traffic windows differ. Tie-corrected
/// normal approximation.
struct MannWhitneyTest {
  double u_statistic = 0.0;  ///< U of the first sample
  double z = 0.0;            ///< standardized statistic
  double p_value = 1.0;
  size_t n1 = 0;
  size_t n2 = 0;

  bool Rejected(double alpha = 0.05) const { return p_value < alpha; }
};

/// \brief Runs the test; NaNs dropped, each sample needs >= 2 observations
/// after dropping, and the pooled sample must not be entirely tied.
Result<MannWhitneyTest> MannWhitneyU(const std::vector<double>& a,
                                     const std::vector<double>& b);

}  // namespace homets::stattests

#endif  // HOMETS_STATTESTS_MANN_WHITNEY_H_
