#ifndef HOMETS_STATTESTS_KS_TEST_H_
#define HOMETS_STATTESTS_KS_TEST_H_

#include <vector>

#include "common/status.h"

namespace homets::stattests {

/// \brief Two-sample Kolmogorov–Smirnov test.
///
/// Non-parametric comparison of two empirical distributions; the paper uses
/// it (Definition 2) to require that a strongly stationary gateway keeps the
/// same traffic distribution across non-overlapping windows, precisely
/// because the traffic is Zipfian rather than normal.
struct KsTest {
  double statistic = 0.0;  ///< D = sup |F₁ − F₂|
  double p_value = 1.0;    ///< asymptotic (Kolmogorov distribution)
  size_t n1 = 0;
  size_t n2 = 0;

  /// True when the "same distribution" null is rejected at `alpha`.
  bool Rejected(double alpha = 0.05) const { return p_value < alpha; }
};

/// \brief Runs the test; NaNs are dropped; each sample needs >= 2
/// observations after dropping.
Result<KsTest> KolmogorovSmirnov(const std::vector<double>& a,
                                 const std::vector<double>& b);

}  // namespace homets::stattests

#endif  // HOMETS_STATTESTS_KS_TEST_H_
