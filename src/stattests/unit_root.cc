#include "stattests/unit_root.h"

#include <cmath>

#include "correlation/acf.h"
#include "stats/special_functions.h"
#include "stattests/ols.h"

namespace homets::stattests {

namespace {

Result<std::vector<double>> ImputedCopy(const std::vector<double>& x) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : x) {
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  if (n < 2) {
    return Status::InvalidArgument("unit root test: too few observations");
  }
  const double mean = sum / static_cast<double>(n);
  std::vector<double> out = x;
  for (double& v : out) {
    if (std::isnan(v)) v = mean;
  }
  return out;
}

// MacKinnon (2010) response-surface critical values for the
// constant-no-trend ADF t statistic: τ(T) = β∞ + β₁/T + β₂/T².
double MacKinnonCritical(double beta_inf, double beta1, double beta2,
                         double t_obs) {
  return beta_inf + beta1 / t_obs + beta2 / (t_obs * t_obs);
}

}  // namespace

Result<AdfTest> AugmentedDickeyFuller(const std::vector<double>& x, int lags) {
  HOMETS_ASSIGN_OR_RETURN(const std::vector<double> y, ImputedCopy(x));
  const size_t n = y.size();
  size_t p;
  if (lags < 0) {
    p = static_cast<size_t>(
        12.0 * std::pow(static_cast<double>(n) / 100.0, 0.25));
  } else {
    p = static_cast<size_t>(lags);
  }
  // Regression sample: t runs over indices where y_{t-1} and p lagged
  // differences exist.
  if (n < p + 10) {
    return Status::InvalidArgument("ADF: series too short for lag order");
  }
  std::vector<double> diff(n - 1);
  for (size_t t = 1; t < n; ++t) diff[t - 1] = y[t] - y[t - 1];

  const size_t first = p + 1;        // first usable t (index into y)
  const size_t rows = n - first;     // observations in the regression
  const size_t cols = 2 + p;         // const, y_{t-1}, p lagged diffs
  if (rows <= cols + 1) {
    return Status::InvalidArgument("ADF: insufficient observations");
  }
  std::vector<double> design(rows * cols);
  std::vector<double> target(rows);
  for (size_t r = 0; r < rows; ++r) {
    const size_t t = first + r;  // current time index into y
    target[r] = diff[t - 1];     // Δy_t
    double* row = &design[r * cols];
    row[0] = 1.0;
    row[1] = y[t - 1];
    for (size_t i = 1; i <= p; ++i) row[1 + i] = diff[t - 1 - i];  // Δy_{t−i}
  }
  HOMETS_ASSIGN_OR_RETURN(const OlsFit fit, FitOls(design, rows, cols, target));

  AdfTest test;
  test.statistic = fit.TStat(1);
  test.lags = p;
  test.n_obs = rows;
  const double t_obs = static_cast<double>(rows);
  test.crit_1pct = MacKinnonCritical(-3.43035, -6.5393, -16.786, t_obs);
  test.crit_5pct = MacKinnonCritical(-2.86154, -2.8903, -4.234, t_obs);
  test.crit_10pct = MacKinnonCritical(-2.56677, -1.5384, -2.809, t_obs);
  return test;
}

Result<KpssTest> Kpss(const std::vector<double>& x, int bandwidth) {
  HOMETS_ASSIGN_OR_RETURN(const std::vector<double> y, ImputedCopy(x));
  const size_t n = y.size();
  if (n < 10) return Status::InvalidArgument("KPSS: need >= 10 observations");
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(n);

  std::vector<double> e(n);
  for (size_t t = 0; t < n; ++t) e[t] = y[t] - mean;

  // Partial sums and their squared total.
  double s = 0.0;
  double sum_s2 = 0.0;
  for (size_t t = 0; t < n; ++t) {
    s += e[t];
    sum_s2 += s * s;
  }

  size_t l;
  if (bandwidth < 0) {
    l = static_cast<size_t>(
        4.0 * std::pow(static_cast<double>(n) / 100.0, 0.25));
  } else {
    l = static_cast<size_t>(bandwidth);
  }
  if (l >= n) l = n - 1;

  // Newey–West long-run variance with Bartlett weights.
  double gamma0 = 0.0;
  for (double v : e) gamma0 += v * v;
  gamma0 /= static_cast<double>(n);
  double lrv = gamma0;
  for (size_t k = 1; k <= l; ++k) {
    double gk = 0.0;
    for (size_t t = k; t < n; ++t) gk += e[t] * e[t - k];
    gk /= static_cast<double>(n);
    const double w = 1.0 - static_cast<double>(k) / static_cast<double>(l + 1);
    lrv += 2.0 * w * gk;
  }
  if (lrv <= 0.0) return Status::ComputeError("KPSS: non-positive variance");

  KpssTest test;
  test.statistic =
      sum_s2 / (static_cast<double>(n) * static_cast<double>(n) * lrv);
  test.bandwidth = l;
  test.n_obs = n;
  return test;
}

Result<LjungBoxTest> LjungBox(const std::vector<double>& x, size_t h) {
  if (h == 0) return Status::InvalidArgument("LjungBox: h must be >= 1");
  if (x.size() < h + 2) {
    return Status::InvalidArgument("LjungBox: series too short");
  }
  HOMETS_ASSIGN_OR_RETURN(const auto acf, correlation::Acf(x, h));
  const double n = static_cast<double>(x.size());
  double q = 0.0;
  for (size_t k = 1; k <= h; ++k) {
    q += acf.acf[k] * acf.acf[k] / (n - static_cast<double>(k));
  }
  q *= n * (n + 2.0);
  LjungBoxTest test;
  test.statistic = q;
  test.lags = h;
  test.p_value = 1.0 - stats::ChiSquaredCdf(q, static_cast<double>(h));
  return test;
}

}  // namespace homets::stattests
