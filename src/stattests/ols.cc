#include "stattests/ols.h"

#include <cmath>

namespace homets::stattests {

namespace {

// Solves A z = b in place (A is k×k row-major) by Gaussian elimination with
// partial pivoting. Returns false on (near-)singularity. On success A holds
// junk and b holds the solution.
bool SolveInPlace(std::vector<double>* a, std::vector<double>* b, size_t k) {
  auto at = [&](size_t r, size_t c) -> double& { return (*a)[r * k + c]; };
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    double best = std::fabs(at(col, col));
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(at(r, col)) > best) {
        best = std::fabs(at(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) return false;
    if (pivot != col) {
      for (size_t c = 0; c < k; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap((*b)[pivot], (*b)[col]);
    }
    for (size_t r = col + 1; r < k; ++r) {
      const double factor = at(r, col) / at(col, col);
      if (factor == 0.0) continue;
      for (size_t c = col; c < k; ++c) at(r, c) -= factor * at(col, c);
      (*b)[r] -= factor * (*b)[col];
    }
  }
  for (size_t col = k; col-- > 0;) {
    double sum = (*b)[col];
    for (size_t c = col + 1; c < k; ++c) sum -= at(col, c) * (*b)[c];
    (*b)[col] = sum / at(col, col);
  }
  return true;
}

// Inverts A (k×k row-major) via Gauss-Jordan; returns empty on singularity.
std::vector<double> Invert(std::vector<double> a, size_t k) {
  std::vector<double> inv(k * k, 0.0);
  for (size_t i = 0; i < k; ++i) inv[i * k + i] = 1.0;
  auto at = [&](std::vector<double>& m, size_t r, size_t c) -> double& {
    return m[r * k + c];
  };
  for (size_t col = 0; col < k; ++col) {
    size_t pivot = col;
    double best = std::fabs(at(a, col, col));
    for (size_t r = col + 1; r < k; ++r) {
      if (std::fabs(at(a, r, col)) > best) {
        best = std::fabs(at(a, r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) return {};
    if (pivot != col) {
      for (size_t c = 0; c < k; ++c) {
        std::swap(at(a, pivot, c), at(a, col, c));
        std::swap(at(inv, pivot, c), at(inv, col, c));
      }
    }
    const double d = at(a, col, col);
    for (size_t c = 0; c < k; ++c) {
      at(a, col, c) /= d;
      at(inv, col, c) /= d;
    }
    for (size_t r = 0; r < k; ++r) {
      if (r == col) continue;
      const double factor = at(a, r, col);
      if (factor == 0.0) continue;
      for (size_t c = 0; c < k; ++c) {
        at(a, r, c) -= factor * at(a, col, c);
        at(inv, r, c) -= factor * at(inv, col, c);
      }
    }
  }
  return inv;
}

}  // namespace

Result<OlsFit> FitOls(const std::vector<double>& x, size_t n_rows,
                      size_t n_cols, const std::vector<double>& y) {
  if (n_cols == 0 || n_rows <= n_cols) {
    return Status::InvalidArgument("FitOls: need n_rows > n_cols >= 1");
  }
  if (x.size() != n_rows * n_cols || y.size() != n_rows) {
    return Status::InvalidArgument("FitOls: shape mismatch");
  }
  // Normal equations: (X'X) β = X'y.
  std::vector<double> xtx(n_cols * n_cols, 0.0);
  std::vector<double> xty(n_cols, 0.0);
  for (size_t r = 0; r < n_rows; ++r) {
    const double* row = &x[r * n_cols];
    for (size_t i = 0; i < n_cols; ++i) {
      xty[i] += row[i] * y[r];
      for (size_t j = i; j < n_cols; ++j) xtx[i * n_cols + j] += row[i] * row[j];
    }
  }
  for (size_t i = 0; i < n_cols; ++i) {
    for (size_t j = 0; j < i; ++j) xtx[i * n_cols + j] = xtx[j * n_cols + i];
  }
  const std::vector<double> xtx_inv = Invert(xtx, n_cols);
  if (xtx_inv.empty()) {
    return Status::ComputeError("FitOls: singular design matrix");
  }
  std::vector<double> beta = xtx;  // reuse storage shape; recompute via solve
  beta = xty;
  std::vector<double> xtx_copy = xtx;
  if (!SolveInPlace(&xtx_copy, &beta, n_cols)) {
    return Status::ComputeError("FitOls: singular design matrix");
  }

  OlsFit fit;
  fit.coefficients = beta;
  fit.n = n_rows;
  fit.k = n_cols;
  double rss = 0.0;
  for (size_t r = 0; r < n_rows; ++r) {
    double pred = 0.0;
    const double* row = &x[r * n_cols];
    for (size_t j = 0; j < n_cols; ++j) pred += row[j] * beta[j];
    const double e = y[r] - pred;
    rss += e * e;
  }
  fit.rss = rss;
  fit.sigma2 = rss / static_cast<double>(n_rows - n_cols);
  fit.standard_errors.resize(n_cols);
  for (size_t j = 0; j < n_cols; ++j) {
    const double v = fit.sigma2 * xtx_inv[j * n_cols + j];
    fit.standard_errors[j] = v > 0.0 ? std::sqrt(v) : 0.0;
  }
  return fit;
}

}  // namespace homets::stattests
