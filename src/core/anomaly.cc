#include "core/anomaly.h"

#include <algorithm>
#include <map>
#include <set>

#include "core/similarity.h"

namespace homets::core {

Result<std::vector<WindowAnomaly>> FindPatternAnomalies(
    const std::vector<ts::TimeSeries>& windows,
    const std::vector<WindowProvenance>& provenance,
    const std::vector<Motif>& motifs, const AnomalyOptions& options) {
  if (windows.size() != provenance.size()) {
    return Status::InvalidArgument(
        "FindPatternAnomalies: windows/provenance size mismatch");
  }
  if (windows.empty()) {
    return Status::InvalidArgument("FindPatternAnomalies: no windows");
  }

  // Which motifs does each gateway participate in, and with which windows?
  // A window is scored only against patterns established by the gateway's
  // *other* windows — otherwise a deviant window that happens to match some
  // other home's motif (and joins it) would vouch for itself.
  std::map<int, std::map<size_t, std::vector<size_t>>> gateway_motif_members;
  for (size_t m = 0; m < motifs.size(); ++m) {
    for (size_t member : motifs[m].members) {
      if (member >= provenance.size()) continue;
      const int gw = provenance[member].gateway_id;
      gateway_motif_members[gw][m].push_back(member);
    }
  }

  // Consensus shapes, computed once per motif.
  std::vector<std::vector<double>> shapes(motifs.size());
  for (size_t m = 0; m < motifs.size(); ++m) {
    auto shape = MotifShape(windows, motifs[m]);
    if (shape.ok()) shapes[m] = std::move(shape).value();
  }

  SimilarityOptions sim_options;
  sim_options.alpha = options.alpha;
  std::vector<WindowAnomaly> anomalies;
  for (size_t w = 0; w < windows.size(); ++w) {
    const int gw = provenance[w].gateway_id;
    const auto pattern_it = gateway_motif_members.find(gw);
    if (pattern_it == gateway_motif_members.end()) continue;
    size_t pattern_windows = 0;
    for (const auto& [m, members] : pattern_it->second) {
      for (size_t member : members) {
        if (member != w) ++pattern_windows;
      }
    }
    if (pattern_windows < options.min_pattern_windows) {
      continue;  // no established pattern
    }
    double best = -1.0;
    for (const auto& [m, members] : pattern_it->second) {
      if (shapes[m].empty()) continue;
      // Skip motifs whose only local evidence is the window under test.
      const bool has_other_member =
          members.size() > 1 || (members.size() == 1 && members[0] != w);
      if (!has_other_member) continue;
      const double cor =
          CorrelationSimilarity(windows[w].values(), shapes[m], sim_options)
              .value;
      best = std::max(best, cor);
    }
    if (best < 0.0) continue;
    if (best < options.similarity_floor) {
      WindowAnomaly anomaly;
      anomaly.window_index = w;
      anomaly.gateway_id = gw;
      anomaly.start_minute = provenance[w].start_minute;
      anomaly.best_pattern_similarity = best;
      anomaly.window_volume = windows[w].Sum();
      anomalies.push_back(anomaly);
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const WindowAnomaly& a, const WindowAnomaly& b) {
              return a.best_pattern_similarity < b.best_pattern_similarity;
            });
  return anomalies;
}

}  // namespace homets::core
