#ifndef HOMETS_CORE_SIMILARITY_H_
#define HOMETS_CORE_SIMILARITY_H_

#include <string>
#include <vector>

#include "correlation/prepared_series.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief Which coefficient supplied the correlation similarity value.
enum class SimilaritySource { kNone, kPearson, kSpearman, kKendall };

std::string SimilaritySourceName(SimilaritySource source);

/// \brief Detailed outcome of Definition 1.
struct SimilarityResult {
  /// cor(X, Y): the maximum statistically significant coefficient, or 0
  /// when none is significant (including degenerate/constant inputs).
  double value = 0.0;
  SimilaritySource source = SimilaritySource::kNone;
  bool significant = false;
  size_t n = 0;  ///< complete pairs used
};

/// \brief Options for the correlation similarity measure.
struct SimilarityOptions {
  double alpha = 0.05;  ///< significance level for every coefficient test
};

/// \brief The paper's correlation similarity measure (Definition 1):
/// cor(X, Y) = max of the statistically significant Pearson, Spearman and
/// Kendall coefficients, 0 if none is significant.
///
/// Insignificant and incomputable (constant series, too few pairs)
/// coefficients are skipped; all three failing yields value 0 with
/// `significant = false` — by design, not an error, since zeroed-out
/// background-free windows are routine inputs.
SimilarityResult CorrelationSimilarity(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const SimilarityOptions& options = {});

/// \brief Prepared-series form: reuses each side's one-time profile
/// (correlation::PreparedSeries) so a window compared against many partners
/// is never re-ranked or re-sorted. Bit-identical to the vector overload on
/// the same values. `workspace` (optional) avoids per-pair allocations in
/// batch loops; see correlation::PairWorkspace.
SimilarityResult CorrelationSimilarity(
    const correlation::PreparedSeries& x, const correlation::PreparedSeries& y,
    const SimilarityOptions& options = {},
    correlation::PairWorkspace* workspace = nullptr);

/// \brief TimeSeries overload; compares the overlapping aligned bins.
///
/// Precondition: both series use the same positive `step_minutes` and their
/// start minutes differ by a multiple of it (aligned bin grids). Misaligned
/// or degenerate grids — including a zero/negative step on either side —
/// share no aligned bins and yield the zero result, never UB.
SimilarityResult CorrelationSimilarity(const ts::TimeSeries& x,
                                       const ts::TimeSeries& y,
                                       const SimilarityOptions& options = {});

/// \brief Distance form 1 − cor(X, Y), the measure used for hierarchical
/// clustering (Figure 3). Range [0, 2].
double CorrelationDistance(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const SimilarityOptions& options = {});

}  // namespace homets::core

#endif  // HOMETS_CORE_SIMILARITY_H_
