#include "core/dominance.h"

#include <algorithm>
#include <limits>

#include "core/similarity.h"
#include "correlation/prepared_series.h"
#include "distance/distance.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace homets::core {

namespace {

// The paper compares every device on the gateway's full observation grid
// (Section 6.2 uses one n for all devices of a gateway): minutes where the
// gateway reported but the device did not are zero traffic, not missing.
// Only gateway-offline minutes are dropped. The grid — and with it the
// aggregate side's similarity profile — is identical for every device of a
// gateway, so it is built (and prepared) once and reused across devices.
struct AggregateGrid {
  std::vector<int64_t> minutes;  ///< observed aggregate bins, in order
  std::vector<double> values;    ///< aggregate traffic at those bins
  int64_t step = 1;
};

AggregateGrid MakeAggregateGrid(const ts::TimeSeries& aggregate) {
  AggregateGrid grid;
  grid.step = aggregate.step_minutes();
  grid.minutes.reserve(aggregate.size());
  grid.values.reserve(aggregate.size());
  for (size_t i = 0; i < aggregate.size(); ++i) {
    const double agg = aggregate[i];
    if (ts::TimeSeries::IsMissing(agg)) continue;
    grid.minutes.push_back(aggregate.MinuteAt(i));
    grid.values.push_back(agg);
  }
  return grid;
}

void DeviceOnGrid(const ts::TimeSeries& device_total,
                  const AggregateGrid& grid,
                  std::vector<double>* device_values) {
  device_values->clear();
  device_values->reserve(grid.minutes.size());
  for (const int64_t minute : grid.minutes) {
    double dev = 0.0;
    if (minute >= device_total.start_minute() &&
        minute < device_total.EndMinute() &&
        (minute - device_total.start_minute()) % grid.step == 0) {
      const size_t idx = static_cast<size_t>(
          (minute - device_total.start_minute()) / grid.step);
      const double v = device_total[idx];
      if (!ts::TimeSeries::IsMissing(v)) dev = v;
    }
    device_values->push_back(dev);
  }
}

std::vector<DominantDevice> RankAndFilter(
    std::vector<DominantDevice> candidates, const DominanceOptions& options) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const devices_tested =
      registry.GetCounter(obs::kDominanceDevicesTested);
  static obs::Counter* const devices_above_phi =
      registry.GetCounter(obs::kDominanceDevicesAbovePhi);
  devices_tested->Increment(candidates.size());
  std::sort(candidates.begin(), candidates.end(),
            [](const DominantDevice& a, const DominantDevice& b) {
              return a.similarity > b.similarity;
            });
  std::vector<DominantDevice> dominants;
  for (const auto& c : candidates) {
    if (c.similarity > options.phi) devices_above_phi->Increment();
    if (c.similarity > options.phi && dominants.size() < options.max_devices) {
      dominants.push_back(c);
    }
  }
  return dominants;
}

}  // namespace

std::vector<DominantDevice> FindDominantDevices(
    const simgen::GatewayTrace& gateway, const DominanceOptions& options) {
  obs::ScopedSpan span("dominance.find");
  const ts::TimeSeries aggregate = gateway.AggregateTraffic();
  if (aggregate.empty()) return {};
  SimilarityOptions sim_options;
  sim_options.alpha = options.alpha;
  const AggregateGrid grid = MakeAggregateGrid(aggregate);
  const correlation::PreparedSeries prepared_aggregate =
      correlation::PreparedSeries::Make(grid.values);
  std::vector<DominantDevice> candidates;
  std::vector<double> device_values;
  correlation::PairWorkspace workspace;
  for (size_t d = 0; d < gateway.devices.size(); ++d) {
    DeviceOnGrid(gateway.devices[d].TotalTraffic(), grid, &device_values);
    const SimilarityResult sim = CorrelationSimilarity(
        correlation::PreparedSeries::Make(device_values), prepared_aggregate,
        sim_options, &workspace);
    DominantDevice candidate;
    candidate.device_index = d;
    candidate.similarity = sim.value;
    candidate.reported_type = gateway.devices[d].reported_type;
    candidates.push_back(candidate);
  }
  return RankAndFilter(std::move(candidates), options);
}

std::vector<DominantDevice> FindDominantDevicesInWindow(
    const simgen::GatewayTrace& gateway, int64_t begin_minute,
    int64_t end_minute, int64_t granularity_minutes,
    int64_t anchor_offset_minutes, const DominanceOptions& options) {
  obs::ScopedSpan span("dominance.find_in_window");
  const ts::TimeSeries aggregate = gateway.AggregateTraffic();
  if (aggregate.empty()) return {};
  auto window_of = [&](const ts::TimeSeries& series) -> ts::TimeSeries {
    auto aggregated = ts::Aggregate(series, granularity_minutes,
                                    anchor_offset_minutes, ts::AggKind::kSum);
    if (!aggregated.ok()) return ts::TimeSeries();
    const int64_t begin = std::max(begin_minute, aggregated->start_minute());
    const int64_t end = std::min(end_minute, aggregated->EndMinute());
    if (begin >= end) return ts::TimeSeries();
    auto slice = aggregated->Slice(begin, end);
    return slice.ok() ? std::move(slice).value() : ts::TimeSeries();
  };
  const ts::TimeSeries agg_window = window_of(aggregate);
  if (agg_window.empty()) return {};
  SimilarityOptions sim_options;
  sim_options.alpha = options.alpha;
  const AggregateGrid grid = MakeAggregateGrid(agg_window);
  const correlation::PreparedSeries prepared_aggregate =
      correlation::PreparedSeries::Make(grid.values);
  std::vector<DominantDevice> candidates;
  std::vector<double> device_values;
  correlation::PairWorkspace workspace;
  for (size_t d = 0; d < gateway.devices.size(); ++d) {
    const ts::TimeSeries dev_window =
        window_of(gateway.devices[d].TotalTraffic());
    if (dev_window.empty()) continue;
    DeviceOnGrid(dev_window, grid, &device_values);
    const SimilarityResult sim = CorrelationSimilarity(
        correlation::PreparedSeries::Make(device_values), prepared_aggregate,
        sim_options, &workspace);
    DominantDevice candidate;
    candidate.device_index = d;
    candidate.similarity = sim.value;
    candidate.reported_type = gateway.devices[d].reported_type;
    candidates.push_back(candidate);
  }
  return RankAndFilter(std::move(candidates), options);
}

std::vector<size_t> RankDevicesByEuclidean(
    const simgen::GatewayTrace& gateway) {
  const ts::TimeSeries aggregate = gateway.AggregateTraffic();
  const AggregateGrid grid = MakeAggregateGrid(aggregate);
  std::vector<std::pair<double, size_t>> keyed;
  std::vector<double> device_values;
  for (size_t d = 0; d < gateway.devices.size(); ++d) {
    const ts::TimeSeries total = gateway.devices[d].TotalTraffic();
    double key = std::numeric_limits<double>::infinity();
    if (!aggregate.empty() && !total.empty()) {
      // Same grid convention as FindDominantDevices: the paper compares all
      // devices over the gateway's full observation window, with
      // non-reporting minutes as zero traffic.
      DeviceOnGrid(total, grid, &device_values);
      auto dist = distance::Euclidean(device_values, grid.values);
      if (dist.ok()) key = *dist;
    }
    keyed.emplace_back(key, d);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<size_t> order;
  order.reserve(keyed.size());
  for (const auto& [key, idx] : keyed) order.push_back(idx);
  return order;
}

std::vector<size_t> RankDevicesByVolume(const simgen::GatewayTrace& gateway) {
  std::vector<std::pair<double, size_t>> keyed;
  for (size_t d = 0; d < gateway.devices.size(); ++d) {
    keyed.emplace_back(gateway.devices[d].TotalTraffic().Sum(), d);
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<size_t> order;
  order.reserve(keyed.size());
  for (const auto& [key, idx] : keyed) order.push_back(idx);
  return order;
}

size_t CountRankAgreement(const std::vector<DominantDevice>& dominants,
                          const std::vector<size_t>& baseline_ranking) {
  size_t agree = 0;
  for (size_t i = 0; i < dominants.size() && i < baseline_ranking.size(); ++i) {
    if (dominants[i].device_index == baseline_ranking[i]) ++agree;
  }
  return agree;
}

}  // namespace homets::core
