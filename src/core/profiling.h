#ifndef HOMETS_CORE_PROFILING_H_
#define HOMETS_CORE_PROFILING_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/background.h"
#include "core/dominance.h"
#include "core/stationarity.h"
#include "obs/trace.h"
#include "simgen/types.h"

namespace homets::core {

/// \brief Wall-clock accumulator for named computation phases.
///
/// A thin obs::SpanSink adapter: every span whose timer is pointed at a
/// PhaseTimings folds its duration into the per-phase totals, so benches and
/// ops tooling can attribute time. Recording is thread-safe (a mutex per
/// accumulator — phases are coarse, so contention is nil), which lets
/// SimilarityEngine phases record from worker threads.
class PhaseTimings : public obs::SpanSink {
 public:
  void Record(const std::string& phase, uint64_t ns) HOMETS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    phases_[phase] += ns;
  }

  void OnSpan(const std::string& name, uint64_t duration_ns) override {
    Record(name, duration_ns);
  }

  /// Accumulated nanoseconds for `phase` (0 when never recorded).
  uint64_t TotalNs(const std::string& phase) const HOMETS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    const auto it = phases_.find(phase);
    return it == phases_.end() ? 0 : it->second;
  }

  std::map<std::string, uint64_t> phases() const HOMETS_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return phases_;
  }

  /// One "phase: 1.234 ms" line per phase, sorted by phase name.
  std::string Report() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, uint64_t> phases_ HOMETS_GUARDED_BY(mu_);
};

/// \brief RAII phase timer: an obs::ScopedSpan that reports into a
/// PhaseTimings on destruction — so every timed phase also lands in the
/// installed TraceSession (if any) under the same name. A null sink with no
/// session installed makes it a no-op, so call sites stay branch-free.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseTimings* sink, std::string phase)
      : span_(std::move(phase), sink) {}

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  obs::ScopedSpan span_;
};

/// \brief High-level profile of one gateway — the "high level profiling of
/// gateways" the paper says dominant-device knowledge enables for ISPs
/// (Section 6.2). Bundles every per-gateway output of the framework.
struct GatewayProfile {
  int gateway_id = 0;
  size_t devices_observed = 0;

  std::vector<DominantDevice> dominant_devices;  ///< φ = 0.6, ranked
  /// Lower bound on the resident count (Section 6.2's finding #4).
  size_t min_residents = 0;

  /// Strong stationarity of weekly windows at 3 h bins on active traffic.
  bool weekly_stationary = false;
  double min_week_pair_similarity = 0.0;

  /// Quietest 3-hour slot of the day (0..7) by mean active traffic — the
  /// firmware-update window.
  int quietest_slot = 0;
  /// Share of active traffic in the evening slots (18:00–24:00).
  double evening_share = 0.0;

  /// Per-device τ groups (small/medium/large) by reported type.
  std::vector<std::pair<std::string, TauGroup>> device_tau_groups;
};

/// \brief Options for profiling.
struct ProfilingOptions {
  DominanceOptions dominance;
  StationarityOptions stationarity;
  int64_t aggregation_minutes = 180;
};

/// \brief Computes the full profile of a gateway over its trace. Requires a
/// trace with at least two weekly windows of observations.
Result<GatewayProfile> ProfileGateway(const simgen::GatewayTrace& gateway,
                                      const ProfilingOptions& options = {});

/// \brief Renders the profile as a short human-readable report.
std::string FormatProfile(const GatewayProfile& profile);

}  // namespace homets::core

#endif  // HOMETS_CORE_PROFILING_H_
