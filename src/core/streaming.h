#ifndef HOMETS_CORE_STREAMING_H_
#define HOMETS_CORE_STREAMING_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "common/status.h"
#include "core/motif.h"
#include "correlation/prepared_series.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief Assembles fixed-length, calendar-aligned windows from streaming
/// per-minute measurements — the ingestion stage of the paper's
/// "integrate into a streaming analytics platform" conclusion.
///
/// Observations may arrive in arbitrary chunks but must be time-ordered per
/// gateway. When a window [anchor + k·W, anchor + (k+1)·W) closes (an
/// observation at or past its end arrives), the aggregated window is emitted.
class WindowAssembler {
 public:
  /// `window_minutes` must be a multiple of `granularity_minutes`.
  static Result<WindowAssembler> Make(int64_t window_minutes,
                                      int64_t granularity_minutes,
                                      int64_t anchor_offset_minutes);

  /// Feeds one observation (1-minute bin). Returns the windows completed by
  /// this observation (usually none, occasionally one; several after a long
  /// gap). Out-of-order minutes within the current window are accepted;
  /// minutes before the current window are rejected.
  Result<std::vector<ts::TimeSeries>> Ingest(int gateway_id, int64_t minute,
                                             double value);

  /// Flushes the partially filled window of every gateway (end of stream).
  std::vector<std::pair<int, ts::TimeSeries>> Flush();

 private:
  WindowAssembler(int64_t window_minutes, int64_t granularity_minutes,
                  int64_t anchor_offset_minutes)
      : window_minutes_(window_minutes),
        granularity_minutes_(granularity_minutes),
        anchor_offset_minutes_(anchor_offset_minutes) {}

  struct GatewayState {
    int64_t window_start = 0;      ///< current window begin
    bool started = false;
    std::vector<double> bins;      ///< per-granularity sums
    std::vector<bool> bin_has_data;
  };

  int64_t WindowStartFor(int64_t minute) const;
  ts::TimeSeries EmitWindow(GatewayState* state) const;
  void ResetWindow(GatewayState* state, int64_t window_start) const;

  int64_t window_minutes_;
  int64_t granularity_minutes_;
  int64_t anchor_offset_minutes_;
  std::map<int, GatewayState> gateways_;
};

/// \brief Incremental motif maintenance over a stream of completed windows.
///
/// Applies Definition 5's membership rules online: each arriving window
/// joins the best motif satisfying the individual- and group-similarity
/// conditions, else seeds a new candidate; the paper's merge rule runs
/// opportunistically. Windows older than `horizon_windows` arrivals are
/// evicted, so memory is bounded for infinite streams.
class StreamingMotifMiner {
 public:
  StreamingMotifMiner(MotifOptions options, size_t horizon_windows);

  /// Adds a completed window; returns the (possibly new) motif id it joined,
  /// where ids are stable across the stream. Windows must share one length.
  Result<size_t> AddWindow(int gateway_id, const ts::TimeSeries& window);

  /// Motifs with support >= options.min_support among the retained horizon,
  /// sorted by descending support. Provenance indices refer to AddWindow
  /// arrival order.
  std::vector<Motif> CurrentMotifs() const;

  /// Provenance of a retained window by arrival index (empty optional if
  /// evicted).
  const std::vector<WindowProvenance>& provenance() const {
    return provenance_;
  }

  size_t windows_seen() const { return next_index_; }
  size_t windows_retained() const { return retained_.size(); }

 private:
  struct StoredWindow {
    size_t index;  ///< arrival index
    ts::TimeSeries window;
    /// One-time similarity profile of `window`; every comparison this window
    /// participates in over its retained lifetime reuses it.
    correlation::PreparedSeries prepared;
  };
  struct MotifState {
    size_t id;
    std::vector<size_t> members;  ///< arrival indices, retained only
  };

  double Similarity(const correlation::PreparedSeries& a,
                    const correlation::PreparedSeries& b) const;
  void Evict();
  void TryMerge();

  MotifOptions options_;
  size_t horizon_windows_;
  size_t next_index_ = 0;
  size_t next_motif_id_ = 0;
  std::deque<StoredWindow> retained_;
  std::vector<MotifState> motifs_;
  std::vector<WindowProvenance> provenance_;  ///< by arrival index
  mutable correlation::PairWorkspace workspace_;  ///< per-pair scratch
};

}  // namespace homets::core

#endif  // HOMETS_CORE_STREAMING_H_
