#include "core/similarity_engine.h"

#include <chrono>
#include <cmath>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/profiling.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"

namespace homets::core {

std::vector<double> SimilarityMatrix::CondensedDistances() const {
  std::vector<double> distances(cells_.size());
  for (size_t k = 0; k < cells_.size(); ++k) {
    distances[k] = IsValidIndex(k) ? 1.0 - cells_[k].value : 1.0;
  }
  return distances;
}

size_t SimilarityMatrix::invalid_count() const {
  size_t count = 0;
  for (const uint8_t flag : invalid_) count += flag;
  return count;
}

std::pair<size_t, size_t> SimilarityMatrix::PairAt(size_t n, size_t k) {
  // Row i owns indices [offset(i), offset(i+1)) with
  // offset(i) = i*n − i(i+1)/2. Invert with a float guess, then fix up.
  const double nf = static_cast<double>(n);
  const double kf = static_cast<double>(k);
  double guess =
      (2.0 * nf - 1.0 - std::sqrt((2.0 * nf - 1.0) * (2.0 * nf - 1.0) -
                                  8.0 * kf)) /
      2.0;
  size_t i = guess <= 0.0 ? 0 : static_cast<size_t>(guess);
  if (i >= n - 1) i = n - 2;
  auto offset = [n](size_t row) { return row * n - row * (row + 1) / 2; };
  while (i > 0 && offset(i) > k) --i;
  while (offset(i + 1) <= k) ++i;
  return {i, i + 1 + (k - offset(i))};
}

std::vector<correlation::PreparedSeries> SimilarityEngine::PrepareWindows(
    const std::vector<ts::TimeSeries>& windows) {
  std::vector<correlation::PreparedSeries> prepared;
  prepared.reserve(windows.size());
  for (const auto& window : windows) {
    prepared.push_back(correlation::PreparedSeries::Make(window.values()));
  }
  return prepared;
}

std::vector<correlation::PreparedSeries> SimilarityEngine::PrepareVectors(
    const std::vector<std::vector<double>>& series) {
  std::vector<correlation::PreparedSeries> prepared;
  prepared.reserve(series.size());
  for (const auto& values : series) {
    prepared.push_back(correlation::PreparedSeries::Make(values));
  }
  return prepared;
}

std::vector<correlation::PreparedSeries> SimilarityEngine::Prepare(
    const std::vector<ts::TimeSeries>& windows) const {
  ScopedPhaseTimer timer(options_.timings, "similarity_engine.prepare");
  return PrepareWindows(windows);
}

namespace {

// ~64 pairs per dispatch block: coarse enough to amortize the atomic
// hand-off, fine enough to balance tie-heavy vs degenerate pairs.
constexpr size_t kPairsPerBlock = 64;

// Per-worker busy nanoseconds, owned by the worker during the loop (no
// synchronization needed: workers never share a slot) and folded into the
// utilization histogram afterwards.
class WorkerUtilization {
 public:
  explicit WorkerUtilization(size_t workers) : busy_ns_(workers, 0) {}

  template <typename Fn>
  void Timed(int worker, const Fn& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    busy_ns_[static_cast<size_t>(worker)] +=
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
  }

  void Publish(size_t pairs) const {
    auto& registry = obs::MetricsRegistry::Global();
    static obs::Counter* const pairs_computed =
        registry.GetCounter(obs::kEnginePairsComputed);
    static obs::Gauge* const workers_gauge =
        registry.GetGauge(obs::kEngineWorkers);
    static obs::Histogram* const worker_busy_us =
        registry.GetHistogram(obs::kEngineWorkerBusyUs);
    pairs_computed->Increment(pairs);
    workers_gauge->Set(static_cast<int64_t>(busy_ns_.size()));
    for (const uint64_t ns : busy_ns_) {
      if (ns > 0) worker_busy_us->Observe(static_cast<double>(ns) / 1e3);
    }
  }

 private:
  std::vector<uint64_t> busy_ns_;
};

}  // namespace

SimilarityMatrix SimilarityEngine::Pairwise(
    const std::vector<correlation::PreparedSeries>& prepared) const {
  const size_t n = prepared.size();
  SimilarityMatrix matrix(n);
  const size_t pairs = matrix.pair_count();
  if (pairs == 0) return matrix;
  ScopedPhaseTimer timer(options_.timings, "similarity_engine.pairwise");
  const int threads =
      pairs < options_.min_parallel_pairs ? 1 : options_.threads;
  const size_t workers = static_cast<size_t>(ResolveThreadCount(threads));
  std::vector<correlation::PairWorkspace> workspaces(workers);
  WorkerUtilization utilization(workers);
  // One stage lookup up front; per-block ticks are then two relaxed adds
  // (nullptr when no tracker is installed — every run without --progress).
  obs::ProgressTracker::Stage* progress =
      obs::ProgressStage("engine.pairwise");
  if (progress != nullptr) progress->AddTotal(pairs);
  SimilarityResult* cells = matrix.mutable_cells();
  ParallelFor(pairs, threads, kPairsPerBlock,
              [&](size_t begin, size_t end, int worker) {
                utilization.Timed(worker, [&] {
                  correlation::PairWorkspace& ws =
                      workspaces[static_cast<size_t>(worker)];
                  auto [i, j] = SimilarityMatrix::PairAt(n, begin);
                  for (size_t k = begin; k < end; ++k) {
                    cells[k] = CorrelationSimilarity(prepared[i], prepared[j],
                                                     options_.similarity, &ws);
                    if (++j == n) {
                      ++i;
                      j = i + 1;
                    }
                  }
                });
                if (progress != nullptr) progress->Tick(end - begin);
              });
  utilization.Publish(pairs);
  return matrix;
}

Result<SimilarityMatrix> SimilarityEngine::PairwiseChecked(
    const std::vector<correlation::PreparedSeries>& prepared) const {
  const size_t n = prepared.size();
  SimilarityMatrix matrix(n);
  const size_t pairs = matrix.pair_count();
  if (pairs == 0) return matrix;
  ScopedPhaseTimer timer(options_.timings, "similarity_engine.pairwise");
  const int threads =
      pairs < options_.min_parallel_pairs ? 1 : options_.threads;
  const size_t workers = static_cast<size_t>(ResolveThreadCount(threads));
  std::vector<correlation::PairWorkspace> workspaces(workers);
  WorkerUtilization utilization(workers);
  // The mask must exist before workers can mark blocks concurrently.
  if (options_.degrade_on_failure) matrix.EnsureValidityMask();
  obs::ProgressTracker::Stage* progress =
      obs::ProgressStage("engine.pairwise");
  if (progress != nullptr) progress->AddTotal(pairs);
  SimilarityResult* cells = matrix.mutable_cells();
  const auto start = std::chrono::steady_clock::now();
  const auto deadline_expired = [&] {
    if (options_.deadline_ms <= 0.0) return false;
    const double elapsed_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    return elapsed_ms > options_.deadline_ms;
  };
  const Status status = ParallelForStatus(
      pairs, threads, kPairsPerBlock, options_.cancel,
      [&](size_t begin, size_t end, int worker) -> Status {
        if (deadline_expired()) {
          return Status::DeadlineExceeded(
              "similarity engine exceeded its deadline");
        }
        const FailpointAction injected =
            EvaluateFailpoint(kFailpointEnginePairBlock);
        if (injected == FailpointAction::kFail) {
          if (!options_.degrade_on_failure) {
            return Status::ComputeError(
                "injected by failpoint 'engine.pair_block'");
          }
          for (size_t k = begin; k < end; ++k) matrix.MarkInvalid(k);
          return Status::OK();
        }
        utilization.Timed(worker, [&] {
          correlation::PairWorkspace& ws =
              workspaces[static_cast<size_t>(worker)];
          auto [i, j] = SimilarityMatrix::PairAt(n, begin);
          for (size_t k = begin; k < end; ++k) {
            cells[k] = CorrelationSimilarity(prepared[i], prepared[j],
                                             options_.similarity, &ws);
            if (++j == n) {
              ++i;
              j = i + 1;
            }
          }
        });
        if (progress != nullptr) progress->Tick(end - begin);
        return Status::OK();
      });
  utilization.Publish(pairs);
  HOMETS_RETURN_IF_ERROR(status);
  return matrix;
}

std::vector<SimilarityResult> SimilarityEngine::PairwiseSelected(
    const std::vector<correlation::PreparedSeries>& prepared,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs) const {
  std::vector<SimilarityResult> results(pairs.size());
  if (pairs.empty()) return results;
  ScopedPhaseTimer timer(options_.timings, "similarity_engine.pairwise");
  const int threads =
      pairs.size() < options_.min_parallel_pairs ? 1 : options_.threads;
  const size_t workers = static_cast<size_t>(ResolveThreadCount(threads));
  std::vector<correlation::PairWorkspace> workspaces(workers);
  WorkerUtilization utilization(workers);
  obs::ProgressTracker::Stage* progress =
      obs::ProgressStage("engine.pairwise");
  if (progress != nullptr) progress->AddTotal(pairs.size());
  ParallelFor(pairs.size(), threads, kPairsPerBlock,
              [&](size_t begin, size_t end, int worker) {
                utilization.Timed(worker, [&] {
                  correlation::PairWorkspace& ws =
                      workspaces[static_cast<size_t>(worker)];
                  for (size_t k = begin; k < end; ++k) {
                    results[k] = CorrelationSimilarity(
                        prepared[pairs[k].first], prepared[pairs[k].second],
                        options_.similarity, &ws);
                  }
                });
                if (progress != nullptr) progress->Tick(end - begin);
              });
  utilization.Publish(pairs.size());
  return results;
}

}  // namespace homets::core
