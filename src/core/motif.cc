#include "core/motif.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_map>

#include "core/similarity.h"
#include "core/similarity_engine.h"
#include "correlation/prepared_series.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace homets::core {

namespace {

// Pairwise cor(·,·) cache; motif mining revisits pairs during the merge
// phase. Every window is profiled once up front so repeated comparisons pay
// only the per-pair kernel cost, never a re-rank or re-sort.
class SimilarityCache {
 public:
  SimilarityCache(const std::vector<ts::TimeSeries>& windows, double alpha)
      : prepared_(SimilarityEngine::PrepareWindows(windows)) {
    options_.alpha = alpha;
  }

  double Get(size_t i, size_t j) {
    if (i == j) return 1.0;
    if (i > j) std::swap(i, j);
    const uint64_t key = (static_cast<uint64_t>(i) << 32) | j;
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++hits_;
      return it->second;
    }
    ++misses_;
    const double value =
        CorrelationSimilarity(prepared_[i], prepared_[j], options_,
                              &workspace_)
            .value;
    cache_.emplace(key, value);
    return value;
  }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  std::vector<correlation::PreparedSeries> prepared_;
  SimilarityOptions options_;
  correlation::PairWorkspace workspace_;
  std::unordered_map<uint64_t, double> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace

Result<std::vector<Motif>> MotifDiscovery::Discover(
    const std::vector<ts::TimeSeries>& windows) const {
  if (windows.empty()) {
    return Status::InvalidArgument("MotifDiscovery: no windows");
  }
  const size_t length = windows.front().size();
  for (const auto& w : windows) {
    if (w.size() != length) {
      return Status::InvalidArgument(
          "MotifDiscovery: windows must share one length");
    }
  }
  if (options_.phi <= 0.0 || options_.phi > 1.0) {
    return Status::InvalidArgument("MotifDiscovery: phi must be in (0, 1]");
  }

  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const windows_mined =
      registry.GetCounter(obs::kMotifWindowsMined);
  static obs::Counter* const motifs_merged =
      registry.GetCounter(obs::kMotifMotifsMerged);
  static obs::Counter* const motifs_reported =
      registry.GetCounter(obs::kMotifMotifsReported);
  static obs::Counter* const cache_hits =
      registry.GetCounter(obs::kMotifCacheHits);
  static obs::Counter* const cache_misses =
      registry.GetCounter(obs::kMotifCacheMisses);
  obs::ScopedSpan span("motif.discover");
  windows_mined->Increment(windows.size());
  obs::ProgressTracker::Stage* progress = obs::ProgressStage("motif.mine");
  if (progress != nullptr) progress->AddTotal(windows.size());

  SimilarityCache cache(windows, options_.alpha);
  const double group_threshold = options_.group_factor * options_.phi;

  // Greedy agglomeration: each window joins the best admissible motif.
  std::vector<Motif> motifs;
  for (size_t w = 0; w < windows.size(); ++w) {
    if (progress != nullptr) progress->Tick();
    int best_motif = -1;
    double best_score = -2.0;
    for (size_t m = 0; m < motifs.size(); ++m) {
      bool individual = false;
      bool group = true;
      double sum = 0.0;
      for (size_t member : motifs[m].members) {
        const double cor = cache.Get(w, member);
        if (cor >= options_.phi) individual = true;
        if (cor < group_threshold) {
          group = false;
          break;
        }
        sum += cor;
      }
      if (!individual || !group) continue;
      const double score =
          sum / static_cast<double>(motifs[m].members.size());
      if (score > best_score) {
        best_score = score;
        best_motif = static_cast<int>(m);
      }
    }
    if (best_motif >= 0) {
      motifs[static_cast<size_t>(best_motif)].members.push_back(w);
    } else {
      Motif fresh;
      fresh.members.push_back(w);
      motifs.push_back(std::move(fresh));
    }
  }

  // Merge phase: combine motifs when all cross pairs correlate at or above
  // the merge threshold; iterate to a fixed point.
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t a = 0; a < motifs.size() && !merged; ++a) {
      for (size_t b = a + 1; b < motifs.size() && !merged; ++b) {
        bool all_high = true;
        for (size_t ma : motifs[a].members) {
          for (size_t mb : motifs[b].members) {
            if (cache.Get(ma, mb) < options_.merge_threshold) {
              all_high = false;
              break;
            }
          }
          if (!all_high) break;
        }
        if (all_high) {
          motifs[a].members.insert(motifs[a].members.end(),
                                   motifs[b].members.begin(),
                                   motifs[b].members.end());
          motifs.erase(motifs.begin() + static_cast<long>(b));
          merged = true;
          motifs_merged->Increment();
        }
      }
    }
  }

  std::vector<Motif> reported;
  for (auto& motif : motifs) {
    if (motif.support() >= options_.min_support) {
      std::sort(motif.members.begin(), motif.members.end());
      reported.push_back(std::move(motif));
    }
  }
  // Descending support; equal-support motifs tie-break on the earliest
  // member index so the reported order is a pure function of the input.
  std::sort(reported.begin(), reported.end(),
            [](const Motif& x, const Motif& y) {
              if (x.support() != y.support()) return x.support() > y.support();
              return x.members.front() < y.members.front();
            });
  motifs_reported->Increment(reported.size());
  cache_hits->Increment(cache.hits());
  cache_misses->Increment(cache.misses());
  return reported;
}

Result<std::vector<double>> MotifShape(
    const std::vector<ts::TimeSeries>& windows, const Motif& motif) {
  if (motif.members.empty()) {
    return Status::InvalidArgument("MotifShape: empty motif");
  }
  const size_t length = windows[motif.members.front()].size();
  std::vector<double> shape(length, 0.0);
  std::vector<size_t> counts(length, 0);
  for (size_t member : motif.members) {
    const ts::TimeSeries z = ts::ZNormalize(windows[member]);
    for (size_t i = 0; i < length && i < z.size(); ++i) {
      if (ts::TimeSeries::IsMissing(z[i])) continue;
      shape[i] += z[i];
      ++counts[i];
    }
  }
  for (size_t i = 0; i < length; ++i) {
    shape[i] = counts[i] > 0 ? shape[i] / static_cast<double>(counts[i]) : 0.0;
  }
  return shape;
}

std::vector<std::pair<size_t, size_t>> SupportHistogram(
    const std::vector<Motif>& motifs) {
  std::map<size_t, size_t> hist;
  for (const auto& motif : motifs) ++hist[motif.support()];
  return {hist.begin(), hist.end()};
}

std::vector<std::pair<int, size_t>> MotifsPerGateway(
    const std::vector<Motif>& motifs,
    const std::vector<WindowProvenance>& provenance) {
  std::map<int, size_t> counts;
  for (const auto& motif : motifs) {
    std::map<int, bool> seen;
    for (size_t member : motif.members) {
      if (member >= provenance.size()) continue;
      const int gw = provenance[member].gateway_id;
      if (!seen[gw]) {
        seen[gw] = true;
        ++counts[gw];
      }
    }
  }
  return {counts.begin(), counts.end()};
}

double WithinGatewayFraction(const Motif& motif,
                             const std::vector<WindowProvenance>& provenance) {
  if (motif.members.empty()) return 0.0;
  std::map<int, size_t> per_gateway;
  for (size_t member : motif.members) {
    if (member >= provenance.size()) continue;
    ++per_gateway[provenance[member].gateway_id];
  }
  size_t repeated = 0;
  for (const auto& [gw, count] : per_gateway) {
    if (count > 1) repeated += count;
  }
  return static_cast<double>(repeated) /
         static_cast<double>(motif.members.size());
}

}  // namespace homets::core
