#include "core/similarity.h"

#include <algorithm>

namespace homets::core {

std::string SimilaritySourceName(SimilaritySource source) {
  switch (source) {
    case SimilaritySource::kNone:
      return "none";
    case SimilaritySource::kPearson:
      return "pearson";
    case SimilaritySource::kSpearman:
      return "spearman";
    case SimilaritySource::kKendall:
      return "kendall";
  }
  return "none";
}

SimilarityResult CorrelationSimilarity(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const SimilarityOptions& options) {
  SimilarityResult result;

  const auto consider = [&](Result<correlation::CorrelationTest> test,
                            SimilaritySource source) {
    if (!test.ok()) return;  // degenerate inputs: treated as not significant
    result.n = std::max(result.n, test->n);
    if (!test->Significant(options.alpha)) return;
    // Definition 1 takes the maximum of the significant coefficients.
    if (!result.significant || test->coefficient > result.value) {
      result.value = test->coefficient;
      result.source = source;
    }
    result.significant = true;
  };

  consider(correlation::Pearson(x, y), SimilaritySource::kPearson);
  consider(correlation::Spearman(x, y), SimilaritySource::kSpearman);
  consider(correlation::Kendall(x, y), SimilaritySource::kKendall);
  return result;
}

SimilarityResult CorrelationSimilarity(const ts::TimeSeries& x,
                                       const ts::TimeSeries& y,
                                       const SimilarityOptions& options) {
  if (x.step_minutes() != y.step_minutes() ||
      (x.start_minute() - y.start_minute()) % x.step_minutes() != 0) {
    return SimilarityResult{};  // misaligned grids share no aligned bins
  }
  const int64_t begin = std::max(x.start_minute(), y.start_minute());
  const int64_t end = std::min(x.EndMinute(), y.EndMinute());
  if (begin >= end) return SimilarityResult{};
  auto xs = x.Slice(begin, end);
  auto ys = y.Slice(begin, end);
  if (!xs.ok() || !ys.ok()) return SimilarityResult{};
  return CorrelationSimilarity(xs->values(), ys->values(), options);
}

double CorrelationDistance(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const SimilarityOptions& options) {
  return 1.0 - CorrelationSimilarity(x, y, options).value;
}

}  // namespace homets::core
