#include "core/similarity.h"

#include <algorithm>

namespace homets::core {

std::string SimilaritySourceName(SimilaritySource source) {
  switch (source) {
    case SimilaritySource::kNone:
      return "none";
    case SimilaritySource::kPearson:
      return "pearson";
    case SimilaritySource::kSpearman:
      return "spearman";
    case SimilaritySource::kKendall:
      return "kendall";
  }
  return "none";
}

namespace {

// Definition 1 over any pair of coefficient results: the maximum
// statistically significant coefficient wins.
template <typename TestFn>
SimilarityResult MaxSignificantCoefficient(const SimilarityOptions& options,
                                           TestFn&& run) {
  SimilarityResult result;
  const auto consider = [&](Result<correlation::CorrelationTest> test,
                            SimilaritySource source) {
    if (!test.ok()) return;  // degenerate inputs: treated as not significant
    result.n = std::max(result.n, test->n);
    if (!test->Significant(options.alpha)) return;
    // Definition 1 takes the maximum of the significant coefficients.
    if (!result.significant || test->coefficient > result.value) {
      result.value = test->coefficient;
      result.source = source;
    }
    result.significant = true;
  };
  run(consider);
  return result;
}

}  // namespace

SimilarityResult CorrelationSimilarity(const std::vector<double>& x,
                                       const std::vector<double>& y,
                                       const SimilarityOptions& options) {
  return MaxSignificantCoefficient(options, [&](const auto& consider) {
    consider(correlation::Pearson(x, y), SimilaritySource::kPearson);
    consider(correlation::Spearman(x, y), SimilaritySource::kSpearman);
    consider(correlation::Kendall(x, y), SimilaritySource::kKendall);
  });
}

SimilarityResult CorrelationSimilarity(const correlation::PreparedSeries& x,
                                       const correlation::PreparedSeries& y,
                                       const SimilarityOptions& options,
                                       correlation::PairWorkspace* workspace) {
  return MaxSignificantCoefficient(options, [&](const auto& consider) {
    consider(correlation::Pearson(x, y, workspace),
             SimilaritySource::kPearson);
    consider(correlation::Spearman(x, y, workspace),
             SimilaritySource::kSpearman);
    consider(correlation::Kendall(x, y, workspace),
             SimilaritySource::kKendall);
  });
}

SimilarityResult CorrelationSimilarity(const ts::TimeSeries& x,
                                       const ts::TimeSeries& y,
                                       const SimilarityOptions& options) {
  if (x.step_minutes() <= 0 || y.step_minutes() <= 0 ||
      x.step_minutes() != y.step_minutes() ||
      (x.start_minute() - y.start_minute()) % x.step_minutes() != 0) {
    // Misaligned or degenerate grids share no aligned bins; the step guard
    // keeps a default-constructed series from hitting modulo-by-zero UB.
    return SimilarityResult{};
  }
  const int64_t begin = std::max(x.start_minute(), y.start_minute());
  const int64_t end = std::min(x.EndMinute(), y.EndMinute());
  if (begin >= end) return SimilarityResult{};
  auto xs = x.Slice(begin, end);
  auto ys = y.Slice(begin, end);
  if (!xs.ok() || !ys.ok()) return SimilarityResult{};
  return CorrelationSimilarity(xs->values(), ys->values(), options);
}

double CorrelationDistance(const std::vector<double>& x,
                           const std::vector<double>& y,
                           const SimilarityOptions& options) {
  return 1.0 - CorrelationSimilarity(x, y, options).value;
}

}  // namespace homets::core
