#ifndef HOMETS_CORE_STATIONARITY_H_
#define HOMETS_CORE_STATIONARITY_H_

#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief Options for Definition 2.
struct StationarityOptions {
  double phi = 0.6;     ///< minimum pairwise correlation similarity
  double alpha = 0.05;  ///< level for both the correlation and KS tests
};

/// \brief Evidence gathered while checking strong stationarity.
struct StationarityResult {
  bool strongly_stationary = false;
  double min_pair_similarity = 0.0;  ///< weakest window-pair cor(·,·)
  double min_ks_p_value = 1.0;       ///< strongest distribution difference
  size_t window_pairs = 0;           ///< pairs with evidence (valid cells)

  /// Which of the two conditions failed (both true when stationary).
  bool correlation_ok = false;
  bool distribution_ok = false;

  /// Pairs whose similarity task failed (invalid matrix cells) and were
  /// excluded from the evidence — nonzero only under fault injection or
  /// partial engine results. The verdict then covers the surviving pairs.
  size_t pairs_skipped = 0;
};

/// \brief Definition 2: a series is strongly stationary for a window size if
/// every pair of non-overlapping windows has correlation similarity > φ and
/// the two-sample KS test is not rejected for any pair.
///
/// `windows` is the output of the mapping W (ts::SliceWindows); at least two
/// windows are required.
Result<StationarityResult> CheckStrongStationarity(
    const std::vector<ts::TimeSeries>& windows,
    const StationarityOptions& options = {});

/// \brief Daily-pattern variant (Section 7.1.2): windows are one per day and
/// only same-weekday pairs are compared (all Mondays together, etc.).
/// Returns per-weekday results indexed by ts::DayOfWeek; a weekday with
/// fewer than two windows is reported non-stationary with zero pairs.
Result<std::vector<StationarityResult>> CheckWeekdayStationarity(
    const std::vector<ts::TimeSeries>& daily_windows,
    const StationarityOptions& options = {});

/// \brief Number of weekdays whose windows are strongly stationary — the
/// stacked quantity in Figure 7.
size_t CountStationaryWeekdays(const std::vector<StationarityResult>& results);

}  // namespace homets::core

#endif  // HOMETS_CORE_STATIONARITY_H_
