#include "core/streaming.h"

#include <algorithm>

#include "common/strings.h"
#include "core/similarity.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"

namespace homets::core {

Result<WindowAssembler> WindowAssembler::Make(int64_t window_minutes,
                                              int64_t granularity_minutes,
                                              int64_t anchor_offset_minutes) {
  if (window_minutes <= 0 || granularity_minutes <= 0) {
    return Status::InvalidArgument(
        "WindowAssembler: window and granularity must be positive");
  }
  if (window_minutes % granularity_minutes != 0) {
    return Status::InvalidArgument(
        "WindowAssembler: granularity must divide the window");
  }
  return WindowAssembler(window_minutes, granularity_minutes,
                         anchor_offset_minutes);
}

int64_t WindowAssembler::WindowStartFor(int64_t minute) const {
  int64_t rem = (minute - anchor_offset_minutes_) % window_minutes_;
  if (rem < 0) rem += window_minutes_;
  return minute - rem;
}

void WindowAssembler::ResetWindow(GatewayState* state,
                                  int64_t window_start) const {
  const size_t bins =
      static_cast<size_t>(window_minutes_ / granularity_minutes_);
  state->window_start = window_start;
  state->started = true;
  state->bins.assign(bins, 0.0);
  state->bin_has_data.assign(bins, false);
}

ts::TimeSeries WindowAssembler::EmitWindow(GatewayState* state) const {
  std::vector<double> values(state->bins.size());
  for (size_t b = 0; b < state->bins.size(); ++b) {
    values[b] =
        state->bin_has_data[b] ? state->bins[b] : ts::TimeSeries::Missing();
  }
  return ts::TimeSeries(state->window_start, granularity_minutes_,
                        std::move(values));
}

Result<std::vector<ts::TimeSeries>> WindowAssembler::Ingest(int gateway_id,
                                                            int64_t minute,
                                                            double value) {
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const observations =
      registry.GetCounter(obs::kStreamingObservationsIngested);
  static obs::Counter* const assembled =
      registry.GetCounter(obs::kStreamingWindowsAssembled);
  observations->Increment();
  GatewayState& state = gateways_[gateway_id];
  std::vector<ts::TimeSeries> completed;
  if (!state.started) {
    ResetWindow(&state, WindowStartFor(minute));
  }
  if (minute < state.window_start) {
    return Status::InvalidArgument(StrFormat(
        "WindowAssembler: minute %lld before current window start %lld",
        static_cast<long long>(minute),
        static_cast<long long>(state.window_start)));
  }
  // Close windows the stream has moved past.
  while (minute >= state.window_start + window_minutes_) {
    completed.push_back(EmitWindow(&state));
    ResetWindow(&state, state.window_start + window_minutes_);
  }
  assembled->Increment(completed.size());
  if (!ts::TimeSeries::IsMissing(value)) {
    const size_t bin = static_cast<size_t>(
        (minute - state.window_start) / granularity_minutes_);
    state.bins[bin] += value;
    state.bin_has_data[bin] = true;
  }
  return completed;
}

std::vector<std::pair<int, ts::TimeSeries>> WindowAssembler::Flush() {
  static obs::Counter* const assembled =
      obs::MetricsRegistry::Global().GetCounter(
          obs::kStreamingWindowsAssembled);
  std::vector<std::pair<int, ts::TimeSeries>> out;
  for (auto& [gateway_id, state] : gateways_) {
    if (!state.started) continue;
    bool any = false;
    for (bool has : state.bin_has_data) any = any || has;
    if (any) out.emplace_back(gateway_id, EmitWindow(&state));
    state.started = false;
  }
  assembled->Increment(out.size());
  return out;
}

StreamingMotifMiner::StreamingMotifMiner(MotifOptions options,
                                         size_t horizon_windows)
    : options_(options),
      horizon_windows_(horizon_windows == 0 ? 1 : horizon_windows) {}

double StreamingMotifMiner::Similarity(
    const correlation::PreparedSeries& a,
    const correlation::PreparedSeries& b) const {
  SimilarityOptions sim;
  sim.alpha = options_.alpha;
  return CorrelationSimilarity(a, b, sim, &workspace_).value;
}

Result<size_t> StreamingMotifMiner::AddWindow(int gateway_id,
                                              const ts::TimeSeries& window) {
  if (!retained_.empty() &&
      retained_.front().window.size() != window.size()) {
    return Status::InvalidArgument(
        "StreamingMotifMiner: window length mismatch");
  }
  const size_t index = next_index_++;
  provenance_.push_back({gateway_id, window.start_minute()});
  // Profile the window once on arrival; every comparison it participates in
  // across its retained lifetime reuses the prepared form.
  retained_.push_back(
      {index, window, correlation::PreparedSeries::Make(window.values())});
  const correlation::PreparedSeries& arrived = retained_.back().prepared;

  auto window_by_index =
      [this](size_t idx) -> const correlation::PreparedSeries* {
    // retained_ is ordered by arrival index.
    if (retained_.empty()) return nullptr;
    const size_t first = retained_.front().index;
    if (idx < first || idx > retained_.back().index) return nullptr;
    return &retained_[idx - first].prepared;
  };

  // Greedy Definition 5 assignment against retained members.
  const double group_threshold = options_.group_factor * options_.phi;
  int best_motif = -1;
  double best_score = -2.0;
  for (size_t m = 0; m < motifs_.size(); ++m) {
    bool individual = false;
    bool group = true;
    double sum = 0.0;
    size_t counted = 0;
    for (size_t member : motifs_[m].members) {
      const correlation::PreparedSeries* other = window_by_index(member);
      if (other == nullptr) continue;
      const double cor = Similarity(arrived, *other);
      if (cor >= options_.phi) individual = true;
      if (cor < group_threshold) {
        group = false;
        break;
      }
      sum += cor;
      ++counted;
    }
    if (!individual || !group || counted == 0) continue;
    const double score = sum / static_cast<double>(counted);
    if (score > best_score) {
      best_score = score;
      best_motif = static_cast<int>(m);
    }
  }
  size_t joined_id;
  if (best_motif >= 0) {
    motifs_[static_cast<size_t>(best_motif)].members.push_back(index);
    joined_id = motifs_[static_cast<size_t>(best_motif)].id;
  } else {
    MotifState fresh;
    fresh.id = next_motif_id_++;
    fresh.members.push_back(index);
    motifs_.push_back(std::move(fresh));
    joined_id = motifs_.back().id;
  }
  TryMerge();
  Evict();
  return joined_id;
}

void StreamingMotifMiner::TryMerge() {
  auto window_by_index =
      [this](size_t idx) -> const correlation::PreparedSeries* {
    if (retained_.empty()) return nullptr;
    const size_t first = retained_.front().index;
    if (idx < first || idx > retained_.back().index) return nullptr;
    return &retained_[idx - first].prepared;
  };
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t a = 0; a < motifs_.size() && !merged; ++a) {
      for (size_t b = a + 1; b < motifs_.size() && !merged; ++b) {
        bool all_high = true;
        for (size_t ma : motifs_[a].members) {
          const correlation::PreparedSeries* wa = window_by_index(ma);
          if (wa == nullptr) continue;
          for (size_t mb : motifs_[b].members) {
            const correlation::PreparedSeries* wb = window_by_index(mb);
            if (wb == nullptr) continue;
            if (Similarity(*wa, *wb) < options_.merge_threshold) {
              all_high = false;
              break;
            }
          }
          if (!all_high) break;
        }
        if (all_high) {
          static obs::Counter* const merges =
              obs::MetricsRegistry::Global().GetCounter(
                  obs::kStreamingMotifsMerged);
          merges->Increment();
          // Keep the older id: stable identities across the stream.
          if (motifs_[b].id < motifs_[a].id) {
            std::swap(motifs_[a].id, motifs_[b].id);
          }
          motifs_[a].members.insert(motifs_[a].members.end(),
                                    motifs_[b].members.begin(),
                                    motifs_[b].members.end());
          std::sort(motifs_[a].members.begin(), motifs_[a].members.end());
          motifs_.erase(motifs_.begin() + static_cast<long>(b));
          merged = true;
        }
      }
    }
  }
}

void StreamingMotifMiner::Evict() {
  static obs::Counter* const evictions =
      obs::MetricsRegistry::Global().GetCounter(
          obs::kStreamingWindowsEvicted);
  while (retained_.size() > horizon_windows_) {
    const size_t evicted = retained_.front().index;
    retained_.pop_front();
    evictions->Increment();
    for (auto& motif : motifs_) {
      motif.members.erase(
          std::remove(motif.members.begin(), motif.members.end(), evicted),
          motif.members.end());
    }
  }
  motifs_.erase(std::remove_if(motifs_.begin(), motifs_.end(),
                               [](const MotifState& m) {
                                 return m.members.empty();
                               }),
                motifs_.end());
}

std::vector<Motif> StreamingMotifMiner::CurrentMotifs() const {
  std::vector<Motif> out;
  for (const auto& state : motifs_) {
    if (state.members.size() < options_.min_support) continue;
    Motif motif;
    motif.members = state.members;
    out.push_back(std::move(motif));
  }
  // Same deterministic order as MotifDiscovery::Discover: descending
  // support, ties broken by the earliest member index.
  std::sort(out.begin(), out.end(), [](const Motif& a, const Motif& b) {
    if (a.support() != b.support()) return a.support() > b.support();
    return a.members.front() < b.members.front();
  });
  return out;
}

}  // namespace homets::core
