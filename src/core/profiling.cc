#include "core/profiling.h"

#include <algorithm>
#include <array>

#include "common/strings.h"

namespace homets::core {

std::string PhaseTimings::Report() const {
  std::string out;
  for (const auto& [phase, ns] : phases()) {
    out += StrFormat("%s: %.3f ms\n", phase.c_str(),
                     static_cast<double>(ns) / 1e6);
  }
  return out;
}

Result<GatewayProfile> ProfileGateway(const simgen::GatewayTrace& gateway,
                                      const ProfilingOptions& options) {
  GatewayProfile profile;
  profile.gateway_id = gateway.id;

  const ts::TimeSeries active = ActiveAggregate(gateway);
  if (active.empty() || active.CountObserved() == 0) {
    return Status::InvalidArgument("ProfileGateway: no observations");
  }
  for (const auto& dev : gateway.devices) {
    if (dev.TotalTraffic().CountObserved() > 0) ++profile.devices_observed;
  }

  // Dominance + resident lower bound (Section 6.2).
  profile.dominant_devices = FindDominantDevices(gateway, options.dominance);
  profile.min_residents = std::max<size_t>(1, profile.dominant_devices.size());

  // Weekly strong stationarity on aggregated active traffic.
  auto aggregated =
      ts::Aggregate(active, options.aggregation_minutes, 0, ts::AggKind::kSum);
  if (aggregated.ok()) {
    const auto windows =
        ts::SliceWindows(*aggregated, ts::kMinutesPerWeek, 0);
    if (windows.size() >= 2) {
      const auto result =
          CheckStrongStationarity(windows, options.stationarity);
      if (result.ok()) {
        profile.weekly_stationary = result->strongly_stationary;
        profile.min_week_pair_similarity = result->min_pair_similarity;
      }
    }
  }

  // Slot usage: quietest slot and evening share.
  std::array<double, 8> slot_traffic{};
  std::array<size_t, 8> slot_counts{};
  for (size_t i = 0; i < active.size(); ++i) {
    const double v = active[i];
    if (ts::TimeSeries::IsMissing(v)) continue;
    const size_t slot = static_cast<size_t>(
        ts::MinuteOfDay(active.MinuteAt(i)) / 180);
    slot_traffic[slot] += v;
    ++slot_counts[slot];
  }
  double total = 0.0;
  double best_mean = -1.0;
  for (int s = 0; s < 8; ++s) {
    total += slot_traffic[static_cast<size_t>(s)];
    if (slot_counts[static_cast<size_t>(s)] == 0) continue;
    const double mean = slot_traffic[static_cast<size_t>(s)] /
                        static_cast<double>(slot_counts[static_cast<size_t>(s)]);
    if (best_mean < 0.0 || mean < best_mean) {
      best_mean = mean;
      profile.quietest_slot = s;
    }
  }
  if (total > 0.0) {
    profile.evening_share = (slot_traffic[6] + slot_traffic[7]) / total;
  }

  // τ groups per device.
  for (const auto& dev : gateway.devices) {
    const auto bg = EstimateDeviceBackground(dev);
    if (!bg.ok()) continue;
    profile.device_tau_groups.emplace_back(
        StrFormat("%s (%s)", dev.name.c_str(),
                  simgen::DeviceTypeName(dev.reported_type).c_str()),
        bg->incoming.group);
  }
  return profile;
}

std::string FormatProfile(const GatewayProfile& profile) {
  std::string out = StrFormat(
      "gateway %d: %zu devices observed, >= %zu resident(s)\n",
      profile.gateway_id, profile.devices_observed, profile.min_residents);
  out += StrFormat("  weekly pattern: %s (weakest week pair cor = %.2f)\n",
                   profile.weekly_stationary ? "strongly stationary"
                                             : "changing week to week",
                   profile.min_week_pair_similarity);
  out += StrFormat(
      "  maintenance window: %02d:00-%02d:00, evening traffic share %.0f%%\n",
      profile.quietest_slot * 3, profile.quietest_slot * 3 + 3,
      100.0 * profile.evening_share);
  for (size_t r = 0; r < profile.dominant_devices.size(); ++r) {
    const auto& dom = profile.dominant_devices[r];
    out += StrFormat("  dominant #%zu: device %zu (%s), cor = %.2f\n", r + 1,
                     dom.device_index,
                     simgen::DeviceTypeName(dom.reported_type).c_str(),
                     dom.similarity);
  }
  for (const auto& [name, group] : profile.device_tau_groups) {
    out += StrFormat("  background: %s -> %s tau\n", name.c_str(),
                     TauGroupName(group).c_str());
  }
  return out;
}

}  // namespace homets::core
