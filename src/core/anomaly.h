#ifndef HOMETS_CORE_ANOMALY_H_
#define HOMETS_CORE_ANOMALY_H_

#include <vector>

#include "common/status.h"
#include "core/motif.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief A window that broke its gateway's established pattern.
///
/// The introduction's troubleshooting use case: recurring motifs provide
/// "strong evidence of regular user activity" to contrast with a user's
/// trouble report. A window is anomalous for its gateway when it matches
/// none of the patterns that gateway usually follows.
struct WindowAnomaly {
  size_t window_index = 0;       ///< index into the scored windows
  int gateway_id = 0;
  int64_t start_minute = 0;
  /// Best correlation similarity to any motif the gateway participates in
  /// (against that motif's consensus shape); low = unusual day/week.
  double best_pattern_similarity = 0.0;
  /// Total traffic of the window (to tell silent outages from wild usage).
  double window_volume = 0.0;
};

/// \brief Options for pattern-deviation scoring.
struct AnomalyOptions {
  /// A window is anomalous when its best similarity to its gateway's motif
  /// shapes stays below this.
  double similarity_floor = 0.4;
  double alpha = 0.05;  ///< significance level inside cor(·,·)
  /// Gateways must participate in at least this many motif member windows
  /// to have an established pattern worth deviating from.
  size_t min_pattern_windows = 3;
};

/// \brief Scores every window against the motif shapes of its own gateway
/// and returns the anomalous ones, most deviant first.
///
/// `windows`/`provenance` are the motif-mining inputs and `motifs` its
/// output. Windows of gateways without an established pattern are skipped —
/// no pattern, no anomaly.
Result<std::vector<WindowAnomaly>> FindPatternAnomalies(
    const std::vector<ts::TimeSeries>& windows,
    const std::vector<WindowProvenance>& provenance,
    const std::vector<Motif>& motifs, const AnomalyOptions& options = {});

}  // namespace homets::core

#endif  // HOMETS_CORE_ANOMALY_H_
