#ifndef HOMETS_CORE_AGGREGATION_H_
#define HOMETS_CORE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/stationarity.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief Pattern period being optimized.
enum class PatternPeriod {
  kWeekly,  ///< week-over-week regularity (Section 7.1.1)
  kDaily,   ///< same-weekday regularity (Section 7.1.2)
};

/// \brief Average pairwise correlation similarity of a gateway's windows
/// after re-binning at `granularity_minutes` anchored at
/// `anchor_offset_minutes` past midnight.
///
/// For kWeekly every pair of weekly windows is compared; for kDaily only
/// same-weekday pairs are (Mondays with Mondays, ...). Requires at least one
/// comparable pair. Insignificant pairs contribute cor = 0, per
/// Definition 1.
Result<double> AverageWindowCorrelation(const ts::TimeSeries& series,
                                        int64_t granularity_minutes,
                                        int64_t anchor_offset_minutes,
                                        PatternPeriod period);

/// \brief One point of an aggregation sweep (Figures 6 and 8).
struct AggregationPoint {
  int64_t granularity_minutes = 0;
  double mean_correlation_all = 0.0;        ///< mean over all gateways
  size_t gateways_all = 0;
  double mean_correlation_stationary = 0.0; ///< mean over stationary ones
  size_t gateways_stationary = 0;           ///< Figure 7's count
};

/// \brief Sweep options. Stationarity uses Definition 2 on the aggregated
/// windows; for kDaily a gateway counts as stationary when at least one
/// weekday is (the decomposition Figure 7 stacks).
struct AggregationSweepOptions {
  int64_t anchor_offset_minutes = 0;
  PatternPeriod period = PatternPeriod::kWeekly;
  StationarityOptions stationarity;
};

/// \brief Runs Definition 3's optimization over candidate granularities for
/// a set of per-gateway (background-removed) traffic series. Gateways whose
/// windows cannot be formed at a granularity are skipped for that point.
Result<std::vector<AggregationPoint>> SweepAggregations(
    const std::vector<ts::TimeSeries>& gateways,
    const std::vector<int64_t>& granularities_minutes,
    const AggregationSweepOptions& options);

/// \brief The granularity with the highest mean correlation —
/// `use_stationary` selects which curve to maximize.
Result<int64_t> BestGranularity(const std::vector<AggregationPoint>& sweep,
                                bool use_stationary);

/// \brief Per-weekday stationarity breakdown of one gateway at one
/// granularity (Figure 7's stacking); returns the number of strongly
/// stationary weekdays (0..7).
Result<size_t> StationaryWeekdayCount(const ts::TimeSeries& series,
                                      int64_t granularity_minutes,
                                      const StationarityOptions& options = {});

}  // namespace homets::core

#endif  // HOMETS_CORE_AGGREGATION_H_
