#ifndef HOMETS_CORE_MOTIF_H_
#define HOMETS_CORE_MOTIF_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace homets::core {

/// \brief Provenance of a candidate window: which gateway and when.
struct WindowProvenance {
  int gateway_id = 0;
  int64_t start_minute = 0;
};

/// \brief A motif: a set of mutually similar, time-aligned windows
/// (Definition 5). `members` index into the window list given to
/// MotifDiscovery::Discover.
struct Motif {
  std::vector<size_t> members;

  size_t support() const { return members.size(); }
};

/// \brief Options for Definition 5.
struct MotifOptions {
  /// Individual-similarity threshold φ: a new window must reach cor >= φ
  /// with at least one member of the motif it joins.
  double phi = 0.8;
  /// Group similarity: every member pair must reach cor >= group_factor · φ
  /// (¾ in the paper).
  double group_factor = 0.75;
  /// Motifs are merged when all cross pairs reach this correlation.
  double merge_threshold = 0.6;
  double alpha = 0.05;  ///< significance level inside cor(·,·)
  /// Minimum support for a reported motif; support-1 "motifs" are not
  /// recurring patterns.
  size_t min_support = 2;
};

/// \brief Motif miner over fixed-length, time-aligned windows.
///
/// The discovery is a greedy agglomeration (single pass in window order,
/// each window joining the best motif that satisfies both Definition 5
/// conditions, else seeding a new one) followed by the paper's merge rule.
/// Results are sorted by descending support.
class MotifDiscovery {
 public:
  explicit MotifDiscovery(MotifOptions options = {}) : options_(options) {}

  const MotifOptions& options() const { return options_; }

  /// Mines motifs from windows (all the same length; typically produced by
  /// ts::SliceWindows on aggregated, background-free traffic).
  Result<std::vector<Motif>> Discover(
      const std::vector<ts::TimeSeries>& windows) const;

 private:
  MotifOptions options_;
};

/// \brief Consensus shape of a motif: pointwise mean of the z-normalized
/// member windows. Used by benches to label motifs ("evening usage", ...).
Result<std::vector<double>> MotifShape(
    const std::vector<ts::TimeSeries>& windows, const Motif& motif);

/// \brief Support histogram (Figure 9): counts of motifs per support value.
/// Returns (support, count) pairs sorted by support.
std::vector<std::pair<size_t, size_t>> SupportHistogram(
    const std::vector<Motif>& motifs);

/// \brief Number of distinct motifs each gateway participates in
/// (Figure 10). Returns (gateway_id, motif_count) pairs for gateways with at
/// least one membership.
std::vector<std::pair<int, size_t>> MotifsPerGateway(
    const std::vector<Motif>& motifs,
    const std::vector<WindowProvenance>& provenance);

/// \brief Fraction of a motif's members that share a gateway with another
/// member — the "% occur within the same gateways" annotation of
/// Figures 11/14.
double WithinGatewayFraction(const Motif& motif,
                             const std::vector<WindowProvenance>& provenance);

}  // namespace homets::core

#endif  // HOMETS_CORE_MOTIF_H_
