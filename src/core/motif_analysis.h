#ifndef HOMETS_CORE_MOTIF_ANALYSIS_H_
#define HOMETS_CORE_MOTIF_ANALYSIS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "simgen/types.h"

namespace homets::core {

/// \brief Supplies the gateway trace for a gateway id; the bench caches and
/// regenerates lazily so the whole fleet never sits in memory. Returning
/// nullptr skips that member.
using GatewayProvider =
    std::function<const simgen::GatewayTrace*(int gateway_id)>;

/// \brief The Section 7.2 motif dimensions.
struct MotifCharacterization {
  size_t support = 0;
  size_t distinct_gateways = 0;
  double within_gateway_fraction = 0.0;

  /// Histogram over the number of dominant devices found in member windows
  /// (index = count, capped at 4).
  std::vector<size_t> dominant_count_histogram = std::vector<size_t>(5, 0);

  /// Histogram over |window dominants ∩ overall gateway dominants|.
  std::vector<size_t> overlap_count_histogram = std::vector<size_t>(4, 0);

  /// Reported device types among the member windows' dominant devices.
  std::map<simgen::DeviceType, size_t> dominant_type_counts;

  /// Day mix of member windows (meaningful for daily motifs; a weekly window
  /// spans both and counts under neither).
  size_t workday_members = 0;
  size_t weekend_members = 0;
};

/// \brief Options for motif characterization.
struct MotifAnalysisOptions {
  /// Granularity/anchor of the windows the motif was mined from (needed to
  /// recompute per-window dominance on the device level).
  int64_t granularity_minutes = 0;
  int64_t anchor_offset_minutes = 0;
  /// Window length: a week or a day of minutes.
  int64_t window_minutes = 0;
  DominanceOptions dominance;
};

/// \brief Characterizes one motif along the paper's dimensions. Overall
/// (whole-trace) dominants per gateway are passed in, precomputed once by
/// the caller.
Result<MotifCharacterization> CharacterizeMotif(
    const Motif& motif, const std::vector<WindowProvenance>& provenance,
    const GatewayProvider& provider,
    const std::map<int, std::vector<DominantDevice>>& overall_dominants,
    const MotifAnalysisOptions& options);

/// \brief The daily usage-shape families the paper names in Figure 14.
enum class DailyShape {
  kAllDay,
  kMorning,
  kAfternoon,
  kLateEvening,
  kMorningAndEvening,
  kMixed,
};

std::string DailyShapeName(DailyShape shape);

/// \brief Classifies a daily consensus shape (from MotifShape, 8 bins of 3
/// hours) into the Figure 14 families by which slots exceed half the peak.
Result<DailyShape> ClassifyDailyShape(const std::vector<double>& shape);

/// \brief The weekly usage-shape families of Figure 11.
enum class WeeklyShape {
  kEveryday,      ///< active every day (the "everyday users" motif)
  kWeekendHeavy,  ///< Saturday/Sunday dominate ("heavy weekend users")
  kWorkdayHeavy,  ///< Monday–Friday dominate ("workdays users")
  kMixed,
};

std::string WeeklyShapeName(WeeklyShape shape);

/// \brief Classifies a weekly consensus shape (21 bins: 7 days × 3 slots of
/// 8 hours) by comparing per-day activity across the week.
Result<WeeklyShape> ClassifyWeeklyShape(const std::vector<double>& shape);

}  // namespace homets::core

#endif  // HOMETS_CORE_MOTIF_ANALYSIS_H_
