#include "core/motif_analysis.h"

#include <algorithm>
#include <set>

namespace homets::core {

Result<MotifCharacterization> CharacterizeMotif(
    const Motif& motif, const std::vector<WindowProvenance>& provenance,
    const GatewayProvider& provider,
    const std::map<int, std::vector<DominantDevice>>& overall_dominants,
    const MotifAnalysisOptions& options) {
  if (motif.members.empty()) {
    return Status::InvalidArgument("CharacterizeMotif: empty motif");
  }
  if (options.window_minutes <= 0 || options.granularity_minutes <= 0) {
    return Status::InvalidArgument(
        "CharacterizeMotif: window/granularity not set");
  }

  MotifCharacterization out;
  out.support = motif.support();
  out.within_gateway_fraction = WithinGatewayFraction(motif, provenance);

  std::set<int> gateways;
  for (size_t member : motif.members) {
    if (member >= provenance.size()) {
      return Status::InvalidArgument("CharacterizeMotif: provenance too short");
    }
    const WindowProvenance& origin = provenance[member];
    gateways.insert(origin.gateway_id);

    // Day mix: a window strictly inside one day is classified by that day.
    if (options.window_minutes <= ts::kMinutesPerDay) {
      const auto day = ts::DayOfWeekAt(origin.start_minute);
      if (ts::IsWeekend(day)) {
        ++out.weekend_members;
      } else {
        ++out.workday_members;
      }
    }

    const simgen::GatewayTrace* gateway = provider(origin.gateway_id);
    if (gateway == nullptr) continue;

    const std::vector<DominantDevice> window_dominants =
        FindDominantDevicesInWindow(
            *gateway, origin.start_minute,
            origin.start_minute + options.window_minutes,
            options.granularity_minutes, options.anchor_offset_minutes,
            options.dominance);

    const size_t bucket =
        std::min<size_t>(window_dominants.size(),
                         out.dominant_count_histogram.size() - 1);
    ++out.dominant_count_histogram[bucket];

    for (const auto& dom : window_dominants) {
      ++out.dominant_type_counts[dom.reported_type];
    }

    // Intersection with the gateway's overall dominant devices.
    size_t overlap = 0;
    const auto it = overall_dominants.find(origin.gateway_id);
    if (it != overall_dominants.end()) {
      for (const auto& dom : window_dominants) {
        for (const auto& overall : it->second) {
          if (overall.device_index == dom.device_index) {
            ++overlap;
            break;
          }
        }
      }
    }
    const size_t overlap_bucket =
        std::min<size_t>(overlap, out.overlap_count_histogram.size() - 1);
    ++out.overlap_count_histogram[overlap_bucket];
  }
  out.distinct_gateways = gateways.size();
  return out;
}

std::string DailyShapeName(DailyShape shape) {
  switch (shape) {
    case DailyShape::kAllDay:
      return "all day";
    case DailyShape::kMorning:
      return "morning";
    case DailyShape::kAfternoon:
      return "afternoon";
    case DailyShape::kLateEvening:
      return "late evening";
    case DailyShape::kMorningAndEvening:
      return "morning and evening";
    case DailyShape::kMixed:
      return "mixed";
  }
  return "mixed";
}

Result<DailyShape> ClassifyDailyShape(const std::vector<double>& shape) {
  if (shape.size() != 8) {
    return Status::InvalidArgument(
        "ClassifyDailyShape: expected 8 bins of 3 hours");
  }
  double max_v = shape[0];
  for (double v : shape) max_v = std::max(max_v, v);
  std::vector<bool> hot(8, false);
  int hot_count = 0;
  for (size_t i = 0; i < 8; ++i) {
    hot[i] = shape[i] > 0.5 * max_v;
    if (hot[i]) ++hot_count;
  }
  if (hot_count >= 5) return DailyShape::kAllDay;
  const bool morning = hot[2] || hot[3];    // 06:00–12:00
  const bool afternoon = hot[4] || hot[5];  // 12:00–18:00
  const bool evening = hot[6] || hot[7];    // 18:00–24:00
  if (morning && evening && !afternoon) return DailyShape::kMorningAndEvening;
  if (evening && !morning && !afternoon) return DailyShape::kLateEvening;
  if (afternoon && !morning) return DailyShape::kAfternoon;
  if (morning && !evening) return DailyShape::kMorning;
  return DailyShape::kMixed;
}

std::string WeeklyShapeName(WeeklyShape shape) {
  switch (shape) {
    case WeeklyShape::kEveryday:
      return "everyday";
    case WeeklyShape::kWeekendHeavy:
      return "weekend heavy";
    case WeeklyShape::kWorkdayHeavy:
      return "workday heavy";
    case WeeklyShape::kMixed:
      return "mixed";
  }
  return "mixed";
}

Result<WeeklyShape> ClassifyWeeklyShape(const std::vector<double>& shape) {
  if (shape.size() != 21) {
    return Status::InvalidArgument(
        "ClassifyWeeklyShape: expected 21 bins (7 days x 3 slots)");
  }
  // Per-day activity = max over the day's slots; z-scale shapes are
  // compared by which days clear half the weekly peak.
  std::vector<double> day_level(7, 0.0);
  double peak = shape[0];
  for (int d = 0; d < 7; ++d) {
    double level = shape[static_cast<size_t>(3 * d)];
    for (int s = 1; s < 3; ++s) {
      level = std::max(level, shape[static_cast<size_t>(3 * d + s)]);
    }
    day_level[static_cast<size_t>(d)] = level;
    peak = std::max(peak, level);
  }
  int workdays_hot = 0, weekend_hot = 0;
  for (int d = 0; d < 7; ++d) {
    if (day_level[static_cast<size_t>(d)] > 0.5 * peak) {
      if (d >= 5) {
        ++weekend_hot;
      } else {
        ++workdays_hot;
      }
    }
  }
  if (workdays_hot >= 4 && weekend_hot == 2) return WeeklyShape::kEveryday;
  if (weekend_hot == 2 && workdays_hot <= 1) return WeeklyShape::kWeekendHeavy;
  if (workdays_hot >= 3 && weekend_hot == 0) return WeeklyShape::kWorkdayHeavy;
  return WeeklyShape::kMixed;
}

}  // namespace homets::core
