#include "core/background.h"

#include <algorithm>

#include "obs/log.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stats/boxplot.h"

namespace homets::core {

namespace {

// Observed values ClipBelow(threshold) will zero: strictly below τ_back and
// not already zero. Counted up front so thresholding itself stays untouched.
uint64_t CountValuesToZero(const ts::TimeSeries& series, double threshold) {
  uint64_t zeroed = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const double v = series[i];
    if (!ts::TimeSeries::IsMissing(v) && v != 0.0 && v < threshold) ++zeroed;
  }
  return zeroed;
}

}  // namespace

std::string TauGroupName(TauGroup group) {
  switch (group) {
    case TauGroup::kSmall:
      return "small";
    case TauGroup::kMedium:
      return "medium";
    case TauGroup::kLarge:
      return "large";
  }
  return "small";
}

TauGroup ClassifyTau(double tau) {
  if (tau <= 5000.0) return TauGroup::kSmall;
  if (tau <= 40000.0) return TauGroup::kMedium;
  return TauGroup::kLarge;
}

Result<BackgroundThreshold> EstimateBackgroundThreshold(
    const ts::TimeSeries& traffic) {
  std::vector<double> observed = traffic.ObservedValues();
  if (observed.size() < 8) {
    return Status::InvalidArgument(
        "EstimateBackgroundThreshold: need >= 8 observations");
  }
  BackgroundThreshold result;
  result.observations = observed.size();
  HOMETS_ASSIGN_OR_RETURN(const stats::Boxplot box,
                          stats::ComputeBoxplot(std::move(observed)));
  result.tau = box.upper_whisker;
  result.tau_back = std::min(result.tau, kBackgroundCapBytes);
  result.group = ClassifyTau(result.tau);
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const thresholds_estimated =
      registry.GetCounter(obs::kBackgroundThresholdsEstimated);
  static obs::Counter* const tau_capped =
      registry.GetCounter(obs::kBackgroundTauCapped);
  thresholds_estimated->Increment();
  if (result.tau > kBackgroundCapBytes) {
    tau_capped->Increment();
    // A capped whisker means the gateway's background estimate hit the
    // paper's 100 MB ceiling — worth a breadcrumb when debug-tracing a run.
    obs::LogDebug("background", "tau capped",
                  {obs::LogField::Double("tau", result.tau),
                   obs::LogField::Double("cap", kBackgroundCapBytes)});
  }
  return result;
}

Result<DeviceBackground> EstimateDeviceBackground(
    const simgen::DeviceTrace& device) {
  DeviceBackground bg;
  HOMETS_ASSIGN_OR_RETURN(bg.incoming,
                          EstimateBackgroundThreshold(device.incoming));
  HOMETS_ASSIGN_OR_RETURN(bg.outgoing,
                          EstimateBackgroundThreshold(device.outgoing));
  return bg;
}

Result<ts::TimeSeries> ActiveTraffic(const simgen::DeviceTrace& device) {
  HOMETS_ASSIGN_OR_RETURN(const DeviceBackground bg,
                          EstimateDeviceBackground(device));
  static obs::Counter* const values_zeroed =
      obs::MetricsRegistry::Global().GetCounter(obs::kBackgroundValuesZeroed);
  values_zeroed->Increment(
      CountValuesToZero(device.incoming, bg.incoming.tau_back) +
      CountValuesToZero(device.outgoing, bg.outgoing.tau_back));
  const ts::TimeSeries in_active =
      device.incoming.ClipBelow(bg.incoming.tau_back);
  const ts::TimeSeries out_active =
      device.outgoing.ClipBelow(bg.outgoing.tau_back);
  return ts::TimeSeries::Add(in_active, out_active);
}

ts::TimeSeries ActiveAggregate(const simgen::GatewayTrace& gateway) {
  obs::ScopedSpan span("background.active_aggregate");
  ts::TimeSeries total;
  bool first = true;
  for (const auto& dev : gateway.devices) {
    auto active = ActiveTraffic(dev);
    ts::TimeSeries part =
        active.ok() ? std::move(active).value() : dev.TotalTraffic();
    if (part.empty()) continue;
    if (first) {
      total = std::move(part);
      first = false;
      continue;
    }
    auto sum = ts::TimeSeries::Add(total, part);
    if (sum.ok()) total = std::move(sum).value();
  }
  return total;
}

}  // namespace homets::core
