#ifndef HOMETS_CORE_SIMILARITY_ENGINE_H_
#define HOMETS_CORE_SIMILARITY_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "core/similarity.h"
#include "correlation/prepared_series.h"
#include "ts/time_series.h"

namespace homets::core {

class PhaseTimings;  // core/profiling.h

/// \brief Options for the parallel pairwise similarity engine.
struct SimilarityEngineOptions {
  SimilarityOptions similarity;  ///< Definition 1 parameters per pair
  /// Worker threads: 0 means hardware concurrency. Output is deterministic
  /// (bit-identical) for every thread count.
  int threads = 0;
  /// Workloads below this many pairs run inline — thread spawn would cost
  /// more than the work.
  size_t min_parallel_pairs = 256;
  /// Optional sink for per-phase wall times ("similarity_engine.prepare",
  /// "similarity_engine.pairwise"). Not owned; may be nullptr.
  PhaseTimings* timings = nullptr;
  /// Cooperative cancellation for PairwiseChecked, polled at block
  /// granularity. Not owned; may be nullptr.
  CancellationToken* cancel = nullptr;
  /// Wall-clock budget for one PairwiseChecked call in milliseconds;
  /// 0 disables the deadline. Checked at block granularity, so a call stops
  /// within one block of the deadline and returns kDeadlineExceeded.
  double deadline_ms = 0.0;
  /// PairwiseChecked under an injected task failure (`engine.pair_block`
  /// failpoint): false returns the failing block's error; true marks the
  /// block's cells invalid in the matrix validity mask and keeps going, so
  /// downstream stages degrade over partial results instead of aborting.
  bool degrade_on_failure = false;
};

/// \brief Condensed symmetric matrix of Definition 1 results over n windows:
/// the upper triangle (i < j) stored row-major, n(n−1)/2 entries.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  explicit SimilarityMatrix(size_t n)
      : n_(n), cells_(n < 2 ? 0 : n * (n - 1) / 2) {}

  size_t size() const { return n_; }
  size_t pair_count() const { return cells_.size(); }

  /// Full result for a pair; requires i != j (the diagonal is not stored).
  const SimilarityResult& At(size_t i, size_t j) const {
    return cells_[CondensedIndex(n_, i, j)];
  }

  /// cor(i, j); 1 on the diagonal by convention.
  double Value(size_t i, size_t j) const {
    return i == j ? 1.0 : At(i, j).value;
  }

  /// 1 − cor(i, j) for every i < j, row-major — the Figure 3 clustering
  /// distance, ready for cluster::DistanceMatrix::FromCondensed. Invalid
  /// cells (see the validity mask) map to the maximum distance 1.0, the
  /// conservative "not similar" reading of a pair that could not be computed.
  std::vector<double> CondensedDistances() const;

  SimilarityResult* mutable_cells() { return cells_.data(); }
  const std::vector<SimilarityResult>& cells() const { return cells_; }

  /// \name Validity mask
  /// PairwiseChecked marks cells whose task failed (degrade mode) invalid;
  /// a default-constructed matrix has every cell valid and allocates no
  /// mask. Downstream consumers must skip invalid cells rather than read
  /// their (zero-initialized) results.
  ///@{
  /// Allocates the mask (all-valid). Must be called before MarkInvalid and
  /// before any concurrent marking starts.
  void EnsureValidityMask() {
    if (invalid_.size() != cells_.size()) invalid_.assign(cells_.size(), 0);
  }
  /// Marks condensed cell `k` invalid. Distinct `k` may be marked from
  /// different threads once the mask is allocated.
  void MarkInvalid(size_t k) { invalid_[k] = 1; }
  bool IsValidIndex(size_t k) const {
    return invalid_.empty() || invalid_[k] == 0;
  }
  bool IsValid(size_t i, size_t j) const {
    return i == j || IsValidIndex(CondensedIndex(n_, i, j));
  }
  /// Number of invalid cells; 0 means the matrix is complete.
  size_t invalid_count() const;
  bool complete() const { return invalid_count() == 0; }
  ///@}

  /// Index of (i, j), i < j, in the condensed layout.
  static size_t CondensedIndex(size_t n, size_t i, size_t j) {
    if (i > j) std::swap(i, j);
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  }

  /// Inverse of CondensedIndex: the (i, j) pair at condensed position k.
  static std::pair<size_t, size_t> PairAt(size_t n, size_t k);

 private:
  size_t n_ = 0;
  std::vector<SimilarityResult> cells_;
  /// Empty = all cells valid; else one flag per condensed cell (1 = the
  /// pair's task failed and the cell holds no result).
  std::vector<uint8_t> invalid_;
};

/// \brief Parallel pairwise similarity over prepared windows.
///
/// Prepares each window exactly once (O(n log n) per window) and computes
/// Definition 1 for every requested pair with the prepared kernels, spread
/// over a chunked thread pool. Each pair's result is written to a slot that
/// depends only on the pair, so matrices are bit-identical across thread
/// counts — the contract the stationarity/granularity/clustering consumers
/// rely on.
class SimilarityEngine {
 public:
  explicit SimilarityEngine(SimilarityEngineOptions options = {})
      : options_(options) {}

  const SimilarityEngineOptions& options() const { return options_; }

  /// Profiles every window's values once (all profiles).
  static std::vector<correlation::PreparedSeries> PrepareWindows(
      const std::vector<ts::TimeSeries>& windows);
  static std::vector<correlation::PreparedSeries> PrepareVectors(
      const std::vector<std::vector<double>>& series);

  /// PrepareWindows with the prepare phase recorded into options().timings.
  std::vector<correlation::PreparedSeries> Prepare(
      const std::vector<ts::TimeSeries>& windows) const;

  /// Full condensed pairwise matrix over the prepared windows.
  SimilarityMatrix Pairwise(
      const std::vector<correlation::PreparedSeries>& prepared) const;

  /// Hardened Pairwise: honors options().cancel and options().deadline_ms at
  /// block granularity and survives injected task failures (the
  /// `engine.pair_block` failpoint). Returns kCancelled / kDeadlineExceeded
  /// when stopped early; under a task failure, returns the deterministic
  /// lowest-block error, or — with options().degrade_on_failure — an OK
  /// matrix whose failed cells are flagged in the validity mask. With no
  /// cancellation, deadline, or fault in play the result is bit-identical
  /// to Pairwise() for every thread count.
  Result<SimilarityMatrix> PairwiseChecked(
      const std::vector<correlation::PreparedSeries>& prepared) const;

  /// Definition 1 for an explicit pair list (e.g. the same-weekday pairs of
  /// the daily granularity search); results are in pair-list order.
  std::vector<SimilarityResult> PairwiseSelected(
      const std::vector<correlation::PreparedSeries>& prepared,
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs) const;

 private:
  SimilarityEngineOptions options_;
};

}  // namespace homets::core

#endif  // HOMETS_CORE_SIMILARITY_ENGINE_H_
