#ifndef HOMETS_CORE_SIMILARITY_ENGINE_H_
#define HOMETS_CORE_SIMILARITY_ENGINE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/similarity.h"
#include "correlation/prepared_series.h"
#include "ts/time_series.h"

namespace homets::core {

class PhaseTimings;  // core/profiling.h

/// \brief Options for the parallel pairwise similarity engine.
struct SimilarityEngineOptions {
  SimilarityOptions similarity;  ///< Definition 1 parameters per pair
  /// Worker threads: 0 means hardware concurrency. Output is deterministic
  /// (bit-identical) for every thread count.
  int threads = 0;
  /// Workloads below this many pairs run inline — thread spawn would cost
  /// more than the work.
  size_t min_parallel_pairs = 256;
  /// Optional sink for per-phase wall times ("similarity_engine.prepare",
  /// "similarity_engine.pairwise"). Not owned; may be nullptr.
  PhaseTimings* timings = nullptr;
};

/// \brief Condensed symmetric matrix of Definition 1 results over n windows:
/// the upper triangle (i < j) stored row-major, n(n−1)/2 entries.
class SimilarityMatrix {
 public:
  SimilarityMatrix() = default;
  explicit SimilarityMatrix(size_t n)
      : n_(n), cells_(n < 2 ? 0 : n * (n - 1) / 2) {}

  size_t size() const { return n_; }
  size_t pair_count() const { return cells_.size(); }

  /// Full result for a pair; requires i != j (the diagonal is not stored).
  const SimilarityResult& At(size_t i, size_t j) const {
    return cells_[CondensedIndex(n_, i, j)];
  }

  /// cor(i, j); 1 on the diagonal by convention.
  double Value(size_t i, size_t j) const {
    return i == j ? 1.0 : At(i, j).value;
  }

  /// 1 − cor(i, j) for every i < j, row-major — the Figure 3 clustering
  /// distance, ready for cluster::DistanceMatrix::FromCondensed.
  std::vector<double> CondensedDistances() const;

  SimilarityResult* mutable_cells() { return cells_.data(); }
  const std::vector<SimilarityResult>& cells() const { return cells_; }

  /// Index of (i, j), i < j, in the condensed layout.
  static size_t CondensedIndex(size_t n, size_t i, size_t j) {
    if (i > j) std::swap(i, j);
    return i * n - i * (i + 1) / 2 + (j - i - 1);
  }

  /// Inverse of CondensedIndex: the (i, j) pair at condensed position k.
  static std::pair<size_t, size_t> PairAt(size_t n, size_t k);

 private:
  size_t n_ = 0;
  std::vector<SimilarityResult> cells_;
};

/// \brief Parallel pairwise similarity over prepared windows.
///
/// Prepares each window exactly once (O(n log n) per window) and computes
/// Definition 1 for every requested pair with the prepared kernels, spread
/// over a chunked thread pool. Each pair's result is written to a slot that
/// depends only on the pair, so matrices are bit-identical across thread
/// counts — the contract the stationarity/granularity/clustering consumers
/// rely on.
class SimilarityEngine {
 public:
  explicit SimilarityEngine(SimilarityEngineOptions options = {})
      : options_(options) {}

  const SimilarityEngineOptions& options() const { return options_; }

  /// Profiles every window's values once (all profiles).
  static std::vector<correlation::PreparedSeries> PrepareWindows(
      const std::vector<ts::TimeSeries>& windows);
  static std::vector<correlation::PreparedSeries> PrepareVectors(
      const std::vector<std::vector<double>>& series);

  /// PrepareWindows with the prepare phase recorded into options().timings.
  std::vector<correlation::PreparedSeries> Prepare(
      const std::vector<ts::TimeSeries>& windows) const;

  /// Full condensed pairwise matrix over the prepared windows.
  SimilarityMatrix Pairwise(
      const std::vector<correlation::PreparedSeries>& prepared) const;

  /// Definition 1 for an explicit pair list (e.g. the same-weekday pairs of
  /// the daily granularity search); results are in pair-list order.
  std::vector<SimilarityResult> PairwiseSelected(
      const std::vector<correlation::PreparedSeries>& prepared,
      const std::vector<std::pair<uint32_t, uint32_t>>& pairs) const;

 private:
  SimilarityEngineOptions options_;
};

}  // namespace homets::core

#endif  // HOMETS_CORE_SIMILARITY_ENGINE_H_
