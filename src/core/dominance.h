#ifndef HOMETS_CORE_DOMINANCE_H_
#define HOMETS_CORE_DOMINANCE_H_

#include <cstdint>
#include <vector>

#include "simgen/types.h"

namespace homets::core {

/// \brief A device whose traffic dominates (tracks) the gateway's aggregate.
struct DominantDevice {
  size_t device_index = 0;  ///< index into GatewayTrace::devices
  double similarity = 0.0;  ///< cor(device traffic, gateway traffic)
  simgen::DeviceType reported_type = simgen::DeviceType::kUnlabeled;
};

/// \brief Options for Definition 4.
struct DominanceOptions {
  double phi = 0.6;     ///< dominance threshold (paper also probes 0.8)
  double alpha = 0.05;  ///< significance level inside cor(·,·)
  /// Cap on reported devices; the paper observes at most 3 dominant devices
  /// per gateway and ranks them by similarity.
  size_t max_devices = 3;
};

/// \brief Definition 4: devices whose correlation similarity with the
/// gateway's aggregate traffic exceeds φ, ranked by descending similarity.
///
/// Uses the raw per-minute counters over the gateway's whole trace, like the
/// paper's 4-week dominance analysis.
std::vector<DominantDevice> FindDominantDevices(
    const simgen::GatewayTrace& gateway, const DominanceOptions& options = {});

/// \brief Window variant used for per-motif dominance (Section 7.2): device
/// and gateway traffic are aggregated to `granularity_minutes`
/// (anchor-aligned) and compared only within [begin_minute, end_minute).
std::vector<DominantDevice> FindDominantDevicesInWindow(
    const simgen::GatewayTrace& gateway, int64_t begin_minute,
    int64_t end_minute, int64_t granularity_minutes,
    int64_t anchor_offset_minutes, const DominanceOptions& options = {});

/// \brief Baseline: device indices ranked by ascending Euclidean distance to
/// the gateway aggregate (the closest device first). Devices with no
/// comparable observations rank last.
std::vector<size_t> RankDevicesByEuclidean(const simgen::GatewayTrace& gateway);

/// \brief Baseline: device indices ranked by descending total traffic
/// volume (the measure of the prior work the paper compares with).
std::vector<size_t> RankDevicesByVolume(const simgen::GatewayTrace& gateway);

/// \brief Number of correlation-dominant devices whose rank position
/// coincides with `baseline_ranking` (the paper's "ranked the same"
/// agreement: first matches first, second matches second, ...).
size_t CountRankAgreement(const std::vector<DominantDevice>& dominants,
                          const std::vector<size_t>& baseline_ranking);

}  // namespace homets::core

#endif  // HOMETS_CORE_DOMINANCE_H_
