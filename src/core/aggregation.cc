#include "core/aggregation.h"

#include <algorithm>

#include "core/similarity.h"
#include "core/similarity_engine.h"

namespace homets::core {

namespace {

// Re-bins and cuts into the period's windows.
Result<std::vector<ts::TimeSeries>> MakeWindows(const ts::TimeSeries& series,
                                                int64_t granularity_minutes,
                                                int64_t anchor_offset_minutes,
                                                PatternPeriod period) {
  HOMETS_ASSIGN_OR_RETURN(
      const ts::TimeSeries aggregated,
      ts::Aggregate(series, granularity_minutes, anchor_offset_minutes,
                    ts::AggKind::kSum));
  const int64_t window_minutes = period == PatternPeriod::kWeekly
                                     ? ts::kMinutesPerWeek
                                     : ts::kMinutesPerDay;
  if (window_minutes % granularity_minutes != 0) {
    return Status::InvalidArgument(
        "granularity does not divide the pattern window");
  }
  std::vector<ts::TimeSeries> windows =
      ts::SliceWindows(aggregated, window_minutes, anchor_offset_minutes);
  if (windows.size() < 2) {
    return Status::InvalidArgument("fewer than 2 pattern windows");
  }
  return windows;
}

// Mean pairwise cor(·,·); for kDaily only same-weekday pairs count. Windows
// are profiled once and only the comparable pairs are computed (for kDaily
// that skips the ~6/7 cross-weekday pairs entirely).
Result<double> MeanPairCorrelation(const std::vector<ts::TimeSeries>& windows,
                                   PatternPeriod period) {
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      if (period == PatternPeriod::kDaily &&
          ts::DayOfWeekAt(windows[i].start_minute()) !=
              ts::DayOfWeekAt(windows[j].start_minute())) {
        continue;
      }
      pairs.emplace_back(static_cast<uint32_t>(i), static_cast<uint32_t>(j));
    }
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("no comparable window pairs");
  }
  const SimilarityEngine engine;
  const std::vector<SimilarityResult> sims =
      engine.PairwiseSelected(SimilarityEngine::PrepareWindows(windows), pairs);
  double sum = 0.0;
  for (const SimilarityResult& sim : sims) sum += sim.value;
  return sum / static_cast<double>(pairs.size());
}

}  // namespace

Result<double> AverageWindowCorrelation(const ts::TimeSeries& series,
                                        int64_t granularity_minutes,
                                        int64_t anchor_offset_minutes,
                                        PatternPeriod period) {
  HOMETS_ASSIGN_OR_RETURN(
      const std::vector<ts::TimeSeries> windows,
      MakeWindows(series, granularity_minutes, anchor_offset_minutes, period));
  return MeanPairCorrelation(windows, period);
}

Result<std::vector<AggregationPoint>> SweepAggregations(
    const std::vector<ts::TimeSeries>& gateways,
    const std::vector<int64_t>& granularities_minutes,
    const AggregationSweepOptions& options) {
  if (gateways.empty()) {
    return Status::InvalidArgument("SweepAggregations: no gateways");
  }
  std::vector<AggregationPoint> sweep;
  sweep.reserve(granularities_minutes.size());
  for (const int64_t g : granularities_minutes) {
    AggregationPoint point;
    point.granularity_minutes = g;
    double sum_all = 0.0;
    double sum_stat = 0.0;
    for (const auto& series : gateways) {
      auto windows = MakeWindows(series, g, options.anchor_offset_minutes,
                                 options.period);
      if (!windows.ok()) continue;
      auto mean_cor = MeanPairCorrelation(*windows, options.period);
      if (!mean_cor.ok()) continue;
      sum_all += *mean_cor;
      ++point.gateways_all;

      bool stationary = false;
      if (options.period == PatternPeriod::kWeekly) {
        auto check =
            CheckStrongStationarity(*windows, options.stationarity);
        stationary = check.ok() && check->strongly_stationary;
      } else {
        auto check =
            CheckWeekdayStationarity(*windows, options.stationarity);
        stationary = check.ok() && CountStationaryWeekdays(*check) >= 1;
      }
      if (stationary) {
        sum_stat += *mean_cor;
        ++point.gateways_stationary;
      }
    }
    if (point.gateways_all > 0) {
      point.mean_correlation_all =
          sum_all / static_cast<double>(point.gateways_all);
    }
    if (point.gateways_stationary > 0) {
      point.mean_correlation_stationary =
          sum_stat / static_cast<double>(point.gateways_stationary);
    }
    sweep.push_back(point);
  }
  return sweep;
}

Result<int64_t> BestGranularity(const std::vector<AggregationPoint>& sweep,
                                bool use_stationary) {
  const AggregationPoint* best = nullptr;
  for (const auto& point : sweep) {
    const size_t n =
        use_stationary ? point.gateways_stationary : point.gateways_all;
    if (n == 0) continue;
    const double value = use_stationary ? point.mean_correlation_stationary
                                        : point.mean_correlation_all;
    const double best_value =
        best == nullptr
            ? -1.0
            : (use_stationary ? best->mean_correlation_stationary
                              : best->mean_correlation_all);
    if (best == nullptr || value > best_value) best = &point;
  }
  if (best == nullptr) {
    return Status::NotFound("BestGranularity: no evaluable granularity");
  }
  return best->granularity_minutes;
}

Result<size_t> StationaryWeekdayCount(const ts::TimeSeries& series,
                                      int64_t granularity_minutes,
                                      const StationarityOptions& options) {
  HOMETS_ASSIGN_OR_RETURN(
      const std::vector<ts::TimeSeries> windows,
      MakeWindows(series, granularity_minutes, 0, PatternPeriod::kDaily));
  HOMETS_ASSIGN_OR_RETURN(const auto results,
                          CheckWeekdayStationarity(windows, options));
  return CountStationaryWeekdays(results);
}

}  // namespace homets::core
