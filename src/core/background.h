#ifndef HOMETS_CORE_BACKGROUND_H_
#define HOMETS_CORE_BACKGROUND_H_

#include <string>

#include "common/status.h"
#include "simgen/types.h"
#include "ts/time_series.h"

namespace homets::core {

/// Paper constant (Section 6.1): effective background threshold is
/// min(τ, 5000) bytes per minute.
inline constexpr double kBackgroundCapBytes = 5000.0;

/// Section 6.1 τ groups: small τ <= 5000, medium τ in (5000, 40000],
/// large τ > 40000.
enum class TauGroup { kSmall, kMedium, kLarge };

std::string TauGroupName(TauGroup group);

TauGroup ClassifyTau(double tau);

/// \brief Background-traffic characterization of one device direction.
struct BackgroundThreshold {
  double tau = 0.0;       ///< upper whisker of the traffic boxplot
  double tau_back = 0.0;  ///< min(τ, 5000): threshold actually applied
  TauGroup group = TauGroup::kSmall;
  size_t observations = 0;
};

/// \brief Estimates τ for a traffic series (Section 6.1): the upper whisker
/// of the boxplot of observed values. Requires at least 8 observations.
Result<BackgroundThreshold> EstimateBackgroundThreshold(
    const ts::TimeSeries& traffic);

/// \brief Per-device, per-direction thresholds (the paper estimates τ for
/// incoming and outgoing separately).
struct DeviceBackground {
  BackgroundThreshold incoming;
  BackgroundThreshold outgoing;
};

Result<DeviceBackground> EstimateDeviceBackground(
    const simgen::DeviceTrace& device);

/// \brief Zeroes values below the device's τ_back (per direction) and
/// returns the active-only total traffic of the device.
Result<ts::TimeSeries> ActiveTraffic(const simgen::DeviceTrace& device);

/// \brief Active-only aggregate of a gateway: per-device background removal,
/// then summation. Falls back to including a device unfiltered when its τ
/// cannot be estimated (too few observations — e.g. brief guests).
ts::TimeSeries ActiveAggregate(const simgen::GatewayTrace& gateway);

}  // namespace homets::core

#endif  // HOMETS_CORE_BACKGROUND_H_
