#include "core/stationarity.h"

#include <algorithm>

#include "core/similarity_engine.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "stattests/ks_test.h"

namespace homets::core {

Result<StationarityResult> CheckStrongStationarity(
    const std::vector<ts::TimeSeries>& windows,
    const StationarityOptions& options) {
  if (windows.size() < 2) {
    return Status::InvalidArgument(
        "CheckStrongStationarity: need >= 2 windows");
  }
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Counter* const windows_tested =
      registry.GetCounter(obs::kStationarityWindowsTested);
  static obs::Counter* const window_pairs =
      registry.GetCounter(obs::kStationarityWindowPairs);
  static obs::Counter* const ks_rejections =
      registry.GetCounter(obs::kStationarityKsRejections);
  static obs::Counter* const pairs_below_phi =
      registry.GetCounter(obs::kStationarityPairsBelowPhi);
  obs::ScopedSpan span("stationarity.check");
  windows_tested->Increment(windows.size());
  obs::ProgressTracker::Stage* progress =
      obs::ProgressStage("stationarity.windows");
  if (progress != nullptr) {
    progress->AddTotal(windows.size());
    progress->Tick(windows.size());
  }
  StationarityResult result;
  result.min_pair_similarity = 1.0;
  result.correlation_ok = true;
  result.distribution_ok = true;
  // Each window is profiled once; Definition 2's all-pairs comparison then
  // runs on the prepared kernels (parallel for large window sets). Degrade
  // mode: a pair whose similarity task failed is skipped (and counted)
  // rather than aborting the whole gateway's verdict.
  SimilarityEngineOptions engine_options;
  engine_options.similarity.alpha = options.alpha;
  engine_options.degrade_on_failure = true;
  const SimilarityEngine engine(engine_options);
  HOMETS_ASSIGN_OR_RETURN(
      const SimilarityMatrix sims,
      engine.PairwiseChecked(SimilarityEngine::PrepareWindows(windows)));
  for (size_t i = 0; i < windows.size(); ++i) {
    for (size_t j = i + 1; j < windows.size(); ++j) {
      if (!sims.IsValid(i, j)) {
        ++result.pairs_skipped;
        continue;
      }
      ++result.window_pairs;
      const SimilarityResult& sim = sims.At(i, j);
      result.min_pair_similarity =
          std::min(result.min_pair_similarity, sim.value);
      if (!(sim.value > options.phi)) {
        result.correlation_ok = false;
        pairs_below_phi->Increment();
      }
      auto ks = stattests::KolmogorovSmirnov(windows[i].values(),
                                             windows[j].values());
      if (!ks.ok()) {
        // A window with < 2 observations cannot pass the distribution check.
        result.distribution_ok = false;
        result.min_ks_p_value = 0.0;
        ks_rejections->Increment();
        continue;
      }
      result.min_ks_p_value = std::min(result.min_ks_p_value, ks->p_value);
      if (ks->Rejected(options.alpha)) {
        result.distribution_ok = false;
        ks_rejections->Increment();
      }
    }
  }
  window_pairs->Increment(result.window_pairs);
  if (result.window_pairs == 0 && result.pairs_skipped > 0) {
    // Every pair's similarity task failed: there is no evidence either way,
    // which must read as "could not certify", not "stationary".
    return Status::ComputeError(
        "CheckStrongStationarity: all window pairs failed");
  }
  result.strongly_stationary =
      result.correlation_ok && result.distribution_ok;
  return result;
}

Result<std::vector<StationarityResult>> CheckWeekdayStationarity(
    const std::vector<ts::TimeSeries>& daily_windows,
    const StationarityOptions& options) {
  std::vector<std::vector<ts::TimeSeries>> by_weekday(ts::kDaysPerWeek);
  for (const auto& window : daily_windows) {
    const auto day = ts::DayOfWeekAt(window.start_minute());
    by_weekday[static_cast<size_t>(day)].push_back(window);
  }
  std::vector<StationarityResult> results(ts::kDaysPerWeek);
  for (size_t d = 0; d < by_weekday.size(); ++d) {
    if (by_weekday[d].size() < 2) {
      results[d] = StationarityResult{};  // not enough evidence
      continue;
    }
    HOMETS_ASSIGN_OR_RETURN(results[d],
                            CheckStrongStationarity(by_weekday[d], options));
  }
  return results;
}

size_t CountStationaryWeekdays(
    const std::vector<StationarityResult>& results) {
  size_t count = 0;
  for (const auto& r : results) {
    if (r.strongly_stationary) ++count;
  }
  return count;
}

}  // namespace homets::core
