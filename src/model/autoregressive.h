#ifndef HOMETS_MODEL_AUTOREGRESSIVE_H_
#define HOMETS_MODEL_AUTOREGRESSIVE_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace homets::model {

/// \brief AR(p) model fit by Yule–Walker equations (Levinson–Durbin).
///
/// Stands in for the paper's ARIMA discussion (Section 4.2): the model is
/// fit to demonstrate — not to ship — that linear models capture the
/// background hum but cannot predict the rare active-traffic bursts at
/// 1-minute granularity. See `EvaluateBurstForecast`.
struct ArModel {
  std::vector<double> phi;  ///< AR coefficients φ₁..φ_p
  double mean = 0.0;        ///< series mean (the model works on deviations)
  double noise_variance = 0.0;
  size_t order = 0;
  double aic = 0.0;

  /// One-step-ahead forecast given the `order` most recent observations
  /// (history.back() is the latest value).
  double ForecastOneStep(const std::vector<double>& history) const;
};

/// \brief Fits AR(p) with fixed order p >= 0 (p = 0 is the mean model).
/// NaNs are mean-imputed; requires length > p + 1 and non-constant input.
Result<ArModel> FitAr(const std::vector<double>& x, size_t p);

/// \brief Fits AR models for p = 0..max_order and returns the AIC-best.
Result<ArModel> FitArAicSelect(const std::vector<double>& x, size_t max_order);

/// \brief How well one-step AR forecasts anticipate traffic-burst onsets.
///
/// A burst onset is an observation above `burst_threshold` whose previous
/// observation was at or below it — the moment activity starts. The onset is
/// anticipated when the forecast itself exceeds the threshold. Ongoing
/// bursts are excluded on purpose: a linear model trivially "predicts" the
/// continuation of a burst already in progress, while the paper's point
/// (Section 4.2) is that the *starts* of active traffic are unpredictable at
/// minute granularity.
struct BurstForecastReport {
  size_t n_forecasts = 0;
  size_t n_bursts = 0;             ///< burst onsets observed
  size_t n_bursts_anticipated = 0; ///< onsets with forecast > threshold
  double recall = 0.0;
  double rmse = 0.0;  ///< overall one-step RMSE
};

/// \brief Walk-forward one-step evaluation of `model` on `x` (same series or
/// a held-out one).
Result<BurstForecastReport> EvaluateBurstForecast(const ArModel& model,
                                                  const std::vector<double>& x,
                                                  double burst_threshold);

}  // namespace homets::model

#endif  // HOMETS_MODEL_AUTOREGRESSIVE_H_
