#include "model/autoregressive.h"

#include <algorithm>
#include <cmath>

namespace homets::model {

namespace {

double TimeSeriesNan() { return std::nan(""); }

Result<std::vector<double>> ImputedDeviations(const std::vector<double>& x,
                                              double* mean_out) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : x) {
    if (std::isnan(v)) continue;
    sum += v;
    ++n;
  }
  if (n < 3) return Status::InvalidArgument("AR: too few observations");
  const double mean = sum / static_cast<double>(n);
  *mean_out = mean;
  std::vector<double> out(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    out[i] = std::isnan(x[i]) ? 0.0 : x[i] - mean;
  }
  return out;
}

// Biased autocovariances γ₀..γ_p.
std::vector<double> Autocovariances(const std::vector<double>& d, size_t p) {
  const size_t n = d.size();
  std::vector<double> gamma(p + 1, 0.0);
  for (size_t k = 0; k <= p; ++k) {
    double c = 0.0;
    for (size_t t = k; t < n; ++t) c += d[t] * d[t - k];
    gamma[k] = c / static_cast<double>(n);
  }
  return gamma;
}

}  // namespace

double ArModel::ForecastOneStep(const std::vector<double>& history) const {
  double pred = 0.0;
  const size_t h = history.size();
  for (size_t i = 0; i < order && i < h; ++i) {
    const double v = history[h - 1 - i];
    if (!std::isnan(v)) pred += phi[i] * (v - mean);
  }
  return mean + pred;
}

Result<ArModel> FitAr(const std::vector<double>& x, size_t p) {
  double mean = 0.0;
  HOMETS_ASSIGN_OR_RETURN(const std::vector<double> d,
                          ImputedDeviations(x, &mean));
  if (d.size() <= p + 1) {
    return Status::InvalidArgument("AR: series shorter than order + 2");
  }
  const std::vector<double> gamma = Autocovariances(d, p);
  if (gamma[0] <= 0.0) return Status::ComputeError("AR: constant series");

  ArModel model;
  model.mean = mean;
  model.order = p;
  model.phi.assign(p, 0.0);

  // Levinson–Durbin recursion.
  double err = gamma[0];
  std::vector<double> phi(p, 0.0);
  std::vector<double> prev(p, 0.0);
  for (size_t k = 1; k <= p; ++k) {
    double acc = gamma[k];
    for (size_t j = 1; j < k; ++j) acc -= prev[j - 1] * gamma[k - j];
    const double reflection = acc / err;
    phi[k - 1] = reflection;
    for (size_t j = 1; j < k; ++j) {
      phi[j - 1] = prev[j - 1] - reflection * prev[k - 1 - j];
    }
    err *= (1.0 - reflection * reflection);
    if (err <= 0.0) {
      return Status::ComputeError("AR: Levinson-Durbin broke down");
    }
    std::copy(phi.begin(), phi.begin() + static_cast<long>(k), prev.begin());
  }
  model.phi = phi;
  model.noise_variance = err;
  const double n = static_cast<double>(d.size());
  model.aic = n * std::log(err) + 2.0 * (static_cast<double>(p) + 1.0);
  return model;
}

Result<ArModel> FitArAicSelect(const std::vector<double>& x,
                               size_t max_order) {
  Result<ArModel> best = FitAr(x, 0);
  HOMETS_RETURN_IF_ERROR(best.status());
  for (size_t p = 1; p <= max_order; ++p) {
    Result<ArModel> candidate = FitAr(x, p);
    if (!candidate.ok()) continue;
    if (candidate->aic < best->aic) best = std::move(candidate);
  }
  return best;
}

Result<BurstForecastReport> EvaluateBurstForecast(const ArModel& model,
                                                  const std::vector<double>& x,
                                                  double burst_threshold) {
  if (x.size() <= model.order + 1) {
    return Status::InvalidArgument("EvaluateBurstForecast: series too short");
  }
  if (burst_threshold <= 0.0) {
    return Status::InvalidArgument(
        "EvaluateBurstForecast: threshold must be positive");
  }
  BurstForecastReport report;
  double se_sum = 0.0;
  std::vector<double> history;
  history.reserve(model.order);
  for (size_t t = model.order; t < x.size(); ++t) {
    const double actual = x[t];
    if (std::isnan(actual)) continue;
    history.assign(x.begin() + static_cast<long>(t - model.order),
                   x.begin() + static_cast<long>(t));
    const double pred = model.ForecastOneStep(history);
    ++report.n_forecasts;
    se_sum += (pred - actual) * (pred - actual);
    // Burst onset: value crosses the threshold from below (or the previous
    // value was unobserved). Ongoing bursts do not count — see header.
    const double previous = t > 0 ? x[t - 1] : TimeSeriesNan();
    const bool was_quiet = std::isnan(previous) || previous <= burst_threshold;
    if (actual > burst_threshold && was_quiet) {
      ++report.n_bursts;
      if (pred > burst_threshold) ++report.n_bursts_anticipated;
    }
  }
  if (report.n_forecasts == 0) {
    return Status::ComputeError("EvaluateBurstForecast: nothing to forecast");
  }
  report.rmse = std::sqrt(se_sum / static_cast<double>(report.n_forecasts));
  report.recall =
      report.n_bursts == 0
          ? 0.0
          : static_cast<double>(report.n_bursts_anticipated) /
                static_cast<double>(report.n_bursts);
  return report;
}

}  // namespace homets::model
