#ifndef HOMETS_MODEL_BASELINES_H_
#define HOMETS_MODEL_BASELINES_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace homets::model {

/// \brief Seasonal-naive forecaster: predicts the value observed one period
/// earlier (x̂_t = x_{t−P}).
///
/// The natural "daily/weekly rhythm" baseline the AR comparison needs: if a
/// gateway's traffic really repeats with period P, this forecaster wins.
class SeasonalNaive {
 public:
  /// `period_steps` is in series steps (e.g. 1440 for daily at 1-min bins).
  static Result<SeasonalNaive> Make(size_t period_steps);

  size_t period_steps() const { return period_steps_; }

  /// One-step forecast for index t of `values` (needs t >= period).
  double Forecast(const std::vector<double>& values, size_t t) const;

 private:
  explicit SeasonalNaive(size_t period_steps) : period_steps_(period_steps) {}

  size_t period_steps_;
};

/// \brief Walk-forward comparison of forecasters on a series.
struct ForecastComparison {
  double rmse_seasonal_naive = 0.0;
  double rmse_last_value = 0.0;   ///< random-walk baseline x̂_t = x_{t−1}
  double rmse_mean = 0.0;         ///< global-mean baseline
  size_t n_forecasts = 0;
};

/// \brief Evaluates the three baselines over the observed values of
/// `series` (missing values skipped as targets; missing inputs fall back to
/// the series mean).
Result<ForecastComparison> CompareBaselines(const ts::TimeSeries& series,
                                            size_t period_steps);

}  // namespace homets::model

#endif  // HOMETS_MODEL_BASELINES_H_
