#include "model/baselines.h"

#include <cmath>

namespace homets::model {

Result<SeasonalNaive> SeasonalNaive::Make(size_t period_steps) {
  if (period_steps == 0) {
    return Status::InvalidArgument("SeasonalNaive: period must be >= 1");
  }
  return SeasonalNaive(period_steps);
}

double SeasonalNaive::Forecast(const std::vector<double>& values,
                               size_t t) const {
  if (t < period_steps_) return std::nan("");
  return values[t - period_steps_];
}

Result<ForecastComparison> CompareBaselines(const ts::TimeSeries& series,
                                            size_t period_steps) {
  if (period_steps == 0) {
    return Status::InvalidArgument("CompareBaselines: period must be >= 1");
  }
  if (series.size() <= period_steps + 1) {
    return Status::InvalidArgument("CompareBaselines: series too short");
  }
  const std::vector<double>& values = series.values();

  double mean = 0.0;
  size_t observed = 0;
  for (double v : values) {
    if (ts::TimeSeries::IsMissing(v)) continue;
    mean += v;
    ++observed;
  }
  if (observed < 2) {
    return Status::InvalidArgument("CompareBaselines: too few observations");
  }
  mean /= static_cast<double>(observed);

  HOMETS_ASSIGN_OR_RETURN(const SeasonalNaive seasonal,
                          SeasonalNaive::Make(period_steps));
  double se_seasonal = 0.0, se_last = 0.0, se_mean = 0.0;
  size_t n = 0;
  for (size_t t = period_steps; t < values.size(); ++t) {
    const double actual = values[t];
    if (ts::TimeSeries::IsMissing(actual)) continue;
    double pred_seasonal = seasonal.Forecast(values, t);
    if (std::isnan(pred_seasonal)) pred_seasonal = mean;
    double pred_last = values[t - 1];
    if (std::isnan(pred_last)) pred_last = mean;
    se_seasonal += (pred_seasonal - actual) * (pred_seasonal - actual);
    se_last += (pred_last - actual) * (pred_last - actual);
    se_mean += (mean - actual) * (mean - actual);
    ++n;
  }
  if (n == 0) {
    return Status::ComputeError("CompareBaselines: nothing to forecast");
  }
  ForecastComparison out;
  out.n_forecasts = n;
  out.rmse_seasonal_naive = std::sqrt(se_seasonal / static_cast<double>(n));
  out.rmse_last_value = std::sqrt(se_last / static_cast<double>(n));
  out.rmse_mean = std::sqrt(se_mean / static_cast<double>(n));
  return out;
}

}  // namespace homets::model
