#ifndef HOMETS_TS_ROLLING_H_
#define HOMETS_TS_ROLLING_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace homets::ts {

/// \brief Sliding-window moments of a series.
///
/// Backs the paper's Section 4.2 observation that "the covariance function
/// of the time series is not constant in sliding window": computing the
/// rolling mean/variance makes the instability measurable. Windows are
/// trailing (`window` consecutive bins ending at index i); outputs start at
/// index window − 1. Missing values inside a window are skipped; a window
/// with fewer than 2 observed values yields a missing output.
struct RollingMoments {
  std::vector<double> mean;      ///< one entry per complete window
  std::vector<double> variance;  ///< sample variance (n − 1)
  size_t window = 0;

  /// Coefficient of variation of the rolling means — a scale-free measure
  /// of how unstable the local level is (0 for a wide-sense stationary
  /// level). Missing entries are skipped.
  double MeanInstability() const;

  /// Same for the rolling variance: how unstable the local second moment
  /// is.
  double VarianceInstability() const;
};

/// \brief Computes rolling mean and variance with the given window size
/// (>= 2, <= series length).
Result<RollingMoments> ComputeRollingMoments(const TimeSeries& series,
                                             size_t window);

/// \brief Rolling correlation between two aligned series: Pearson over each
/// trailing window of `window` bins. The series must share step, phase and
/// overlap; outputs are missing where a window has < 3 complete pairs or a
/// constant side.
Result<std::vector<double>> RollingCorrelation(const TimeSeries& x,
                                               const TimeSeries& y,
                                               size_t window);

}  // namespace homets::ts

#endif  // HOMETS_TS_ROLLING_H_
