#include "ts/rolling.h"

#include <algorithm>
#include <cmath>

namespace homets::ts {

namespace {

// Coefficient of variation of the non-missing entries.
double CoefficientOfVariation(const std::vector<double>& xs) {
  double sum = 0.0;
  size_t n = 0;
  for (double x : xs) {
    if (TimeSeries::IsMissing(x)) continue;
    sum += x;
    ++n;
  }
  if (n < 2) return 0.0;
  const double mean = sum / static_cast<double>(n);
  if (mean == 0.0) return 0.0;
  double ss = 0.0;
  for (double x : xs) {
    if (TimeSeries::IsMissing(x)) continue;
    ss += (x - mean) * (x - mean);
  }
  const double sd = std::sqrt(ss / static_cast<double>(n - 1));
  return std::fabs(sd / mean);
}

}  // namespace

double RollingMoments::MeanInstability() const {
  return CoefficientOfVariation(mean);
}

double RollingMoments::VarianceInstability() const {
  return CoefficientOfVariation(variance);
}

Result<RollingMoments> ComputeRollingMoments(const TimeSeries& series,
                                             size_t window) {
  if (window < 2) {
    return Status::InvalidArgument("RollingMoments: window must be >= 2");
  }
  if (series.size() < window) {
    return Status::InvalidArgument("RollingMoments: series shorter than window");
  }
  RollingMoments out;
  out.window = window;
  const size_t n_windows = series.size() - window + 1;
  out.mean.reserve(n_windows);
  out.variance.reserve(n_windows);
  for (size_t start = 0; start < n_windows; ++start) {
    double sum = 0.0, ss = 0.0;
    size_t observed = 0;
    for (size_t i = start; i < start + window; ++i) {
      const double v = series[i];
      if (TimeSeries::IsMissing(v)) continue;
      sum += v;
      ss += v * v;
      ++observed;
    }
    if (observed < 2) {
      out.mean.push_back(TimeSeries::Missing());
      out.variance.push_back(TimeSeries::Missing());
      continue;
    }
    const double mean = sum / static_cast<double>(observed);
    const double var = std::max(
        0.0, (ss - sum * mean) / static_cast<double>(observed - 1));
    out.mean.push_back(mean);
    out.variance.push_back(var);
  }
  return out;
}

Result<std::vector<double>> RollingCorrelation(const TimeSeries& x,
                                               const TimeSeries& y,
                                               size_t window) {
  if (window < 3) {
    return Status::InvalidArgument("RollingCorrelation: window must be >= 3");
  }
  if (x.step_minutes() != y.step_minutes() ||
      (x.start_minute() - y.start_minute()) % x.step_minutes() != 0) {
    return Status::InvalidArgument("RollingCorrelation: grid mismatch");
  }
  const int64_t begin = std::max(x.start_minute(), y.start_minute());
  const int64_t end = std::min(x.EndMinute(), y.EndMinute());
  if (begin >= end) {
    return Status::InvalidArgument("RollingCorrelation: no overlap");
  }
  HOMETS_ASSIGN_OR_RETURN(const TimeSeries xs, x.Slice(begin, end));
  HOMETS_ASSIGN_OR_RETURN(const TimeSeries ys, y.Slice(begin, end));
  if (xs.size() < window) {
    return Status::InvalidArgument(
        "RollingCorrelation: overlap shorter than window");
  }
  std::vector<double> out;
  out.reserve(xs.size() - window + 1);
  for (size_t start = 0; start + window <= xs.size(); ++start) {
    double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
    size_t n = 0;
    for (size_t i = start; i < start + window; ++i) {
      const double a = xs[i];
      const double b = ys[i];
      if (TimeSeries::IsMissing(a) || TimeSeries::IsMissing(b)) continue;
      sx += a;
      sy += b;
      sxx += a * a;
      syy += b * b;
      sxy += a * b;
      ++n;
    }
    if (n < 3) {
      out.push_back(TimeSeries::Missing());
      continue;
    }
    const double nf = static_cast<double>(n);
    const double cov = sxy - sx * sy / nf;
    const double vx = sxx - sx * sx / nf;
    const double vy = syy - sy * sy / nf;
    if (vx <= 0.0 || vy <= 0.0) {
      out.push_back(TimeSeries::Missing());
      continue;
    }
    out.push_back(std::clamp(cov / std::sqrt(vx * vy), -1.0, 1.0));
  }
  return out;
}

}  // namespace homets::ts
