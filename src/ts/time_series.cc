#include "ts/time_series.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace homets::ts {

std::string DayOfWeekName(DayOfWeek day) {
  static constexpr const char* kNames[] = {"Mon", "Tue", "Wed", "Thu",
                                           "Fri", "Sat", "Sun"};
  return kNames[static_cast<int>(day)];
}

size_t TimeSeries::CountObserved() const {
  size_t count = 0;
  for (double v : values_) {
    if (!IsMissing(v)) ++count;
  }
  return count;
}

std::vector<double> TimeSeries::ObservedValues() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (double v : values_) {
    if (!IsMissing(v)) out.push_back(v);
  }
  return out;
}

double TimeSeries::Sum() const {
  double total = 0.0;
  for (double v : values_) {
    if (!IsMissing(v)) total += v;
  }
  return total;
}

Result<TimeSeries> TimeSeries::Add(const TimeSeries& a, const TimeSeries& b) {
  if (a.step_minutes() != b.step_minutes()) {
    return Status::InvalidArgument(StrFormat(
        "Add: step mismatch (%lld vs %lld)",
        static_cast<long long>(a.step_minutes()),
        static_cast<long long>(b.step_minutes())));
  }
  const int64_t step = a.step_minutes();
  if ((a.start_minute() - b.start_minute()) % step != 0) {
    return Status::InvalidArgument("Add: bin phase mismatch");
  }
  const int64_t begin = std::min(a.start_minute(), b.start_minute());
  const int64_t end = std::max(a.EndMinute(), b.EndMinute());
  const size_t n = static_cast<size_t>((end - begin) / step);
  std::vector<double> out(n, TimeSeries::Missing());
  auto blend = [&](const TimeSeries& s) {
    const size_t offset = static_cast<size_t>((s.start_minute() - begin) / step);
    for (size_t i = 0; i < s.size(); ++i) {
      const double v = s[i];
      if (TimeSeries::IsMissing(v)) continue;
      double& slot = out[offset + i];
      slot = TimeSeries::IsMissing(slot) ? v : slot + v;
    }
  };
  blend(a);
  blend(b);
  return TimeSeries(begin, step, std::move(out));
}

TimeSeries TimeSeries::ClipBelow(double threshold) const {
  TimeSeries out = *this;
  for (double& v : out.values_) {
    if (!IsMissing(v) && v < threshold) v = 0.0;
  }
  return out;
}

TimeSeries TimeSeries::FillMissing(double fill) const {
  TimeSeries out = *this;
  for (double& v : out.values_) {
    if (IsMissing(v)) v = fill;
  }
  return out;
}

Result<TimeSeries> TimeSeries::Slice(int64_t begin_minute,
                                     int64_t end_minute) const {
  if (begin_minute > end_minute) {
    return Status::InvalidArgument("Slice: begin > end");
  }
  if ((begin_minute - start_minute_) % step_minutes_ != 0 ||
      (end_minute - start_minute_) % step_minutes_ != 0) {
    return Status::InvalidArgument("Slice: bounds not aligned to bin grid");
  }
  if (begin_minute < start_minute_ || end_minute > EndMinute()) {
    return Status::OutOfRange(StrFormat(
        "Slice: [%lld, %lld) outside series range [%lld, %lld)",
        static_cast<long long>(begin_minute),
        static_cast<long long>(end_minute),
        static_cast<long long>(start_minute_),
        static_cast<long long>(EndMinute())));
  }
  const size_t first = static_cast<size_t>((begin_minute - start_minute_) /
                                           step_minutes_);
  const size_t count = static_cast<size_t>((end_minute - begin_minute) /
                                           step_minutes_);
  return TimeSeries(
      begin_minute, step_minutes_,
      std::vector<double>(values_.begin() + first,
                          values_.begin() + first + count));
}

namespace {

// First window boundary >= `minute` on the grid
// {anchor + k * granularity : k integer}.
int64_t NextBoundary(int64_t minute, int64_t granularity, int64_t anchor) {
  int64_t rem = (minute - anchor) % granularity;
  if (rem < 0) rem += granularity;
  return rem == 0 ? minute : minute + (granularity - rem);
}

}  // namespace

Result<TimeSeries> Aggregate(const TimeSeries& series,
                             int64_t granularity_minutes,
                             int64_t anchor_offset_minutes, AggKind kind) {
  if (granularity_minutes <= 0) {
    return Status::InvalidArgument("Aggregate: granularity must be positive");
  }
  if (granularity_minutes % series.step_minutes() != 0) {
    return Status::InvalidArgument(StrFormat(
        "Aggregate: granularity %lld not a multiple of step %lld",
        static_cast<long long>(granularity_minutes),
        static_cast<long long>(series.step_minutes())));
  }
  const int64_t step = series.step_minutes();
  const int64_t begin = NextBoundary(series.start_minute(),
                                     granularity_minutes,
                                     anchor_offset_minutes);
  const size_t bins_per_window =
      static_cast<size_t>(granularity_minutes / step);
  std::vector<double> out;
  int64_t window_start = begin;
  while (window_start + granularity_minutes <= series.EndMinute()) {
    const size_t first =
        static_cast<size_t>((window_start - series.start_minute()) / step);
    double sum = 0.0;
    double maxv = -std::numeric_limits<double>::infinity();
    size_t observed = 0;
    for (size_t i = 0; i < bins_per_window; ++i) {
      const double v = series[first + i];
      if (TimeSeries::IsMissing(v)) continue;
      ++observed;
      sum += v;
      maxv = std::max(maxv, v);
    }
    if (observed == 0) {
      out.push_back(TimeSeries::Missing());
    } else {
      switch (kind) {
        case AggKind::kSum:
          out.push_back(sum);
          break;
        case AggKind::kMean:
          out.push_back(sum / static_cast<double>(observed));
          break;
        case AggKind::kMax:
          out.push_back(maxv);
          break;
      }
    }
    window_start += granularity_minutes;
  }
  return TimeSeries(begin, granularity_minutes, std::move(out));
}

TimeSeries ZNormalize(const TimeSeries& series) {
  double sum = 0.0;
  size_t n = 0;
  for (double v : series.values()) {
    if (TimeSeries::IsMissing(v)) continue;
    sum += v;
    ++n;
  }
  TimeSeries out = series;
  if (n == 0) return out;
  const double mean = sum / static_cast<double>(n);
  double ss = 0.0;
  for (double v : series.values()) {
    if (TimeSeries::IsMissing(v)) continue;
    ss += (v - mean) * (v - mean);
  }
  const double sd = n > 1 ? std::sqrt(ss / static_cast<double>(n - 1)) : 0.0;
  for (double& v : out.mutable_values()) {
    if (TimeSeries::IsMissing(v)) continue;
    v = sd > 0.0 ? (v - mean) / sd : 0.0;
  }
  return out;
}

std::vector<TimeSeries> SliceWindows(const TimeSeries& series,
                                     int64_t window_minutes,
                                     int64_t anchor_offset_minutes) {
  std::vector<TimeSeries> windows;
  if (window_minutes <= 0 || series.empty()) return windows;
  if (window_minutes % series.step_minutes() != 0) return windows;
  int64_t window_start = NextBoundary(series.start_minute(), window_minutes,
                                      anchor_offset_minutes);
  while (window_start + window_minutes <= series.EndMinute()) {
    auto slice = series.Slice(window_start, window_start + window_minutes);
    if (slice.ok()) windows.push_back(std::move(slice).value());
    window_start += window_minutes;
  }
  return windows;
}

}  // namespace homets::ts
