#ifndef HOMETS_TS_SEASONAL_H_
#define HOMETS_TS_SEASONAL_H_

#include <vector>

#include "common/status.h"
#include "ts/time_series.h"

namespace homets::ts {

/// \brief Average seasonal profile of a series.
///
/// The related-work discussion (Section 2, Jo et al.) asks whether the
/// inhomogeneity of human-driven traffic is explained by daily/weekly
/// seasonality: after removing the seasonal mean, bursty data stays bursty.
/// These helpers implement that de-seasoning analysis for home traffic.
struct SeasonalProfile {
  int64_t period_minutes = 0;  ///< kMinutesPerDay or kMinutesPerWeek
  int64_t step_minutes = 0;
  /// Mean value per phase bin; size = period / step.
  std::vector<double> means;
  /// Observations that contributed to each phase bin.
  std::vector<size_t> counts;

  /// Seasonal mean for an absolute minute (phase lookup).
  double MeanAt(int64_t minute) const;
};

/// \brief Estimates the seasonal profile with the given period. The period
/// must be a multiple of the series' step; phases with no observations get
/// the overall mean.
Result<SeasonalProfile> EstimateSeasonalProfile(const TimeSeries& series,
                                                int64_t period_minutes);

/// \brief Removes the seasonal mean: residual_t = x_t − seasonal(t).
/// Missing values stay missing.
Result<TimeSeries> Deseasonalize(const TimeSeries& series,
                                 const SeasonalProfile& profile);

/// \brief Burstiness coefficient B = (σ − μ) / (σ + μ) of the inter-event
/// times of values above `event_threshold` (Goh & Barabási). B → −1 for a
/// regular signal, 0 for Poisson, → 1 for extremely bursty behavior. The
/// paper's claim (via [14]): home traffic stays bursty even after
/// de-seasoning. Requires at least 3 events.
Result<double> Burstiness(const TimeSeries& series, double event_threshold);

/// \brief Seasonal strength: 1 − Var(residual) / Var(series), computed over
/// observed values (clamped to [0, 1]). 0 means seasonality explains
/// nothing.
Result<double> SeasonalStrength(const TimeSeries& series,
                                const SeasonalProfile& profile);

}  // namespace homets::ts

#endif  // HOMETS_TS_SEASONAL_H_
