#include "ts/seasonal.h"

#include <cmath>

namespace homets::ts {

double SeasonalProfile::MeanAt(int64_t minute) const {
  if (means.empty() || period_minutes <= 0 || step_minutes <= 0) return 0.0;
  int64_t phase = minute % period_minutes;
  if (phase < 0) phase += period_minutes;
  const size_t bin = static_cast<size_t>(phase / step_minutes);
  return bin < means.size() ? means[bin] : 0.0;
}

Result<SeasonalProfile> EstimateSeasonalProfile(const TimeSeries& series,
                                                int64_t period_minutes) {
  if (period_minutes <= 0) {
    return Status::InvalidArgument("seasonal: period must be positive");
  }
  if (period_minutes % series.step_minutes() != 0) {
    return Status::InvalidArgument(
        "seasonal: period must be a multiple of the series step");
  }
  if (series.CountObserved() == 0) {
    return Status::InvalidArgument("seasonal: no observations");
  }
  SeasonalProfile profile;
  profile.period_minutes = period_minutes;
  profile.step_minutes = series.step_minutes();
  const size_t bins =
      static_cast<size_t>(period_minutes / series.step_minutes());
  profile.means.assign(bins, 0.0);
  profile.counts.assign(bins, 0);

  double total = 0.0;
  size_t observed = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const double v = series[i];
    if (TimeSeries::IsMissing(v)) continue;
    int64_t phase = series.MinuteAt(i) % period_minutes;
    if (phase < 0) phase += period_minutes;
    const size_t bin = static_cast<size_t>(phase / series.step_minutes());
    profile.means[bin] += v;
    ++profile.counts[bin];
    total += v;
    ++observed;
  }
  const double overall = total / static_cast<double>(observed);
  for (size_t b = 0; b < bins; ++b) {
    profile.means[b] = profile.counts[b] > 0
                           ? profile.means[b] /
                                 static_cast<double>(profile.counts[b])
                           : overall;
  }
  return profile;
}

Result<TimeSeries> Deseasonalize(const TimeSeries& series,
                                 const SeasonalProfile& profile) {
  if (profile.step_minutes != series.step_minutes()) {
    return Status::InvalidArgument("deseasonalize: step mismatch");
  }
  TimeSeries out = series;
  for (size_t i = 0; i < out.size(); ++i) {
    if (TimeSeries::IsMissing(out[i])) continue;
    out[i] -= profile.MeanAt(out.MinuteAt(i));
  }
  return out;
}

Result<double> Burstiness(const TimeSeries& series, double event_threshold) {
  std::vector<double> gaps;
  int64_t last_event = -1;
  for (size_t i = 0; i < series.size(); ++i) {
    const double v = series[i];
    if (TimeSeries::IsMissing(v) || v <= event_threshold) continue;
    const int64_t minute = series.MinuteAt(i);
    if (last_event >= 0) {
      gaps.push_back(static_cast<double>(minute - last_event));
    }
    last_event = minute;
  }
  if (gaps.size() < 2) {
    return Status::InvalidArgument("Burstiness: need >= 3 events");
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double sd = std::sqrt(var);
  if (sd + mean == 0.0) {
    return Status::ComputeError("Burstiness: degenerate inter-event times");
  }
  return (sd - mean) / (sd + mean);
}

Result<double> SeasonalStrength(const TimeSeries& series,
                                const SeasonalProfile& profile) {
  HOMETS_ASSIGN_OR_RETURN(const TimeSeries residual,
                          Deseasonalize(series, profile));
  auto variance = [](const TimeSeries& s) -> double {
    double mean = 0.0;
    size_t n = 0;
    for (double v : s.values()) {
      if (TimeSeries::IsMissing(v)) continue;
      mean += v;
      ++n;
    }
    if (n < 2) return 0.0;
    mean /= static_cast<double>(n);
    double ss = 0.0;
    for (double v : s.values()) {
      if (TimeSeries::IsMissing(v)) continue;
      ss += (v - mean) * (v - mean);
    }
    return ss / static_cast<double>(n - 1);
  };
  const double var_series = variance(series);
  if (var_series <= 0.0) {
    return Status::ComputeError("SeasonalStrength: constant series");
  }
  const double strength = 1.0 - variance(residual) / var_series;
  return strength < 0.0 ? 0.0 : (strength > 1.0 ? 1.0 : strength);
}

}  // namespace homets::ts
