#ifndef HOMETS_TS_TIME_SERIES_H_
#define HOMETS_TS_TIME_SERIES_H_

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace homets::ts {

/// Minutes per calendar unit. The collection epoch (minute 0) is defined to
/// be a Monday 00:00 — matching the paper's dataset, which starts Monday
/// 2014-03-17 — so day-of-week arithmetic needs no calendar library.
inline constexpr int64_t kMinutesPerHour = 60;
inline constexpr int64_t kMinutesPerDay = 24 * kMinutesPerHour;
inline constexpr int64_t kMinutesPerWeek = 7 * kMinutesPerDay;
inline constexpr int kDaysPerWeek = 7;

/// Day of week with Monday == 0, matching the epoch convention.
enum class DayOfWeek : int {
  kMonday = 0,
  kTuesday = 1,
  kWednesday = 2,
  kThursday = 3,
  kFriday = 4,
  kSaturday = 5,
  kSunday = 6,
};

/// \brief Returns the short English name of a weekday ("Mon".."Sun").
std::string DayOfWeekName(DayOfWeek day);

/// \brief True for Saturday and Sunday.
inline bool IsWeekend(DayOfWeek day) {
  return day == DayOfWeek::kSaturday || day == DayOfWeek::kSunday;
}

/// \brief Day of week for an absolute minute since the (Monday) epoch.
inline DayOfWeek DayOfWeekAt(int64_t minute) {
  // Floor division so pre-epoch minutes map to the preceding day.
  int64_t day_index = minute / kMinutesPerDay;
  if (minute % kMinutesPerDay < 0) --day_index;
  int64_t day = day_index % kDaysPerWeek;
  if (day < 0) day += kDaysPerWeek;
  return static_cast<DayOfWeek>(day);
}

/// \brief Minute within the day [0, 1440) for an absolute minute.
inline int64_t MinuteOfDay(int64_t minute) {
  int64_t m = minute % kMinutesPerDay;
  return m < 0 ? m + kMinutesPerDay : m;
}

/// \brief Regularly sampled time series with missing-value support.
///
/// Index semantics: element `i` covers the time bin
/// `[start_minute + i * step_minutes, start_minute + (i+1) * step_minutes)`.
/// Missing observations are NaN; traffic aggregation treats them as absent
/// rather than zero, because the dataset's gateways report with gaps.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Constructs a series starting at `start_minute` (absolute minutes since
  /// the Monday epoch) with bin width `step_minutes` (>= 1).
  TimeSeries(int64_t start_minute, int64_t step_minutes,
             std::vector<double> values)
      : start_minute_(start_minute),
        step_minutes_(step_minutes),
        values_(std::move(values)) {}

  static double Missing() { return std::nan(""); }
  static bool IsMissing(double v) { return std::isnan(v); }

  int64_t start_minute() const { return start_minute_; }
  int64_t step_minutes() const { return step_minutes_; }
  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  double operator[](size_t i) const { return values_[i]; }
  double& operator[](size_t i) { return values_[i]; }

  /// Absolute minute at which bin `i` begins.
  int64_t MinuteAt(size_t i) const {
    return start_minute_ + static_cast<int64_t>(i) * step_minutes_;
  }

  /// One past the last covered minute.
  int64_t EndMinute() const {
    return start_minute_ + static_cast<int64_t>(values_.size()) * step_minutes_;
  }

  /// Number of non-missing observations.
  size_t CountObserved() const;

  /// Values with missing entries dropped (order preserved).
  std::vector<double> ObservedValues() const;

  /// Sum over non-missing values (0 for an all-missing series).
  double Sum() const;

  /// Element-wise sum of `a` and `b` over their overlapping range; both must
  /// share step and bin phase. A bin is missing only when it is missing in
  /// both inputs (a device that is absent contributes zero traffic).
  static Result<TimeSeries> Add(const TimeSeries& a, const TimeSeries& b);

  /// Returns a copy with every value below `threshold` replaced by zero;
  /// missing values stay missing. This is the paper's background-traffic
  /// removal primitive (Section 6.1).
  TimeSeries ClipBelow(double threshold) const;

  /// Returns a copy with missing values replaced by `fill`.
  TimeSeries FillMissing(double fill) const;

  /// Returns the sub-series covering absolute minutes [begin, end); the
  /// bounds must be aligned to the bin grid.
  Result<TimeSeries> Slice(int64_t begin_minute, int64_t end_minute) const;

 private:
  int64_t start_minute_ = 0;
  int64_t step_minutes_ = 1;
  std::vector<double> values_;
};

/// \brief How to combine raw bins into an aggregated bin.
enum class AggKind {
  kSum,   ///< total traffic in the window (the paper's aggregation)
  kMean,  ///< average rate
  kMax,   ///< peak
};

/// \brief Re-bins `series` into non-overlapping windows of
/// `granularity_minutes`, anchored so that window boundaries fall on
/// `anchor_offset_minutes` past midnight (e.g. 120 for the paper's
/// 2am-anchored aggregations).
///
/// Output bins that have no observed input are missing. Partial windows at
/// the edges are dropped so every output bin summarizes a full window.
Result<TimeSeries> Aggregate(const TimeSeries& series,
                             int64_t granularity_minutes,
                             int64_t anchor_offset_minutes, AggKind kind);

/// \brief z-normalizes the observed values (mean 0, sd 1). A constant series
/// maps to all zeros. Missing values stay missing.
TimeSeries ZNormalize(const TimeSeries& series);

/// \brief The paper's window mapping `W` (Definitions 2/3/5): cuts `series`
/// into consecutive non-overlapping windows of `window_minutes`, aligned to
/// calendar boundaries shifted by `anchor_offset_minutes`.
///
/// Only complete windows are returned. For weekly windows pass
/// `kMinutesPerWeek` (alignment starts each window on Monday at the anchor
/// offset); for daily windows pass `kMinutesPerDay`.
std::vector<TimeSeries> SliceWindows(const TimeSeries& series,
                                     int64_t window_minutes,
                                     int64_t anchor_offset_minutes);

}  // namespace homets::ts

#endif  // HOMETS_TS_TIME_SERIES_H_
