#include "cluster/hierarchical.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace homets::cluster {

Result<DistanceMatrix> DistanceMatrix::Make(size_t n) {
  if (n == 0) return Status::InvalidArgument("DistanceMatrix: n must be >= 1");
  return DistanceMatrix(n);
}

Result<DistanceMatrix> DistanceMatrix::FromCondensed(
    size_t n, const std::vector<double>& condensed) {
  if (n == 0) return Status::InvalidArgument("DistanceMatrix: n must be >= 1");
  if (condensed.size() != n * (n - 1) / 2) {
    return Status::InvalidArgument(
        "DistanceMatrix: condensed size must be n(n-1)/2");
  }
  DistanceMatrix matrix(n);
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) matrix.Set(i, j, condensed[k++]);
  }
  return matrix;
}

std::vector<size_t> Dendrogram::CutAt(double threshold) const {
  // Union-find over leaves; apply merges with distance <= threshold.
  std::vector<size_t> parent(n_leaves);
  std::iota(parent.begin(), parent.end(), 0);
  std::vector<size_t> find_stack;
  auto find = [&](size_t x) {
    while (parent[x] != x) {
      find_stack.push_back(x);
      x = parent[x];
    }
    for (size_t y : find_stack) parent[y] = x;
    find_stack.clear();
    return x;
  };

  // Internal node id -> a representative leaf of that subtree.
  std::vector<size_t> representative(n_leaves + merges.size());
  std::iota(representative.begin(),
            representative.begin() + static_cast<long>(n_leaves), 0);
  for (size_t m = 0; m < merges.size(); ++m) {
    const MergeStep& step = merges[m];
    const size_t node = n_leaves + m;
    const size_t rep_left = representative[step.left];
    const size_t rep_right = representative[step.right];
    representative[node] = rep_left;
    if (step.distance <= threshold) {
      parent[find(rep_left)] = find(rep_right);
    }
  }

  std::vector<size_t> labels(n_leaves);
  std::vector<size_t> compact(n_leaves, SIZE_MAX);
  size_t next = 0;
  for (size_t i = 0; i < n_leaves; ++i) {
    const size_t root = find(i);
    if (compact[root] == SIZE_MAX) compact[root] = next++;
    labels[i] = compact[root];
  }
  return labels;
}

size_t Dendrogram::CountClustersAt(double threshold) const {
  const std::vector<size_t> labels = CutAt(threshold);
  size_t k = 0;
  for (size_t l : labels) k = std::max(k, l + 1);
  return k;
}

Result<Dendrogram> AgglomerativeCluster(const DistanceMatrix& dist,
                                        Linkage linkage) {
  const size_t n = dist.size();
  Dendrogram tree;
  tree.n_leaves = n;
  if (n == 1) return tree;

  // Working distance matrix over active clusters.
  std::vector<double> d(n * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) d[i * n + j] = dist.At(i, j);
  }
  std::vector<bool> active(n, true);
  std::vector<size_t> node_id(n);   // current dendrogram node per slot
  std::vector<size_t> leaf_count(n, 1);
  std::iota(node_id.begin(), node_id.end(), 0);

  for (size_t step = 0; step + 1 < n; ++step) {
    // Find the closest active pair.
    double best = std::numeric_limits<double>::infinity();
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < n; ++i) {
      if (!active[i]) continue;
      for (size_t j = i + 1; j < n; ++j) {
        if (!active[j]) continue;
        if (d[i * n + j] < best) {
          best = d[i * n + j];
          bi = i;
          bj = j;
        }
      }
    }

    MergeStep merge;
    merge.left = node_id[bi];
    merge.right = node_id[bj];
    merge.distance = best;
    merge.size = leaf_count[bi] + leaf_count[bj];
    tree.merges.push_back(merge);

    // Lance–Williams update into slot bi.
    const double ni = static_cast<double>(leaf_count[bi]);
    const double nj = static_cast<double>(leaf_count[bj]);
    for (size_t k = 0; k < n; ++k) {
      if (!active[k] || k == bi || k == bj) continue;
      const double dik = d[bi * n + k];
      const double djk = d[bj * n + k];
      double updated;
      switch (linkage) {
        case Linkage::kSingle:
          updated = std::min(dik, djk);
          break;
        case Linkage::kComplete:
          updated = std::max(dik, djk);
          break;
        case Linkage::kAverage:
          updated = (ni * dik + nj * djk) / (ni + nj);
          break;
        default:
          updated = std::min(dik, djk);
          break;
      }
      d[bi * n + k] = updated;
      d[k * n + bi] = updated;
    }
    active[bj] = false;
    leaf_count[bi] += leaf_count[bj];
    node_id[bi] = n + step;
  }
  return tree;
}

}  // namespace homets::cluster
