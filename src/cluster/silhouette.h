#ifndef HOMETS_CLUSTER_SILHOUETTE_H_
#define HOMETS_CLUSTER_SILHOUETTE_H_

#include <vector>

#include "cluster/hierarchical.h"
#include "common/status.h"

namespace homets::cluster {

/// \brief Mean silhouette coefficient of a flat clustering under a distance
/// matrix.
///
/// s(i) = (b(i) − a(i)) / max(a(i), b(i)) with a = mean intra-cluster
/// distance and b = smallest mean distance to another cluster. Singleton
/// clusters contribute s = 0 (the scikit-learn convention). Used to validate
/// the Figure 3 cut threshold.
Result<double> MeanSilhouette(const DistanceMatrix& dist,
                              const std::vector<size_t>& labels);

/// \brief Picks the cut threshold maximizing the mean silhouette over the
/// dendrogram's merge distances. Requires a clustering with at least 2 and
/// at most n−1 clusters to be scorable; returns the best threshold and its
/// score.
struct SilhouetteSweepResult {
  double best_threshold = 0.0;
  double best_score = -1.0;
  size_t best_clusters = 0;
};

Result<SilhouetteSweepResult> BestCutBySilhouette(const DistanceMatrix& dist,
                                                  const Dendrogram& tree);

}  // namespace homets::cluster

#endif  // HOMETS_CLUSTER_SILHOUETTE_H_
