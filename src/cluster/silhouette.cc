#include "cluster/silhouette.h"

#include <algorithm>
#include <limits>

namespace homets::cluster {

Result<double> MeanSilhouette(const DistanceMatrix& dist,
                              const std::vector<size_t>& labels) {
  const size_t n = dist.size();
  if (labels.size() != n) {
    return Status::InvalidArgument("MeanSilhouette: label count mismatch");
  }
  size_t k = 0;
  for (size_t l : labels) k = std::max(k, l + 1);
  if (k < 2 || k >= n) {
    return Status::InvalidArgument(
        "MeanSilhouette: need between 2 and n-1 clusters");
  }
  std::vector<size_t> cluster_size(k, 0);
  for (size_t l : labels) ++cluster_size[l];

  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const size_t own = labels[i];
    if (cluster_size[own] <= 1) continue;  // singleton: s = 0
    // Mean distance to each cluster.
    std::vector<double> sums(k, 0.0);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sums[labels[j]] += dist.At(i, j);
    }
    const double a =
        sums[own] / static_cast<double>(cluster_size[own] - 1);
    double b = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < k; ++c) {
      if (c == own || cluster_size[c] == 0) continue;
      b = std::min(b, sums[c] / static_cast<double>(cluster_size[c]));
    }
    const double denom = std::max(a, b);
    if (denom > 0.0) total += (b - a) / denom;
  }
  return total / static_cast<double>(n);
}

Result<SilhouetteSweepResult> BestCutBySilhouette(const DistanceMatrix& dist,
                                                  const Dendrogram& tree) {
  SilhouetteSweepResult result;
  bool found = false;
  for (const MergeStep& merge : tree.merges) {
    const double threshold = merge.distance;
    const std::vector<size_t> labels = tree.CutAt(threshold);
    const auto score = MeanSilhouette(dist, labels);
    if (!score.ok()) continue;
    size_t k = 0;
    for (size_t l : labels) k = std::max(k, l + 1);
    if (!found || *score > result.best_score) {
      found = true;
      result.best_score = *score;
      result.best_threshold = threshold;
      result.best_clusters = k;
    }
  }
  if (!found) {
    return Status::ComputeError("BestCutBySilhouette: no scorable cut");
  }
  return result;
}

}  // namespace homets::cluster
