#include "cluster/rand_index.h"

#include <algorithm>
#include <map>

namespace homets::cluster {

namespace {

double Choose2(double n) { return n * (n - 1.0) / 2.0; }

}  // namespace

Result<double> AdjustedRandIndex(const std::vector<size_t>& a,
                                 const std::vector<size_t>& b) {
  if (a.empty() || a.size() != b.size()) {
    return Status::InvalidArgument(
        "AdjustedRandIndex: need two equal-length non-empty labelings");
  }
  const size_t n = a.size();
  // Contingency table.
  std::map<std::pair<size_t, size_t>, size_t> joint;
  std::map<size_t, size_t> rows, cols;
  for (size_t i = 0; i < n; ++i) {
    ++joint[{a[i], b[i]}];
    ++rows[a[i]];
    ++cols[b[i]];
  }
  double sum_joint = 0.0;
  for (const auto& [key, count] : joint) {
    sum_joint += Choose2(static_cast<double>(count));
  }
  double sum_rows = 0.0;
  for (const auto& [key, count] : rows) {
    sum_rows += Choose2(static_cast<double>(count));
  }
  double sum_cols = 0.0;
  for (const auto& [key, count] : cols) {
    sum_cols += Choose2(static_cast<double>(count));
  }
  const double total_pairs = Choose2(static_cast<double>(n));
  if (total_pairs == 0.0) {
    return Status::InvalidArgument("AdjustedRandIndex: single item");
  }
  const double expected = sum_rows * sum_cols / total_pairs;
  const double max_index = 0.5 * (sum_rows + sum_cols);
  const double denom = max_index - expected;
  if (denom == 0.0) {
    // Both partitions are all-singletons or all-one-cluster: identical by
    // construction.
    return 1.0;
  }
  return (sum_joint - expected) / denom;
}

}  // namespace homets::cluster
