#ifndef HOMETS_CLUSTER_HIERARCHICAL_H_
#define HOMETS_CLUSTER_HIERARCHICAL_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace homets::cluster {

/// \brief Symmetric distance matrix over n items, stored densely.
class DistanceMatrix {
 public:
  /// Creates an n×n matrix with zero diagonal; requires n >= 1.
  static Result<DistanceMatrix> Make(size_t n);

  /// Creates the matrix from a condensed upper triangle in row-major pair
  /// order — the layout produced by core::SimilarityMatrix::
  /// CondensedDistances. Requires `condensed.size() == n(n−1)/2`.
  static Result<DistanceMatrix> FromCondensed(
      size_t n, const std::vector<double>& condensed);

  size_t size() const { return n_; }

  double At(size_t i, size_t j) const { return data_[i * n_ + j]; }

  /// Sets d(i, j) = d(j, i) = value (value >= 0).
  void Set(size_t i, size_t j, double value) {
    data_[i * n_ + j] = value;
    data_[j * n_ + i] = value;
  }

 private:
  explicit DistanceMatrix(size_t n) : n_(n), data_(n * n, 0.0) {}

  size_t n_;
  std::vector<double> data_;
};

/// \brief Linkage criterion for agglomerative clustering.
enum class Linkage {
  kSingle,    ///< min inter-cluster distance
  kComplete,  ///< max inter-cluster distance
  kAverage,   ///< unweighted average (UPGMA) — used for Figure 3
};

/// \brief One merge step of the dendrogram. Leaf ids are 0..n−1; internal
/// nodes are numbered n, n+1, ... in merge order (scipy convention).
struct MergeStep {
  size_t left = 0;
  size_t right = 0;
  double distance = 0.0;  ///< linkage distance at which the merge happened
  size_t size = 0;        ///< number of leaves in the merged cluster
};

/// \brief Dendrogram produced by agglomerative clustering.
struct Dendrogram {
  size_t n_leaves = 0;
  std::vector<MergeStep> merges;  ///< n_leaves − 1 steps

  /// Flat clusters obtained by cutting the tree at `threshold`: every merge
  /// with distance <= threshold is applied. Returns a cluster id per leaf,
  /// ids compacted to 0..k−1.
  std::vector<size_t> CutAt(double threshold) const;

  /// Number of clusters produced by CutAt(threshold).
  size_t CountClustersAt(double threshold) const;
};

/// \brief Agglomerative hierarchical clustering over a distance matrix
/// (Lance–Williams updates; O(n³), fine for the paper's gateway counts).
///
/// The paper clusters traffic time series under the distance 1 − cor(·,·)
/// and cuts at 0.4, i.e. correlation 0.6 (Figure 3).
Result<Dendrogram> AgglomerativeCluster(const DistanceMatrix& dist,
                                        Linkage linkage);

}  // namespace homets::cluster

#endif  // HOMETS_CLUSTER_HIERARCHICAL_H_
