#ifndef HOMETS_CLUSTER_RAND_INDEX_H_
#define HOMETS_CLUSTER_RAND_INDEX_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace homets::cluster {

/// \brief Adjusted Rand Index between two partitions of the same items.
///
/// 1 = identical partitions, ~0 = agreement at chance level (can go
/// slightly negative). Used to compare motif/cluster assignments against
/// each other or against planted ground truth (e.g. correlation motifs vs
/// the SAX baseline). Labels are arbitrary non-negative ids; the two
/// label vectors must have equal, non-zero length.
Result<double> AdjustedRandIndex(const std::vector<size_t>& a,
                                 const std::vector<size_t>& b);

}  // namespace homets::cluster

#endif  // HOMETS_CLUSTER_RAND_INDEX_H_
