// Quickstart: generate one synthetic home gateway, estimate per-device
// background thresholds, compute the correlation similarity between devices
// and the gateway, and report the dominant device — the framework's core
// loop in ~60 lines.
#include <iostream>

#include "core/background.h"
#include "core/dominance.h"
#include "core/similarity.h"
#include "simgen/fleet.h"

int main() {
  using namespace homets;  // NOLINT: example binary

  // 1. A two-week trace of one home (gateway 7 of the default fleet).
  simgen::SimConfig config;
  config.n_gateways = 8;
  config.weeks = 2;
  config.seed = 42;
  simgen::FleetGenerator generator(config);
  const simgen::GatewayTrace home = generator.Generate(7);
  std::cout << "home gateway with " << home.devices.size() << " devices, "
            << home.AggregateTraffic().CountObserved()
            << " observed minutes\n\n";

  // 2. Per-device background thresholds (Section 6.1: τ = boxplot upper
  //    whisker, applied as min(τ, 5000) B/min).
  for (const auto& device : home.devices) {
    const auto background = core::EstimateDeviceBackground(device);
    if (!background.ok()) {
      std::cout << "  " << device.name << ": " << background.status().ToString()
                << "\n";
      continue;
    }
    std::cout << "  " << device.name << " ("
              << simgen::DeviceTypeName(device.reported_type)
              << "): tau_in=" << static_cast<long>(background->incoming.tau)
              << " B/min (group " << core::TauGroupName(background->incoming.group)
              << "), applied threshold "
              << static_cast<long>(background->incoming.tau_back) << "\n";
  }

  // 3. Correlation similarity of each device to the aggregate (Definition 1).
  std::cout << "\ncorrelation similarity to the gateway aggregate:\n";
  const ts::TimeSeries aggregate = home.AggregateTraffic();
  for (const auto& device : home.devices) {
    const auto sim =
        core::CorrelationSimilarity(device.TotalTraffic(), aggregate);
    std::cout << "  " << device.name << ": cor = " << sim.value << " (from "
              << core::SimilaritySourceName(sim.source) << ", "
              << (sim.significant ? "significant" : "not significant")
              << ")\n";
  }

  // 4. Dominant devices (Definition 4, φ = 0.6).
  const auto dominants = core::FindDominantDevices(home);
  std::cout << "\ndominant devices (phi = 0.6): " << dominants.size() << "\n";
  for (const auto& dom : dominants) {
    std::cout << "  #" << dom.device_index << " "
              << home.devices[dom.device_index].name
              << " similarity=" << dom.similarity << "\n";
  }
  if (!dominants.empty()) {
    std::cout << "\nISP takeaway: this home's bandwidth profile is governed "
                 "by one device; schedule maintenance around its idle "
                 "hours.\n";
  }
  return 0;
}
