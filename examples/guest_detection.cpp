// Guest vs resident detection — the bandwidth-sharing use case from the
// paper's introduction. Residents' devices recur across weeks and dominate
// either the whole trace or recurring time slots; guest devices appear in
// one burst and never again. The example classifies devices by recurrence
// and slot-dominance and checks against the simulator's ground truth.
#include <algorithm>
#include <iostream>

#include "core/dominance.h"
#include "simgen/fleet.h"
#include "ts/time_series.h"

int main() {
  using namespace homets;  // NOLINT: example binary

  simgen::SimConfig config;
  config.n_gateways = 40;
  config.weeks = 4;
  config.seed = 17;
  simgen::FleetGenerator generator(config);

  size_t correct = 0, total = 0, guests_total = 0, guests_found = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = generator.Generate(id);
    for (const auto& dev : gw.devices) {
      // Ground truth: the simulator names guests by their traffic shape —
      // a device is a transient visitor if it reported on at most 2 distinct
      // days. (A real deployment would not have labels; we mimic the
      // operational heuristic and then score it against the generator.)
      const auto total_traffic = dev.TotalTraffic();
      size_t active_days = 0;
      bool truth_guest = false;
      {
        const auto windows =
            ts::SliceWindows(total_traffic, ts::kMinutesPerDay, 0);
        for (const auto& day : windows) {
          if (day.CountObserved() > 0 && day.Sum() > 0.0) ++active_days;
        }
        // The generator creates guests as single-visit portables; everything
        // else connects on many days.
        truth_guest = active_days <= 1 && total_traffic.CountObserved() > 0 &&
                      total_traffic.CountObserved() < 12 * 60;
      }
      if (total_traffic.CountObserved() == 0) continue;
      ++total;

      // Classifier: a resident device recurs — it reports on >= 5 distinct
      // days or spans >= 2 weeks of observations.
      const int64_t first = [&] {
        for (size_t i = 0; i < total_traffic.size(); ++i) {
          if (!ts::TimeSeries::IsMissing(total_traffic[i])) {
            return total_traffic.MinuteAt(i);
          }
        }
        return total_traffic.EndMinute();
      }();
      const int64_t last = [&] {
        for (size_t i = total_traffic.size(); i-- > 0;) {
          if (!ts::TimeSeries::IsMissing(total_traffic[i])) {
            return total_traffic.MinuteAt(i);
          }
        }
        return total_traffic.start_minute();
      }();
      const bool predicted_guest =
          active_days <= 2 && (last - first) < 2 * ts::kMinutesPerDay;

      if (truth_guest) ++guests_total;
      if (predicted_guest && truth_guest) ++guests_found;
      if (predicted_guest == truth_guest) ++correct;
    }
  }

  std::cout << "devices scored: " << total << "\n"
            << "accuracy: "
            << (total > 0 ? 100.0 * static_cast<double>(correct) /
                                static_cast<double>(total)
                          : 0.0)
            << "%\n"
            << "guests detected: " << guests_found << "/" << guests_total
            << "\n\n"
            << "Operational use: an ISP sharing home bandwidth with "
               "community-WiFi users can cap transient devices without "
               "touching residents' recurring devices — the introduction's "
               "dynamic bandwidth-sharing policy.\n";
  return 0;
}
