// Device-type classification from background traffic: Section 6.1 observes
// that the background threshold τ is a strong feature for telling fixed
// devices from portables (fixed gear runs many background applications).
// This example recovers the labels the reporting pipeline lost
// ("unlabeled" devices) with a simple τ-based classifier and evaluates it
// against the simulator's ground truth.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "core/background.h"
#include "simgen/fleet.h"

int main() {
  using namespace homets;  // NOLINT: example binary

  simgen::SimConfig config;
  config.n_gateways = 80;
  config.weeks = 2;
  config.seed = 7;
  config.unlabeled_prob = 0.3;
  simgen::FleetGenerator generator(config);

  // Calibrate a τ decision threshold on labeled devices, then classify the
  // unlabeled ones.
  std::vector<double> fixed_taus, portable_taus;
  struct Unlabeled {
    double tau;
    simgen::DeviceType truth;
  };
  std::vector<Unlabeled> unlabeled;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = generator.Generate(id);
    for (const auto& dev : gw.devices) {
      if (dev.true_type != simgen::DeviceType::kFixed &&
          dev.true_type != simgen::DeviceType::kPortable) {
        continue;
      }
      const auto bg = core::EstimateDeviceBackground(dev);
      if (!bg.ok()) continue;
      const double tau = bg->incoming.tau;
      if (dev.reported_type == simgen::DeviceType::kUnlabeled) {
        unlabeled.push_back({tau, dev.true_type});
      } else if (dev.reported_type == simgen::DeviceType::kFixed) {
        fixed_taus.push_back(tau);
      } else if (dev.reported_type == simgen::DeviceType::kPortable) {
        portable_taus.push_back(tau);
      }
    }
  }
  if (fixed_taus.empty() || portable_taus.empty() || unlabeled.empty()) {
    std::cout << "not enough devices to calibrate\n";
    return 1;
  }

  // Decision threshold: midpoint of the two class medians in log space.
  auto median = [](std::vector<double> xs) {
    std::sort(xs.begin(), xs.end());
    return xs[xs.size() / 2];
  };
  const double fixed_med = median(fixed_taus);
  const double portable_med = median(portable_taus);
  const double cut = std::sqrt(fixed_med * portable_med);
  std::cout << "labeled medians: fixed tau = " << static_cast<long>(fixed_med)
            << " B/min, portable tau = " << static_cast<long>(portable_med)
            << " B/min  ->  decision threshold "
            << static_cast<long>(cut) << " B/min\n";

  size_t correct = 0;
  size_t fixed_truths = 0;
  for (const auto& u : unlabeled) {
    const auto predicted = u.tau >= cut ? simgen::DeviceType::kFixed
                                        : simgen::DeviceType::kPortable;
    if (predicted == u.truth) ++correct;
    if (u.truth == simgen::DeviceType::kFixed) ++fixed_truths;
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(unlabeled.size());
  const double majority =
      std::max(static_cast<double>(fixed_truths),
               static_cast<double>(unlabeled.size() - fixed_truths)) /
      static_cast<double>(unlabeled.size());
  std::cout << "unlabeled devices classified: " << unlabeled.size()
            << "\naccuracy: " << 100.0 * accuracy
            << "%  (majority-class baseline: " << 100.0 * majority << "%)\n"
            << "\nSection 6.1's claim holds: background traffic level is a "
               "significant feature for device-type classification.\n";
  return accuracy > majority ? 0 : 1;
}
