// Full motif-mining pipeline on a small fleet: eligibility filtering →
// background removal → best-aggregation selection (Definition 3) → daily
// motif discovery (Definition 5) → per-motif characterization — the analysis
// of Sections 6 and 7 end to end.
#include <iostream>
#include <map>

#include "core/aggregation.h"
#include "core/background.h"
#include "core/dominance.h"
#include "core/motif.h"
#include "core/motif_analysis.h"
#include "simgen/fleet.h"

int main() {
  using namespace homets;  // NOLINT: example binary

  simgen::SimConfig config;
  config.n_gateways = 32;
  config.weeks = 4;
  config.seed = 20140317;
  simgen::FleetGenerator generator(config);
  const int days = config.weeks * 7;

  // Stage 1: keep gateways reporting every day, strip background traffic.
  std::map<int, simgen::GatewayTrace> fleet;
  std::vector<ts::TimeSeries> active;
  for (int id = 0; id < config.n_gateways; ++id) {
    auto gw = generator.Generate(id);
    if (!gw.HasObservationEveryDay(0, days)) continue;
    active.push_back(core::ActiveAggregate(gw));
    fleet.emplace(id, std::move(gw));
  }
  std::cout << "eligible gateways: " << fleet.size() << " of "
            << config.n_gateways << "\n";

  // Stage 2: pick the best daily aggregation granularity (Definition 3).
  core::AggregationSweepOptions sweep_options;
  sweep_options.period = core::PatternPeriod::kDaily;
  const auto sweep = core::SweepAggregations(
      active, {30, 60, 90, 120, 180}, sweep_options);
  int64_t granularity = 180;
  if (sweep.ok()) {
    const auto best = core::BestGranularity(*sweep, false);
    if (best.ok()) granularity = *best;
    std::cout << "best daily aggregation: " << granularity << " minutes\n";
  }

  // Stage 3: cut daily windows and mine motifs (Definition 5).
  std::vector<ts::TimeSeries> windows;
  std::vector<core::WindowProvenance> provenance;
  size_t active_index = 0;
  for (const auto& [id, gw] : fleet) {
    const auto aggregated =
        ts::Aggregate(active[active_index++], granularity, 0,
                      ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    for (auto& window : ts::SliceWindows(*aggregated, ts::kMinutesPerDay, 0)) {
      provenance.push_back({id, window.start_minute()});
      windows.push_back(std::move(window));
    }
  }
  const auto motifs = core::MotifDiscovery().Discover(windows);
  if (!motifs.ok()) {
    std::cout << "motif discovery failed: " << motifs.status().ToString()
              << "\n";
    return 1;
  }
  std::cout << "daily motifs: " << motifs->size() << " from "
            << windows.size() << " gateway-days\n";

  // Stage 4: characterize the strongest motif.
  if (!motifs->empty()) {
    const auto& top = motifs->front();
    std::map<int, std::vector<core::DominantDevice>> overall;
    for (size_t member : top.members) {
      const int id = provenance[member].gateway_id;
      if (!overall.count(id)) {
        overall[id] = core::FindDominantDevices(fleet.at(id));
      }
    }
    core::MotifAnalysisOptions options;
    options.granularity_minutes = granularity;
    options.window_minutes = ts::kMinutesPerDay;
    const auto character = core::CharacterizeMotif(
        top, provenance,
        [&fleet](int id) -> const simgen::GatewayTrace* {
          const auto it = fleet.find(id);
          return it == fleet.end() ? nullptr : &it->second;
        },
        overall, options);
    if (character.ok()) {
      std::cout << "\ntop motif: support " << character->support << ", "
                << character->distinct_gateways << " gateways, "
                << 100.0 * character->within_gateway_fraction
                << "% recurring within gateways\n"
                << "  workday windows: " << character->workday_members
                << ", weekend windows: " << character->weekend_members << "\n";
      std::cout << "  dominant device types in motif windows:\n";
      for (const auto& [type, count] : character->dominant_type_counts) {
        std::cout << "    " << simgen::DeviceTypeName(type) << ": " << count
                  << "\n";
      }
    }
  }
  return 0;
}
