// Firmware-update scheduler: the ISP use case motivating the paper's
// introduction. Broadcasting updates to every gateway at night disrupts the
// night-active homes; instead, use each home's recurring activity pattern to
// pick the least cumbersome 3-hour maintenance window per gateway.
#include <algorithm>
#include <array>
#include <iostream>
#include <map>

#include "common/strings.h"
#include "core/background.h"
#include "simgen/fleet.h"
#include "ts/time_series.h"

int main() {
  using namespace homets;  // NOLINT: example binary

  simgen::SimConfig config;
  config.n_gateways = 24;
  config.weeks = 3;
  config.seed = 99;
  simgen::FleetGenerator generator(config);

  // For each home: average active traffic per 3-hour slot of the day, then
  // pick the quietest slot.
  constexpr int kSlots = 8;
  std::map<int, int> homes_per_slot;
  int night_active_homes = 0;
  std::cout << "per-home maintenance windows (3h slots, active traffic):\n";
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto gw = generator.Generate(id);
    const auto active = core::ActiveAggregate(gw);
    const auto aggregated = ts::Aggregate(active, 180, 0, ts::AggKind::kSum);
    if (!aggregated.ok()) continue;
    std::array<double, kSlots> slot_traffic{};
    std::array<int, kSlots> slot_count{};
    for (size_t i = 0; i < aggregated->size(); ++i) {
      const double v = (*aggregated)[i];
      if (ts::TimeSeries::IsMissing(v)) continue;
      const int slot = static_cast<int>(
          ts::MinuteOfDay(aggregated->MinuteAt(i)) / 180);
      slot_traffic[static_cast<size_t>(slot)] += v;
      ++slot_count[static_cast<size_t>(slot)];
    }
    int best_slot = 0;
    double best_mean = 1e300;
    for (int s = 0; s < kSlots; ++s) {
      if (slot_count[static_cast<size_t>(s)] == 0) continue;
      const double mean = slot_traffic[static_cast<size_t>(s)] /
                          slot_count[static_cast<size_t>(s)];
      if (mean < best_mean) {
        best_mean = mean;
        best_slot = s;
      }
    }
    ++homes_per_slot[best_slot];
    // A home is night-active if the default broadcast window (03:00-06:00,
    // slot 1) carries at least 10% of its busiest slot.
    double max_mean = 0.0;
    for (int s = 0; s < kSlots; ++s) {
      if (slot_count[static_cast<size_t>(s)] == 0) continue;
      max_mean = std::max(max_mean, slot_traffic[static_cast<size_t>(s)] /
                                        slot_count[static_cast<size_t>(s)]);
    }
    const double night_mean =
        slot_count[1] > 0 ? slot_traffic[1] / slot_count[1] : 0.0;
    const bool night_active = max_mean > 0.0 && night_mean > 0.1 * max_mean;
    if (night_active) ++night_active_homes;
    std::cout << "  gw" << id << ": update at "
              << StrFormat("%02d:00-%02d:00", best_slot * 3,
                           best_slot * 3 + 3)
              << (night_active ? "  [night-active: default 3am broadcast "
                                 "would disrupt this home]"
                               : "")
              << "\n";
  }

  std::cout << "\nhomes per chosen window:\n";
  for (const auto& [slot, count] : homes_per_slot) {
    std::cout << "  " << StrFormat("%02d:00-%02d:00", slot * 3, slot * 3 + 3)
              << ": " << count << " homes\n";
  }
  std::cout << "\nnight-active homes: " << night_active_homes
            << " — the paper's point: a one-size-fits-all nightly update "
               "window causes outages for these users, while per-home "
               "pattern-aware scheduling does not.\n";
  return 0;
}
