#include "distance/distance.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace homets::distance {
namespace {

TEST(EuclideanTest, KnownValue) {
  EXPECT_DOUBLE_EQ(Euclidean({0, 0}, {3, 4}).value(), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanSquared({0, 0}, {3, 4}).value(), 25.0);
}

TEST(EuclideanTest, IdenticalSeriesZero) {
  EXPECT_DOUBLE_EQ(Euclidean({1, 2, 3}, {1, 2, 3}).value(), 0.0);
}

TEST(EuclideanTest, SymmetricAndNonNegative) {
  const std::vector<double> a{1, 5, -2};
  const std::vector<double> b{0, 2, 7};
  EXPECT_DOUBLE_EQ(Euclidean(a, b).value(), Euclidean(b, a).value());
  EXPECT_GE(Euclidean(a, b).value(), 0.0);
}

TEST(EuclideanTest, TriangleInequality) {
  const std::vector<double> a{0, 0, 0};
  const std::vector<double> b{1, 2, 3};
  const std::vector<double> c{4, -1, 2};
  EXPECT_LE(Euclidean(a, c).value(),
            Euclidean(a, b).value() + Euclidean(b, c).value() + 1e-12);
}

TEST(EuclideanTest, NanPairsSkipped) {
  EXPECT_DOUBLE_EQ(
      Euclidean({1.0, std::nan(""), 4.0}, {1.0, 5.0, 1.0}).value(), 3.0);
}

TEST(EuclideanTest, Errors) {
  EXPECT_FALSE(Euclidean({1, 2}, {1, 2, 3}).ok());
  EXPECT_FALSE(Euclidean({}, {}).ok());
  const std::vector<double> nan2{std::nan(""), std::nan("")};
  EXPECT_FALSE(Euclidean(nan2, {1.0, 2.0}).ok());
}

TEST(DtwTest, IdenticalSeriesZero) {
  EXPECT_DOUBLE_EQ(DynamicTimeWarping({1, 2, 3, 4}, {1, 2, 3, 4}).value(),
                   0.0);
}

TEST(DtwTest, AtMostEuclideanForEqualLength) {
  const std::vector<double> a{1, 3, 2, 8, 5};
  const std::vector<double> b{2, 2, 4, 7, 4};
  EXPECT_LE(DynamicTimeWarping(a, b).value(), Euclidean(a, b).value() + 1e-12);
}

TEST(DtwTest, AbsorbsTimeShift) {
  // The exact property the paper criticizes: a shifted peak looks similar
  // under DTW even though the activity happens at a different time.
  std::vector<double> early(20, 0.0);
  std::vector<double> late(20, 0.0);
  early[5] = 10.0;
  late[12] = 10.0;
  const double dtw = DynamicTimeWarping(early, late).value();
  const double euc = Euclidean(early, late).value();
  EXPECT_LT(dtw, 1e-9);      // warping aligns the peaks perfectly
  EXPECT_GT(euc, 10.0);      // Euclidean sees two mismatched bursts
}

TEST(DtwTest, DifferentLengthsAllowed) {
  const auto d = DynamicTimeWarping({1, 2, 3}, {1, 1, 2, 2, 3, 3});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, 1e-12);
}

TEST(DtwTest, BandRestrictsWarping) {
  std::vector<double> early(20, 0.0);
  std::vector<double> late(20, 0.0);
  early[2] = 10.0;
  late[17] = 10.0;
  const double unconstrained = DynamicTimeWarping(early, late, -1).value();
  const double banded = DynamicTimeWarping(early, late, 3).value();
  EXPECT_LT(unconstrained, 1e-9);
  EXPECT_GT(banded, 10.0);  // band of 3 cannot bridge a 15-step shift
}

TEST(DtwTest, BandZeroEqualsEuclideanForEqualLengths) {
  const std::vector<double> a{1, 4, 2, 9};
  const std::vector<double> b{2, 3, 5, 7};
  EXPECT_NEAR(DynamicTimeWarping(a, b, 0).value(), Euclidean(a, b).value(),
              1e-12);
}

TEST(DtwTest, SymmetricForEqualLengths) {
  const std::vector<double> a{1, 5, 3, 7, 2};
  const std::vector<double> b{2, 4, 4, 6, 1};
  EXPECT_DOUBLE_EQ(DynamicTimeWarping(a, b).value(),
                   DynamicTimeWarping(b, a).value());
}

TEST(DtwTest, Errors) {
  EXPECT_FALSE(DynamicTimeWarping({}, {1.0}).ok());
  EXPECT_FALSE(DynamicTimeWarping({1.0}, {}).ok());
  EXPECT_FALSE(DynamicTimeWarping({std::nan("")}, {1.0}).ok());
  // Band narrower than the length difference is unsatisfiable.
  EXPECT_FALSE(DynamicTimeWarping({1, 2, 3, 4, 5, 6}, {1.0}, 2).ok());
}

}  // namespace
}  // namespace homets::distance
