#include "io/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "simgen/fleet.h"

namespace homets::io {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(TimeSeriesCsvTest, RoundTrip) {
  const std::string path = TempPath("series.csv");
  ts::TimeSeries original(120, 5, {1.5, ts::TimeSeries::Missing(), 3.25});
  ASSERT_TRUE(WriteTimeSeriesCsv(path, original).ok());
  const auto loaded = ReadTimeSeriesCsv(path).value();
  EXPECT_EQ(loaded.start_minute(), 120);
  EXPECT_EQ(loaded.step_minutes(), 5);
  ASSERT_EQ(loaded.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[0], 1.5);
  EXPECT_TRUE(ts::TimeSeries::IsMissing(loaded[1]));
  EXPECT_DOUBLE_EQ(loaded[2], 3.25);
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, SingleValueSeries) {
  const std::string path = TempPath("single.csv");
  ts::TimeSeries original(0, 1, {42.0});
  ASSERT_TRUE(WriteTimeSeriesCsv(path, original).ok());
  const auto loaded = ReadTimeSeriesCsv(path).value();
  ASSERT_EQ(loaded.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded[0], 42.0);
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, MissingFileErrors) {
  EXPECT_EQ(ReadTimeSeriesCsv("/nonexistent/nope.csv").status().code(),
            StatusCode::kIoError);
}

TEST(TimeSeriesCsvTest, MalformedRowErrors) {
  const std::string path = TempPath("bad.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("minute,value\n1,2,3\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadTimeSeriesCsv(path).ok());
  std::remove(path.c_str());
}

TEST(TimeSeriesCsvTest, IrregularStepErrors) {
  const std::string path = TempPath("irregular.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("minute,value\n0,1\n1,2\n5,3\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadTimeSeriesCsv(path).ok());
  std::remove(path.c_str());
}

TEST(GatewayCsvTest, RoundTripPreservesObservedMinutes) {
  simgen::SimConfig config;
  config.n_gateways = 1;
  config.weeks = 1;
  config.seed = 3;
  config.long_outage_prob = 0.0;  // an all-missing trace writes no rows
  config.unreliable_daily_prob = 0.0;
  const auto gw = simgen::FleetGenerator(config).Generate(0);
  const std::string path = TempPath("gateway.csv");
  ASSERT_TRUE(WriteGatewayCsv(path, gw).ok());
  const auto loaded = ReadGatewayCsv(path).value();
  ASSERT_EQ(loaded.devices.size(), gw.devices.size());
  // Totals agree (missing minutes are not stored but contribute nothing).
  EXPECT_NEAR(loaded.AggregateTraffic().Sum(), gw.AggregateTraffic().Sum(),
              1.0);
  std::remove(path.c_str());
}

TEST(GatewayCsvTest, TypesSurviveRoundTrip) {
  simgen::GatewayTrace gw;
  simgen::DeviceTrace dev;
  dev.name = "laptop";
  dev.true_type = simgen::DeviceType::kFixed;
  dev.reported_type = simgen::DeviceType::kUnlabeled;
  dev.incoming = ts::TimeSeries(0, 1, {1.0, 2.0});
  dev.outgoing = ts::TimeSeries(0, 1, {3.0, 4.0});
  gw.devices.push_back(dev);
  const std::string path = TempPath("typed.csv");
  ASSERT_TRUE(WriteGatewayCsv(path, gw).ok());
  const auto loaded = ReadGatewayCsv(path).value();
  ASSERT_EQ(loaded.devices.size(), 1u);
  EXPECT_EQ(loaded.devices[0].name, "laptop");
  EXPECT_EQ(loaded.devices[0].true_type, simgen::DeviceType::kFixed);
  EXPECT_EQ(loaded.devices[0].reported_type, simgen::DeviceType::kUnlabeled);
  std::remove(path.c_str());
}

TEST(GatewayCsvTest, EmptyFileErrors) {
  const std::string path = TempPath("empty.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fclose(f);
  }
  EXPECT_FALSE(ReadGatewayCsv(path).ok());
  std::remove(path.c_str());
}

TEST(GatewayCsvTest, UnknownDeviceTypeErrors) {
  const std::string path = TempPath("badtype.csv");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs(
        "device,true_type,reported_type,minute,incoming,outgoing\n"
        "d,teapot,portable,0,1,2\n",
        f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadGatewayCsv(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace homets::io
