// Resilient-ingestion tests: the malformed-CSV fixture corpus under
// tests/io/fixtures/ run through all three ErrorPolicy values, plus the
// per-file error cap and the ingest metric counters. The corpus path comes
// in via HOMETS_IO_FIXTURES_DIR (set in tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "io/csv.h"
#include "obs/metric_names.h"
#include "obs/metrics.h"
#include "ts/time_series.h"

namespace homets::io {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(HOMETS_IO_FIXTURES_DIR) + "/" + name;
}

ReadOptions Policy(ErrorPolicy policy) {
  ReadOptions options;
  options.policy = policy;
  return options;
}

TEST(IngestSeriesTest, BadHeaderStrictFailsOthersQuarantine) {
  EXPECT_EQ(ReadTimeSeriesCsv(Fixture("bad_header.csv")).status().code(),
            StatusCode::kInvalidArgument);
  for (const ErrorPolicy policy :
       {ErrorPolicy::kSkipAndReport, ErrorPolicy::kRepair}) {
    IngestReport report;
    const auto loaded =
        ReadTimeSeriesCsv(Fixture("bad_header.csv"), Policy(policy), &report);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->size(), 4u);
    EXPECT_EQ(report.rows_malformed, 1u);
    ASSERT_FALSE(report.quarantine.empty());
    EXPECT_EQ(report.quarantine[0].line, 1u);
    EXPECT_EQ(report.quarantine[0].reason, "bad header");
  }
}

TEST(IngestSeriesTest, NonNumericCellsQuarantinedWithSamples) {
  EXPECT_EQ(ReadTimeSeriesCsv(Fixture("non_numeric.csv")).status().code(),
            StatusCode::kInvalidArgument);
  IngestReport report;
  const auto loaded =
      ReadTimeSeriesCsv(Fixture("non_numeric.csv"),
                        Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 4u);  // minutes 0..3 survive
  EXPECT_DOUBLE_EQ((*loaded)[2], 2.5);
  EXPECT_EQ(report.rows_parsed, 4u);
  EXPECT_EQ(report.rows_malformed, 2u);
  ASSERT_EQ(report.quarantine.size(), 2u);
  EXPECT_EQ(report.quarantine[0].text, "oops,9.9");
  EXPECT_EQ(report.quarantine[0].reason, "non-numeric cell");
  EXPECT_EQ(report.quarantine[1].line, 5u);
}

TEST(IngestSeriesTest, DuplicateMinuteFirstRowWins) {
  EXPECT_FALSE(ReadTimeSeriesCsv(Fixture("duplicate_minute.csv")).ok());
  IngestReport report;
  const auto loaded =
      ReadTimeSeriesCsv(Fixture("duplicate_minute.csv"),
                        Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 4u);
  EXPECT_DOUBLE_EQ((*loaded)[1], 2.0);  // not the 2.5 from the repeat
  EXPECT_EQ(report.rows_duplicate, 1u);
  EXPECT_EQ(report.SkippedTotal(), 1u);
}

TEST(IngestSeriesTest, OutOfOrderNeedsRepair) {
  // Strict and skip both fail (the quarantined row leaves an irregular
  // grid); repair re-sorts and recovers every row.
  EXPECT_FALSE(ReadTimeSeriesCsv(Fixture("out_of_order.csv")).ok());
  EXPECT_FALSE(ReadTimeSeriesCsv(Fixture("out_of_order.csv"),
                                 Policy(ErrorPolicy::kSkipAndReport))
                   .ok());
  IngestReport report;
  const auto loaded = ReadTimeSeriesCsv(Fixture("out_of_order.csv"),
                                        Policy(ErrorPolicy::kRepair), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ((*loaded)[i], static_cast<double>(i) + 1.0);
  }
  EXPECT_EQ(report.rows_out_of_order, 1u);
  EXPECT_EQ(report.gaps_repaired, 0u);
}

TEST(IngestSeriesTest, GapsFilledWithMissingMarkers) {
  EXPECT_FALSE(ReadTimeSeriesCsv(Fixture("gapped.csv")).ok());
  IngestReport report;
  const auto loaded = ReadTimeSeriesCsv(Fixture("gapped.csv"),
                                        Policy(ErrorPolicy::kRepair), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 7u);  // minutes 0..6 on a step-1 grid
  EXPECT_EQ(loaded->step_minutes(), 1);
  EXPECT_TRUE(ts::TimeSeries::IsMissing((*loaded)[3]));
  EXPECT_TRUE(ts::TimeSeries::IsMissing((*loaded)[4]));
  EXPECT_DOUBLE_EQ((*loaded)[5], 6.0);
  EXPECT_EQ(report.gaps_repaired, 2u);
}

TEST(IngestSeriesTest, OffGridMinutesCannotBeRepaired) {
  const auto loaded =
      ReadTimeSeriesCsv(Fixture("off_grid.csv"), Policy(ErrorPolicy::kRepair));
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("cannot infer minute grid"),
            std::string::npos);
}

TEST(IngestSeriesTest, RepairRecoversCombinedMess) {
  IngestReport report;
  const auto loaded = ReadTimeSeriesCsv(Fixture("mess.csv"),
                                        Policy(ErrorPolicy::kRepair), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), 6u);  // minutes 0..5
  EXPECT_DOUBLE_EQ((*loaded)[1], 2.0);
  EXPECT_DOUBLE_EQ((*loaded)[3], 4.0);
  EXPECT_TRUE(ts::TimeSeries::IsMissing((*loaded)[2]));
  EXPECT_TRUE(ts::TimeSeries::IsMissing((*loaded)[4]));
  EXPECT_EQ(report.rows_parsed, 4u);
  EXPECT_EQ(report.rows_malformed, 1u);
  EXPECT_EQ(report.rows_duplicate, 1u);
  EXPECT_EQ(report.rows_out_of_order, 1u);
  EXPECT_EQ(report.gaps_repaired, 2u);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("4 rows"), std::string::npos);
  EXPECT_NE(summary.find("1 malformed"), std::string::npos);
  EXPECT_NE(summary.find("2 gaps repaired"), std::string::npos);
}

TEST(IngestSeriesTest, EmbeddedNulByteIsMalformedNotFatal) {
  EXPECT_FALSE(ReadTimeSeriesCsv(Fixture("embedded_nul.csv")).ok());
  IngestReport report;
  const auto loaded =
      ReadTimeSeriesCsv(Fixture("embedded_nul.csv"),
                        Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);  // minutes 0 and 2 form a step-2 grid
  EXPECT_EQ(report.rows_malformed, 1u);
}

TEST(IngestSeriesTest, ErrorCapFailsThoroughlyCorruptFile) {
  const std::string path = testing::TempDir() + "/corrupt_flood.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("minute,value\n", f);
    for (int i = 0; i < 8; ++i) std::fputs("garbage\n", f);
    std::fclose(f);
  }
  ReadOptions options = Policy(ErrorPolicy::kSkipAndReport);
  options.max_errors = 3;
  const auto loaded = ReadTimeSeriesCsv(path, options);
  // InvalidArgument, not IoError: a content problem must never be retried.
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("too many bad rows"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(IngestSeriesTest, QuarantineSampleIsCappedButCountsAreExact) {
  const std::string path = testing::TempDir() + "/many_bad.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("minute,value\n", f);
    for (int i = 0; i < 30; ++i) std::fputs("junk\n", f);
    std::fputs("0,1.0\n1,2.0\n", f);
    std::fclose(f);
  }
  IngestReport report;
  const auto loaded = ReadTimeSeriesCsv(
      path, Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.rows_malformed, 30u);
  EXPECT_LT(report.quarantine.size(), 30u);
  std::remove(path.c_str());
}

TEST(IngestSeriesTest, IngestMetricsAggregateAcrossReads) {
  auto& registry = obs::MetricsRegistry::Global();
  obs::Counter* const malformed =
      registry.GetCounter(obs::kIngestRowsMalformed);
  obs::Counter* const gaps = registry.GetCounter(obs::kIngestGapsRepaired);
  const uint64_t malformed_before = malformed->Value();
  const uint64_t gaps_before = gaps->Value();
  ASSERT_TRUE(
      ReadTimeSeriesCsv(Fixture("mess.csv"), Policy(ErrorPolicy::kRepair))
          .ok());
  EXPECT_EQ(malformed->Value(), malformed_before + 1);
  EXPECT_EQ(gaps->Value(), gaps_before + 2);
}

TEST(IngestGatewayTest, DuplicateObservationFirstRowWins) {
  const auto strict = ReadGatewayCsv(Fixture("gateway_dup.csv"));
  EXPECT_EQ(strict.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(strict.status().message().find("duplicate observation"),
            std::string::npos);
  IngestReport report;
  const auto loaded =
      ReadGatewayCsv(Fixture("gateway_dup.csv"),
                     Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->devices.size(), 2u);
  EXPECT_EQ(report.rows_duplicate, 1u);
  EXPECT_EQ(report.rows_parsed, 3u);
  // devices are name-sorted: cam first.
  EXPECT_EQ(loaded->devices[0].name, "cam");
  EXPECT_DOUBLE_EQ(loaded->devices[0].incoming[1], 3.0);  // not the 9.0 dup
}

TEST(IngestGatewayTest, UnknownDeviceTypeQuarantined) {
  EXPECT_EQ(ReadGatewayCsv(Fixture("gateway_badtype.csv")).status().code(),
            StatusCode::kInvalidArgument);
  IngestReport report;
  const auto loaded =
      ReadGatewayCsv(Fixture("gateway_badtype.csv"),
                     Policy(ErrorPolicy::kSkipAndReport), &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->devices.size(), 1u);
  EXPECT_EQ(loaded->devices[0].true_type, simgen::DeviceType::kFixed);
  EXPECT_EQ(report.rows_malformed, 1u);
  EXPECT_EQ(report.rows_parsed, 2u);
  ASSERT_FALSE(report.quarantine.empty());
  EXPECT_EQ(report.quarantine[0].reason, "unparseable cell or type");
}

TEST(IngestGatewayTest, StrictOverloadMatchesDefaultOptions) {
  // The one-argument overload is exactly ReadOptions{} — same failure, same
  // code — so existing call sites kept their behavior through the refactor.
  const auto wrapper = ReadGatewayCsv(Fixture("gateway_dup.csv"));
  const auto explicit_strict =
      ReadGatewayCsv(Fixture("gateway_dup.csv"), ReadOptions{});
  EXPECT_EQ(wrapper.status().code(), explicit_strict.status().code());
  EXPECT_EQ(wrapper.status().message(), explicit_strict.status().message());
}

}  // namespace
}  // namespace homets::io
