#include "io/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace homets::io {
namespace {

TEST(TextTableTest, PrintsHeaderAndRows) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"beta", "22"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TextTableTest, ShortRowsPadded) {
  TextTable table({"a", "b", "c"});
  table.AddRow({"only"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TextTableTest, ExtraCellsDropped) {
  TextTable table({"a"});
  table.AddRow({"x", "IGNORED"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str().find("IGNORED"), std::string::npos);
}

TEST(TextTableTest, ColumnsAlignedToWidestCell) {
  TextTable table({"h"});
  table.AddRow({"wide-cell-content"});
  table.AddRow({"x"});
  std::ostringstream os;
  table.Print(os);
  // All data lines share the same length after padding.
  std::istringstream is(os.str());
  std::string header, sep, row1, row2;
  std::getline(is, header);
  std::getline(is, sep);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(row1.find("wide-cell-content"), row2.find("x"));
}

TEST(AsciiBarTest, ProportionalLength) {
  EXPECT_EQ(AsciiBar(10.0, 10.0, 20).size(), 20u);
  EXPECT_EQ(AsciiBar(5.0, 10.0, 20).size(), 10u);
  EXPECT_EQ(AsciiBar(0.0, 10.0, 20), "");
  EXPECT_EQ(AsciiBar(10.0, 0.0, 20), "");
}

TEST(AsciiBarTest, TinyPositiveValueStillVisible) {
  EXPECT_EQ(AsciiBar(0.001, 100.0, 20).size(), 1u);
}

TEST(AsciiBarTest, ClampsAtWidth) {
  EXPECT_EQ(AsciiBar(1000.0, 10.0, 8).size(), 8u);
}

TEST(PrintSectionTest, WritesTitle) {
  std::ostringstream os;
  PrintSection(os, "Figure 4");
  EXPECT_NE(os.str().find("== Figure 4 =="), std::string::npos);
}

}  // namespace
}  // namespace homets::io
