// DatasetReader facade tests: format guessing/forcing, the CSV and columnar
// branches returning the same traces, csv→homets compaction and export, and
// the committed corrupted-.homets fixtures (bad magic, torn trailer, flipped
// chunk byte) each surfacing as a clean Status — never a crash. Fixture path
// comes in via HOMETS_IO_FIXTURES_DIR (set in tests/CMakeLists.txt).
#include "io/dataset.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/status.h"
#include "io/csv.h"
#include "simgen/types.h"
#include "storage/homets_format.h"
#include "ts/time_series.h"

namespace homets::io {
namespace {

std::string Fixture(const std::string& name) {
  return std::string(HOMETS_IO_FIXTURES_DIR) + "/" + name;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string FileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(InputFormatTest, ParseAndName) {
  ASSERT_TRUE(ParseInputFormat("csv").ok());
  EXPECT_EQ(*ParseInputFormat("csv"), InputFormat::kCsv);
  EXPECT_EQ(*ParseInputFormat("homets"), InputFormat::kHomets);
  EXPECT_EQ(*ParseInputFormat("auto"), InputFormat::kAuto);
  const auto bad = ParseInputFormat("parquet");
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("parquet"), std::string::npos);
  EXPECT_EQ(InputFormatName(InputFormat::kHomets), "homets");
}

TEST(InputFormatTest, GuessByExtensionUnlessForced) {
  EXPECT_EQ(GuessFormat("a/b/fleet.homets", InputFormat::kAuto),
            InputFormat::kHomets);
  EXPECT_EQ(GuessFormat("a/b/gw.csv", InputFormat::kAuto), InputFormat::kCsv);
  EXPECT_EQ(GuessFormat("noext", InputFormat::kAuto), InputFormat::kCsv);
  // A forced format wins over the extension.
  EXPECT_EQ(GuessFormat("a/b/fleet.homets", InputFormat::kCsv),
            InputFormat::kCsv);
  EXPECT_EQ(GuessFormat("a/b/gw.csv", InputFormat::kHomets),
            InputFormat::kHomets);
}

// Both facade branches, fed the same trace, must hand back identical data.
TEST(DatasetReaderTest, CsvAndHometsBranchesAgree) {
  auto csv_reader = DatasetReader::Open(Fixture("single_gateway.csv"));
  ASSERT_TRUE(csv_reader.ok()) << csv_reader.status().ToString();
  EXPECT_EQ(csv_reader->format(), InputFormat::kCsv);
  ASSERT_EQ(csv_reader->gateway_count(), 1u);

  auto col_reader = DatasetReader::Open(Fixture("single_gateway.homets"));
  ASSERT_TRUE(col_reader.ok()) << col_reader.status().ToString();
  EXPECT_EQ(col_reader->format(), InputFormat::kHomets);
  ASSERT_EQ(col_reader->gateway_count(), 1u);

  const auto from_csv = csv_reader->ReadGateway(0);
  const auto from_col = col_reader->ReadGateway(0);
  ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
  ASSERT_TRUE(from_col.ok()) << from_col.status().ToString();
  ASSERT_EQ(from_csv->devices.size(), from_col->devices.size());
  for (size_t d = 0; d < from_csv->devices.size(); ++d) {
    EXPECT_EQ(from_csv->devices[d].name, from_col->devices[d].name);
    EXPECT_EQ(from_csv->devices[d].reported_type,
              from_col->devices[d].reported_type);
    const auto& a = from_csv->devices[d].incoming;
    const auto& b = from_col->devices[d].incoming;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      const double av = a[i];
      const double bv = b[i];
      if (ts::TimeSeries::IsMissing(av)) {
        EXPECT_TRUE(ts::TimeSeries::IsMissing(bv));
      } else {
        EXPECT_TRUE(std::memcmp(&av, &bv, sizeof(double)) == 0)
            << "device " << d << " bin " << i;
      }
    }
  }
  EXPECT_EQ(csv_reader->ReadGateway(1).status().code(),
            StatusCode::kOutOfRange);
}

TEST(DatasetReaderTest, ForcedFormatOverridesExtension) {
  // Forcing csv on a binary file must fail in the CSV reader, not crash.
  DatasetOptions options;
  options.format = InputFormat::kCsv;
  auto forced = DatasetReader::Open(Fixture("single_gateway.homets"), options);
  ASSERT_TRUE(forced.ok());  // CSV opens lazily; the read reports the error
  EXPECT_FALSE(forced->ReadGateway(0).ok());
}

TEST(DatasetConvertTest, CompactThenExportIsByteIdentical) {
  const std::string homets = TempPath("compact.homets");
  const std::string csv = TempPath("export.csv");
  const auto stats =
      CompactCsvToHomets(Fixture("single_gateway.csv"), homets);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->gateways, 1u);
  EXPECT_EQ(stats->devices, 2u);
  EXPECT_EQ(stats->rows, 5u);

  const auto exported = ExportHometsToCsv(homets, csv);
  ASSERT_TRUE(exported.ok()) << exported.status().ToString();
  EXPECT_EQ(exported->rows, stats->rows);
  EXPECT_EQ(FileBytes(csv), FileBytes(Fixture("single_gateway.csv")));
  std::remove(homets.c_str());
  std::remove(csv.c_str());
}

// The resilient read options thread through compaction: a fixture the strict
// reader rejects compacts fine under kSkipAndReport, and the quarantine
// shows up in the caller's report.
TEST(DatasetConvertTest, CompactionHonorsErrorPolicy) {
  const std::string homets = TempPath("dup.homets");
  EXPECT_EQ(CompactCsvToHomets(Fixture("gateway_dup.csv"), homets)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  ReadOptions options;
  options.policy = ErrorPolicy::kSkipAndReport;
  IngestReport report;
  const auto stats =
      CompactCsvToHomets(Fixture("gateway_dup.csv"), homets, options, &report);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(report.rows_duplicate, 1u);
  const auto reader = storage::HometsReader::Open(homets);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->gateway_count(), 1u);
  std::remove(homets.c_str());
}

// The committed corrupted binaries: every one is a clean Status.
TEST(DatasetCorruptFixtureTest, BadMagicIsInvalidArgument) {
  const auto reader = DatasetReader::Open(Fixture("bad_magic.homets"));
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(reader.status().message().find("magic"), std::string::npos);
}

TEST(DatasetCorruptFixtureTest, TruncatedFooterIsIoError) {
  const auto reader = DatasetReader::Open(Fixture("truncated_footer.homets"));
  EXPECT_EQ(reader.status().code(), StatusCode::kIoError);
  EXPECT_NE(reader.status().message().find("torn"), std::string::npos);
}

TEST(DatasetCorruptFixtureTest, CorruptChunkFailsCrcOnRead) {
  auto reader = DatasetReader::Open(Fixture("corrupt_chunk.homets"));
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();  // footer is intact
  const auto gw = reader->ReadGateway(0);
  EXPECT_EQ(gw.status().code(), StatusCode::kIoError);
  EXPECT_NE(gw.status().message().find("crc mismatch"), std::string::npos);
}

TEST(DatasetCorruptFixtureTest, ExportOfCorruptChunkFailsCleanly) {
  const std::string csv = TempPath("never_written.csv");
  EXPECT_EQ(ExportHometsToCsv(Fixture("corrupt_chunk.homets"), csv)
                .status()
                .code(),
            StatusCode::kIoError);
}

TEST(DatasetWriteTest, WriteGatewayFilePicksFormatByPath) {
  simgen::GatewayTrace gw;
  simgen::DeviceTrace dev;
  dev.name = "d";
  dev.incoming = ts::TimeSeries(0, 1, {1.0, 2.0});
  dev.outgoing = ts::TimeSeries(0, 1, {0.5, 0.5});
  gw.devices = {dev};

  const std::string homets = TempPath("bypath.homets");
  const std::string csv = TempPath("bypath.csv");
  ASSERT_TRUE(WriteGatewayFile(homets, gw).ok());
  ASSERT_TRUE(WriteGatewayFile(csv, gw).ok());
  EXPECT_TRUE(storage::HometsReader::Open(homets).ok());
  EXPECT_TRUE(ReadGatewayCsv(csv).ok());
  std::remove(homets.c_str());
  std::remove(csv.c_str());
}

}  // namespace
}  // namespace homets::io
