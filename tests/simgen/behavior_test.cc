#include "simgen/behavior.h"

#include <gtest/gtest.h>

namespace homets::simgen {
namespace {

int64_t MinuteOf(int day, int hour, int minute = 0) {
  return static_cast<int64_t>(day) * ts::kMinutesPerDay +
         static_cast<int64_t>(hour) * ts::kMinutesPerHour + minute;
}

TEST(BehaviorProfileTest, EveningProfileActiveInEveningOnly) {
  const BehaviorProfile p(ProfileKind::kEvening);
  EXPECT_GT(p.WeightAt(MinuteOf(0, 19)), 0.9);   // Monday 19:00
  EXPECT_GT(p.WeightAt(MinuteOf(3, 22)), 0.0);   // Thursday 22:00
  EXPECT_DOUBLE_EQ(p.WeightAt(MinuteOf(0, 10)), 0.0);  // Monday 10:00
  EXPECT_DOUBLE_EQ(p.WeightAt(MinuteOf(2, 4)), 0.0);   // Wednesday 04:00
}

TEST(BehaviorProfileTest, MorningEveningIsBimodal) {
  const BehaviorProfile p(ProfileKind::kMorningEvening);
  EXPECT_GT(p.WeightAt(MinuteOf(1, 8)), 0.5);
  EXPECT_GT(p.WeightAt(MinuteOf(1, 20)), 0.5);
  EXPECT_DOUBLE_EQ(p.WeightAt(MinuteOf(1, 13)), 0.0);
}

TEST(BehaviorProfileTest, WorkdayQuietOnWeekends) {
  const BehaviorProfile p(ProfileKind::kWorkday);
  EXPECT_GT(p.WeightAt(MinuteOf(2, 11)), 0.9);   // Wednesday work hours
  EXPECT_LT(p.WeightAt(MinuteOf(5, 11)), 0.3);   // Saturday
  EXPECT_LT(p.WeightAt(MinuteOf(6, 15)), 0.3);   // Sunday
}

TEST(BehaviorProfileTest, WeekendHeavyPeaksOnWeekend) {
  const BehaviorProfile p(ProfileKind::kWeekendHeavy);
  EXPECT_GT(p.WeightAt(MinuteOf(5, 14)), 0.9);   // Saturday afternoon
  EXPECT_GT(p.WeightAt(MinuteOf(6, 11)), 0.9);   // Sunday morning
  EXPECT_LT(p.WeightAt(MinuteOf(1, 14)), 0.3);   // Tuesday afternoon
}

TEST(BehaviorProfileTest, AllDayProfileCoversDaytime) {
  const BehaviorProfile p(ProfileKind::kAllDay);
  int active_hours = 0;
  for (int h = 0; h < 24; ++h) {
    if (p.WeightAt(MinuteOf(0, h)) > 0.0) ++active_hours;
  }
  EXPECT_GE(active_hours, 16);
}

TEST(BehaviorProfileTest, NightOwlWrapsMidnight) {
  const BehaviorProfile p(ProfileKind::kNightOwl);
  EXPECT_GT(p.WeightAt(MinuteOf(0, 23)), 0.9);
  EXPECT_GT(p.WeightAt(MinuteOf(1, 1)), 0.5);   // after midnight
  EXPECT_DOUBLE_EQ(p.WeightAt(MinuteOf(1, 12)), 0.0);
}

TEST(BehaviorProfileTest, WeightsWithinUnitInterval) {
  for (int k = 0; k < kProfileKindCount; ++k) {
    const BehaviorProfile p(static_cast<ProfileKind>(k));
    for (int d = 0; d < 7; ++d) {
      for (int h = 0; h < 24; ++h) {
        const double w = p.WeightAt(MinuteOf(d, h));
        EXPECT_GE(w, 0.0);
        EXPECT_LE(w, 1.0);
      }
    }
  }
}

TEST(BehaviorProfileTest, EveryProfileHasSomeActivity) {
  for (int k = 0; k < kProfileKindCount; ++k) {
    const BehaviorProfile p(static_cast<ProfileKind>(k));
    double total = 0.0;
    for (int d = 0; d < 7; ++d) {
      for (int h = 0; h < 24; ++h) total += p.WeightAt(MinuteOf(d, h));
    }
    EXPECT_GT(total, 3.0) << ProfileKindName(static_cast<ProfileKind>(k));
  }
}

TEST(BehaviorProfileTest, NamesAreDistinct) {
  EXPECT_EQ(ProfileKindName(ProfileKind::kEvening), "evening");
  EXPECT_EQ(ProfileKindName(ProfileKind::kWeekendHeavy), "weekend_heavy");
  EXPECT_EQ(ProfileKindName(ProfileKind::kNightOwl), "night_owl");
}

TEST(BehaviorProfileTest, WeightStableWithinHour) {
  const BehaviorProfile p(ProfileKind::kEvening);
  EXPECT_DOUBLE_EQ(p.WeightAt(MinuteOf(0, 19, 0)),
                   p.WeightAt(MinuteOf(0, 19, 59)));
}

}  // namespace
}  // namespace homets::simgen
