#include <gtest/gtest.h>

#include "simgen/fleet.h"

namespace homets::simgen {
namespace {

TEST(SimConfigTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateSimConfig(SimConfig{}).ok());
}

TEST(SimConfigTest, HorizonMinutes) {
  SimConfig config;
  config.weeks = 2;
  EXPECT_EQ(config.HorizonMinutes(), 2 * ts::kMinutesPerWeek);
}

TEST(SimConfigTest, RejectsNonPositiveSizes) {
  SimConfig config;
  config.n_gateways = 0;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
  config = SimConfig{};
  config.weeks = -1;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
}

TEST(SimConfigTest, RejectsBadProbabilities) {
  SimConfig config;
  config.long_outage_prob = -0.1;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
  config = SimConfig{};
  config.unlabeled_prob = 1.5;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
  config = SimConfig{};
  config.regular_home_prob = 2.0;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
}

TEST(SimConfigTest, RejectsSurveyLargerThanFleet) {
  SimConfig config;
  config.n_gateways = 10;
  config.surveyed_gateways = 11;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
  config.surveyed_gateways = 10;
  EXPECT_TRUE(ValidateSimConfig(config).ok());
  config.surveyed_gateways = -1;
  EXPECT_FALSE(ValidateSimConfig(config).ok());
}

}  // namespace
}  // namespace homets::simgen
