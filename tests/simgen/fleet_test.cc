#include "simgen/fleet.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "correlation/coefficients.h"

namespace homets::simgen {
namespace {

SimConfig SmallConfig() {
  SimConfig config;
  config.n_gateways = 12;
  config.weeks = 2;
  config.seed = 7;
  config.surveyed_gateways = 4;
  return config;
}

TEST(FleetGeneratorTest, DeterministicAcrossInstances) {
  const SimConfig config = SmallConfig();
  FleetGenerator a(config);
  FleetGenerator b(config);
  const GatewayTrace ga = a.Generate(3);
  const GatewayTrace gb = b.Generate(3);
  ASSERT_EQ(ga.devices.size(), gb.devices.size());
  for (size_t d = 0; d < ga.devices.size(); ++d) {
    ASSERT_EQ(ga.devices[d].incoming.size(), gb.devices[d].incoming.size());
    for (size_t i = 0; i < ga.devices[d].incoming.size(); i += 997) {
      const double va = ga.devices[d].incoming[i];
      const double vb = gb.devices[d].incoming[i];
      if (std::isnan(va)) {
        EXPECT_TRUE(std::isnan(vb));
      } else {
        EXPECT_DOUBLE_EQ(va, vb);
      }
    }
  }
}

TEST(FleetGeneratorTest, GenerationOrderIndependent) {
  FleetGenerator gen(SmallConfig());
  const GatewayTrace first = gen.Generate(5);
  (void)gen.Generate(0);
  (void)gen.Generate(9);
  const GatewayTrace again = gen.Generate(5);
  ASSERT_EQ(first.devices.size(), again.devices.size());
  EXPECT_DOUBLE_EQ(first.AggregateTraffic().Sum(),
                   again.AggregateTraffic().Sum());
}

TEST(FleetGeneratorTest, DifferentSeedsDifferentFleets) {
  SimConfig c1 = SmallConfig();
  SimConfig c2 = SmallConfig();
  c2.seed = 8;
  const double sum1 = FleetGenerator(c1).Generate(0).AggregateTraffic().Sum();
  const double sum2 = FleetGenerator(c2).Generate(0).AggregateTraffic().Sum();
  EXPECT_NE(sum1, sum2);
}

TEST(FleetGeneratorTest, TraceShape) {
  FleetGenerator gen(SmallConfig());
  const GatewayTrace gw = gen.Generate(1);
  EXPECT_EQ(gw.id, 1);
  EXPECT_GE(gw.devices.size(), 1u);
  for (const auto& dev : gw.devices) {
    EXPECT_EQ(dev.incoming.start_minute(), 0);
    EXPECT_EQ(dev.incoming.step_minutes(), 1);
    EXPECT_EQ(dev.incoming.size(),
              static_cast<size_t>(SmallConfig().HorizonMinutes()));
    EXPECT_EQ(dev.outgoing.size(), dev.incoming.size());
    EXPECT_FALSE(dev.name.empty());
  }
}

TEST(FleetGeneratorTest, TrafficNonNegativeAndBounded) {
  FleetGenerator gen(SmallConfig());
  for (int id = 0; id < 4; ++id) {
    const GatewayTrace gw = gen.Generate(id);
    for (const auto& dev : gw.devices) {
      for (double v : dev.incoming.values()) {
        if (std::isnan(v)) continue;
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 3.0e7);
      }
    }
  }
}

TEST(FleetGeneratorTest, SurveySubsetHasResidentCounts) {
  FleetGenerator gen(SmallConfig());
  for (int id = 0; id < 12; ++id) {
    const GatewayTrace gw = gen.Generate(id);
    if (id < 4) {
      ASSERT_TRUE(gw.surveyed_residents.has_value());
      EXPECT_GE(*gw.surveyed_residents, 1);
      EXPECT_LE(*gw.surveyed_residents, 4);
    } else {
      EXPECT_FALSE(gw.surveyed_residents.has_value());
    }
  }
}

TEST(FleetGeneratorTest, InOutStronglyCorrelated) {
  // Section 4.1(b): incoming and outgoing gateway traffic correlate around
  // 0.92 on the real fleet.
  SimConfig config = SmallConfig();
  config.n_gateways = 8;
  FleetGenerator gen(config);
  double sum_cor = 0.0;
  int counted = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const GatewayTrace gw = gen.Generate(id);
    const auto in = gw.AggregateIncoming();
    const auto out = gw.AggregateOutgoing();
    const auto r = correlation::Pearson(in.values(), out.values());
    if (!r.ok()) continue;
    sum_cor += r->coefficient;
    ++counted;
  }
  ASSERT_GT(counted, 4);
  EXPECT_GT(sum_cor / counted, 0.75);
}

TEST(FleetGeneratorTest, BackgroundDominatesMinutes) {
  // Most minutes must be low-valued background (Zipf-like mass near zero),
  // measured across several gateways to avoid single-home luck.
  FleetGenerator gen(SmallConfig());
  size_t low = 0, observed = 0;
  for (int id = 0; id < 6; ++id) {
    const auto agg = gen.Generate(id).AggregateTraffic();
    for (double v : agg.values()) {
      if (std::isnan(v)) continue;
      ++observed;
      if (v < 100000.0) ++low;
    }
  }
  ASSERT_GT(observed, 5000u);
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(observed), 0.6);
}

TEST(FleetGeneratorTest, DeviceLevelBackgroundDominates) {
  // At the device level the active minutes are rare enough to appear as
  // boxplot outliers (the Figure 1 shape).
  FleetGenerator gen(SmallConfig());
  size_t low = 0, observed = 0;
  for (int id = 0; id < 6; ++id) {
    for (const auto& dev : gen.Generate(id).devices) {
      for (double v : dev.incoming.values()) {
        if (std::isnan(v)) continue;
        ++observed;
        if (v < 50000.0) ++low;
      }
    }
  }
  ASSERT_GT(observed, 5000u);
  EXPECT_GT(static_cast<double>(low) / static_cast<double>(observed), 0.75);
}

TEST(FleetGeneratorTest, ActiveBurstsExist) {
  FleetGenerator gen(SmallConfig());
  bool found_burst = false;
  for (int id = 0; id < 6 && !found_burst; ++id) {
    const auto agg = gen.Generate(id).AggregateTraffic();
    for (double v : agg.values()) {
      if (!std::isnan(v) && v > 1.0e6) {
        found_burst = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_burst);
}

TEST(FleetGeneratorTest, DeviceTypesPresentAcrossFleet) {
  SimConfig config = SmallConfig();
  config.n_gateways = 30;
  FleetGenerator gen(config);
  std::set<DeviceType> seen;
  for (int id = 0; id < config.n_gateways; ++id) {
    for (const auto& dev : gen.Generate(id).devices) {
      seen.insert(dev.true_type);
    }
  }
  EXPECT_TRUE(seen.count(DeviceType::kPortable));
  EXPECT_TRUE(seen.count(DeviceType::kFixed));
  // True types never include the unlabeled marker.
  EXPECT_FALSE(seen.count(DeviceType::kUnlabeled));
}

TEST(FleetGeneratorTest, LabelNoiseProducesUnlabeledDevices) {
  SimConfig config = SmallConfig();
  config.n_gateways = 30;
  FleetGenerator gen(config);
  size_t unlabeled = 0, total = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    for (const auto& dev : gen.Generate(id).devices) {
      ++total;
      if (dev.reported_type == DeviceType::kUnlabeled) ++unlabeled;
    }
  }
  const double fraction = static_cast<double>(unlabeled) /
                          static_cast<double>(total);
  EXPECT_GT(fraction, 0.1);
  EXPECT_LT(fraction, 0.45);
}

TEST(FleetGeneratorTest, DropoutProducesIneligibleGateways) {
  SimConfig config;
  config.n_gateways = 60;
  config.weeks = 4;
  config.seed = 11;
  FleetGenerator gen(config);
  int weekly_ok = 0, daily_ok = 0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const GatewayTrace gw = gen.Generate(id);
    if (gw.HasObservationEveryWeek(0, config.weeks)) ++weekly_ok;
    if (gw.HasObservationEveryDay(0, config.weeks * 7)) ++daily_ok;
  }
  // Paper ratios: 153/196 ≈ 78% weekly, 100/196 ≈ 51% daily.
  EXPECT_GT(weekly_ok, 30);
  EXPECT_LT(weekly_ok, 60);
  EXPECT_GT(daily_ok, 15);
  EXPECT_LE(daily_ok, weekly_ok);
}

TEST(FleetGeneratorTest, GenerateAllMatchesIndividualGeneration) {
  SimConfig config = SmallConfig();
  config.n_gateways = 3;
  FleetGenerator gen(config);
  const auto fleet = gen.GenerateAll();
  ASSERT_EQ(fleet.size(), 3u);
  for (int id = 0; id < 3; ++id) {
    EXPECT_EQ(fleet[static_cast<size_t>(id)].id, id);
    EXPECT_DOUBLE_EQ(fleet[static_cast<size_t>(id)].AggregateTraffic().Sum(),
                     gen.Generate(id).AggregateTraffic().Sum());
  }
}

TEST(FleetGeneratorTest, EveningActivityExceedsNightQuietHours) {
  // Aggregate fleet activity at 20:00 should exceed 04:00 — the circadian
  // pattern every behavior profile encodes.
  SimConfig config = SmallConfig();
  config.n_gateways = 10;
  FleetGenerator gen(config);
  double evening = 0.0, night = 0.0;
  for (int id = 0; id < config.n_gateways; ++id) {
    const auto agg = gen.Generate(id).AggregateTraffic();
    for (size_t i = 0; i < agg.size(); ++i) {
      const double v = agg[i];
      if (std::isnan(v)) continue;
      const int hour = static_cast<int>(ts::MinuteOfDay(agg.MinuteAt(i)) /
                                        ts::kMinutesPerHour);
      if (hour == 20) evening += v;
      if (hour == 4) night += v;
    }
  }
  EXPECT_GT(evening, 2.0 * night);
}

}  // namespace
}  // namespace homets::simgen
